// Paper tour: every theorem of the paper, demonstrated in order.
//
// A narrated end-to-end run intended as the "reproduce the paper in one
// command" entry point; each section prints the claim and the mechanical
// evidence. (The bench binaries produce the same artifacts with more
// detail and with timings; see EXPERIMENTS.md.)

#include <cstdio>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/shatter.h"
#include "certify/union_lcp.h"
#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/checker.h"
#include "lower/pipeline.h"
#include "lower/realize.h"
#include "lower/surgery.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

using namespace shlcp;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

bool hiding_via_witnesses(const Lcp& lcp, const std::vector<Instance>& w) {
  return build_from_instances(lcp.decoder(), w, 2).odd_cycle().has_value();
}

}  // namespace

int main() {
  std::printf("Strong and Hiding Distributed Certification of k-Coloring "
              "(PODC 2025): the tour\n");

  banner("Theorem 1.1 (anonymous, constant bits, H1 u H2)");
  {
    const DegreeOneLcp d1;
    const EvenCycleLcp ec;
    const UnionLcp both({&d1, &ec});
    Rng rng(1);
    bool complete = true;
    for (const Graph& g : {make_path(7), make_star(4), make_cycle(6),
                           make_cycle(10)}) {
      complete = complete &&
                 check_completeness(both, Instance::canonical(g)).ok;
    }
    bool strong = true;
    for (const Graph& g : {make_cycle(5), make_theta(2, 2, 3)}) {
      strong = strong && check_strong_soundness_random(
                             both, Instance::canonical(g), 500, rng)
                             .ok;
    }
    std::printf("complete on H1 u H2: %s | strong (sampled adversaries): %s "
                "| hiding: %s (degree-one witness) and %s (even-cycle "
                "witness)\n",
                complete ? "yes" : "NO", strong ? "yes" : "NO",
                hiding_via_witnesses(d1, degree_one_witnesses(4)) ? "yes"
                                                                  : "NO",
                hiding_via_witnesses(ec, even_cycle_witnesses(6)) ? "yes"
                                                                  : "NO");
  }

  banner("Theorem 1.3 (shatter points, O(min{D^2,n}+log n) bits)");
  {
    const ShatterLcp lcp;  // the repaired vector-on-point layout
    const bool complete =
        check_completeness(lcp, Instance::canonical(make_path(8))).ok;
    const bool hiding = hiding_via_witnesses(lcp, shatter_witnesses(true));
    std::printf("complete: %s | hiding via the P1/P2 instances: %s\n",
                complete ? "yes" : "NO", hiding ? "yes" : "NO");
    std::printf("(the brief announcement's literal decoder fails strong "
                "soundness; see adversarial_prover)\n");
  }

  banner("Theorem 1.4 (watermelons, O(log n) bits)");
  {
    const WatermelonLcp lcp;
    const Graph g = make_watermelon({2, 4, 4});
    const bool complete = check_completeness(lcp, Instance::canonical(g)).ok;
    const bool hiding = hiding_via_witnesses(lcp, watermelon_witnesses());
    std::printf("complete on {2,4,4}: %s | hiding via the two 8-path id "
                "orders: %s\n",
                complete ? "yes" : "NO", hiding ? "yes" : "NO");
  }

  banner("Theorem 1.2/1.5 (impossibility engine, Section 5)");
  {
    const WatermelonLcp cheat(WatermelonVariant::kNoPortCheck);
    const auto instances = no_port_check_c8_witnesses();
    NbhdGraph nbhd;
    for (const Instance& inst : instances) {
      nbhd.absorb(cheat.decoder(), inst, 2);
    }
    const auto cycle = nbhd.odd_cycle();
    const auto expanded = expand_odd_cycle(nbhd, instances, *cycle, 1);
    Ident bound = 0;
    const auto separated = separate_id_components(expanded.walk, &bound);
    const MergeResult merged = merge_views_by_id(separated, bound);
    const auto acc = cheat.decoder().accepting_set(merged.instance);
    const bool violated =
        !is_bipartite(merged.instance.g.induced_subgraph(acc));
    std::printf("cheating decoder (hiding but not strong): odd cycle of %zu "
                "edges -> surgery -> G_bad (%d nodes) -> violation: %s\n",
                cycle->size() - 1, merged.instance.num_nodes(),
                violated ? "CONFIRMED" : "no");

    const WatermelonLcp honest(WatermelonVariant::kStandard);
    const auto survive =
        run_theorem15_pipeline(honest.decoder(), watermelon_witnesses(), 99);
    std::printf("honest watermelon decoder: odd cycle exists but no walk "
                "realizes (first conflict: %s) -> strong soundness "
                "survives\n",
                survive.realize_conflict.substr(0, 60).c_str());
  }

  banner("Lemma 2.1 and the r-forgetful landscape");
  {
    std::printf("torus-6x6: 1-forgetful (diam 6 >= 3) | cycle-16: "
                "3-forgetful (diam 8 >= 7) | grid-5x5: NOT forgetful "
                "(corners) | every forgetful case satisfies diam >= 2r+1\n");
    SHLCP_CHECK(is_r_forgetful(make_torus(6, 6), 1));
    SHLCP_CHECK(is_r_forgetful(make_cycle(16), 3));
    SHLCP_CHECK(!is_r_forgetful(make_grid(5, 5), 1));
  }

  std::printf("\nTour complete; run ctest and the bench binaries for the "
              "exhaustive versions of each claim.\n");
  return 0;
}
