// Interrupt-safe V(D, n) sweep from the command line.
//
// Runs a budgeted, checkpointed exhaustive build and demonstrates the
// whole interrupt-safety surface: ^C (SIGINT) checkpoints and exits
// cleanly, --max-frames / --wall-ms interrupt deterministically, and
// re-running the same command line resumes from the manifest and
// finishes the sweep bit-identically to an uninterrupted run.
//
//   resumable_enum --ckpt DIR [options]
//     --decoder NAME    spanning-bfs (default) | degree-one | even-cycle
//     --max-n N         largest graph size in the family (default 3)
//     --threads T       worker threads (default 0 = auto)
//     --every F         checkpoint cadence in frames (default 8)
//     --max-frames F    stop after F frames this run (0 = unlimited)
//     --wall-ms MS      wall-clock budget for this run (0 = unlimited)
//     --reset           discard any existing checkpoint first
//
// Exit codes: 0 = sweep complete, 3 = interrupted (checkpoint written,
// run again to resume), 1 = usage or internal error. CI's
// checkpoint-smoke job drives exactly this loop (.github/workflows).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/spanning_bfs.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "nbhd/aviews.h"
#include "nbhd/checkpoint.h"
#include "util/budget.h"

using namespace shlcp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --ckpt DIR [--decoder NAME] [--max-n N] "
               "[--threads T]\n"
               "          [--every F] [--max-frames F] [--wall-ms MS] "
               "[--reset]\n"
               "decoders: spanning-bfs | degree-one | even-cycle\n",
               argv0);
  return 1;
}

std::unique_ptr<Lcp> make_lcp(const std::string& name) {
  if (name == "spanning-bfs") {
    return std::make_unique<SpanningBfsLcp>();
  }
  if (name == "degree-one") {
    return std::make_unique<DegreeOneLcp>();
  }
  if (name == "even-cycle") {
    return std::make_unique<EvenCycleLcp>();
  }
  return nullptr;
}

std::vector<Graph> graph_family(const std::string& decoder, int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!is_bipartite(g)) {
        return true;  // the shipped decoders certify 2-colorability
      }
      if (decoder == "degree-one" && g.min_degree() != 1) {
        return true;
      }
      graphs.push_back(g);
      return true;
    });
  }
  return graphs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string decoder = "spanning-bfs";
  std::string ckpt_dir;
  int max_n = 3;
  int threads = 0;
  std::uint64_t every = 8;
  std::uint64_t max_frames = 0;
  std::uint64_t wall_ms = 0;
  bool reset = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--decoder") {
      decoder = need_value("--decoder");
    } else if (arg == "--ckpt") {
      ckpt_dir = need_value("--ckpt");
    } else if (arg == "--max-n") {
      max_n = std::atoi(need_value("--max-n"));
    } else if (arg == "--threads") {
      threads = std::atoi(need_value("--threads"));
    } else if (arg == "--every") {
      every = std::strtoull(need_value("--every"), nullptr, 10);
    } else if (arg == "--max-frames") {
      max_frames = std::strtoull(need_value("--max-frames"), nullptr, 10);
    } else if (arg == "--wall-ms") {
      wall_ms = std::strtoull(need_value("--wall-ms"), nullptr, 10);
    } else if (arg == "--reset") {
      reset = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (ckpt_dir.empty()) {
    return usage(argv[0]);
  }
  const std::unique_ptr<Lcp> lcp = make_lcp(decoder);
  if (lcp == nullptr) {
    std::fprintf(stderr, "unknown decoder: %s\n", decoder.c_str());
    return usage(argv[0]);
  }
  if (reset) {
    CheckpointStore(ckpt_dir).clear();
  }

  ParallelEnumOptions options;
  options.enums.all_id_orders = (decoder == "spanning-bfs");
  options.enums.all_ports = !options.enums.all_id_orders;
  options.num_threads = threads;
  options.frames_per_chunk = 2;
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.every_frames = every;
  options.budget.max_frames = max_frames;
  options.budget.wall_ms = wall_ms;
  options.budget.arm_sigint = true;  // ^C checkpoints and exits cleanly

  const std::vector<Graph> graphs = graph_family(decoder, max_n);
  std::printf("sweep: decoder=%s max_n=%d graphs=%d ckpt=%s\n",
              decoder.c_str(), max_n, static_cast<int>(graphs.size()),
              ckpt_dir.c_str());

  try {
    const ResumableBuildResult res =
        build_exhaustive_resumable(*lcp, graphs, options);
    std::printf("frames: %llu/%llu done (%llu restored from checkpoint)\n",
                static_cast<unsigned long long>(res.frames_done),
                static_cast<unsigned long long>(res.num_frames),
                static_cast<unsigned long long>(res.resumed_frames));
    std::printf("manifest: %s\n", res.manifest_path.c_str());
    if (!res.complete) {
      std::printf("status: INTERRUPTED (%s) -- run the same command again "
                  "to resume\n",
                  to_string(res.stop_reason));
      return 3;
    }
    std::printf("status: COMPLETE  views=%d edges=%d instances=%d\n",
                res.nbhd.num_views(), res.nbhd.num_edges(),
                res.nbhd.num_instances_absorbed());
    const auto cycle = res.nbhd.odd_cycle();
    std::printf("odd cycle in V(D, n): %s\n",
                cycle.has_value() ? "present (decoder is hiding-capable)"
                                  : "absent");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
