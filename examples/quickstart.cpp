// Quickstart: certify 2-colorability of a graph without revealing the
// coloring.
//
// Builds a small min-degree-1 bipartite graph, runs the honest prover of
// the degree-one LCP (Lemma 4.1), verifies the certificates at every node
// with the 1-round decoder, and then shows what the hiding property
// means: the certificates contain the coloring everywhere EXCEPT at one
// leaf, whose color no local algorithm can pin down.

#include <cstdio>

#include "certify/degree_one.h"
#include "graph/generators.h"
#include "lcp/decoder.h"

using namespace shlcp;

int main() {
  // A "double broom": a 4-node spine with pendant leaves on both ends.
  const Graph g = make_double_broom(/*spine=*/4, /*left=*/2, /*right=*/1);
  std::printf("graph: %d nodes, %d edges, min degree %d, bipartite\n",
              g.num_nodes(), g.num_edges(), g.min_degree());

  const DegreeOneLcp lcp;
  Instance inst = Instance::canonical(g);
  const auto labels = lcp.prove(g, inst.ports, inst.ids);
  if (!labels.has_value()) {
    std::printf("prover declined (graph outside the promise class)\n");
    return 1;
  }
  inst.labels = *labels;

  std::printf("\ncertificates (2 bits each):\n");
  const char* names[] = {"color0", "color1", "BOT", "TOP"};
  for (Node v = 0; v < g.num_nodes(); ++v) {
    std::printf("  node %d: %s\n", v,
                names[inst.labels.at(v).fields[0]]);
  }

  const auto verdicts = lcp.decoder().run(inst);
  int accepted = 0;
  for (const bool b : verdicts) {
    accepted += b ? 1 : 0;
  }
  std::printf("\ndistributed verification: %d/%d nodes accept\n", accepted,
              g.num_nodes());

  std::printf("\nthe BOT node's color is hidden: both completions of the "
              "2-coloring are\nconsistent with everything any node can "
              "see. Tamper with one certificate and\nverification "
              "fails:\n");
  Instance tampered = inst;
  tampered.labels.at(1) = make_degree_one_certificate(DegreeOneSymbol::kColor0);
  const auto bad = lcp.decoder().run(tampered);
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (!bad[static_cast<std::size_t>(v)]) {
      std::printf("  node %d rejects\n", v);
    }
  }
  return 0;
}
