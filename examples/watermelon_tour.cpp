// Watermelon tour: the Theorem 1.4 scheme on real watermelon graphs.
//
// Recognizes watermelon structure, prints the decomposition, certifies
// 2-colorability through 2-edge-colored paths with O(log n) certificates,
// and replays the Section 7.2 hiding witness: the same 8-path under two
// identifier assignments produces views that no extractor can split.

#include <cstdio>

#include "certify/watermelon.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"

using namespace shlcp;

int main() {
  const Graph g = make_watermelon({2, 4, 4});
  std::printf("watermelon with path lengths {2, 4, 4}: %d nodes, "
              "bipartite (all lengths even)\n",
              g.num_nodes());
  const auto dec = watermelon_decomposition(g);
  std::printf("decomposition: endpoints %d and %d, %zu paths\n", dec->v1,
              dec->v2, dec->paths.size());
  for (std::size_t i = 0; i < dec->paths.size(); ++i) {
    std::printf("  path %zu:", i + 1);
    for (const Node v : dec->paths[i]) {
      std::printf(" %d", v);
    }
    std::printf("\n");
  }

  const WatermelonLcp lcp;
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  std::printf("\nhonest certificates: max %d bits; unanimous acceptance: "
              "%s\n",
              inst.labels.max_bits(),
              lcp.decoder().accepts_all(inst) ? "yes" : "no");

  // A non-bipartite watermelon is rejected by the prover but, more
  // importantly, no certificates whatsoever can make it accept on an odd
  // cycle (strong soundness).
  const Graph odd = make_watermelon({2, 3});
  std::printf("\nwatermelon {2, 3} (odd cycle): prover declines: %s\n",
              lcp.prove(odd, PortAssignment::canonical(odd),
                        IdAssignment::consecutive(odd))
                      .has_value()
                  ? "no"
                  : "yes");

  // Section 7.2 hiding witness.
  const auto witnesses = watermelon_witnesses();
  const auto nbhd = build_from_instances(lcp.decoder(), witnesses, 2);
  const auto cycle = nbhd.odd_cycle();
  std::printf("\nSection 7.2 witness (8-path, shuffled middle ids): odd "
              "cycle of %zu views in V(D, 8)\n",
              cycle->size() - 1);
  std::printf("=> hiding: the interior of a long path cannot tell which "
              "side of the 2-coloring it is on.\n");
  return 0;
}
