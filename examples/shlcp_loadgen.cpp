// shlcp_loadgen -- load generator for shlcpd and shlcp_router.
//
// Drives a mixed 4-endpoint workload against a running daemon, by
// spawning one itself over pipes, or by connecting to a unix socket or
// a TCP endpoint (a backend or the router -- both speak the same
// framing):
//
//   shlcp_loadgen --spawn build/examples/shlcpd --requests 200
//   shlcp_loadgen --socket /tmp/shlcp.sock --concurrency 16
//   shlcp_loadgen --tcp 127.0.0.1:7400 --open-loop --rate 500
//
// The request stream is deterministic in --seed: request i draws from a
// fixed generator table at index derived from (seed, i), so two runs
// are comparable. --repeat-keys K folds the stream onto K distinct
// request payloads, which makes the expected warm cache hit-rate
// (K < requests) a controlled quantity -- the CI smoke jobs assert
// hit-rate this way.
//
// Options:
//   --requests N         total requests (default 200)
//   --concurrency C      max outstanding requests / worker threads
//                        (default 8)
//   --mix M              mixed | run | check | witness | build
//   --seed S             stream seed (default 1)
//   --repeat-keys K      distinct payloads; 0 = all distinct (default 32)
//   --deadline-ms D      attach this deadline to every request
//   --allow-refused      "draining" responses are not failures
//   --require-hit-rate X fail unless final cache hit-rate >= X
//   --slo-p99-us X       fail unless the overall p99 latency <= X us
//
// Closed loop vs open loop. The default closed loop (send a request
// whenever a slot frees) under-reports tail latency: when the server
// stalls, the generator stops sending, so the stall is charged to one
// request instead of every request that *would* have been sent --
// coordinated omission. --open-loop fixes this: request k has the
// scheduled send time t0 + k/rate, workers sleep until the schedule
// (never until the server is ready), and latency is measured from the
// *scheduled* time, so server backlog is charged to every request it
// delays. Open-loop mode reports the corrected p99 and the achieved
// vs offered rate; it requires --socket or --tcp.
//
//   --open-loop          scheduled send times (coordinated-omission safe)
//   --rate R             open-loop offered rate, req/s (default 200)
//
// Resilient mode (--retries / --chaos / --open-loop; --socket or
// --tcp): instead of one pipelined connection, C worker threads each
// drive their own service/client.h Client -- per-attempt timeouts,
// capped exponential backoff with deterministic jitter,
// reconnect-on-failure, integrity digests both ways -- optionally
// through a client-side FaultyTransport chaos plan.
// Retry/reconnect/shed accounting is printed at the end.
//
//   --timeout-ms T       per-attempt response timeout (default 5000)
//   --retries R          max attempts per request (default 1 = off)
//   --backoff-ms B       base backoff between attempts (default 10)
//   --chaos DESC         client-side ChaosPlan descriptor (see
//                        src/service/chaos.h), e.g. the REPRO string of
//                        a chaos bench failure
//
// Interactive mode (--interactive; --socket or --tcp): instead of the
// stateless 4-endpoint mix, each of C workers drives honest
// commit-reveal k-coloring sessions end to end over session_open /
// session_step (schema shlcp.ia.v1): per round, commit to a freshly
// permuted coloring of the pool instance, receive the server's edge
// challenge, open the two endpoints. --requests counts whole sessions,
// --rounds sets the per-session round count. Session ids stay out of
// the reserved c<digits> retry-alias namespace (see service/proto.h).
// The run fails if any honest session is rejected or errors out.
//
//   --interactive        drive commit-reveal sessions instead of the mix
//   --rounds R           challenge rounds per session (default 2)
//
// Exit status: 0 iff every response was ok (or an allowed refusal) and
// the hit-rate / SLO requirements (if any) held.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "interactive/commit.h"
#include "interactive/protocol.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/proto.h"
#include "sim/faults.h"
#include "util/check.h"
#include "util/format.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using shlcp::mix64;

using shlcp::FaultPlan;
using shlcp::Json;
using shlcp::svc::ChaosPlan;
using shlcp::svc::encode_frame;
using shlcp::svc::FrameReader;

struct Endpoint {
  int write_fd = -1;
  int read_fd = -1;
  pid_t child = -1;
};

Endpoint spawn_daemon(const char* path) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(to_child[0], 0);
    dup2(from_child[1], 1);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(path, path, "--pipe", static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  return Endpoint{to_child[1], from_child[0], pid};
}

Endpoint connect_socket(const char* path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    std::exit(1);
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::perror("connect");
    std::exit(1);
  }
  return Endpoint{fd, fd, -1};
}

Endpoint connect_tcp(const std::string& host, int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    std::exit(1);
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "loadgen: bad TCP host '%s' (numeric IPv4 only)\n",
                 host.c_str());
    std::exit(1);
  }
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    std::perror("connect");
    std::exit(1);
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Endpoint{fd, fd, -1};
}

std::uint64_t now_us() {
  timespec ts = {};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000u;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// The generator table: each entry builds one (op, params) pair. All of
/// them are cheap (small named instances, tiny families) so throughput
/// measures the service, not one giant enumeration.
Json make_params(const std::string& op, std::uint64_t variant) {
  Json params = Json::object();
  if (op == "run_decoder") {
    static const std::pair<const char*, const char*> kCombos[] = {
        {"degree-one", "path5"},    {"degree-one", "star5"},
        {"degree-one", "path6"},    {"spanning-bfs", "path6"},
        {"spanning-bfs", "cycle6"}, {"spanning-bfs", "grid23"},
        {"even-cycle", "cycle6"},   {"even-cycle", "cycle8"},
    };
    const auto& [lcp, inst] = kCombos[variant % std::size(kCombos)];
    params["lcp"] = lcp;
    params["instance"] = inst;
    params["labels"] = "honest";
    if (variant % 3 == 2) {
      FaultPlan plan;
      plan.label = "drop-light";
      plan.seed = 0xC0FFEE + variant;
      plan.drop_permille = 100;
      params["plan"] = plan.describe();
    }
  } else if (op == "check_coloring") {
    static const char* kPool[] = {"path5",  "cycle5", "cycle6",  "grid23",
                                  "star5",  "cycle7", "theta222", "complete4"};
    params["instance"] = kPool[variant % std::size(kPool)];
    params["k"] = static_cast<std::int64_t>(2 + variant % 2);
  } else if (op == "search_witness") {
    if (variant % 2 == 0) {
      params["family"] = "degree-one";
      params["max_n"] = static_cast<std::int64_t>(4 + variant % 2);
    } else {
      params["family"] = "even-cycle";
      params["max_n"] = 4;
    }
  } else {  // build_nbhd
    static const std::pair<const char*, const char*> kBuilds[] = {
        {"degree-one", "path:4"},   {"degree-one", "star:4"},
        {"spanning-bfs", "path:4"}, {"spanning-bfs", "cycle:4"},
        {"even-cycle", "cycle:4"},  {"even-cycle", "cycle:6"},
    };
    const auto& [lcp, spec] = kBuilds[variant % std::size(kBuilds)];
    params["lcp"] = lcp;
    Json& graphs = (params["graphs"] = Json::array());
    graphs.push_back(spec);
    params["build"] = "proved";
  }
  return params;
}

const char* pick_op(const std::string& mix, std::uint64_t variant) {
  if (mix == "run") return "run_decoder";
  if (mix == "check") return "check_coloring";
  if (mix == "witness") return "search_witness";
  if (mix == "build") return "build_nbhd";
  static const char* kOps[] = {"run_decoder", "check_coloring",
                               "search_witness", "build_nbhd"};
  return kOps[variant % std::size(kOps)];
}

struct OpTally {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
  std::vector<std::uint64_t> latencies_us;
};

std::uint64_t percentile(std::vector<std::uint64_t> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(i, xs.size() - 1)];
}

/// Resilient mode: `concurrency` threads, each driving its own Client
/// over its own connection to `target` ("unix:<path>" or
/// "tcp:<host>:<port>"; requests striped across workers so the stream
/// content matches the pipelined mode's). In open-loop mode request i
/// is sent at its scheduled time t0 + i/rate and latency is measured
/// from that schedule, not the actual send -- the coordinated-omission
/// correction. Returns the exit code.
int run_resilient(const std::string& target, std::uint64_t total,
                  std::uint64_t concurrency, const std::string& mix,
                  std::uint64_t seed, std::uint64_t repeat_keys,
                  std::uint64_t deadline_ms, bool allow_refused,
                  double require_hit_rate, double slo_p99_us, bool open_loop,
                  double rate,
                  const shlcp::svc::ClientOptions& base_options) {
  struct WorkerOut {
    std::map<std::string, OpTally> tallies;
    shlcp::svc::ClientStats stats;
    std::uint64_t refused = 0;
    std::uint64_t lost = 0;
  };
  std::vector<WorkerOut> outs(concurrency);
  std::vector<std::thread> workers;
  const std::uint64_t t0 = now_us();
  for (std::uint64_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerOut& out = outs[w];
      shlcp::svc::ClientOptions options = base_options;
      // Per-worker fault/jitter streams: same plan shape, independent
      // deterministic schedules (the whole run replays from --seed).
      options.chaos.seed = mix64(options.chaos.seed ^ (0xC4A05ULL + w));
      options.retry.seed = mix64(options.retry.seed ^ (0xBAC0FFULL + w));
      shlcp::svc::Client client(
          shlcp::svc::Client::connector_for(target, options.chaos), options);
      for (std::uint64_t i = w; i < total; i += concurrency) {
        const std::uint64_t slot = repeat_keys == 0 ? i : i % repeat_keys;
        const std::uint64_t key_variant =
            shlcp::Rng(seed * 7919 + slot).next_u64() >> 8;
        const std::string op = pick_op(mix, key_variant);
        const Json params = make_params(op, key_variant);
        std::uint64_t sent_us = now_us();
        if (open_loop) {
          // Sleep until request i's scheduled send time -- never until
          // the server is ready -- and charge latency from the
          // schedule, so a stall is billed to every request it delays.
          const std::uint64_t sched_us =
              t0 + static_cast<std::uint64_t>(static_cast<double>(i) * 1e6 /
                                              rate);
          if (sent_us < sched_us) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(sched_us - sent_us));
          }
          sent_us = sched_us;
        }
        const shlcp::svc::CallResult r =
            client.call(op, params, deadline_ms);
        OpTally& tally = out.tallies[op];
        ++tally.count;
        tally.latencies_us.push_back(now_us() - sent_us);
        if (!r.ok) {
          if (r.error_code == "draining") {
            ++out.refused;
          } else if (r.error_code.empty()) {
            ++out.lost;  // transport/timeout after all retries
          } else {
            ++tally.errors;
            std::fprintf(stderr, "loadgen: [%s] %s: %s\n", op.c_str(),
                         r.error_code.c_str(), r.error_detail.c_str());
          }
        }
      }
      out.stats = client.stats();
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double elapsed_s = static_cast<double>(now_us() - t0) / 1e6;

  std::map<std::string, OpTally> tallies;
  shlcp::svc::ClientStats stats;
  std::uint64_t refused = 0;
  std::uint64_t lost = 0;
  for (WorkerOut& out : outs) {
    for (auto& [op, tally] : out.tallies) {
      OpTally& merged = tallies[op];
      merged.count += tally.count;
      merged.errors += tally.errors;
      merged.latencies_us.insert(merged.latencies_us.end(),
                                 tally.latencies_us.begin(),
                                 tally.latencies_us.end());
    }
    stats.calls += out.stats.calls;
    stats.attempts += out.stats.attempts;
    stats.retries += out.stats.retries;
    stats.reconnects += out.stats.reconnects;
    stats.timeouts += out.stats.timeouts;
    stats.transport_errors += out.stats.transport_errors;
    stats.digest_mismatches += out.stats.digest_mismatches;
    stats.refused_overloaded += out.stats.refused_overloaded;
    stats.refused_draining += out.stats.refused_draining;
    stats.refused_deadline += out.stats.refused_deadline;
    stats.refused_integrity += out.stats.refused_integrity;
    stats.backoff_ms_total += out.stats.backoff_ms_total;
    refused += out.refused;
    lost += out.lost;
  }

  // Final hit-rate probe over a clean (chaos-free) connection.
  double hit_rate = -1.0;
  {
    shlcp::svc::ClientOptions options = base_options;
    options.chaos = ChaosPlan{};
    shlcp::svc::Client client(
        shlcp::svc::Client::connector_for(target, options.chaos), options);
    const shlcp::svc::CallResult r = client.call("info", Json::object());
    if (r.ok) {
      const Json result = Json::parse(r.result_dump);
      hit_rate = result.at("cache").at("hit_rate").as_double();
    }
  }

  std::uint64_t errors = 0;
  std::uint64_t done = 0;
  std::vector<std::uint64_t> overall_us;
  std::printf("%-16s %8s %8s %10s %10s\n", "op", "count", "errors", "p50_us",
              "p99_us");
  for (const auto& [op, tally] : tallies) {
    errors += tally.errors;
    done += tally.count;
    overall_us.insert(overall_us.end(), tally.latencies_us.begin(),
                      tally.latencies_us.end());
    std::printf("%-16s %8llu %8llu %10llu %10llu\n", op.c_str(),
                static_cast<unsigned long long>(tally.count),
                static_cast<unsigned long long>(tally.errors),
                static_cast<unsigned long long>(
                    percentile(tally.latencies_us, 0.50)),
                static_cast<unsigned long long>(
                    percentile(tally.latencies_us, 0.99)));
  }
  const std::uint64_t p99_us = percentile(overall_us, 0.99);
  std::printf(
      "total %llu requests in %.2fs (%.1f req/s), %llu errors, %llu refused, "
      "%llu lost\n",
      static_cast<unsigned long long>(done), elapsed_s,
      elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0,
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(refused),
      static_cast<unsigned long long>(lost));
  if (open_loop) {
    std::printf("open-loop: offered %.1f req/s, achieved %.1f req/s\n", rate,
                elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0);
  }
  std::printf("p99_us_overall=%llu\n",
              static_cast<unsigned long long>(p99_us));
  std::printf(
      "resilience: attempts=%llu retries=%llu reconnects=%llu timeouts=%llu "
      "transport_errors=%llu digest_mismatches=%llu shed_seen=%llu "
      "integrity_seen=%llu backoff_ms=%llu\n",
      static_cast<unsigned long long>(stats.attempts),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.reconnects),
      static_cast<unsigned long long>(stats.timeouts),
      static_cast<unsigned long long>(stats.transport_errors),
      static_cast<unsigned long long>(stats.digest_mismatches),
      static_cast<unsigned long long>(stats.refused_overloaded),
      static_cast<unsigned long long>(stats.refused_integrity),
      static_cast<unsigned long long>(stats.backoff_ms_total));
  if (hit_rate >= 0) {
    std::printf("cache_hit_rate=%.4f\n", hit_rate);
  }

  if (errors > 0) {
    return 1;
  }
  if (!allow_refused && (refused > 0 || lost > 0)) {
    return 1;
  }
  if (require_hit_rate >= 0 && hit_rate < require_hit_rate) {
    std::fprintf(stderr, "loadgen: hit rate %.4f below required %.4f\n",
                 hit_rate, require_hit_rate);
    return 1;
  }
  if (slo_p99_us >= 0 && static_cast<double>(p99_us) > slo_p99_us) {
    std::fprintf(stderr, "loadgen: overall p99 %lluus above SLO %.0fus\n",
                 static_cast<unsigned long long>(p99_us), slo_p99_us);
    return 1;
  }
  return 0;
}

/// Interactive mode: C workers, each driving honest commit-reveal
/// sessions end to end through its own Client. One session is live per
/// worker at a time, so the daemon's per-connection cap is never in
/// play; a refused or rejected honest session is a failure. Session ids
/// are "lg-<worker>-<index>", outside the reserved c<digits> namespace.
int run_interactive(const std::string& target, std::uint64_t total,
                    std::uint64_t concurrency, std::uint64_t seed,
                    std::uint64_t rounds,
                    const shlcp::svc::ClientOptions& base_options) {
  const shlcp::Graph cycle = shlcp::make_cycle(6);
  const std::optional<std::vector<int>> coloring =
      shlcp::k_coloring(cycle, 2);
  if (!coloring.has_value()) {
    std::fprintf(stderr, "loadgen: cycle6 has no 2-coloring?\n");
    return 1;
  }
  struct WorkerOut {
    std::uint64_t sessions = 0;
    std::uint64_t accepted = 0;
    std::uint64_t errors = 0;
    std::vector<std::uint64_t> latencies_us;  // whole-session latency
  };
  std::vector<WorkerOut> outs(concurrency);
  std::vector<std::thread> workers;
  const std::uint64_t t0 = now_us();
  for (std::uint64_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerOut& out = outs[w];
      shlcp::svc::ClientOptions options = base_options;
      options.retry.seed = mix64(options.retry.seed ^ (0xBAC0FFULL + w));
      shlcp::svc::Client client(
          shlcp::svc::Client::connector_for(target, options.chaos), options);
      for (std::uint64_t i = w; i < total; i += concurrency) {
        const std::string id = shlcp::format(
            "lg-%llu-%llu", static_cast<unsigned long long>(w),
            static_cast<unsigned long long>(i));
        const std::uint64_t sent_us = now_us();
        ++out.sessions;
        Json open_params = Json::object();
        open_params["session"] = id;
        open_params["instance"] = "cycle6";
        open_params["k"] = 2;
        open_params["rounds"] = rounds;
        // The wire carries signed ints; keep the per-session seed in
        // the int63 range the server can read back.
        open_params["seed"] =
            static_cast<std::int64_t>(mix64(seed ^ i) >> 1);
        shlcp::svc::CallResult r =
            client.call("session_open", open_params, 0);
        if (!r.ok) {
          ++out.errors;
          std::fprintf(stderr, "loadgen: [session_open %s] %s: %s\n",
                       id.c_str(), r.error_code.c_str(),
                       r.error_detail.c_str());
          continue;
        }
        shlcp::ia::CommitProver prover(*coloring, 2, id, mix64(seed + i));
        bool verdict = false;
        bool failed = false;
        for (std::uint64_t round = 0; round < rounds && !failed; ++round) {
          Json commit = Json::object();
          commit["type"] = "commit";
          Json& arr = (commit["commitments"] = Json::array());
          for (const std::uint64_t c : prover.commit_round()) {
            arr.push_back(shlcp::ia::hex16(c));
          }
          Json params = Json::object();
          params["session"] = id;
          params["msg"] = std::move(commit);
          r = client.call("session_step", params, 0);
          if (!r.ok) {
            failed = true;
            break;
          }
          const Json committed = Json::parse(r.result_dump);
          const Json& challenge = committed.at("reply").at("challenge");
          Json open = Json::object();
          open["type"] = "open";
          Json& opens = (open["opens"] = Json::array());
          for (std::size_t e = 0; e < 2; ++e) {
            const shlcp::ia::Opening o =
                prover.open(static_cast<int>(challenge.at(e).as_int()));
            Json& entry = opens.push_back(Json::array());
            entry.push_back(o.node);
            entry.push_back(o.color);
            entry.push_back(shlcp::ia::hex16(o.nonce));
          }
          Json open_step = Json::object();
          open_step["session"] = id;
          open_step["msg"] = std::move(open);
          r = client.call("session_step", open_step, 0);
          if (!r.ok) {
            failed = true;
            break;
          }
          const Json stepped = Json::parse(r.result_dump);
          if (stepped.at("completed").as_bool()) {
            verdict = stepped.at("reply").at("verdict").as_bool();
          }
        }
        if (failed) {
          ++out.errors;
          std::fprintf(stderr, "loadgen: [session %s] %s: %s\n", id.c_str(),
                       r.error_code.c_str(), r.error_detail.c_str());
          // Best-effort cleanup so a half-done session does not linger
          // until the TTL sweep.
          Json close_params = Json::object();
          close_params["session"] = id;
          client.call("session_close", close_params, 0);
          continue;
        }
        if (verdict) {
          ++out.accepted;
        } else {
          ++out.errors;
          std::fprintf(stderr,
                       "loadgen: [session %s] honest session rejected\n",
                       id.c_str());
        }
        out.latencies_us.push_back(now_us() - sent_us);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double elapsed_s = static_cast<double>(now_us() - t0) / 1e6;

  std::uint64_t sessions = 0;
  std::uint64_t accepted = 0;
  std::uint64_t errors = 0;
  std::vector<std::uint64_t> overall_us;
  for (WorkerOut& out : outs) {
    sessions += out.sessions;
    accepted += out.accepted;
    errors += out.errors;
    overall_us.insert(overall_us.end(), out.latencies_us.begin(),
                      out.latencies_us.end());
  }
  std::printf(
      "interactive: %llu sessions in %.2fs (%.1f sessions/s), %llu rounds "
      "each, %llu accepted, %llu errors\n",
      static_cast<unsigned long long>(sessions), elapsed_s,
      elapsed_s > 0 ? static_cast<double>(sessions) / elapsed_s : 0.0,
      static_cast<unsigned long long>(rounds),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(errors));
  std::printf("session_p50_us=%llu session_p99_us=%llu\n",
              static_cast<unsigned long long>(percentile(overall_us, 0.50)),
              static_cast<unsigned long long>(percentile(overall_us, 0.99)));
  return errors == 0 && accepted == sessions ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* spawn_path = nullptr;
  const char* socket_path = nullptr;
  std::string tcp;
  std::uint64_t total = 200;
  std::uint64_t concurrency = 8;
  std::string mix = "mixed";
  std::uint64_t seed = 1;
  std::uint64_t repeat_keys = 32;
  std::uint64_t deadline_ms = 0;
  bool allow_refused = false;
  double require_hit_rate = -1.0;
  double slo_p99_us = -1.0;
  bool open_loop = false;
  double rate = 200.0;
  std::uint64_t timeout_ms = 5000;
  int retries = 1;
  std::uint64_t backoff_ms = 10;
  std::string chaos_desc;
  bool interactive = false;
  std::uint64_t rounds = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spawn") {
      spawn_path = next();
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--tcp") {
      tcp = next();
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (arg == "--rate") {
      rate = std::atof(next());
    } else if (arg == "--slo-p99-us") {
      slo_p99_us = std::atof(next());
    } else if (arg == "--requests") {
      total = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--concurrency") {
      concurrency = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mix") {
      mix = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--repeat-keys") {
      repeat_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--allow-refused") {
      allow_refused = true;
    } else if (arg == "--require-hit-rate") {
      require_hit_rate = std::atof(next());
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--retries") {
      retries = std::atoi(next());
    } else if (arg == "--backoff-ms") {
      backoff_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--chaos") {
      chaos_desc = next();
    } else if (arg == "--interactive") {
      interactive = true;
    } else if (arg == "--rounds") {
      rounds = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s (--spawn SHLCPD | --socket PATH | --tcp "
                   "[HOST:]PORT) [--requests N] "
                   "[--concurrency C] [--mix M] [--seed S] [--repeat-keys K] "
                   "[--deadline-ms D] [--allow-refused] "
                   "[--require-hit-rate X] [--slo-p99-us X] "
                   "[--open-loop] [--rate R] [--timeout-ms T] [--retries R] "
                   "[--backoff-ms B] [--chaos DESC] "
                   "[--interactive] [--rounds R]\n",
                   argv[0]);
      return 2;
    }
  }
  const int n_targets = (spawn_path != nullptr ? 1 : 0) +
                        (socket_path != nullptr ? 1 : 0) +
                        (tcp.empty() ? 0 : 1);
  if (n_targets != 1) {
    std::fprintf(stderr, "%s: need exactly one of --spawn / --socket / --tcp\n",
                 argv[0]);
    return 2;
  }
  if (!tcp.empty() && tcp.find(':') == std::string::npos) {
    tcp = "127.0.0.1:" + tcp;
  }
  if (open_loop && rate <= 0) {
    std::fprintf(stderr, "%s: --rate must be positive\n", argv[0]);
    return 2;
  }
  concurrency = std::max<std::uint64_t>(1, std::min(concurrency, total));

  if (interactive) {
    if (spawn_path != nullptr) {
      std::fprintf(stderr, "%s: --interactive needs --socket or --tcp\n",
                   argv[0]);
      return 2;
    }
    if (rounds == 0) {
      std::fprintf(stderr, "%s: --rounds must be positive\n", argv[0]);
      return 2;
    }
    shlcp::svc::ClientOptions options;
    options.timeout_ms = timeout_ms;
    options.retry.max_attempts = std::max(retries, 1);
    options.retry.base_backoff_ms = backoff_ms;
    options.retry.seed = seed;
    const std::string target = socket_path != nullptr
                                   ? "unix:" + std::string(socket_path)
                                   : "tcp:" + tcp;
    return run_interactive(target, total, concurrency, seed, rounds, options);
  }

  const bool resilient = retries > 1 || !chaos_desc.empty() || open_loop;
  if (resilient) {
    if (spawn_path != nullptr) {
      std::fprintf(stderr,
                   "%s: --retries/--chaos/--open-loop need --socket or --tcp\n",
                   argv[0]);
      return 2;
    }
    shlcp::svc::ClientOptions options;
    options.timeout_ms = timeout_ms;
    options.retry.max_attempts = std::max(retries, 1);
    options.retry.base_backoff_ms = backoff_ms;
    options.retry.seed = seed;
    if (!chaos_desc.empty()) {
      try {
        options.chaos = ChaosPlan::parse(chaos_desc);
      } catch (const shlcp::CheckError& e) {
        std::fprintf(stderr, "%s: bad --chaos descriptor: %s\n", argv[0],
                     e.what());
        return 2;
      }
    }
    const std::string target = socket_path != nullptr
                                   ? "unix:" + std::string(socket_path)
                                   : "tcp:" + tcp;
    return run_resilient(target, total, concurrency, mix, seed, repeat_keys,
                         deadline_ms, allow_refused, require_hit_rate,
                         slo_p99_us, open_loop, rate, options);
  }

  Endpoint ep;
  if (spawn_path != nullptr) {
    ep = spawn_daemon(spawn_path);
  } else if (socket_path != nullptr) {
    ep = connect_socket(socket_path);
  } else {
    const std::size_t colon = tcp.rfind(':');
    ep = connect_tcp(tcp.substr(0, colon), std::atoi(tcp.c_str() + colon + 1));
  }

  // Closed loop: keep up to `concurrency` requests outstanding, match
  // responses by echoed id.
  FrameReader reader;
  std::map<std::uint64_t, std::pair<std::string, std::uint64_t>>
      outstanding;  // id -> (op, send time us)
  std::map<std::string, OpTally> tallies;
  std::uint64_t sent = 0;
  std::uint64_t done = 0;
  std::uint64_t refused = 0;
  std::uint64_t transport_lost = 0;
  const std::uint64_t t0 = now_us();

  while (done + transport_lost < total) {
    bool transport_ok = true;
    while (sent < total && outstanding.size() < concurrency) {
      // Folding onto K payload keys: the variant is a pure function of
      // the request's key slot, so repeated slots repeat byte-identically
      // (same cache key server-side).
      const std::uint64_t slot = repeat_keys == 0 ? sent : sent % repeat_keys;
      const std::uint64_t key_variant =
          shlcp::Rng(seed * 7919 + slot).next_u64() >> 8;
      Json req = Json::object();
      req["id"] = sent;
      req["op"] = pick_op(mix, key_variant);
      req["params"] = make_params(req.at("op").as_string(), key_variant);
      if (deadline_ms > 0) {
        req["deadline_ms"] = deadline_ms;
      }
      if (!write_all(ep.write_fd, encode_frame(req.dump()))) {
        transport_ok = false;
        break;
      }
      outstanding[sent] = {req.at("op").as_string(), now_us()};
      ++sent;
    }
    if (!transport_ok) {
      transport_lost = total - done;
      break;
    }

    pollfd pfd = {ep.read_fd, POLLIN, 0};
    const int rc = poll(&pfd, 1, 5000);
    if (rc <= 0) {
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "loadgen: response timeout/poll failure\n");
      transport_lost = total - done;
      break;
    }
    char buf[64 << 10];
    const ssize_t n = read(ep.read_fd, buf, sizeof buf);
    if (n <= 0) {
      transport_lost = total - done;
      break;
    }
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    std::string frame;
    std::string error;
    while (reader.next(&frame, &error) == FrameReader::Next::kFrame) {
      const Json resp = Json::parse(frame);
      const std::uint64_t id = resp.at("id").as_uint();
      const auto it = outstanding.find(id);
      if (it == outstanding.end()) {
        std::fprintf(stderr, "loadgen: unmatched response id %llu\n",
                     static_cast<unsigned long long>(id));
        return 1;
      }
      OpTally& tally = tallies[it->second.first];
      ++tally.count;
      tally.latencies_us.push_back(now_us() - it->second.second);
      if (!resp.at("ok").as_bool()) {
        const std::string& code =
            resp.at("error").at("code").as_string();
        if (code == "draining") {
          ++refused;
        } else {
          ++tally.errors;
          std::fprintf(stderr, "loadgen: [%s] %s: %s\n",
                       it->second.first.c_str(), code.c_str(),
                       resp.at("error").at("message").as_string().c_str());
        }
      }
      outstanding.erase(it);
      ++done;
    }
    if (reader.failed()) {
      std::fprintf(stderr, "loadgen: framing lost: %s\n", error.c_str());
      return 1;
    }
  }
  const double elapsed_s =
      static_cast<double>(now_us() - t0) / 1e6;

  // Final (uncached) info request for the server-side cache hit-rate.
  double hit_rate = -1.0;
  if (transport_lost == 0) {
    Json info = Json::object();
    info["id"] = "info";
    info["op"] = "info";
    if (write_all(ep.write_fd, encode_frame(info.dump()))) {
      std::string frame;
      std::string error;
      while (reader.next(&frame, &error) != FrameReader::Next::kFrame) {
        pollfd pfd = {ep.read_fd, POLLIN, 0};
        if (poll(&pfd, 1, 5000) <= 0) {
          break;
        }
        char buf[16 << 10];
        const ssize_t n = read(ep.read_fd, buf, sizeof buf);
        if (n <= 0) {
          break;
        }
        reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      }
      if (!frame.empty()) {
        const Json resp = Json::parse(frame);
        if (resp.at("ok").as_bool()) {
          hit_rate = resp.at("result").at("cache").at("hit_rate").as_double();
        }
      }
    }
  }

  if (spawn_path != nullptr) {
    close(ep.write_fd);  // EOF -> clean daemon exit
    int status = 0;
    waitpid(ep.child, &status, 0);
  } else {
    close(ep.write_fd);
  }

  std::uint64_t errors = 0;
  std::vector<std::uint64_t> overall_us;
  std::printf("%-16s %8s %8s %10s %10s\n", "op", "count", "errors", "p50_us",
              "p99_us");
  for (const auto& [op, tally] : tallies) {
    errors += tally.errors;
    overall_us.insert(overall_us.end(), tally.latencies_us.begin(),
                      tally.latencies_us.end());
    std::printf("%-16s %8llu %8llu %10llu %10llu\n", op.c_str(),
                static_cast<unsigned long long>(tally.count),
                static_cast<unsigned long long>(tally.errors),
                static_cast<unsigned long long>(
                    percentile(tally.latencies_us, 0.50)),
                static_cast<unsigned long long>(
                    percentile(tally.latencies_us, 0.99)));
  }
  const std::uint64_t p99_us = percentile(overall_us, 0.99);
  std::printf(
      "total %llu requests in %.2fs (%.1f req/s), %llu errors, %llu refused, "
      "%llu lost\n",
      static_cast<unsigned long long>(done), elapsed_s,
      elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0,
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(refused),
      static_cast<unsigned long long>(transport_lost));
  std::printf("p99_us_overall=%llu\n",
              static_cast<unsigned long long>(p99_us));
  if (hit_rate >= 0) {
    std::printf("cache_hit_rate=%.4f\n", hit_rate);
  }

  if (errors > 0) {
    return 1;
  }
  if (!allow_refused && (refused > 0 || transport_lost > 0)) {
    return 1;
  }
  if (require_hit_rate >= 0 && hit_rate < require_hit_rate) {
    std::fprintf(stderr, "loadgen: hit rate %.4f below required %.4f\n",
                 hit_rate, require_hit_rate);
    return 1;
  }
  if (slo_p99_us >= 0 && static_cast<double>(p99_us) > slo_p99_us) {
    std::fprintf(stderr, "loadgen: overall p99 %lluus above SLO %.0fus\n",
                 static_cast<unsigned long long>(p99_us), slo_p99_us);
    return 1;
  }
  return 0;
}
