// Distributed run: the LCP verifier as an actual message-passing system.
//
// Executes the even-cycle LCP on C16 through the synchronous LOCAL engine:
// round-1 announcements, full-information forwarding, per-node view
// reconstruction, local verdicts -- with message/byte accounting, and a
// cross-check against the direct view-extraction semantics.

#include <cstdio>

#include "certify/even_cycle.h"
#include "graph/generators.h"
#include "sim/engine.h"

using namespace shlcp;

int main() {
  const Graph g = make_cycle(16);
  const EvenCycleLcp lcp;
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);

  std::printf("running the even-cycle verifier on C16 as %d round(s) of "
              "message passing...\n",
              lcp.decoder().radius());
  SimStats stats;
  const auto verdicts = run_decoder_distributed(lcp.decoder(), inst, &stats);
  int accepted = 0;
  for (const bool b : verdicts) {
    accepted += b ? 1 : 0;
  }
  std::printf("verdicts: %d/%d accept\n", accepted, g.num_nodes());
  std::printf("traffic: %llu messages, %llu bytes in %d round(s)\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.bytes), stats.rounds);

  std::printf("cross-check vs direct view extraction: %s\n",
              verdicts == lcp.decoder().run(inst) ? "identical" : "MISMATCH");

  // Deeper gathering: radius-3 knowledge of node 0.
  SyncEngine engine(inst);
  engine.run(3);
  const View v = engine.view_of(0, 3);
  std::printf("\nafter 3 rounds node 0 knows %d nodes and %d edges "
              "(radius-3 view)\n",
              v.num_nodes(), v.g.num_edges());
  std::printf("engine totals: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(engine.stats().messages),
              static_cast<unsigned long long>(engine.stats().bytes));
  return 0;
}
