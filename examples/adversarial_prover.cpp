// Adversarial prover: attack the strong soundness of every LCP.
//
// A thin reporter over lcp/audit.h's attack_strong_soundness driver (the
// exhaustive/randomized attack loops this example used to hand-roll now
// live in the library, where tests/lcp_audit_test.cpp exercises them).
// The driver floods each decoder with certificate assignments on
// non-bipartite hosts and reports whether any accepting set ever induces
// an odd cycle. The hand-crafted exploits against the PAPER-LITERAL
// shatter and watermelon decoders are kept here verbatim as worked
// counterexamples, alongside the repaired decoders surviving them.

#include <cstdio>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/shatter.h"
#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/audit.h"

using namespace shlcp;

namespace {

void attack(const Lcp& lcp, const char* name) {
  std::printf("--- attacking %s ---\n", name);
  std::uint64_t cases = 0;
  for (const char* host_name : {"cycle5", "cycle7", "theta223", "grid33"}) {
    const NamedInstance* host = nullptr;
    static const auto pool = audit_instance_pool();
    for (const auto& cand : pool) {
      if (cand.name == host_name) {
        host = &cand;
      }
    }
    SHLCP_CHECK_MSG(host != nullptr, "host missing from audit pool");
    const AttackReport report =
        attack_strong_soundness(lcp, *host, /*samples=*/2000,
                                /*seed=*/0xC0FFEE);
    cases += report.labelings;
    if (report.broken) {
      std::printf("BROKEN after %llu labelings (%s):\n%s\n\n",
                  static_cast<unsigned long long>(cases),
                  report.mode.c_str(), report.failure.substr(0, 500).c_str());
      return;
    }
  }
  std::printf("survived %llu adversarial labelings\n\n",
              static_cast<unsigned long long>(cases));
}

}  // namespace

int main() {
  const DegreeOneLcp degree_one;
  const EvenCycleLcp even_cycle;
  const ShatterLcp shatter_fixed(ShatterVariant::kVectorOnPoint);
  const WatermelonLcp melon_fixed(WatermelonVariant::kStandard);
  attack(degree_one, "degree-one (Lemma 4.1)");
  attack(even_cycle, "even-cycle (Lemma 4.2)");
  attack(shatter_fixed, "shatter-point, repaired (Theorem 1.3)");
  attack(melon_fixed, "watermelon (Theorem 1.4)");

  std::printf("--- the hand-crafted exploits against the literal decoders "
              "---\n");
  {
    // Shatter: C5 + two pendant type-0 claimants (see certify/shatter.h).
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(4, 0);
    g.add_edge(1, 5);
    g.add_edge(4, 6);
    Instance inst = Instance::canonical(g);
    const Ident claimed = inst.ids.id_of(5);
    const Ident bound = inst.ids.bound();
    Labeling labels(7);
    labels.at(1) = make_shatter_type1(claimed, {0, 1}, bound);
    labels.at(4) = make_shatter_type1(claimed, {0, 0}, bound);
    labels.at(0) = make_shatter_type2(claimed, 1, 0, bound, 2);
    labels.at(2) = make_shatter_type2(claimed, 2, 1, bound, 2);
    labels.at(3) = make_shatter_type2(claimed, 2, 0, bound, 2);
    labels.at(5) = make_shatter_type0(claimed, {}, bound);
    labels.at(6) = make_shatter_type0(claimed, {}, bound);
    inst.labels = std::move(labels);
    const ShatterLcp literal(ShatterVariant::kLiteral);
    const auto acc = literal.decoder().accepting_set(inst);
    std::printf("literal shatter decoder, C5+claimants: accepting set "
                "induces odd cycle: %s\n",
                is_bipartite(inst.g.induced_subgraph(acc)) ? "no" : "YES");
  }
  {
    // Watermelon: oriented C5 with one self-referential certificate.
    Graph g = make_cycle(5);
    std::vector<std::vector<Port>> lists(5);
    for (Node v = 0; v < 5; ++v) {
      const Node next = (v + 1) % 5;
      const auto nb = g.neighbors(v);
      lists[static_cast<std::size_t>(v)] = {nb[0] == next ? 1 : 2,
                                            nb[1] == next ? 1 : 2};
    }
    Instance inst;
    inst.g = g;
    inst.ports = PortAssignment::from_lists(g, std::move(lists));
    inst.ids = IdAssignment::consecutive(g);
    Labeling labels(5);
    for (Node v = 0; v < 5; ++v) {
      labels.at(v) = make_watermelon_type2(1, 99, 1, 1, 0, 2, 1, 99, 2);
    }
    inst.labels = std::move(labels);
    const WatermelonLcp literal(WatermelonVariant::kNoPortCheck);
    std::printf("literal watermelon decoder, self-referential C5: all "
                "nodes accept: %s\n",
                literal.decoder().accepts_all(inst) ? "YES" : "no");
    const WatermelonLcp fixed(WatermelonVariant::kStandard);
    std::printf("repaired watermelon decoder on the same attack: all "
                "nodes accept: %s\n",
                fixed.decoder().accepts_all(inst) ? "YES" : "no");
  }
  return 0;
}
