// shlcpd -- the certification service daemon.
//
// Serves the shlcp.svc.v1 protocol (length-prefixed JSONL requests,
// see src/service/proto.h) either over stdin/stdout or a unix-domain
// socket:
//
//   shlcpd --pipe                      # tests / CI / loadgen --spawn
//   shlcpd --socket /tmp/shlcp.sock    # long-lived daemon
//
// SIGINT drains: in-flight requests finish, queued and later requests
// get the "draining" error, then the process exits 0. Options:
//
//   --threads N          worker threads (0 = SHLCP_NUM_THREADS / auto)
//   --batch N            max requests dispatched per batch (default 32)
//   --queue-max N        admission queue cap; past it requests are shed
//                        with "overloaded" (default 512, 0 = unbounded)
//   --inflight-max N     per-connection in-flight cap (default 128)
//   --cache-bytes N      artifact-cache byte budget (default 64 MiB)
//   --cache-dir PATH     persist artifacts to PATH (default: off)
//   --max-frame-bytes N  per-request frame cap (default 4 MiB)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--pipe | --socket PATH) [--threads N] [--batch N]\n"
      "       [--queue-max N] [--inflight-max N]\n"
      "       [--cache-bytes N] [--cache-dir PATH] [--max-frame-bytes N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using shlcp::svc::ServerOptions;

  bool pipe_mode = false;
  std::string socket_path;
  ServerOptions options;
  options.arm_sigint = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pipe") {
      pipe_mode = true;
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--batch") {
      options.batch_max = std::atoi(next());
    } else if (arg == "--queue-max") {
      options.queue_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--inflight-max") {
      options.conn_inflight_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-bytes") {
      options.service.cache.max_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-dir") {
      options.service.cache.directory = next();
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else {
      return usage(argv[0]);
    }
  }
  if (pipe_mode == !socket_path.empty()) {
    return usage(argv[0]);  // exactly one transport
  }

  if (pipe_mode) {
    return shlcp::svc::serve_pipe(options);
  }
  std::fprintf(stderr, "shlcpd: serving on %s\n", socket_path.c_str());
  return shlcp::svc::serve_socket(socket_path, options);
}
