// shlcpd -- the certification service daemon.
//
// Serves the shlcp.svc.v1 protocol (length-prefixed JSONL requests,
// see src/service/proto.h) over stdin/stdout, a unix-domain socket,
// TCP, and/or an HTTP/1.1 JSON gateway (OPERATIONS.md is the operator
// handbook):
//
//   shlcpd --pipe                        # tests / CI / loadgen --spawn
//   shlcpd --socket /tmp/shlcp.sock      # long-lived local daemon
//   shlcpd --tcp 127.0.0.1:7400          # fleet backend (JSONL framing)
//   shlcpd --http 0.0.0.0:7480           # curl-able gateway
//
// The stream transports combine freely (--socket + --tcp + --http is
// one process, one Service, one artifact cache behind all three);
// --pipe is exclusive. Port 0 binds an ephemeral port; pass
// --port-file to have the bound endpoints published as JSON once every
// listener is up -- that is how bench_fleet and scripts discover them.
//
// SIGINT drains: in-flight requests finish, queued and later requests
// get the "draining" error, then the process exits 0. Options:
//
//   --tcp [HOST:]PORT    JSONL-over-TCP listener (default host
//                        127.0.0.1; port 0 = ephemeral)
//   --http [HOST:]PORT   HTTP/1.1 gateway (same host/port grammar)
//   --port-file PATH     write {"unix":..,"tcp":..,"http":..} when ready
//   --threads N          worker threads (0 = SHLCP_NUM_THREADS / auto)
//   --batch N            max requests dispatched per batch (default 32)
//   --queue-max N        admission queue cap; past it requests are shed
//                        with "overloaded" (default 512, 0 = unbounded)
//   --inflight-max N     per-connection in-flight cap (default 128)
//   --cache-bytes N      artifact-cache byte budget (default 64 MiB)
//   --cache-dir PATH     persist artifacts to PATH (default: off)
//   --max-frame-bytes N  per-request frame / HTTP body cap (default 4 MiB)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--pipe | --socket PATH | --tcp [HOST:]PORT | --http\n"
      "       [HOST:]PORT ...) [--port-file PATH] [--threads N] [--batch N]\n"
      "       [--queue-max N] [--inflight-max N]\n"
      "       [--cache-bytes N] [--cache-dir PATH] [--max-frame-bytes N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using shlcp::svc::ServerOptions;
  using shlcp::svc::TransportSpec;

  bool pipe_mode = false;
  TransportSpec transports;
  ServerOptions options;
  options.arm_sigint = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pipe") {
      pipe_mode = true;
    } else if (arg == "--socket") {
      transports.unix_path = next();
    } else if (arg == "--tcp") {
      transports.tcp = next();
    } else if (arg == "--http") {
      transports.http = next();
    } else if (arg == "--port-file") {
      transports.port_file = next();
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--batch") {
      options.batch_max = std::atoi(next());
    } else if (arg == "--queue-max") {
      options.queue_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--inflight-max") {
      options.conn_inflight_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-bytes") {
      options.service.cache.max_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-dir") {
      options.service.cache.directory = next();
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else {
      return usage(argv[0]);
    }
  }
  const bool stream_mode = !transports.unix_path.empty() ||
                           !transports.tcp.empty() ||
                           !transports.http.empty();
  if (pipe_mode == stream_mode) {
    return usage(argv[0]);  // pipe XOR at least one stream listener
  }

  if (pipe_mode) {
    return shlcp::svc::serve_pipe(options);
  }
  if (!transports.unix_path.empty()) {
    std::fprintf(stderr, "shlcpd: serving unix %s\n",
                 transports.unix_path.c_str());
  }
  if (!transports.tcp.empty()) {
    std::fprintf(stderr, "shlcpd: serving tcp %s\n", transports.tcp.c_str());
  }
  if (!transports.http.empty()) {
    std::fprintf(stderr, "shlcpd: serving http %s\n",
                 transports.http.c_str());
  }
  return shlcp::svc::serve_transports(transports, options);
}
