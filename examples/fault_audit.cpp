// Fault-injection audit across all shipped decoders.
//
// Replays the lcp/audit sweep -- completeness under faults on
// yes-instances, soundness under every fault plan on no-instances,
// degraded-view detection throughout -- for the spanning-BFS baseline and
// the paper's degree-one, even-cycle, repaired shatter, and repaired
// watermelon LCPs. Every failure prints a single-line repro string; this
// binary replays such strings from the command line:
//
//   fault_audit
//       full audit, exit 0 iff every invariant held
//   fault_audit replay <lcp> <instance> <honest|0xSEED> <plan-descriptor>
//       re-executes one audited run and prints per-node verdicts
//
// where <lcp> and <instance> are names from the audit catalog (e.g.
// "even-cycle", "cycle7") and <plan-descriptor> is the FaultPlan::describe
// string embedded in the repro line.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/shatter.h"
#include "certify/spanning_bfs.h"
#include "certify/watermelon.h"
#include "lcp/audit.h"

using namespace shlcp;

namespace {

std::vector<std::unique_ptr<Lcp>> shipped_lcps() {
  std::vector<std::unique_ptr<Lcp>> lcps;
  lcps.push_back(std::make_unique<SpanningBfsLcp>());
  lcps.push_back(std::make_unique<DegreeOneLcp>());
  lcps.push_back(std::make_unique<EvenCycleLcp>());
  lcps.push_back(std::make_unique<ShatterLcp>(ShatterVariant::kVectorOnPoint));
  lcps.push_back(std::make_unique<WatermelonLcp>(WatermelonVariant::kStandard));
  return lcps;
}

int run_full_audit() {
  bool all_ok = true;
  for (const auto& lcp : shipped_lcps()) {
    const auto yes = audit_yes_instances(*lcp);
    const auto no = audit_no_instances(lcp->k());
    std::printf("--- auditing %s (%d yes-instance(s), %d no-instance(s)) "
                "---\n",
                lcp->name().c_str(), static_cast<int>(yes.size()),
                static_cast<int>(no.size()));
    const AuditReport report = audit_sweep(*lcp, yes, no);
    std::printf("%s\n", report.summary().c_str());
    for (const AuditFinding& f : report.findings) {
      std::printf("  [%s] %s\n    %s\n", f.invariant.c_str(),
                  f.detail.c_str(), f.repro.c_str());
    }
    all_ok = all_ok && report.ok;
    std::printf("\n");
  }
  std::printf(all_ok ? "AUDIT PASSED: no fault plan manufactured acceptance, "
                       "every degradation attributed\n"
                     : "AUDIT FAILED: see repro strings above\n");
  return all_ok ? 0 : 1;
}

int run_replay(int argc, char** argv) {
  if (argc != 6) {
    std::fprintf(stderr,
                 "usage: fault_audit replay <lcp> <instance> <honest|0xSEED> "
                 "<plan-descriptor>\n");
    return 2;
  }
  const std::string lcp_name = argv[2];
  const std::string instance_name = argv[3];
  const std::string labels = argv[4];
  const FaultPlan plan = FaultPlan::parse(argv[5]);

  const auto lcps = shipped_lcps();
  const Lcp* lcp = nullptr;
  for (const auto& cand : lcps) {
    if (cand->name() == lcp_name) {
      lcp = cand.get();
    }
  }
  if (lcp == nullptr) {
    std::fprintf(stderr, "unknown lcp '%s'\n", lcp_name.c_str());
    return 2;
  }
  const Instance* inst = nullptr;
  const auto pool = audit_instance_pool();
  for (const auto& cand : pool) {
    if (cand.name == instance_name) {
      inst = &cand.inst;
    }
  }
  if (inst == nullptr) {
    std::fprintf(stderr, "unknown instance '%s'\n", instance_name.c_str());
    return 2;
  }

  FaultyRunResult res;
  if (labels == "honest") {
    res = replay_honest(*lcp, *inst, plan);
  } else {
    const char* seed_text = labels.c_str();
    if (std::strncmp(seed_text, "seed:", 5) == 0) {
      seed_text += 5;  // accept the repro string's "seed:0x..." spelling
    }
    res = replay_adversarial(*lcp, *inst,
                             std::strtoull(seed_text, nullptr, 0), plan);
  }
  std::printf("replayed %s on %s under {%s}\n", lcp_name.c_str(),
              instance_name.c_str(), plan.describe().c_str());
  for (std::size_t v = 0; v < res.verdicts.size(); ++v) {
    std::printf("  node %d: %s%s\n", static_cast<int>(v),
                res.verdicts[v] ? "accept" : "reject",
                res.degraded[v] ? " (degraded view)" : "");
  }
  std::printf("traffic: %llu messages, %llu bytes; faults: %llu dropped, "
              "%llu duplicated, %llu corrupted fields, %llu tampered\n",
              static_cast<unsigned long long>(res.stats.messages),
              static_cast<unsigned long long>(res.stats.bytes),
              static_cast<unsigned long long>(res.faults.dropped),
              static_cast<unsigned long long>(res.faults.duplicated),
              static_cast<unsigned long long>(res.faults.corrupted_fields),
              static_cast<unsigned long long>(res.faults.tampered_messages));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "replay") == 0) {
    return run_replay(argc, argv);
  }
  return run_full_audit();
}
