// Metrics dump: run a named experiment and print the process-wide
// metrics registry as a tree.
//
//   metrics_dump [enum|sim|audit|all]
//
// Each mode exercises one instrumented subsystem -- the Lemma 3.1
// enumeration, the synchronous message-passing engine, or the
// fault-injection audits -- then prints metrics::snapshot().pretty_tree()
// so the counter/gauge/histogram surface can be inspected without a
// bench harness. Set SHLCP_TRACE=<path> to also capture the JSONL trace
// of the same run.

#include <cstdio>
#include <cstring>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "graph/generators.h"
#include "lcp/audit.h"
#include "nbhd/aviews.h"
#include "sim/engine.h"
#include "util/metrics.h"

using namespace shlcp;

namespace {

void run_enum() {
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  EnumOptions options;
  const auto nbhd = build_exhaustive(lcp, graphs, options);
  std::printf("enum: V(D,4) for degree-one built: %d views / %d edges\n",
              nbhd.num_views(), nbhd.num_edges());
}

void run_sim() {
  const EvenCycleLcp lcp;
  const Graph g = make_cycle(12);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  const auto verdicts = run_decoder_distributed(lcp.decoder(), inst);
  int accepted = 0;
  for (const bool b : verdicts) {
    accepted += b ? 1 : 0;
  }
  std::printf("sim: even-cycle on C12: %d/%d accept\n", accepted,
              g.num_nodes());
}

void run_audit() {
  const EvenCycleLcp lcp;
  const auto yes = audit_yes_instances(lcp, 1);
  const auto no = audit_no_instances(lcp.k(), 1);
  AuditOptions options;
  options.adversarial_labelings = 4;
  const auto report = audit_sweep(lcp, yes, no, options);
  std::printf("audit: even-cycle sweep %s (%zu findings)\n",
              report.ok ? "clean" : "FINDINGS", report.findings.size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "all";
  const bool all = std::strcmp(mode, "all") == 0;
  bool ran = false;
  if (all || std::strcmp(mode, "enum") == 0) {
    run_enum();
    ran = true;
  }
  if (all || std::strcmp(mode, "sim") == 0) {
    run_sim();
    ran = true;
  }
  if (all || std::strcmp(mode, "audit") == 0) {
    run_audit();
    ran = true;
  }
  if (!ran) {
    std::fprintf(stderr, "usage: metrics_dump [enum|sim|audit|all]\n");
    return 2;
  }
  std::printf("\n--- metrics registry ---\n%s",
              metrics::snapshot().pretty_tree().c_str());
  return 0;
}
