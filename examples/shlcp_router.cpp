// shlcp_router -- consistent-hash shard router for a shlcpd fleet.
//
// Listens on any combination of unix / TCP / HTTP (the same transports
// and flags as shlcpd) and forwards every request to one of N shlcpd
// backends, chosen by hashing the request's canonical artifact key
// onto a vnode ring (src/service/router.h; DESIGN.md §15). The fleet's
// artifact caches shard disjointly -- a key always lands on the same
// backend -- and a dead backend's keys (only those) fail over to the
// next replica in ring order.
//
//   shlcp_router --backend tcp:127.0.0.1:7401
//                --backend tcp:127.0.0.1:7402
//                --tcp 127.0.0.1:7400 --http 127.0.0.1:7480
//
// Backends are "NAME=TARGET" or bare "TARGET" where TARGET is
// "unix:<path>" or "tcp:<host>:<port>". Naming backends keeps ring
// placement stable when a backend's address changes. SIGINT drains the
// router exactly like shlcpd (in-flight forwards finish; new requests
// get "draining"; exit 0). Options beyond shlcpd's listener set:
//
//   --backend SPEC          repeat per backend (at least one)
//   --vnodes N              ring points per backend (default 64)
//   --replicas N            distinct backends tried per request (default 2)
//   --probe-interval-ms N   down-backend reprobe interval (default 1000)
//   --timeout-ms N          per-attempt backend timeout (default 5000)
//   --retries N             per-backend Client attempts (default 4)
//   --backoff-ms N          Client base backoff (default 10)
//   --seed N                retry-jitter seed (default 0)
//
// Supervised mode (src/service/supervisor.h) replaces --backend: the
// router fork/execs its own shlcpd fleet, monitors it, and restarts
// whatever dies -- crash-looping backends are quarantined by a circuit
// breaker and their keys spill to replicas until a trial restart
// sticks. Each backend gets a unix socket, log, and persistent
// disk-cache directory under --spawn-dir, so restarts are warm. SIGINT
// drains the router, then SIGINTs the fleet and reaps it.
//
//   shlcp_router --spawn 3 --spawn-dir /tmp/fleet --http 127.0.0.1:7480
//
//   --spawn N               spawn and supervise N shlcpd backends
//   --spawn-dir PATH        fleet state root (default /tmp/shlcp_fleet)
//   --shlcpd PATH           backend binary ($SHLCP_SHLCPD / auto-detect)
//   --backend-threads N     worker threads per backend (default 2)
//   --backend-cache-bytes N backend disk-cache budget
//   --restart-backoff-ms N  base restart backoff (default 100)
//   --restart-backoff-max-ms N  backoff cap (default 2000)
//   --breaker-failures N    crashes in window that quarantine (default 5)
//   --breaker-window-ms N   crash-loop window (default 30000)
//   --half-open-ms N        quarantine -> trial-restart delay (default 2000)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "service/router.h"
#include "service/server.h"
#include "service/supervisor.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--backend SPEC [--backend SPEC ...] | --spawn N)\n"
      "       (--socket PATH | --tcp [HOST:]PORT | --http [HOST:]PORT ...)\n"
      "       [--port-file PATH] [--vnodes N] [--replicas N]\n"
      "       [--probe-interval-ms N] [--timeout-ms N] [--retries N]\n"
      "       [--backoff-ms N] [--seed N] [--threads N] [--batch N]\n"
      "       [--queue-max N] [--inflight-max N] [--max-frame-bytes N]\n"
      "       [--spawn-dir PATH] [--shlcpd PATH] [--backend-threads N]\n"
      "       [--backend-cache-bytes N] [--restart-backoff-ms N]\n"
      "       [--restart-backoff-max-ms N] [--breaker-failures N]\n"
      "       [--breaker-window-ms N] [--half-open-ms N]\n"
      "  SPEC = [NAME=]unix:<path> | [NAME=]tcp:<host>:<port>\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using shlcp::svc::BackendSpec;
  using shlcp::svc::Router;
  using shlcp::svc::RouterOptions;
  using shlcp::svc::ServerOptions;
  using shlcp::svc::Supervisor;
  using shlcp::svc::SupervisorOptions;
  using shlcp::svc::TransportSpec;

  RouterOptions router_options;
  TransportSpec transports;
  ServerOptions options;
  options.arm_sigint = true;
  SupervisorOptions supervisor_options;
  supervisor_options.backends = 0;  // --spawn N turns supervision on
  supervisor_options.work_dir = "/tmp/shlcp_fleet";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--backend") {
      BackendSpec spec;
      const char* value = next();
      if (!BackendSpec::parse(value, &spec)) {
        std::fprintf(stderr, "%s: malformed backend spec '%s'\n", argv[0],
                     value);
        return 2;
      }
      router_options.backends.push_back(std::move(spec));
    } else if (arg == "--socket") {
      transports.unix_path = next();
    } else if (arg == "--tcp") {
      transports.tcp = next();
    } else if (arg == "--http") {
      transports.http = next();
    } else if (arg == "--port-file") {
      transports.port_file = next();
    } else if (arg == "--vnodes") {
      router_options.vnodes = std::atoi(next());
    } else if (arg == "--replicas") {
      router_options.replica_attempts = std::atoi(next());
    } else if (arg == "--probe-interval-ms") {
      router_options.probe_interval_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--timeout-ms") {
      router_options.client.timeout_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--retries") {
      router_options.client.retry.max_attempts = std::atoi(next());
    } else if (arg == "--backoff-ms") {
      router_options.client.retry.base_backoff_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      router_options.client.retry.seed =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--batch") {
      options.batch_max = std::atoi(next());
    } else if (arg == "--queue-max") {
      options.queue_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--inflight-max") {
      options.conn_inflight_max = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--spawn") {
      supervisor_options.backends = std::atoi(next());
    } else if (arg == "--spawn-dir") {
      supervisor_options.work_dir = next();
    } else if (arg == "--shlcpd") {
      supervisor_options.shlcpd_path = next();
    } else if (arg == "--backend-threads") {
      supervisor_options.backend_threads = std::atoi(next());
    } else if (arg == "--backend-cache-bytes") {
      supervisor_options.backend_args.emplace_back("--cache-bytes");
      supervisor_options.backend_args.emplace_back(next());
    } else if (arg == "--restart-backoff-ms") {
      supervisor_options.restart.base_backoff_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--restart-backoff-max-ms") {
      supervisor_options.restart.max_backoff_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--breaker-failures") {
      supervisor_options.breaker_failures = std::atoi(next());
    } else if (arg == "--breaker-window-ms") {
      supervisor_options.breaker_window_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--half-open-ms") {
      supervisor_options.half_open_after_ms =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      return usage(argv[0]);
    }
  }
  const bool spawning = supervisor_options.backends > 0;
  if (spawning == !router_options.backends.empty()) {
    // Exactly one of --spawn / --backend must select the fleet.
    return usage(argv[0]);
  }
  if (transports.unix_path.empty() && transports.tcp.empty() &&
      transports.http.empty()) {
    return usage(argv[0]);
  }

  std::unique_ptr<Supervisor> supervisor;
  if (spawning) {
    if (supervisor_options.shlcpd_path.empty()) {
      supervisor_options.shlcpd_path = Supervisor::find_shlcpd(argv[0]);
    }
    if (supervisor_options.shlcpd_path.empty()) {
      std::fprintf(stderr,
                   "%s: cannot locate shlcpd (pass --shlcpd or set "
                   "$SHLCP_SHLCPD)\n",
                   argv[0]);
      return 2;
    }
    supervisor_options.restart.seed = router_options.client.retry.seed;
    supervisor = std::make_unique<Supervisor>(supervisor_options);
    if (!supervisor->start()) {
      std::fprintf(stderr, "%s: fleet failed to start\n", argv[0]);
      return 1;
    }
    router_options.backends = supervisor->backend_specs();
  }

  Router router(router_options);
  const int alive = router.probe_all();
  std::fprintf(stderr, "shlcp_router: %d/%zu backend(s) alive at startup\n",
               alive, router_options.backends.size());
  for (const auto& b : router.backend_stats()) {
    std::fprintf(stderr, "shlcp_router:   %s -> %s [%s]\n", b.name.c_str(),
                 b.target.c_str(), b.alive ? "up" : "down");
  }
  if (supervisor) {
    supervisor->attach_router(&router);
    supervisor->start_monitor();
  }

  options.dispatcher = &router;
  const int code = shlcp::svc::serve_transports(transports, options);
  if (supervisor) {
    // Drain order matters: the router stopped accepting first, so no
    // request is in flight toward a backend we are about to SIGINT.
    supervisor->stop();
  }
  return code;
}
