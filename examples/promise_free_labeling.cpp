// Promise-free labeling: the paper's motivating application (Section 1).
//
// The paper wants LCL problems of the form "3-color the part of the graph
// where a 2-colorability certificate is valid" to be well-defined on
// ARBITRARY input graphs -- that is exactly what strong soundness buys:
// whatever graph and whatever certificates an adversary supplies, the
// accepting region induces a 2-colorable subgraph, so a 3-coloring (in
// fact a 2-coloring) of that region always exists and an online algorithm
// can produce it.
//
// This example plays the adversary: random graphs (bipartite or not),
// random certificates from the degree-one LCP's alphabet, and after each
// trial 3-colors the accepting region -- which must never fail.

#include <cstdio>

#include "certify/degree_one.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

using namespace shlcp;

int main() {
  const DegreeOneLcp lcp;
  Rng rng(0xFEEDFACE);
  int trials = 0;
  int nonempty_regions = 0;
  int max_region = 0;

  for (int rep = 0; rep < 300; ++rep) {
    const int n = rng.next_int(4, 12);
    const Graph g = make_random_graph(n, 1, 3, rng);
    Instance inst = Instance::canonical(g);
    // Adversarial certificates.
    Labeling labels(n);
    for (Node v = 0; v < n; ++v) {
      const auto space = lcp.certificate_space(g, inst.ids, v);
      labels.at(v) = space[rng.next_below(space.size())];
    }
    inst.labels = std::move(labels);

    const auto accepting = lcp.decoder().accepting_set(inst);
    const Graph region = g.induced_subgraph(accepting);
    // Strong soundness in action: the region must be 2-colorable, hence
    // 3-colorable; the "online LOCAL" step is trivial from there.
    const auto coloring = k_coloring(region, 3);
    if (!coloring.has_value()) {
      std::printf("IMPOSSIBLE: accepting region not 3-colorable -- strong "
                  "soundness would be broken\n");
      return 1;
    }
    ++trials;
    if (!accepting.empty()) {
      ++nonempty_regions;
      max_region = std::max(max_region, static_cast<int>(accepting.size()));
    }
  }
  std::printf("%d adversarial trials: every accepting region was "
              "3-colorable (strong soundness)\n",
              trials);
  std::printf("%d trials had non-empty accepting regions (largest: %d "
              "nodes)\n",
              nonempty_regions, max_region);
  std::printf("\nThis is the promise-free behavior the paper's Section 1 "
              "needs: the labeling task\n\"3-color wherever the "
              "certificate validates\" is solvable on EVERY input graph,\n"
              "no matter what the adversary writes into the "
              "certificates.\n");
  return 0;
}
