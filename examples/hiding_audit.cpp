// Hiding audit: decide mechanically whether an LCP hides the coloring.
//
// Implements Lemma 3.2 as a tool: build the accepting neighborhood graph
// V(D, n) of a decoder over a family of labeled yes-instances and test
// its 2-colorability. If it is 2-colorable, compile the extractor decoder
// D' and demonstrate extraction; if not, print the odd cycle -- the
// certificate that no extractor can exist.

#include <cstdio>

#include "certify/degree_one.h"
#include "certify/revealing.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "nbhd/aviews.h"
#include "nbhd/extractor.h"
#include "nbhd/witness.h"
#include "util/parallel.h"

using namespace shlcp;

namespace {

std::vector<Graph> promise_family(const Lcp& lcp, int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  return graphs;
}

void audit(const Lcp& lcp, const char* name) {
  std::printf("=== auditing %s ===\n", name);
  // The exhaustive sweep runs multithreaded (SHLCP_NUM_THREADS or the
  // hardware); the parallel build is bit-identical to the sequential one.
  ParallelEnumOptions options;
  options.enums.all_ports = true;
  const auto graphs = promise_family(lcp, 4);
  auto nbhd = build_exhaustive(lcp, graphs, options);
  std::printf("V(D, 4): %d accepting views, %d compatibility edges "
              "(%llu dedupe hits, %.1f ms in absorb, %d threads)\n",
              nbhd.num_views(), nbhd.num_edges(),
              static_cast<unsigned long long>(nbhd.stats().views_deduped),
              static_cast<double>(nbhd.stats().absorb_ns) / 1e6,
              resolve_num_threads(options.num_threads));

  const auto cycle = nbhd.odd_cycle();
  if (cycle.has_value()) {
    std::printf("NOT 2-colorable: odd cycle of %zu views found.\n",
                cycle->size() - 1);
    std::printf("=> the LCP HIDES the 2-coloring (Lemma 3.2): no 1-round "
                "algorithm can extract\n   a proper coloring from these "
                "certificates on every instance.\n\n");
    return;
  }
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 2);
  std::printf("2-colorable => extractor D' compiled.\n");
  // Demonstrate extraction on one instance.
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  const auto colors = extractor->run(inst);
  std::printf("extraction on P4: ");
  for (const int c : *colors) {
    std::printf("%d ", c);
  }
  std::printf("(a proper 2-coloring)\n");
  std::printf("=> the LCP is NOT hiding: certificates reveal a coloring.\n\n");
}

}  // namespace

int main() {
  const RevealingLcp revealing(2);
  audit(revealing, "the trivial revealing LCP");

  const DegreeOneLcp degree_one;
  audit(degree_one, "the degree-one LCP (Lemma 4.1)");
  return 0;
}
