// Unit tests for graph generators: structural invariants of every family,
// parameterized over sizes, plus ports and identifier assignments.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/ids.h"
#include "graph/ports.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(GeneratorsTest, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.min_degree(), 1);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(GeneratorsTest, SingleNodePath) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

class CycleTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleTest, Structure) {
  const int n = GetParam();
  const Graph g = make_cycle(n);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), n);
  EXPECT_EQ(g.min_degree(), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(is_bipartite(g), n % 2 == 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CycleTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 11, 12));

TEST(GeneratorsTest, Star) {
  const Graph g = make_star(5);
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.degree(0), 5);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(GeneratorsTest, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(chromatic_number(g), 5);
}

TEST(GeneratorsTest, CompleteBipartite) {
  const Graph g = make_complete_bipartite(2, 3);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(GeneratorsTest, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.min_degree(), 2);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(GeneratorsTest, Torus) {
  const Graph g = make_torus(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_TRUE(is_connected(g));
  // Odd dimension makes the torus non-bipartite.
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_TRUE(is_bipartite(make_torus(4, 6)));
}

TEST(GeneratorsTest, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(GeneratorsTest, Watermelon) {
  const Graph g = make_watermelon({2, 3, 4});
  // 2 endpoints + (1 + 2 + 3) interior nodes.
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 2 + 3 + 4);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 3);
  // Mixed parities: not bipartite (cycle of length 2 + 3 = 5).
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_TRUE(is_bipartite(make_watermelon({2, 4, 6})));
  EXPECT_TRUE(is_bipartite(make_watermelon({3, 5})));
}

TEST(GeneratorsTest, Theta) {
  const Graph g = make_theta(2, 2, 2);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(cycle_space_dimension(g), 2);
}

TEST(GeneratorsTest, DoubleBroom) {
  const Graph g = make_double_broom(3, 2, 3);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.degree(0), 3);  // spine end + 2 leaves
  EXPECT_EQ(g.degree(2), 4);  // other spine end + 3 leaves
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.min_degree(), 1);
}

class RandomTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeTest, IsTree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  for (int n : {1, 2, 3, 5, 9, 17}) {
    const Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_bipartite(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeTest, ::testing::Range(1, 6));

TEST(GeneratorsTest, RandomBipartite) {
  Rng rng(123);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = make_random_bipartite(10, 5, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_bipartite(g));
    EXPECT_GE(g.num_edges(), 9);
  }
}

TEST(GeneratorsTest, RandomNonBipartite) {
  Rng rng(321);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = make_random_nonbipartite(9, 3, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_FALSE(is_bipartite(g));
  }
}

TEST(GeneratorsTest, ForEachGraphCount) {
  int count = 0;
  for_each_graph(3, [&](const Graph&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 8);  // 2^C(3,2)
}

TEST(GeneratorsTest, ForEachConnectedGraphCount) {
  int count = 0;
  for_each_connected_graph(4, [&](const Graph& g) {
    EXPECT_TRUE(is_connected(g));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 38);  // labeled connected graphs on 4 nodes
}

TEST(PortsTest, CanonicalBijective) {
  const Graph g = make_star(3);
  const auto pa = PortAssignment::canonical(g);
  EXPECT_EQ(pa.ports_of(0), (std::vector<Port>{1, 2, 3}));
  EXPECT_EQ(pa.port(g, 0, 2), 2);
  EXPECT_EQ(pa.neighbor_at(g, 0, 3), 3);
  EXPECT_EQ(pa.port(g, 1, 0), 1);
}

TEST(PortsTest, RandomStillBijective) {
  Rng rng(5);
  const Graph g = make_complete(5);
  const auto pa = PortAssignment::random(g, rng);
  for (Node v = 0; v < 5; ++v) {
    std::vector<Port> ports = pa.ports_of(v);
    std::sort(ports.begin(), ports.end());
    EXPECT_EQ(ports, (std::vector<Port>{1, 2, 3, 4}));
  }
}

TEST(PortsTest, FromListsValidates) {
  const Graph g = make_path(3);
  EXPECT_THROW(
      PortAssignment::from_lists(g, {{1}, {1, 1}, {1}}),
      CheckError);
  EXPECT_NO_THROW(PortAssignment::from_lists(g, {{1}, {2, 1}, {1}}));
}

TEST(PortsTest, EnumerationCount) {
  const Graph g = make_path(4);  // degrees 1,2,2,1 -> 1*2*2*1 = 4
  EXPECT_EQ(count_port_assignments(g), 4u);
  int count = 0;
  for_each_port_assignment(g, [&](const PortAssignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4);
}

TEST(IdsTest, ConsecutiveAndLookup) {
  const Graph g = make_path(4);
  const auto ids = IdAssignment::consecutive(g);
  EXPECT_EQ(ids.id_of(2), 3);
  EXPECT_EQ(ids.node_of(3), 2);
  EXPECT_EQ(ids.node_of(9), -1);
  EXPECT_EQ(ids.bound(), 4);
}

TEST(IdsTest, FromVectorValidatesInjectivity) {
  EXPECT_THROW(IdAssignment::from_vector({1, 1, 2}, 5), CheckError);
  EXPECT_THROW(IdAssignment::from_vector({0, 1, 2}, 5), CheckError);
  EXPECT_THROW(IdAssignment::from_vector({1, 2, 9}, 5), CheckError);
  EXPECT_NO_THROW(IdAssignment::from_vector({5, 1, 3}, 5));
}

TEST(IdsTest, RandomInjective) {
  Rng rng(17);
  const Graph g = make_cycle(6);
  const auto ids = IdAssignment::random(g, 20, rng);
  std::vector<Ident> raw = ids.raw();
  std::sort(raw.begin(), raw.end());
  EXPECT_EQ(std::adjacent_find(raw.begin(), raw.end()), raw.end());
  EXPECT_GE(raw.front(), 1);
  EXPECT_LE(raw.back(), 20);
}

TEST(IdsTest, OrderEnumerationCount) {
  const Graph g = make_path(4);
  int count = 0;
  for_each_id_order(g, [&](const IdAssignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 24);
}

TEST(IdsTest, FullEnumerationCount) {
  const Graph g = make_path(3);
  int count = 0;
  for_each_id_assignment(g, 4, [&](const IdAssignment& ids) {
    EXPECT_EQ(ids.bound(), 4);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 24);  // 4 * 3 * 2
}

}  // namespace
}  // namespace shlcp
