// Cross-module integration tests: every LCP run through the distributed
// engine, extractor-vs-hiding per decoder, Theorem 1.2's consistency with
// the upper bounds (no promise class of Theorems 1.1/1.3/1.4 contains an
// r-forgetful graph that is neither an even cycle nor min-degree-1), and
// certificate-size accounting across the whole suite.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/shatter.h"
#include "certify/union_lcp.h"
#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/extractor.h"
#include "nbhd/witness.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace shlcp {
namespace {

/// One promise instance per LCP for smoke-level cross checks.
struct Case {
  const Lcp* lcp;
  Graph graph;
};

class AllLcpsFixture : public ::testing::Test {
 protected:
  RevealingLcp revealing_{2};
  DegreeOneLcp degree_one_;
  EvenCycleLcp even_cycle_;
  ShatterLcp shatter_;
  WatermelonLcp watermelon_;
  UnionLcp union_{{&degree_one_, &even_cycle_}};

  std::vector<Case> cases() {
    return {
        {&revealing_, make_grid(3, 3)},
        {&degree_one_, make_double_broom(3, 2, 1)},
        {&even_cycle_, make_cycle(8)},
        {&shatter_, make_path(8)},
        {&watermelon_, make_watermelon({2, 4, 2})},
        {&union_, make_cycle(6)},
    };
  }
};

TEST_F(AllLcpsFixture, HonestCertificatesAcceptedDistributedly) {
  for (const Case& c : cases()) {
    ASSERT_TRUE(c.lcp->in_promise(c.graph)) << c.lcp->name();
    Instance inst = Instance::canonical(c.graph);
    const auto labels = c.lcp->prove(c.graph, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value()) << c.lcp->name();
    inst.labels = *labels;
    SimStats stats;
    const auto verdicts =
        run_decoder_distributed(c.lcp->decoder(), inst, &stats);
    for (const bool v : verdicts) {
      EXPECT_TRUE(v) << c.lcp->name();
    }
    EXPECT_EQ(stats.rounds, c.lcp->decoder().radius());
    // Distributed and direct execution agree.
    EXPECT_EQ(verdicts, c.lcp->decoder().run(inst)) << c.lcp->name();
  }
}

TEST_F(AllLcpsFixture, CorruptionIsCaughtByEveryLcp) {
  Rng rng(99);
  for (const Case& c : cases()) {
    Instance inst = Instance::canonical(c.graph);
    inst.labels = *c.lcp->prove(c.graph, inst.ports, inst.ids);
    // Swap two distinct nodes' certificates; if that happens to stay
    // accepted (possible for symmetric labelings), force a foreign
    // certificate instead.
    bool caught = false;
    for (int tries = 0; tries < 20 && !caught; ++tries) {
      Instance corrupted = inst;
      const Node a = static_cast<Node>(
          rng.next_below(static_cast<std::uint64_t>(inst.num_nodes())));
      const auto space = c.lcp->certificate_space(inst.g, inst.ids, a);
      corrupted.labels.at(a) = space[rng.next_below(space.size())];
      if (corrupted.labels.at(a) == inst.labels.at(a)) {
        continue;
      }
      caught = !c.lcp->decoder().accepts_all(corrupted);
    }
    EXPECT_TRUE(caught) << c.lcp->name()
                        << ": no corruption detected in 20 tries";
  }
}

TEST_F(AllLcpsFixture, HidingStatusMatchesTheory) {
  // Revealing: extractor exists. Hiding four: witness odd cycle exists.
  {
    EnumOptions options;
    std::vector<Graph> graphs;
    for (int n = 2; n <= 4; ++n) {
      for_each_connected_graph(n, [&](const Graph& g) {
        if (is_bipartite(g)) {
          graphs.push_back(g);
        }
        return true;
      });
    }
    auto nbhd = build_exhaustive(revealing_, graphs, options);
    EXPECT_TRUE(
        Extractor::build(revealing_.decoder(), std::move(nbhd), 2).has_value());
  }
  EXPECT_TRUE(build_from_instances(degree_one_.decoder(),
                                   degree_one_witnesses(4), 2)
                  .odd_cycle()
                  .has_value());
  EXPECT_TRUE(build_from_instances(even_cycle_.decoder(),
                                   even_cycle_witnesses(6), 2)
                  .odd_cycle()
                  .has_value());
  EXPECT_TRUE(build_from_instances(shatter_.decoder(), shatter_witnesses(true), 2)
                  .odd_cycle()
                  .has_value());
  EXPECT_TRUE(build_from_instances(watermelon_.decoder(),
                                   watermelon_witnesses(), 2)
                  .odd_cycle()
                  .has_value());
}

TEST_F(AllLcpsFixture, PromiseClassesEscapeTheorem12) {
  // Theorem 1.2 forbids strong+hiding LCPs on classes containing an
  // r-forgetful connected graph that is neither an even cycle nor has
  // minimum degree 1. Consistency: sweep small graphs; whenever such a
  // graph exists, it must lie OUTSIDE the hiding LCPs' promise classes.
  int checked = 0;
  for (int n = 4; n <= 6; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!is_r_forgetful(g, 1) || is_even_cycle(g) ||
          g.min_degree() == 1) {
        return true;
      }
      ++checked;
      EXPECT_FALSE(degree_one_.in_promise(g));
      EXPECT_FALSE(even_cycle_.in_promise(g));
      EXPECT_FALSE(union_.in_promise(g));
      return true;
    });
  }
  // Larger witnesses: odd cycles C7+ are 1-forgetful, min degree 2, not
  // even cycles -- and sit outside every promise class here except as
  // no-instances.
  for (int n : {7, 9}) {
    const Graph g = make_cycle(n);
    EXPECT_TRUE(is_r_forgetful(g, 1));
    EXPECT_FALSE(degree_one_.in_promise(g));
    EXPECT_FALSE(even_cycle_.in_promise(g));
    EXPECT_FALSE(shatter_.in_promise(g));
    EXPECT_FALSE(watermelon_.in_promise(g));
  }
  SUCCEED() << checked << " forgetful graphs checked";
}

TEST_F(AllLcpsFixture, ShatterAndWatermelonPromisesContainForgetfulGraphs) {
  // The flip side (why Theorems 1.3/1.4 do NOT contradict Theorem 1.2):
  // both promise classes contain 1-forgetful, minimum-degree-2,
  // non-cycle members, so Theorem 1.2 WOULD apply -- were the
  // certificates constant-size. The LCPs escape through their
  // Theta(log n)-and-larger certificates, exactly the non-constant regime
  // Section 6's Ramsey argument (which needs a constant bound on the
  // number of decoder types) cannot reach.
  {
    // Watermelon member: three even paths of length 4.
    const Graph g = make_watermelon({4, 4, 4});
    EXPECT_TRUE(watermelon_.in_promise(g));
    EXPECT_TRUE(is_r_forgetful(g, 1));
    EXPECT_EQ(g.min_degree(), 2);
    EXPECT_FALSE(is_even_cycle(g));
    Instance inst = Instance::canonical(g);
    const auto labels = watermelon_.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    EXPECT_GT(labels->max_bits(), 6);  // genuinely non-constant
  }
  {
    // Shatter member: two C8 blocks joined through a degree-2 cut node.
    Graph g = make_cycle(8);
    const int base = g.num_nodes();
    for (int i = 0; i < 8; ++i) {
      g.add_node();
    }
    for (int i = 0; i < 8; ++i) {
      g.add_edge(base + i, base + (i + 1) % 8);
    }
    const Node bridge = g.add_node();
    g.add_edge(0, bridge);
    g.add_edge(bridge, base);
    EXPECT_TRUE(shatter_.in_promise(g));
    EXPECT_EQ(g.min_degree(), 2);
    EXPECT_FALSE(is_even_cycle(g));
    EXPECT_TRUE(is_r_forgetful(g, 1));
    Instance inst = Instance::canonical(g);
    const auto labels = shatter_.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    EXPECT_GT(labels->max_bits(), 2);
  }
}

TEST_F(AllLcpsFixture, IdCarryingCertificatesDefeatOrderInvariance) {
  // Why Theorems 1.3/1.4 escape the Section 6 reduction: their
  // certificates CONTAIN identifier values, so an order-preserving remap
  // of the actual identifiers (labels held fixed) breaks the
  // claimed-vs-actual matches and flips verdicts -- the decoders are not
  // order-invariant in the Lemma 6.2 sense, and the Ramsey argument
  // (which also needs constantly many decoder types, i.e. constant-size
  // certificates) does not apply. The anonymous constant-size decoders,
  // by contrast, are trivially order-invariant.
  Rng rng(2718);
  {
    const Graph g = make_path(8);
    Instance inst = Instance::canonical(g);
    inst.labels = *shatter_.prove(g, inst.ports, inst.ids);
    EXPECT_FALSE(check_order_invariant(shatter_.decoder(), inst, 60, rng).ok);
    EXPECT_FALSE(check_anonymous(shatter_.decoder(), inst, 60, rng).ok);
  }
  {
    const Graph g = make_watermelon({2, 4});
    Instance inst = Instance::canonical(g);
    inst.labels = *watermelon_.prove(g, inst.ports, inst.ids);
    EXPECT_FALSE(
        check_order_invariant(watermelon_.decoder(), inst, 60, rng).ok);
    EXPECT_FALSE(check_anonymous(watermelon_.decoder(), inst, 60, rng).ok);
  }
  {
    const Graph g = make_cycle(6);
    Instance inst = Instance::canonical(g);
    inst.labels = *even_cycle_.prove(g, inst.ports, inst.ids);
    EXPECT_TRUE(
        check_order_invariant(even_cycle_.decoder(), inst, 30, rng).ok);
    EXPECT_TRUE(check_anonymous(even_cycle_.decoder(), inst, 30, rng).ok);
  }
}

TEST_F(AllLcpsFixture, CertificateSizesOrdered) {
  // Size accounting across the suite at n = 16: constant-size anonymous
  // LCPs < O(log n) watermelon < O(k + log n) shatter (on a graph whose
  // shatter components are many).
  const Graph path = make_path(16);
  Instance pinst = Instance::canonical(path);
  const int deg1_bits =
      degree_one_.prove(path, pinst.ports, pinst.ids)->max_bits();
  const int melon_bits =
      watermelon_.prove(path, pinst.ports, pinst.ids)->max_bits();
  EXPECT_LT(deg1_bits, melon_bits);

  Graph spider(1);
  for (int i = 0; i < 8; ++i) {
    const Node mid = spider.add_node();
    const Node end = spider.add_node();
    spider.add_edge(0, mid);
    spider.add_edge(mid, end);
  }
  Instance sinst = Instance::canonical(spider);
  const int shatter_bits =
      shatter_.prove(spider, sinst.ports, sinst.ids)->max_bits();
  EXPECT_GT(shatter_bits, deg1_bits);
}

TEST_F(AllLcpsFixture, StrongSoundnessRandomizedAcrossAllLcps) {
  // One shared adversarial sweep: every LCP, on bipartite and
  // non-bipartite hosts.
  Rng rng(31337);
  std::vector<Graph> hosts{make_cycle(5), make_path(6), make_theta(2, 2, 3),
                           make_grid(3, 3)};
  for (const Case& c : cases()) {
    for (const Graph& host : hosts) {
      const auto report = check_strong_soundness_random(
          *c.lcp, Instance::canonical(host), 150, rng);
      EXPECT_TRUE(report.ok) << c.lcp->name() << ": " << report.failure;
    }
  }
}

}  // namespace
}  // namespace shlcp
