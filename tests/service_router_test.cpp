// Shard-router tests: the hash ring's invariants (deterministic
// placement, complete failover orders, minimal movement when a backend
// dies) and the Router end to end over live unix-socket backends
// (bit-identity with a direct Service, disjoint cache sharding,
// reroute on backend death without duplicate or wrong answers, drain,
// verbatim caller errors, fleet-wide aggregation).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/cache.h"
#include "service/router.h"
#include "service/server.h"
#include "service/service.h"
#include "util/json.h"

namespace shlcp::svc {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// BackendSpec parsing.

TEST(BackendSpec, ParsesNamedAndBareTargets) {
  BackendSpec spec;
  ASSERT_TRUE(BackendSpec::parse("cache-a=tcp:127.0.0.1:7401", &spec));
  EXPECT_EQ(spec.name, "cache-a");
  EXPECT_EQ(spec.target, "tcp:127.0.0.1:7401");

  ASSERT_TRUE(BackendSpec::parse("unix:/tmp/shlcp.sock", &spec));
  EXPECT_EQ(spec.name, "unix:/tmp/shlcp.sock");  // name defaults to target

  EXPECT_FALSE(BackendSpec::parse("", &spec));
  EXPECT_FALSE(BackendSpec::parse("a=", &spec));
  EXPECT_FALSE(BackendSpec::parse("=tcp:127.0.0.1:1", &spec));
  EXPECT_FALSE(BackendSpec::parse("a=tcp:127.0.0.1:notaport", &spec));
  EXPECT_FALSE(BackendSpec::parse("a=tcp:nohost", &spec));
}

// ---------------------------------------------------------------------
// HashRing invariants.

TEST(HashRing, PlacementIsDeterministicAndCoversEveryBackend) {
  const std::vector<std::string> names = {"a", "b", "c", "d"};
  const HashRing ring(names, /*vnodes=*/64);
  const HashRing twin(names, /*vnodes=*/64);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t point =
        HashRing::point_of("key-" + std::to_string(i));
    const std::vector<int> pref = ring.preference(point);
    EXPECT_EQ(pref, twin.preference(point));  // same ring, same answer
    // The failover order is a permutation of every backend.
    ASSERT_EQ(pref.size(), names.size());
    EXPECT_EQ(std::set<int>(pref.begin(), pref.end()).size(), names.size());
  }
}

TEST(HashRing, SpreadsKeysAcrossBackends) {
  const HashRing ring({"a", "b", "c"}, /*vnodes=*/64);
  std::vector<int> owned(3, 0);
  const int keys = 600;
  for (int i = 0; i < keys; ++i) {
    const std::uint64_t point =
        HashRing::point_of("spread-key-" + std::to_string(i));
    owned[static_cast<std::size_t>(ring.preference(point).at(0))] += 1;
  }
  // Not a balance guarantee, but with 64 vnodes no backend may own
  // nothing or everything.
  for (int b = 0; b < 3; ++b) {
    EXPECT_GT(owned[static_cast<std::size_t>(b)], 0) << "backend " << b;
    EXPECT_LT(owned[static_cast<std::size_t>(b)], keys) << "backend " << b;
  }
}

TEST(HashRing, DeathMovesOnlyTheDeadBackendsKeys) {
  // Rebalance-on-death is "skip the dead backend in preference order":
  // keys owned by live backends must keep their owner, and a dead
  // backend's keys must land on their *second* preference -- never a
  // reshuffle of the whole space. This is the invariant that keeps the
  // surviving caches warm (DESIGN.md §15).
  const HashRing ring({"a", "b", "c"}, /*vnodes=*/64);
  const int dead = 1;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t point =
        HashRing::point_of("death-key-" + std::to_string(i));
    const std::vector<int> pref = ring.preference(point);
    std::vector<int> alive_pref;
    for (const int b : pref) {
      if (b != dead) {
        alive_pref.push_back(b);
      }
    }
    if (pref.at(0) != dead) {
      EXPECT_EQ(alive_pref.at(0), pref.at(0));  // live owner keeps its keys
    } else {
      EXPECT_EQ(alive_pref.at(0), pref.at(1));  // dead keys fail over once
    }
  }
}

// ---------------------------------------------------------------------
// Router end to end over live backends.

Json make_request(std::int64_t id, const std::string& op, Json params) {
  Json req = Json::object();
  req["id"] = id;
  req["op"] = op;
  req["params"] = std::move(params);
  return req;
}

Json coloring_params(const std::string& instance, std::int64_t k) {
  Json params = Json::object();
  params["instance"] = instance;
  params["k"] = k;
  return params;
}

/// Two serve_socket backends plus a Router over them; the fixture
/// joins everything down even when a test kills one backend early.
class RouterFleet : public ::testing::Test {
 protected:
  static constexpr int kBackends = 2;

  void SetUp() override {
    for (int b = 0; b < kBackends; ++b) {
      paths_[b] = (fs::path(::testing::TempDir()) /
                   ("shlcp_router_b" + std::to_string(b) + ".sock"))
                      .string();
      options_[b].cancel = &tokens_[b];
      options_[b].num_threads = 2;
      servers_[b] = std::thread([this, b] {
        exit_codes_[b] = serve_socket(paths_[b], options_[b]);
      });
    }
    RouterOptions router_options;
    for (int b = 0; b < kBackends; ++b) {
      BackendSpec spec;
      spec.name = "b" + std::to_string(b);
      spec.target = "unix:" + paths_[b];
      router_options.backends.push_back(std::move(spec));
    }
    // Short client budget: a dead unix socket fails to connect
    // instantly, so rerouting is fast even with retries on.
    router_options.client.timeout_ms = 5000;
    router_options.client.retry.max_attempts = 2;
    router_options.client.retry.base_backoff_ms = 1;
    router_ = std::make_unique<Router>(router_options);
    // Wait for both sockets to accept (probe_all marks them alive).
    for (int i = 0; i < 250; ++i) {
      if (router_->probe_all() == kBackends) {
        return;
      }
      ::usleep(20'000);
    }
    FAIL() << "backends never came up";
  }

  void TearDown() override {
    router_.reset();
    for (int b = 0; b < kBackends; ++b) {
      stop_backend(b);
      EXPECT_EQ(exit_codes_[b], 0);
    }
  }

  void stop_backend(int b) {
    if (!servers_[b].joinable()) {
      return;
    }
    tokens_[b].request_stop(StopReason::kCancelRequested);
    servers_[b].join();
  }

  std::string paths_[kBackends];
  CancelToken tokens_[kBackends];
  ServerOptions options_[kBackends];
  std::thread servers_[kBackends];
  int exit_codes_[kBackends] = {-1, -1};
  std::unique_ptr<Router> router_;
};

TEST_F(RouterFleet, RoutedResponsesAreBitIdenticalToDirectService) {
  Service direct;
  static const char* kInstances[] = {"path5", "cycle5", "cycle6", "grid23",
                                     "star5", "theta222"};
  std::int64_t id = 0;
  for (const char* instance : kInstances) {
    const Json req = make_request(id, "check_coloring",
                                  coloring_params(instance, 2));
    const Json routed = router_->handle(req);
    const Json oracle = direct.handle(req);
    ASSERT_TRUE(routed.at("ok").as_bool()) << routed.dump();
    EXPECT_EQ(routed.at("result").dump(), oracle.at("result").dump())
        << instance;
    EXPECT_EQ(routed.at("id").as_int(), id);  // caller's id restored
    ++id;
  }
}

TEST_F(RouterFleet, ReplayIsACacheHitOnTheOwningBackend) {
  const Json req =
      make_request(7, "check_coloring", coloring_params("cycle6", 2));
  const Json first = router_->handle(req);
  ASSERT_TRUE(first.at("ok").as_bool()) << first.dump();
  EXPECT_FALSE(first.at("cached").as_bool());
  const Json second = router_->handle(req);
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("result").dump(), first.at("result").dump());
}

TEST_F(RouterFleet, CachesShardDisjointly) {
  // Distinct payloads spread over the ring; afterwards the sum of
  // per-backend misses (via the aggregated health) must equal the
  // distinct-key count: every key computed exactly once fleet-wide.
  std::set<std::string> keys;
  std::int64_t id = 0;
  for (const char* instance :
       {"path5", "cycle5", "cycle6", "grid23", "star5"}) {
    for (std::int64_t k = 2; k <= 3; ++k) {
      const Json params = coloring_params(instance, k);
      keys.insert(artifact_key("check_coloring", params));
      for (int repeat = 0; repeat < 2; ++repeat) {  // replays stay owned
        const Json resp =
            router_->handle(make_request(id++, "check_coloring", params));
        ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
      }
    }
  }
  const Json health =
      router_->handle(make_request(0, "health", Json::object()));
  ASSERT_TRUE(health.at("ok").as_bool()) << health.dump();
  std::uint64_t misses = 0;
  for (const Json& b : health.at("result").at("backends").items()) {
    EXPECT_TRUE(b.at("alive").as_bool());
    misses += b.at("health").at("cache").at("misses").as_uint();
  }
  EXPECT_EQ(misses, keys.size());
  std::uint64_t reroutes = 0;
  for (const auto& stats : router_->backend_stats()) {
    reroutes += stats.rerouted;
  }
  EXPECT_EQ(reroutes, 0u);
}

TEST_F(RouterFleet, BackendDeathReroutesWithoutDuplicateOrWrongAnswers) {
  // Find a payload owned by backend 1, prime it, then stop backend 1:
  // the same payload must still be answered (rerouted to backend 0,
  // recomputed there exactly once), and a further replay must hit
  // backend 0's cache -- no duplicate compute per backend, no error
  // surfaced to the caller.
  Json params;
  bool found = false;
  for (const char* instance :
       {"path5", "cycle5", "cycle6", "grid23", "star5", "theta222",
        "complete4", "cycle7"}) {
    params = coloring_params(instance, 2);
    if (router_->preference_for("check_coloring", params).at(0) == 1) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no probe payload hashed onto backend 1";

  const Json primed = router_->handle(make_request(1, "check_coloring",
                                                   params));
  ASSERT_TRUE(primed.at("ok").as_bool()) << primed.dump();

  stop_backend(1);

  const Json rerouted =
      router_->handle(make_request(2, "check_coloring", params));
  ASSERT_TRUE(rerouted.at("ok").as_bool()) << rerouted.dump();
  EXPECT_FALSE(rerouted.at("cached").as_bool());  // recomputed on b0
  EXPECT_EQ(rerouted.at("result").dump(), primed.at("result").dump());

  const Json replay =
      router_->handle(make_request(3, "check_coloring", params));
  ASSERT_TRUE(replay.at("ok").as_bool());
  EXPECT_TRUE(replay.at("cached").as_bool());  // b0 now owns it warm

  const std::vector<RouterBackendStats> stats = router_->backend_stats();
  EXPECT_FALSE(stats.at(1).alive);
  EXPECT_GE(stats.at(1).rerouted, 1u);
  EXPECT_EQ(router_->probe_all(), 1);
}

TEST_F(RouterFleet, CallerErrorsComeBackVerbatim) {
  const Json unknown =
      router_->handle(make_request(1, "frobnicate", Json::object()));
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").at("code").as_string(), "unknown_op");

  Json bad = Json::object();
  bad["instance"] = "no-such-instance";
  bad["k"] = 2;
  const Json invalid =
      router_->handle(make_request(2, "check_coloring", bad));
  EXPECT_FALSE(invalid.at("ok").as_bool());
  EXPECT_EQ(invalid.at("error").at("code").as_string(), "invalid_params");
  // A caller error is final: the router must not have burned a
  // failover attempt on the other replica.
  std::uint64_t reroutes = 0;
  for (const auto& stats : router_->backend_stats()) {
    reroutes += stats.rerouted;
  }
  EXPECT_EQ(reroutes, 0u);
}

TEST_F(RouterFleet, InfoAggregatesTheFleet) {
  const Json resp = router_->handle(make_request(1, "info", Json::object()));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const Json& result = resp.at("result");
  EXPECT_EQ(result.at("router").at("backends").as_uint(), 2u);
  EXPECT_EQ(result.at("router").at("reachable").as_uint(), 2u);
  EXPECT_TRUE(result.at("cache").contains("hit_rate"));
}

TEST_F(RouterFleet, DrainRefusesNewRequests) {
  router_->begin_drain();
  const Json resp = router_->handle(
      make_request(1, "check_coloring", coloring_params("path5", 2)));
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "draining");
}

}  // namespace
}  // namespace shlcp::svc
