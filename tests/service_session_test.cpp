// Session endpoints of the certification service (session_open /
// session_step / session_close) and their integration contract:
//
//   * an honest wire-driven session reaches verdict true and is retired
//     (completed, never aborted);
//   * the session id grammar: charset, length, and the reserved
//     c<digits> retry-alias namespace are refused at open;
//   * duplicate opens -> session_state, unknown ids -> session_not_found,
//     wrong-state messages -> session_state with the session unharmed;
//   * both caps refuse with "overloaded" + retry_after_ms (the shed
//     path), the per-connection cap keyed by the transport conn slot;
//   * TTL expiry via the injected clock, counted expired;
//   * info enumerates interactive protocols + limits, health carries
//     session occupancy, and opened == completed + expired + aborted +
//     live holds whenever we look;
//   * session ops are never cached, and the router keys all three ops
//     of one session to the same ring point (affinity).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "interactive/commit.h"
#include "interactive/protocol.h"
#include "service/cache.h"
#include "service/router.h"
#include "service/service.h"

namespace shlcp::svc {
namespace {

Json make_request(std::int64_t id, const std::string& op, Json params) {
  Json req = Json::object();
  req["id"] = id;
  req["op"] = op;
  req["params"] = std::move(params);
  return req;
}

Json ok_result(const Json& response) {
  EXPECT_TRUE(response.at("ok").as_bool()) << response.dump();
  return response.at("result");
}

std::string error_code(const Json& response) {
  EXPECT_FALSE(response.at("ok").as_bool()) << response.dump();
  return response.at("error").at("code").as_string();
}

Json open_params(const std::string& id, const std::string& instance,
                 int rounds) {
  Json params = Json::object();
  params["session"] = id;
  params["instance"] = instance;
  params["k"] = 2;
  params["rounds"] = rounds;
  return params;
}

Json step_request(const std::string& id, Json msg) {
  Json params = Json::object();
  params["session"] = id;
  params["msg"] = std::move(msg);
  return make_request(0, "session_step", std::move(params));
}

/// Drives one honest session over the wire ops; returns the final
/// step's result (carrying the verdict).
Json run_honest_session(Service& service, const std::string& id,
                        const std::string& instance, const Graph& g,
                        int rounds) {
  const Json opened = service.handle(
      make_request(1, "session_open", open_params(id, instance, rounds)));
  ok_result(opened);
  const std::optional<std::vector<int>> coloring = k_coloring(g, 2);
  EXPECT_TRUE(coloring.has_value());
  ia::CommitProver prover(*coloring, 2, id, 0x10ADULL);
  Json last;
  for (int r = 0; r < rounds; ++r) {
    Json commit = Json::object();
    commit["type"] = "commit";
    Json& arr = (commit["commitments"] = Json::array());
    for (const std::uint64_t c : prover.commit_round()) {
      arr.push_back(ia::hex16(c));
    }
    const Json committed =
        ok_result(service.handle(step_request(id, std::move(commit))));
    const Json& ch = committed.at("reply").at("challenge");
    Json open = Json::object();
    open["type"] = "open";
    Json& opens = (open["opens"] = Json::array());
    for (std::size_t i = 0; i < 2; ++i) {
      const ia::Opening o = prover.open(static_cast<int>(ch.at(i).as_int()));
      Json& entry = opens.push_back(Json::array());
      entry.push_back(o.node);
      entry.push_back(o.color);
      entry.push_back(ia::hex16(o.nonce));
    }
    last = ok_result(service.handle(step_request(id, std::move(open))));
  }
  return last;
}

TEST(SessionOps, HonestSessionCompletesOverTheWire) {
  Service service;
  const Json last =
      run_honest_session(service, "s-honest", "cycle6", make_cycle(6), 3);
  EXPECT_TRUE(last.at("completed").as_bool());
  EXPECT_TRUE(last.at("reply").at("verdict").as_bool());

  // Retired on verdict: further steps say session_not_found.
  Json msg = Json::object();
  msg["type"] = "commit";
  msg["commitments"] = Json::array();
  EXPECT_EQ(error_code(service.handle(step_request("s-honest", msg))),
            kErrSessionNotFound);
  const ia::SessionCounters c = service.session_counters();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.live, 0u);
  EXPECT_EQ(c.opened, c.completed + c.expired + c.aborted + c.live);
}

TEST(SessionOps, SessionIdGrammarAndReservedNamespace) {
  Service service;
  const auto open_with = [&](const std::string& id) {
    return error_code(service.handle(
        make_request(1, "session_open", open_params(id, "cycle6", 1))));
  };
  // The retry-alias namespace c<digits> (proto.h) is refused...
  EXPECT_EQ(open_with("c0"), kErrInvalidParams);
  EXPECT_EQ(open_with("c12345"), kErrInvalidParams);
  // ...but near misses are legal ids.
  for (const std::string id : {"c", "c0x", "cc12", "x17"}) {
    ok_result(service.handle(
        make_request(1, "session_open", open_params(id, "cycle6", 1))));
  }
  // Charset and length.
  EXPECT_EQ(open_with("has space"), kErrInvalidParams);
  EXPECT_EQ(open_with(""), kErrInvalidParams);
  EXPECT_EQ(open_with(std::string(65, 'a')), kErrInvalidParams);
  ok_result(service.handle(make_request(
      1, "session_open", open_params(std::string(64, 'a'), "cycle6", 1))));
}

TEST(SessionOps, LifecycleErrors) {
  Service service;
  ok_result(service.handle(
      make_request(1, "session_open", open_params("s-life", "cycle6", 2))));
  // Duplicate open: the id is taken.
  EXPECT_EQ(error_code(service.handle(make_request(
                2, "session_open", open_params("s-life", "cycle6", 2)))),
            kErrSessionState);
  // Unknown id.
  Json msg = Json::object();
  msg["type"] = "commit";
  msg["commitments"] = Json::array();
  EXPECT_EQ(error_code(service.handle(step_request("s-ghost", msg))),
            kErrSessionNotFound);
  Json close = Json::object();
  close["session"] = "s-ghost";
  EXPECT_EQ(error_code(service.handle(
                make_request(3, "session_close", std::move(close)))),
            kErrSessionNotFound);
  // Wrong-state message: refused, session intact and still closable.
  Json open_msg = Json::object();
  open_msg["type"] = "open";
  open_msg["opens"] = Json::array();
  EXPECT_EQ(error_code(service.handle(step_request("s-life", open_msg))),
            kErrSessionState);
  Json close2 = Json::object();
  close2["session"] = "s-life";
  const Json closed = ok_result(
      service.handle(make_request(4, "session_close", std::move(close2))));
  EXPECT_TRUE(closed.at("closed").as_bool());
  EXPECT_EQ(service.session_counters().aborted, 1u);
  // Unknown protocols and edgeless instances are refused up front.
  Json params = open_params("s-proto", "cycle6", 1);
  params["protocol"] = "nope";
  EXPECT_EQ(error_code(service.handle(
                make_request(5, "session_open", std::move(params)))),
            kErrInvalidParams);
}

TEST(SessionOps, CapsRefuseWithRetryHint) {
  ServiceConfig config;
  config.sessions.global_max = 3;
  config.sessions.per_conn_max = 2;
  Service service(config);
  const auto open_on = [&](const std::string& id, std::int64_t conn) {
    return service.handle(
        make_request(1, "session_open", open_params(id, "cycle6", 1)), 0,
        conn);
  };
  ok_result(open_on("a", 7));
  ok_result(open_on("b", 7));
  // Per-connection cap on conn 7; a different conn still fits.
  Json refused = open_on("c", 7);
  EXPECT_EQ(error_code(refused), kErrOverloaded);
  EXPECT_GT(refused.at("error").at("retry_after_ms").as_int(), 0);
  ok_result(open_on("c", 8));
  // Global cap now; in-process callers (conn = -1) are not exempt from
  // the global cap, only from the per-connection one.
  refused = open_on("d", -1);
  EXPECT_EQ(error_code(refused), kErrOverloaded);
  EXPECT_GT(refused.at("error").at("retry_after_ms").as_int(), 0);
  const ia::SessionCounters c = service.session_counters();
  EXPECT_EQ(c.refused, 2u);
  EXPECT_EQ(c.live, 3u);
}

TEST(SessionOps, TtlExpiryThroughTheInjectedClock) {
  std::uint64_t now = 0;
  ServiceConfig config;
  config.sessions.ttl_ms = 100;
  config.sessions.clock = [&now] { return now; };
  Service service(config);
  ok_result(service.handle(
      make_request(1, "session_open", open_params("s-ttl", "cycle6", 2))));
  now += 101;
  Json msg = Json::object();
  msg["type"] = "commit";
  msg["commitments"] = Json::array();
  EXPECT_EQ(error_code(service.handle(step_request("s-ttl", msg))),
            kErrSessionNotFound);
  const ia::SessionCounters c = service.session_counters();
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.opened, c.completed + c.expired + c.aborted + c.live);
}

TEST(SessionOps, InfoAndHealthCarrySessionOccupancy) {
  Service service;
  ok_result(service.handle(
      make_request(1, "session_open", open_params("s-info", "cycle6", 1))));

  const Json info = ok_result(service.handle(make_request(2, "info",
                                                          Json::object())));
  const Json& interactive = info.at("interactive");
  EXPECT_EQ(interactive.at("schema").as_string(), ia::kInteractiveSchema);
  bool has_kcol = false;
  for (const Json& name : interactive.at("protocols").items()) {
    has_kcol = has_kcol || name.as_string() == "kcol-commit";
  }
  EXPECT_TRUE(has_kcol);
  EXPECT_EQ(interactive.at("sessions").at("live").as_int(), 1);
  EXPECT_GT(interactive.at("limits").at("ttl_ms").as_int(), 0);
  EXPECT_GT(interactive.at("limits").at("global_max").as_int(), 0);

  const Json health = ok_result(service.handle(make_request(3, "health",
                                                            Json::object())));
  const Json& sessions = health.at("sessions");
  EXPECT_EQ(sessions.at("live").as_int(), 1);
  EXPECT_EQ(sessions.at("opened").as_int(), 1);
  EXPECT_GT(sessions.at("global_max").as_int(), 0);

  // The ops list advertises all three session endpoints.
  int session_ops = 0;
  for (const Json& op : info.at("ops").items()) {
    const std::string& name = op.as_string();
    session_ops += name == "session_open" || name == "session_step" ||
                   name == "session_close";
  }
  EXPECT_EQ(session_ops, 3);
}

TEST(SessionOps, SessionOpsAreNeverCached) {
  Service service;
  // Two identical session_open requests must both execute (the second
  // fails session_state) -- a cache hit would replay the first ok.
  const Json params = open_params("s-cache", "cycle6", 1);
  const Json first = service.handle(make_request(1, "session_open", params));
  EXPECT_TRUE(first.at("ok").as_bool());
  EXPECT_FALSE(first.at("cached").as_bool());
  const Json second = service.handle(make_request(2, "session_open", params));
  EXPECT_EQ(error_code(second), kErrSessionState);
}

TEST(SessionOps, RouterAffinityKeysOnTheSessionId) {
  // All three ops of one session share a routing key regardless of the
  // rest of their params; a different session id lands elsewhere in key
  // space; stateless ops keep their artifact key.
  const Json open = open_params("s-aff", "cycle6", 4);
  Json step = Json::object();
  step["session"] = "s-aff";
  step["msg"] = Json::object();
  Json close = Json::object();
  close["session"] = "s-aff";

  const std::string key_open = Router::routing_key("session_open", open);
  const std::string key_step = Router::routing_key("session_step", step);
  const std::string key_close = Router::routing_key("session_close", close);
  EXPECT_EQ(key_open, key_step);
  EXPECT_EQ(key_open, key_close);

  Json other = open;
  other["session"] = "s-other";
  EXPECT_NE(Router::routing_key("session_open", other), key_open);

  EXPECT_EQ(Router::routing_key("info", Json::object()),
            artifact_key("info", Json::object()));
  // A malformed session op (no id) falls back to the stateless key
  // rather than crashing the router.
  EXPECT_EQ(Router::routing_key("session_step", Json::object()),
            artifact_key("session_step", Json::object()));
}

}  // namespace
}  // namespace shlcp::svc
