// Supervisor tests: the crash-loop breaker's full state machine driven
// by literal timestamps (no clocks, no sleeps), the deterministic
// restart backoff schedule, transport-failure classification
// (connection-refused vs timeout) on the resilient Client, quarantine
// spill through the Router (keys move to replicas; nothing ever blocks
// on a breaker-open backend), and the Supervisor's process management
// against a real shlcpd when one is discoverable (spawn, SIGKILL,
// poll-driven restart, warm disk cache, graceful stop).

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/router.h"
#include "service/server.h"
#include "service/service.h"
#include "service/supervisor.h"
#include "util/json.h"

namespace shlcp::svc {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// CrashLoopBreaker: a pure state machine over injected timestamps.

TEST(CrashLoopBreaker, StaysClosedBelowTheFailureThreshold) {
  CrashLoopBreaker breaker(/*max_failures=*/3, /*window_ms=*/1000,
                           /*half_open_after_ms=*/500);
  EXPECT_EQ(breaker.state(0), CrashLoopBreaker::State::kClosed);
  EXPECT_EQ(breaker.record_failure(100), CrashLoopBreaker::State::kClosed);
  EXPECT_EQ(breaker.record_failure(200), CrashLoopBreaker::State::kClosed);
  EXPECT_EQ(breaker.failures_in_window(200), 2);
}

TEST(CrashLoopBreaker, OpensOnKFailuresInsideTheWindow) {
  CrashLoopBreaker breaker(3, 1000, 500);
  breaker.record_failure(100);
  breaker.record_failure(200);
  EXPECT_EQ(breaker.record_failure(300), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(300), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_at_ms(), 300u);
}

TEST(CrashLoopBreaker, WindowExpiryForgivesOldFailures) {
  CrashLoopBreaker breaker(3, 1000, 500);
  breaker.record_failure(0);
  breaker.record_failure(100);
  // The third failure lands after the first left the window: 2 in
  // window, still closed.
  EXPECT_EQ(breaker.record_failure(1050), CrashLoopBreaker::State::kClosed);
  EXPECT_EQ(breaker.failures_in_window(1050), 2);
}

TEST(CrashLoopBreaker, HalfOpensAfterTheQuarantineDelay) {
  CrashLoopBreaker breaker(2, 1000, 500);
  breaker.record_failure(0);
  ASSERT_EQ(breaker.record_failure(10), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(509), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(510), CrashLoopBreaker::State::kHalfOpen);
}

TEST(CrashLoopBreaker, FailedTrialReopensWithAFreshTimer) {
  CrashLoopBreaker breaker(2, 1000, 500);
  breaker.record_failure(0);
  breaker.record_failure(10);
  ASSERT_EQ(breaker.state(600), CrashLoopBreaker::State::kHalfOpen);
  // The trial restart dies at t=600: back to open, and the half-open
  // clock restarts from 600, not from 10.
  EXPECT_EQ(breaker.record_failure(600), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_at_ms(), 600u);
  EXPECT_EQ(breaker.state(1099), CrashLoopBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(1100), CrashLoopBreaker::State::kHalfOpen);
}

TEST(CrashLoopBreaker, SuccessClosesAndClearsHistory) {
  CrashLoopBreaker breaker(2, 1000, 500);
  breaker.record_failure(0);
  breaker.record_failure(10);
  ASSERT_EQ(breaker.state(600), CrashLoopBreaker::State::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(600), CrashLoopBreaker::State::kClosed);
  EXPECT_EQ(breaker.failures_in_window(600), 0);
  // History is gone: the next crash starts a fresh window instead of
  // tripping on pre-quarantine failures.
  EXPECT_EQ(breaker.record_failure(610), CrashLoopBreaker::State::kClosed);
}

// ---------------------------------------------------------------------
// Restart backoff: deterministic, jittered, capped.

TEST(RestartBackoff, IsDeterministicPerSeedBackendAndAttempt) {
  RestartPolicy policy;
  policy.base_backoff_ms = 100;
  policy.max_backoff_ms = 2000;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(restart_backoff_ms(policy, 0, attempt),
              restart_backoff_ms(policy, 0, attempt));
  }
  // Different backends draw different jitter streams for the same
  // attempt (same nominal backoff, independent placement inside it).
  bool any_difference = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    any_difference |= restart_backoff_ms(policy, 0, attempt) !=
                      restart_backoff_ms(policy, 1, attempt);
  }
  EXPECT_TRUE(any_difference);
}

TEST(RestartBackoff, StaysInsideTheJitterBandAndCaps) {
  RestartPolicy policy;
  policy.base_backoff_ms = 100;
  policy.max_backoff_ms = 2000;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    policy.seed = seed;
    for (int attempt = 1; attempt <= 12; ++attempt) {
      const std::uint64_t nominal =
          std::min<std::uint64_t>(100ull << std::min(attempt - 1, 30),
                                  policy.max_backoff_ms);
      const std::uint64_t b = restart_backoff_ms(policy, seed, attempt);
      EXPECT_GE(b, nominal / 2) << "attempt " << attempt;
      EXPECT_LE(b, nominal) << "attempt " << attempt;
    }
  }
}

TEST(RestartBackoff, HugeAttemptCountsDoNotOverflow) {
  RestartPolicy policy;
  policy.base_backoff_ms = 100;
  policy.max_backoff_ms = 2000;
  const std::uint64_t b = restart_backoff_ms(policy, 3, 1000);
  EXPECT_GE(b, 1000u);
  EXPECT_LE(b, 2000u);
}

// ---------------------------------------------------------------------
// Transport-failure classification (CallResult::fail_kind).

TEST(FailKind, ConnectionRefusedWhenNothingListens) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "shlcp_nobody.sock").string();
  fs::remove(path);
  ClientOptions options;
  options.timeout_ms = 1000;
  options.retry.max_attempts = 1;
  Client client(Client::unix_connector(path, ChaosPlan{}), options);
  const CallResult r = client.call("health", Json::object());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail_kind, CallResult::FailKind::kConnRefused);
}

TEST(FailKind, TimeoutWhenTheServerAcceptsButNeverAnswers) {
  // A listener that accepts and then goes silent models a wedged
  // backend: the connection succeeds, the call must classify as
  // kTimeout (the supervisor's wedge signal), not as refused.
  const std::string path =
      (fs::path(::testing::TempDir()) / "shlcp_wedged.sock").string();
  fs::remove(path);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  std::atomic<bool> done{false};
  std::thread wedge([&] {
    const int conn = ::accept(listener, nullptr, nullptr);
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (conn >= 0) {
      ::close(conn);
    }
  });

  ClientOptions options;
  options.timeout_ms = 200;  // short: the test waits this out for real
  options.retry.max_attempts = 1;
  Client client(Client::unix_connector(path, ChaosPlan{}), options);
  const CallResult r = client.call("health", Json::object());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail_kind, CallResult::FailKind::kTimeout);

  done.store(true);
  wedge.join();
  ::close(listener);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Quarantine spill through the Router.

Json make_request(std::int64_t id, const std::string& op, Json params) {
  Json req = Json::object();
  req["id"] = id;
  req["op"] = op;
  req["params"] = std::move(params);
  return req;
}

Json coloring_params(const std::string& instance, std::int64_t k) {
  Json params = Json::object();
  params["instance"] = instance;
  params["k"] = k;
  return params;
}

/// Two live serve_socket backends behind a Router, as in
/// service_router_test.cpp -- here to prove quarantine semantics.
class QuarantineFleet : public ::testing::Test {
 protected:
  static constexpr int kBackends = 2;

  void SetUp() override {
    for (int b = 0; b < kBackends; ++b) {
      paths_[b] = (fs::path(::testing::TempDir()) /
                   ("shlcp_quar_b" + std::to_string(b) + ".sock"))
                      .string();
      options_[b].cancel = &tokens_[b];
      options_[b].num_threads = 2;
      servers_[b] = std::thread([this, b] {
        exit_codes_[b] = serve_socket(paths_[b], options_[b]);
      });
    }
    RouterOptions router_options;
    for (int b = 0; b < kBackends; ++b) {
      BackendSpec spec;
      spec.name = "b" + std::to_string(b);
      spec.target = "unix:" + paths_[b];
      router_options.backends.push_back(std::move(spec));
    }
    router_options.client.timeout_ms = 5000;
    router_options.client.retry.max_attempts = 2;
    router_options.client.retry.base_backoff_ms = 1;
    router_ = std::make_unique<Router>(router_options);
    for (int i = 0; i < 250; ++i) {
      if (router_->probe_all() == kBackends) {
        return;
      }
      ::usleep(20'000);
    }
    FAIL() << "backends never came up";
  }

  void TearDown() override {
    router_.reset();
    for (int b = 0; b < kBackends; ++b) {
      if (servers_[b].joinable()) {
        tokens_[b].request_stop(StopReason::kCancelRequested);
        servers_[b].join();
        EXPECT_EQ(exit_codes_[b], 0);
      }
    }
  }

  std::string paths_[kBackends];
  CancelToken tokens_[kBackends];
  ServerOptions options_[kBackends];
  std::thread servers_[kBackends];
  int exit_codes_[kBackends] = {-1, -1};
  std::unique_ptr<Router> router_;
};

TEST_F(QuarantineFleet, QuarantinedKeysSpillToTheReplica) {
  const Json req =
      make_request(1, "check_coloring", coloring_params("cycle6", 2));
  const std::vector<int> pref =
      router_->preference_for("check_coloring", req.at("params"));
  const int owner = pref.at(0);
  const int replica = pref.at(1);

  // Quarantine the key's owner; the request must be answered by the
  // replica -- correctly, and without probing the quarantined backend.
  BackendRuntime rt;
  rt.quarantined = true;
  ASSERT_TRUE(router_->set_backend_runtime("b" + std::to_string(owner), rt));

  Service direct;
  const Json routed = router_->handle(req);
  ASSERT_TRUE(routed.at("ok").as_bool()) << routed.dump();
  EXPECT_EQ(routed.at("result").dump(),
            direct.handle(req).at("result").dump());

  const auto stats = router_->backend_stats();
  EXPECT_EQ(stats.at(static_cast<std::size_t>(owner)).forwarded, 0u)
      << "no request may touch a quarantined backend";
  EXPECT_TRUE(stats.at(static_cast<std::size_t>(owner)).quarantined);
  EXPECT_GE(stats.at(static_cast<std::size_t>(replica)).forwarded, 1u);

  // Lifting the quarantine returns the keys to their owner.
  rt.quarantined = false;
  ASSERT_TRUE(router_->set_backend_runtime("b" + std::to_string(owner), rt));
  ASSERT_TRUE(router_->set_backend_alive("b" + std::to_string(owner), true));
  const Json back = router_->handle(make_request(
      2, "check_coloring", coloring_params("cycle6", 2)));
  ASSERT_TRUE(back.at("ok").as_bool());
  EXPECT_GE(router_->backend_stats()
                .at(static_cast<std::size_t>(owner))
                .forwarded,
            1u);
}

TEST_F(QuarantineFleet, AllQuarantinedRefusesInsteadOfBlocking) {
  BackendRuntime rt;
  rt.quarantined = true;
  ASSERT_TRUE(router_->set_backend_runtime("b0", rt));
  ASSERT_TRUE(router_->set_backend_runtime("b1", rt));

  const auto before = std::chrono::steady_clock::now();
  const Json resp = router_->handle(
      make_request(3, "check_coloring", coloring_params("path5", 2)));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - before)
                           .count();
  ASSERT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "overloaded");
  // The refusal must be immediate: an empty routing plan, not a
  // connect/retry cycle against breaker-open backends.
  EXPECT_LT(elapsed, 1000);
}

TEST_F(QuarantineFleet, HealthReportsSupervisorRuntimeState) {
  BackendRuntime rt;
  rt.quarantined = true;
  rt.restarts = 7;
  rt.last_exit = 137;
  rt.pid = -1;
  ASSERT_TRUE(router_->set_backend_runtime("b1", rt));
  EXPECT_FALSE(router_->set_backend_runtime("nonesuch", rt));

  const Json health = router_->handle(make_request(4, "health", Json::object()));
  ASSERT_TRUE(health.at("ok").as_bool()) << health.dump();
  const Json& backends = health.at("result").at("backends");
  ASSERT_EQ(backends.size(), 2u);
  const Json& b1 = backends.at(1);
  EXPECT_EQ(b1.at("name").as_string(), "b1");
  EXPECT_TRUE(b1.at("quarantined").as_bool());
  EXPECT_FALSE(b1.at("alive").as_bool());
  EXPECT_EQ(b1.at("restarts").as_int(), 7);
  EXPECT_EQ(b1.at("last_exit").as_int(), 137);
  EXPECT_FALSE(b1.contains("health"))
      << "a quarantined backend must not be probed by the fan-out";
}

// ---------------------------------------------------------------------
// Supervisor process management.

TEST(Supervisor, StartFailsFastWhenTheBackendBinaryIsBroken) {
  SupervisorOptions options;
  options.shlcpd_path = "/bin/false";  // execs, exits 1, never binds
  options.work_dir =
      (fs::path(::testing::TempDir()) / "shlcp_sup_broken").string();
  options.backends = 1;
  options.spawn_wait_ms = 3000;
  Supervisor supervisor(options);
  EXPECT_FALSE(supervisor.start());
  const auto stats = supervisor.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats.at(0).running);
  EXPECT_EQ(stats.at(0).last_exit, 1);  // /bin/false's exit code
}

TEST(Supervisor, SpawnsKillsRestartsAndServesWarmFromDiskCache) {
  const std::string shlcpd = Supervisor::find_shlcpd(nullptr);
  if (shlcpd.empty()) {
    GTEST_SKIP() << "no shlcpd binary discoverable";
  }
  const std::string work_dir =
      (fs::path(::testing::TempDir()) / "shlcp_sup_live").string();
  fs::remove_all(work_dir);

  SupervisorOptions options;
  options.shlcpd_path = shlcpd;
  options.work_dir = work_dir;
  options.backends = 1;
  options.backend_threads = 2;
  options.restart.base_backoff_ms = 50;
  options.restart.max_backoff_ms = 200;
  // Generous breaker: a single SIGKILL must restart, never quarantine.
  options.breaker_failures = 5;
  options.breaker_window_ms = 60'000;
  Supervisor supervisor(options);
  ASSERT_TRUE(supervisor.start());

  const auto specs = supervisor.backend_specs();
  ASSERT_EQ(specs.size(), 1u);
  ClientOptions client_options;
  client_options.timeout_ms = 10'000;
  client_options.retry.max_attempts = 3;
  const std::string socket_path = specs.at(0).target.substr(5);  // "unix:"

  const Json params = coloring_params("cycle6", 2);
  std::string first_result;
  {
    Client client(Client::unix_connector(socket_path, ChaosPlan{}),
                  client_options);
    const CallResult warm = client.call("check_coloring", params);
    ASSERT_TRUE(warm.ok) << warm.error_code << ": " << warm.error_detail;
    EXPECT_FALSE(warm.response.at("cached").as_bool());
    first_result = warm.result_dump;
  }

  const pid_t victim = supervisor.pid_of(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // Drive the monitor by hand -- poll_once() is the unit under test;
  // the loop waits on observable state, not on a fixed sleep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool restarted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    supervisor.poll_once(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count()));
    const auto stats = supervisor.stats();
    if (stats.at(0).running && stats.at(0).restarts == 1) {
      restarted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(restarted) << "backend never restarted";

  const auto stats = supervisor.stats();
  EXPECT_EQ(stats.at(0).last_exit, 137);  // 128 + SIGKILL
  EXPECT_NE(supervisor.pid_of(0), victim);

  // The restart reused the cache directory: the same request replays
  // from disk, byte-identical to the pre-crash compute.
  {
    Client client(Client::unix_connector(socket_path, ChaosPlan{}),
                  client_options);
    const CallResult replay = client.call("check_coloring", params);
    ASSERT_TRUE(replay.ok) << replay.error_code << ": "
                           << replay.error_detail;
    EXPECT_TRUE(replay.response.at("cached").as_bool())
        << "restart must be warm (disk cache)";
    EXPECT_EQ(replay.result_dump, first_result);
  }

  supervisor.stop();
  EXPECT_EQ(supervisor.pid_of(0), -1);
  // A graceful stop SIGINTs the backend; its clean drain removes the
  // port file (the crash-marker contract from the shlcpd side).
  EXPECT_FALSE(fs::exists(work_dir + "/b0.ports.json"));
}

}  // namespace
}  // namespace shlcp::svc
