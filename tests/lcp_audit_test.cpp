// Tests for the adversarial soundness audit subsystem (lcp/audit.h).
//
// The audit's job is to fail loudly and replayably: a clean LCP must pass
// the full sweep with zero findings, a deliberately broken LCP must be
// caught with a repro string that parses back into the exact run, and
// every replay helper must be a pure function of its seeds.

#include <gtest/gtest.h>

#include <algorithm>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "graph/algorithms.h"
#include "lcp/audit.h"
#include "util/check.h"

namespace shlcp {
namespace {

/// The canonical broken LCP: accepts every view unconditionally, so any
/// non-2-colorable instance is globally accepted. The audit must catch it
/// under the fault-free plan at the very least.
class AlwaysAcceptLcp final : public Lcp {
 public:
  AlwaysAcceptLcp()
      : decoder_(1, true, "always-accept",
                 [](const View&) { return true; }) {}

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment&, const IdAssignment&) const override {
    return Labeling(g.num_nodes());
  }
  [[nodiscard]] bool in_promise(const Graph&) const override { return false; }
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph&, const IdAssignment&, Node) const override {
    return {Certificate{}};
  }

 private:
  LambdaDecoder decoder_;
};

TEST(AuditPoolTest, NamesAreStable) {
  const auto pool = audit_instance_pool();
  for (const char* name : {"path5", "cycle5", "cycle6", "grid33", "theta222",
                           "melon2222", "complete4"}) {
    const bool found = std::any_of(
        pool.begin(), pool.end(),
        [&](const NamedInstance& cand) { return cand.name == name; });
    EXPECT_TRUE(found) << name;
  }
}

TEST(AuditPoolTest, YesAndNoSelectionRespectPromiseAndColorability) {
  const DegreeOneLcp lcp;
  const auto yes = audit_yes_instances(lcp);
  EXPECT_FALSE(yes.empty());
  for (const NamedInstance& y : yes) {
    EXPECT_TRUE(lcp.in_promise(y.inst.g)) << y.name;
  }
  const auto no = audit_no_instances(2);
  EXPECT_FALSE(no.empty());
  for (const NamedInstance& n : no) {
    EXPECT_FALSE(is_k_colorable(n.inst.g, 2)) << n.name;
  }
}

TEST(AuditSamplerTest, LabelingIsPureInSeed) {
  const DegreeOneLcp lcp;
  const auto pool = audit_instance_pool();
  const Instance& base = pool.front().inst;  // path5, in the promise class
  const AdversarialSampler a(lcp, base);
  const AdversarialSampler b(lcp, base);
  EXPECT_EQ(a.labeling(42), b.labeling(42));
  EXPECT_EQ(a.labeling(0xFEED), a.labeling(0xFEED));
}

TEST(AuditSweepTest, CleanOnDegreeOne) {
  const DegreeOneLcp lcp;
  AuditOptions options;
  options.adversarial_labelings = 12;
  const AuditReport report = audit_sweep(lcp, audit_yes_instances(lcp, 2),
                                         audit_no_instances(lcp.k(), 2),
                                         options);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GT(report.completeness_runs, 0u);
  EXPECT_GT(report.soundness_runs, 0u);
  // Faults did degrade some views and every resulting completeness
  // rejection was attributed -- otherwise the sweep proved nothing.
  EXPECT_GT(report.degraded_verdicts, 0u);
  EXPECT_GT(report.attributed_rejections, 0u);
}

TEST(AuditSweepTest, CleanOnEvenCycle) {
  const EvenCycleLcp lcp;
  AuditOptions options;
  options.adversarial_labelings = 12;
  const AuditReport report = audit_sweep(lcp, audit_yes_instances(lcp, 1),
                                         audit_no_instances(lcp.k(), 1),
                                         options);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.findings.empty());
}

TEST(AuditSweepTest, CatchesAlwaysAcceptWithParsableRepro) {
  const AlwaysAcceptLcp lcp;
  AuditOptions options;
  options.adversarial_labelings = 4;
  const AuditReport report =
      audit_sweep(lcp, {}, audit_no_instances(lcp.k(), 1), options);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.findings.empty());
  for (const AuditFinding& f : report.findings) {
    EXPECT_EQ(f.invariant, "soundness");
    // The repro embeds the plan descriptor in "plan={...}"; it must parse
    // back into a valid FaultPlan for one-command replay.
    const std::size_t open = f.repro.find("plan={");
    const std::size_t close = f.repro.rfind('}');
    ASSERT_NE(open, std::string::npos) << f.repro;
    ASSERT_NE(close, std::string::npos) << f.repro;
    const std::string descriptor =
        f.repro.substr(open + 6, close - open - 6);
    EXPECT_NO_THROW(FaultPlan::parse(descriptor)) << f.repro;
    EXPECT_NE(f.repro.find("REPRO lcp=always-accept"), std::string::npos);
  }
}

TEST(AuditReproTest, MakeReproRoundTripsThePlan) {
  const auto plans = FaultPlan::standard_family(0x1234, 6);
  for (const FaultPlan& plan : plans) {
    const std::string repro =
        make_repro("even-cycle", "cycle6", "seed:0x2a", plan);
    const std::size_t open = repro.find("plan={");
    const std::size_t close = repro.rfind('}');
    ASSERT_NE(open, std::string::npos);
    const std::string descriptor = repro.substr(open + 6, close - open - 6);
    EXPECT_EQ(FaultPlan::parse(descriptor), plan);
  }
}

TEST(AuditReplayTest, ReplaysAreDeterministic) {
  const EvenCycleLcp lcp;
  const auto pool = audit_instance_pool();
  const NamedInstance* cycle6 = nullptr;
  for (const auto& cand : pool) {
    if (cand.name == "cycle6") {
      cycle6 = &cand;
    }
  }
  ASSERT_NE(cycle6, nullptr);
  FaultPlan plan;
  plan.seed = 0xBEE;
  plan.drop_permille = 250;
  plan.corrupt_permille = 250;
  const FaultyRunResult h1 = replay_honest(lcp, cycle6->inst, plan);
  const FaultyRunResult h2 = replay_honest(lcp, cycle6->inst, plan);
  EXPECT_EQ(h1.verdicts, h2.verdicts);
  EXPECT_EQ(h1.degraded, h2.degraded);
  EXPECT_EQ(h1.stats.bytes, h2.stats.bytes);
  const FaultyRunResult a1 = replay_adversarial(lcp, cycle6->inst, 99, plan);
  const FaultyRunResult a2 = replay_adversarial(lcp, cycle6->inst, 99, plan);
  EXPECT_EQ(a1.verdicts, a2.verdicts);
  EXPECT_EQ(a1.faults.dropped, a2.faults.dropped);
  EXPECT_EQ(a1.faults.corrupted_fields, a2.faults.corrupted_fields);
}

TEST(AttackTest, BreaksAlwaysAcceptExhaustively) {
  const AlwaysAcceptLcp lcp;
  const auto pool = audit_instance_pool();
  const NamedInstance* cycle5 = nullptr;
  for (const auto& cand : pool) {
    if (cand.name == "cycle5") {
      cycle5 = &cand;
    }
  }
  ASSERT_NE(cycle5, nullptr);
  const AttackReport report =
      attack_strong_soundness(lcp, *cycle5, /*samples=*/10, /*seed=*/1);
  EXPECT_TRUE(report.broken);
  EXPECT_EQ(report.mode, "exhaustive");  // one-point certificate space
  EXPECT_NE(report.failure.find("host=cycle5"), std::string::npos);
}

TEST(AttackTest, CleanOnDegreeOne) {
  const DegreeOneLcp lcp;
  const auto pool = audit_instance_pool();
  const NamedInstance* cycle5 = nullptr;
  for (const auto& cand : pool) {
    if (cand.name == "cycle5") {
      cycle5 = &cand;
    }
  }
  ASSERT_NE(cycle5, nullptr);
  const AttackReport report =
      attack_strong_soundness(lcp, *cycle5, /*samples=*/300, /*seed=*/7);
  EXPECT_FALSE(report.broken) << report.failure;
  EXPECT_GT(report.labelings, 0u);
}

}  // namespace
}  // namespace shlcp
