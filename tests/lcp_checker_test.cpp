// Tests for the LCP framework and its property checkers, exercised
// against the revealing baseline LCP (whose behavior is fully understood:
// complete, strongly sound, anonymous, NOT hiding).

#include <gtest/gtest.h>

#include "certify/revealing.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "lcp/enumerate.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(DecoderTest, RunAndAcceptingSet) {
  const RevealingLcp lcp(2);
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(lcp.decoder().accepts_all(inst));
  EXPECT_EQ(lcp.decoder().accepting_set(inst).size(), 4u);

  // Duplicating node 0's color onto node 1 (both color 0 on the path
  // 0-1-2-3 colored 0,1,0,1) breaks nodes 0 and 1 directly and node 2
  // transitively (its neighbor 1 now carries its own color).
  inst.labels.at(1) = inst.labels.at(0);
  const auto acc = lcp.decoder().accepting_set(inst);
  EXPECT_EQ(acc, (std::vector<Node>{3}));
}

TEST(DecoderTest, ProveInstanceThrowsOutsidePromise) {
  const RevealingLcp lcp(2);
  const Instance inst = Instance::canonical(make_cycle(5));
  EXPECT_THROW(prove_instance(lcp, inst), CheckError);
}

TEST(LambdaDecoderTest, Basics) {
  const LambdaDecoder d(1, true, "always-yes",
                        [](const View&) { return true; });
  EXPECT_EQ(d.radius(), 1);
  EXPECT_TRUE(d.anonymous());
  EXPECT_EQ(d.name(), "always-yes");
  const Instance inst = Instance::canonical(make_path(3));
  EXPECT_TRUE(d.accepts_all(inst));
}

TEST(CheckerTest, CompletenessHoldsOnBipartite) {
  const RevealingLcp lcp(2);
  for (const Graph& g : {make_path(5), make_cycle(6), make_grid(3, 3),
                         make_star(4), make_complete_bipartite(2, 3)}) {
    const auto report = check_completeness(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(CheckerTest, CompletenessFailureDetected) {
  // A broken prover: certificates all color 0.
  class BrokenLcp final : public Lcp {
   public:
    [[nodiscard]] const Decoder& decoder() const override { return decoder_; }
    [[nodiscard]] std::optional<Labeling> prove(
        const Graph& g, const PortAssignment&,
        const IdAssignment&) const override {
      Labeling labels(g.num_nodes());
      for (Node v = 0; v < g.num_nodes(); ++v) {
        labels.at(v) = make_color_certificate(0, 2);
      }
      return labels;
    }
    [[nodiscard]] bool in_promise(const Graph& g) const override {
      return is_bipartite(g);
    }
    [[nodiscard]] std::vector<Certificate> certificate_space(
        const Graph&, const IdAssignment&, Node) const override {
      return {make_color_certificate(0, 2), make_color_certificate(1, 2)};
    }
   private:
    RevealingDecoder decoder_{2};
  };
  const BrokenLcp broken;
  const auto report = check_completeness(broken, Instance::canonical(make_path(3)));
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.failure.empty());
}

TEST(CheckerTest, LabelingSpaceSize) {
  const RevealingLcp lcp(2);
  const Instance inst = Instance::canonical(make_path(4));
  // 3 certificates per node (two colors + sentinel), 4 nodes.
  EXPECT_EQ(labeling_space_size(lcp, inst), 81u);
}

TEST(CheckerTest, StrongSoundnessExhaustiveRevealing) {
  const RevealingLcp lcp(2);
  // Over every connected graph on 4 nodes (including non-bipartite ones):
  // the accepting set is always properly colored by its own certificates.
  for_each_connected_graph(4, [&](const Graph& g) {
    const auto report =
        check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
    EXPECT_EQ(report.cases, 81u);
    return true;
  });
}

TEST(CheckerTest, SoundnessExhaustiveOnOddCycle) {
  const RevealingLcp lcp(2);
  const auto report =
      check_soundness_exhaustive(lcp, Instance::canonical(make_cycle(5)));
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.cases, 243u);
}

TEST(CheckerTest, SoundnessCheckRejectsYesInstance) {
  const RevealingLcp lcp(2);
  EXPECT_THROW(
      check_soundness_exhaustive(lcp, Instance::canonical(make_cycle(4))),
      CheckError);
}

TEST(CheckerTest, StrongSoundnessCatchesViolations) {
  // The always-accepting "LCP" is not strongly sound on a triangle.
  class GullibleLcp final : public Lcp {
   public:
    [[nodiscard]] const Decoder& decoder() const override { return decoder_; }
    [[nodiscard]] std::optional<Labeling> prove(
        const Graph& g, const PortAssignment&,
        const IdAssignment&) const override {
      return Labeling(g.num_nodes());
    }
    [[nodiscard]] bool in_promise(const Graph&) const override { return true; }
    [[nodiscard]] std::vector<Certificate> certificate_space(
        const Graph&, const IdAssignment&, Node) const override {
      return {Certificate{}};
    }
   private:
    LambdaDecoder decoder_{1, true, "gullible",
                           [](const View&) { return true; }};
  };
  const GullibleLcp gullible;
  const auto report = check_strong_soundness_exhaustive(
      gullible, Instance::canonical(make_cycle(3)));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.failure.find("strong soundness violated"),
            std::string::npos);
}

TEST(CheckerTest, RandomizedStrongSoundness) {
  const RevealingLcp lcp(2);
  Rng rng(404);
  const auto report = check_strong_soundness_random(
      lcp, Instance::canonical(make_grid(3, 3)), 500, rng);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.cases, 500u);
}

TEST(CheckerTest, AnonymityOfRevealingDecoder) {
  const RevealingLcp lcp(2);
  Rng rng(5);
  const Graph g = make_cycle(6);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  const auto report = check_anonymous(lcp.decoder(), inst, 20, rng);
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(CheckerTest, IdSensitiveDecoderFailsAnonymityCheck) {
  // Accept iff own identifier is even: blatantly id-sensitive.
  const LambdaDecoder d(1, false, "id-parity", [](const View& v) {
    return v.center_id() % 2 == 0;
  });
  Rng rng(6);
  const Instance inst = Instance::canonical(make_path(5));
  const auto report = check_anonymous(d, inst, 50, rng);
  EXPECT_FALSE(report.ok);
}

TEST(CheckerTest, OrderInvarianceChecks) {
  // Order-invariant but not anonymous: accept iff own id is the local max.
  const LambdaDecoder d(1, false, "local-max", [](const View& v) {
    for (const Ident id : v.ids) {
      if (id > v.center_id()) {
        return false;
      }
    }
    return true;
  });
  Rng rng(7);
  const Instance inst = Instance::canonical(make_path(6));
  EXPECT_TRUE(check_order_invariant(d, inst, 30, rng).ok);
  EXPECT_FALSE(check_anonymous(d, inst, 50, rng).ok);

  // Id-parity is not even order-invariant.
  const LambdaDecoder parity(1, false, "id-parity", [](const View& v) {
    return v.center_id() % 2 == 0;
  });
  EXPECT_FALSE(check_order_invariant(parity, inst, 50, rng).ok);
}

TEST(EnumerateTest, FilterYesGraphs) {
  std::vector<Graph> graphs{make_cycle(4), make_cycle(5), make_path(3),
                            make_complete(3)};
  const auto yes = filter_yes_graphs(graphs, 2);
  EXPECT_EQ(yes.size(), 2u);
}

TEST(EnumerateTest, LabeledInstanceStreamCount) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  int count = 0;
  for_each_labeled_instance(lcp, {make_path(2)}, options,
                            [&](const Instance& inst) {
                              EXPECT_EQ(inst.num_nodes(), 2);
                              ++count;
                              return true;
                            });
  EXPECT_EQ(count, 9);  // 3 certificates per node
}

TEST(EnumerateTest, AllDimensionsMultiply) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  options.all_ports = true;      // path(3): 1 * 2 * 1 = 2 assignments
  options.all_id_orders = true;  // 3! = 6
  int count = 0;
  for_each_labeled_instance(lcp, {make_path(3)}, options,
                            [&](const Instance&) {
                              ++count;
                              return true;
                            });
  EXPECT_EQ(count, 2 * 6 * 27);
}

TEST(EnumerateTest, ProvedStreamSkipsDeclined) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  int count = 0;
  for_each_proved_instance(lcp, {make_path(3), make_cycle(4)}, options,
                           [&](const Instance& inst) {
                             EXPECT_TRUE(lcp.decoder().accepts_all(inst));
                             ++count;
                             return true;
                           });
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace shlcp
