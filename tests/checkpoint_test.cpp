// Interrupt safety of the V(D, n) builds (util/budget.h,
// nbhd/checkpoint.h, the resumable builders of nbhd/aviews.h, and the
// cancellation hooks in sim/engine.h and lcp/audit.h).
//
// The acceptance bar is the one stated in DESIGN.md §11: an
// interrupted-then-resumed build is BIT-IDENTICAL to an uninterrupted
// one -- for an id-using decoder (spanning-BFS) and an anonymous
// port-sensitive decoder (degree-one), across thread counts {1, 2, 4} --
// and no early exit is ever silent: every truncated result carries an
// explicit StopReason, a tampered or mismatched checkpoint is a loud
// CheckError with a repro string, and the plain builders throw rather
// than return a partial graph.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/spanning_bfs.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/audit.h"
#include "nbhd/aviews.h"
#include "nbhd/checkpoint.h"
#include "sim/engine.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/format.h"
#include "util/json.h"

namespace shlcp {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers (shared with tests/parallel_enum_test.cpp by convention).

/// Full structural comparison: views in registration order, adjacency,
/// odd-cycle verdict, per-view and per-edge provenance, and the
/// deterministic half of the stats.
void expect_identical(const NbhdGraph& seq, const NbhdGraph& par) {
  ASSERT_EQ(seq.num_views(), par.num_views());
  for (int i = 0; i < seq.num_views(); ++i) {
    EXPECT_TRUE(seq.view(i) == par.view(i)) << "view " << i;
    EXPECT_EQ(seq.view_provenance(i).instance, par.view_provenance(i).instance)
        << "view " << i;
    EXPECT_EQ(seq.view_provenance(i).node, par.view_provenance(i).node)
        << "view " << i;
  }
  EXPECT_TRUE(seq.graph() == par.graph());
  const auto seq_cycle = seq.odd_cycle();
  const auto par_cycle = par.odd_cycle();
  ASSERT_EQ(seq_cycle.has_value(), par_cycle.has_value());
  if (seq_cycle.has_value()) {
    EXPECT_EQ(*seq_cycle, *par_cycle);
  }
  for (const Edge& e : seq.graph().edges()) {
    const Provenance* ps = seq.edge_provenance(e.u, e.v);
    const Provenance* pp = par.edge_provenance(e.u, e.v);
    ASSERT_NE(ps, nullptr) << "edge " << e.u << "," << e.v;
    ASSERT_NE(pp, nullptr) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->instance, pp->instance) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->node, pp->node) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->other, pp->other) << "edge " << e.u << "," << e.v;
  }
  EXPECT_EQ(seq.num_instances_absorbed(), par.num_instances_absorbed());
  EXPECT_EQ(seq.stats().views_deduped, par.stats().views_deduped);
}

std::vector<Graph> connected_bipartite(int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (is_bipartite(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  return graphs;
}

/// A fresh (empty) checkpoint directory under the test temp dir.
std::string fresh_ckpt_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("shlcp_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Budget primitives.

TEST(BudgetTest, TokenFirstStopReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::kNone);
  EXPECT_TRUE(token.request_stop(StopReason::kDeadline));
  EXPECT_FALSE(token.request_stop(StopReason::kInterrupt));
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
  token.reset();
  EXPECT_FALSE(token.stop_requested());
}

TEST(BudgetTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(to_string(StopReason::kNone), "none");
  EXPECT_STREQ(to_string(StopReason::kCancelRequested), "cancel_requested");
  EXPECT_STREQ(to_string(StopReason::kInterrupt), "interrupt");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kFrameBudget), "frame_budget");
  EXPECT_STREQ(to_string(StopReason::kInstanceBudget), "instance_budget");
  EXPECT_STREQ(to_string(StopReason::kMemoryBudget), "memory_budget");
  EXPECT_STREQ(to_string(StopReason::kStall), "stall");
  EXPECT_FALSE(is_hard_stop(StopReason::kFrameBudget));
  EXPECT_FALSE(is_hard_stop(StopReason::kInstanceBudget));
  EXPECT_TRUE(is_hard_stop(StopReason::kDeadline));
  EXPECT_TRUE(is_hard_stop(StopReason::kInterrupt));
  EXPECT_TRUE(is_hard_stop(StopReason::kStall));
}

TEST(BudgetTest, DeadlineTripsShouldStop) {
  CancelToken token;
  RunBudget budget;
  budget.wall_ms = 1;
  BudgetTracker tracker(budget, token);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_EQ(token.reason(), StopReason::kDeadline);
}

TEST(BudgetTest, InstanceBudgetTripsOnCrossing) {
  CancelToken token;
  RunBudget budget;
  budget.max_instances = 10;
  BudgetTracker tracker(budget, token);
  tracker.add_instances(9);
  EXPECT_FALSE(token.stop_requested());
  tracker.add_instances(1);
  EXPECT_EQ(token.reason(), StopReason::kInstanceBudget);
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_EQ(tracker.instances(), 10u);
}

TEST(BudgetTest, MemoryBudgetTripsWhenRssIsReadable) {
  if (current_rss_bytes() == 0) {
    GTEST_SKIP() << "resident-set size not readable on this platform";
  }
  CancelToken token;
  RunBudget budget;
  budget.max_memory_bytes = 1;  // any live process exceeds one byte
  BudgetTracker tracker(budget, token);
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_EQ(token.reason(), StopReason::kMemoryBudget);
}

TEST(BudgetTest, SigintGuardRoutesSignalIntoToken) {
  CancelToken token;
  {
    RunBudget budget;
    budget.arm_sigint = true;
    BudgetTracker tracker(budget, token);
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(token.stop_requested());
    EXPECT_EQ(token.reason(), StopReason::kInterrupt);
    EXPECT_TRUE(tracker.should_stop());
  }
  // Guard destroyed: a second tracker may arm again.
  CancelToken token2;
  RunBudget budget2;
  budget2.arm_sigint = true;
  BudgetTracker tracker2(budget2, token2);
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_EQ(token2.reason(), StopReason::kInterrupt);
}

TEST(BudgetTest, UnlimitedBudgetNeverStops) {
  CancelToken token;
  BudgetTracker tracker(RunBudget{}, token);
  tracker.add_frames(1'000'000);
  tracker.add_instances(1'000'000);
  EXPECT_FALSE(tracker.should_stop());
  EXPECT_TRUE(RunBudget{}.unlimited());
  RunBudget capped;
  capped.max_frames = 1;
  EXPECT_FALSE(capped.unlimited());
}

// ---------------------------------------------------------------------------
// NbhdGraph serialization.

TEST(CheckpointTest, NbhdGraphJsonRoundTrip) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  EnumOptions enums;
  enums.all_id_orders = true;
  const NbhdGraph built = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(built.num_views(), 0);
  const NbhdGraph back = NbhdGraph::from_json(built.to_json());
  expect_identical(built, back);
  // The rendering itself is deterministic (digest stability).
  EXPECT_EQ(built.to_json().dump(), back.to_json().dump());
  EXPECT_EQ(fnv1a_hex(built.to_json().dump()),
            fnv1a_hex(back.to_json().dump()));
}

TEST(CheckpointTest, EmptyNbhdGraphRoundTrips) {
  const NbhdGraph empty;
  const NbhdGraph back = NbhdGraph::from_json(empty.to_json());
  EXPECT_EQ(back.num_views(), 0);
  EXPECT_EQ(back.num_instances_absorbed(), 0);
}

// ---------------------------------------------------------------------------
// Kill-and-resume: the pinned bit-identity claim.

struct ResumeCase {
  const char* name;
  const Lcp& lcp;
  std::vector<Graph> graphs;
  EnumOptions enums;
};

TEST(CheckpointTest, InterruptedThenResumedIsBitIdentical) {
  const SpanningBfsLcp spanning_bfs;  // id-using: id-order dimension live
  const DegreeOneLcp degree_one;      // anonymous: port dimension live
  std::vector<Graph> deg1_graphs;
  for (const Graph& g : connected_bipartite(4)) {
    if (g.min_degree() == 1) {
      deg1_graphs.push_back(g);
    }
  }
  EnumOptions id_enums;
  id_enums.all_id_orders = true;
  EnumOptions port_enums;
  port_enums.all_ports = true;

  std::vector<ResumeCase> cases;
  cases.push_back(
      ResumeCase{"sbfs", spanning_bfs, connected_bipartite(3), id_enums});
  cases.push_back(ResumeCase{"deg1", degree_one, deg1_graphs, port_enums});

  for (const ResumeCase& c : cases) {
    const NbhdGraph seq = build_exhaustive(c.lcp, c.graphs, c.enums);
    ASSERT_GT(seq.num_views(), 0) << c.name;
    for (const int threads : {1, 2, 4}) {
      ParallelEnumOptions options;
      options.enums = c.enums;
      options.num_threads = threads;
      options.frames_per_chunk = 1;  // maximal sharding stresses the merge
      options.checkpoint.directory =
          fresh_ckpt_dir(format("resume_%s_t%d", c.name, threads));
      options.checkpoint.every_frames = 2;
      options.budget.max_frames = 3;  // the "kill": a few frames per run

      ResumableBuildResult res;
      std::uint64_t prev_done = 0;
      int runs = 0;
      for (;;) {
        res = build_exhaustive_resumable(c.lcp, c.graphs, options);
        ++runs;
        ASSERT_LT(runs, 100) << c.name << ": resume loop did not converge";
        if (res.complete) {
          break;
        }
        // Every truncated run is explicit about why it stopped...
        EXPECT_EQ(res.stop_reason, StopReason::kFrameBudget)
            << c.name << " t" << threads;
        // ...and makes forward progress, so the loop terminates.
        EXPECT_GT(res.frames_done, prev_done) << c.name << " t" << threads;
        prev_done = res.frames_done;
      }
      EXPECT_GT(runs, 1) << c.name
                         << ": the budget was supposed to interrupt the build";
      EXPECT_GT(res.resumed_frames, 0u) << c.name << " t" << threads;
      EXPECT_EQ(res.stop_reason, StopReason::kNone);
      EXPECT_EQ(res.frames_done, res.num_frames);
      expect_identical(seq, res.nbhd);

      // The completed manifest is well-formed and marked complete.
      const Json manifest = Json::parse(read_file(res.manifest_path));
      EXPECT_EQ(manifest.at("schema").as_string(), "shlcp.ckpt.v1");
      EXPECT_EQ(manifest.at("status").as_string(), "complete");
      EXPECT_EQ(manifest.at("stop_reason").as_string(), "none");
      EXPECT_EQ(manifest.at("frames_done").as_uint(), res.num_frames);

      // Resuming a complete checkpoint is a no-op that returns the same
      // bit-identical graph.
      const ResumableBuildResult again =
          build_exhaustive_resumable(c.lcp, c.graphs, options);
      EXPECT_TRUE(again.complete);
      EXPECT_EQ(again.resumed_frames, again.num_frames);
      expect_identical(seq, again.nbhd);
    }
  }
}

TEST(CheckpointTest, ProvedBuilderResumesBitIdentically) {
  const EvenCycleLcp lcp;
  const std::vector<Graph> graphs{make_cycle(4), make_cycle(6)};
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph seq = build_proved(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  ParallelEnumOptions options;
  options.enums = enums;
  options.num_threads = 2;
  options.frames_per_chunk = 1;
  options.checkpoint.directory = fresh_ckpt_dir("resume_proved");
  options.checkpoint.every_frames = 2;
  options.budget.max_frames = 2;
  ResumableBuildResult res;
  int runs = 0;
  do {
    res = build_proved_resumable(lcp, graphs, options);
    ASSERT_LT(++runs, 100) << "resume loop did not converge";
  } while (!res.complete);
  EXPECT_GT(runs, 1);
  expect_identical(seq, res.nbhd);
}

TEST(CheckpointTest, AdaptiveChunkingResumesBitIdentically) {
  // Same kill-and-resume drill, but under the default cost-adaptive chunk
  // plan (frames_per_chunk = 0): segment boundaries fall on checkpoint
  // cadence rather than whole-chunk multiples, and each segment re-cuts
  // its own plan from the sliced frame costs. The resumed result must
  // still be bit-identical to the uninterrupted sequential build.
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (const Graph& g : connected_bipartite(4)) {
    if (g.min_degree() == 1) {
      graphs.push_back(g);
    }
  }
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph seq = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  for (const int threads : {1, 2}) {
    ParallelEnumOptions options;
    options.enums = enums;
    options.num_threads = threads;
    ASSERT_EQ(options.frames_per_chunk, 0) << "adaptive must be the default";
    options.checkpoint.directory =
        fresh_ckpt_dir(format("resume_adaptive_t%d", threads));
    options.checkpoint.every_frames = 3;
    options.budget.max_frames = 3;
    ResumableBuildResult res;
    int runs = 0;
    do {
      res = build_exhaustive_resumable(lcp, graphs, options);
      ASSERT_LT(++runs, 100) << "resume loop did not converge";
    } while (!res.complete);
    EXPECT_GT(runs, 1) << "the budget was supposed to interrupt the build";
    EXPECT_GT(res.resumed_frames, 0u) << "t" << threads;
    expect_identical(seq, res.nbhd);
  }
}

// ---------------------------------------------------------------------------
// No silent truncation.

TEST(CheckpointTest, PlainBuilderFailsLoudlyOnBudgetTrip) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  ParallelEnumOptions options;
  options.enums.all_id_orders = true;
  options.frames_per_chunk = 1;
  options.budget.max_frames = 1;
  try {
    build_exhaustive(lcp, graphs, options);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stopped early"), std::string::npos) << msg;
    EXPECT_NE(msg.find("frame_budget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("resumable"), std::string::npos) << msg;
  }
}

TEST(CheckpointTest, ExternalCancelStopsTheBuild) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  CancelToken token;
  token.request_stop(StopReason::kCancelRequested);
  ParallelEnumOptions options;
  options.enums.all_id_orders = true;
  options.frames_per_chunk = 1;
  options.cancel = &token;
  const ResumableBuildResult res =
      build_exhaustive_resumable(lcp, graphs, options);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.stop_reason, StopReason::kCancelRequested);
  EXPECT_EQ(res.frames_done, 0u);
  EXPECT_EQ(res.nbhd.num_views(), 0);
}

TEST(CheckpointTest, BuildFromInstancesRejectsBudgetOptions) {
  const DegreeOneLcp lcp;
  ParallelEnumOptions options;
  options.budget.max_frames = 5;
  EXPECT_THROW(build_from_instances(lcp.decoder(), {}, 2, options),
               CheckError);
}

// ---------------------------------------------------------------------------
// Tampered or mismatched checkpoints fail loudly.

/// Runs one budget-limited sweep so `dir` holds an in_progress manifest.
ParallelEnumOptions seed_partial_checkpoint(const Lcp& lcp,
                                            const std::vector<Graph>& graphs,
                                            const std::string& dir) {
  ParallelEnumOptions options;
  options.enums.all_id_orders = true;
  options.frames_per_chunk = 1;
  options.checkpoint.directory = dir;
  options.checkpoint.every_frames = 2;
  options.budget.max_frames = 3;
  const ResumableBuildResult res =
      build_exhaustive_resumable(lcp, graphs, options);
  EXPECT_FALSE(res.complete);
  EXPECT_GT(res.frames_done, 0u);
  return options;
}

TEST(CheckpointTest, MismatchedManifestIsRejectedWithRepro) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  const std::string dir = fresh_ckpt_dir("mismatch");
  ParallelEnumOptions options = seed_partial_checkpoint(lcp, graphs, dir);
  const std::string mpath = (fs::path(dir) / "manifest.json").string();
  Json manifest = Json::parse(read_file(mpath));
  manifest["options_hash"] = Json(std::string("fnv:0000000000000000"));
  write_file(mpath, manifest.dump(2) + "\n");
  try {
    build_exhaustive_resumable(lcp, graphs, options);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checkpoint resume rejected"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("options_hash mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find(mpath), std::string::npos) << msg;
  }
}

TEST(CheckpointTest, DifferentSweepCannotConsumeTheCheckpoint) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  const std::string dir = fresh_ckpt_dir("different_sweep");
  ParallelEnumOptions options = seed_partial_checkpoint(lcp, graphs, dir);
  options.enums.all_id_orders = false;  // a semantically different sweep
  try {
    build_exhaustive_resumable(lcp, graphs, options);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint resume rejected"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointTest, TornStateIsRejected) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  const std::string dir = fresh_ckpt_dir("torn_state");
  const ParallelEnumOptions options =
      seed_partial_checkpoint(lcp, graphs, dir);
  const std::string spath = (fs::path(dir) / "state.json").string();
  write_file(spath, read_file(spath) + "x");
  try {
    build_exhaustive_resumable(lcp, graphs, options);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("state digest mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("torn or tampered"), std::string::npos) << msg;
  }
}

TEST(CheckpointTest, ResumeFalseRestartsFromScratch) {
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  const std::string dir = fresh_ckpt_dir("no_resume");
  ParallelEnumOptions options = seed_partial_checkpoint(lcp, graphs, dir);
  options.checkpoint.resume = false;
  options.budget = RunBudget{};  // unlimited this time
  const ResumableBuildResult res =
      build_exhaustive_resumable(lcp, graphs, options);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.resumed_frames, 0u);
  expect_identical(build_exhaustive(lcp, graphs, options.enums), res.nbhd);
}

// ---------------------------------------------------------------------------
// Simulator and audit degrade gracefully.

TEST(CancelTest, SyncEngineThrowsCancelledErrorAtRoundBoundary) {
  const Graph g = make_cycle(4);
  const Instance inst =
      Instance::canonical(g).with_labels(Labeling(g.num_nodes()));
  CancelToken token;
  SyncEngine engine(inst);
  engine.set_cancel(&token);
  engine.run(1);  // fine: token untripped
  EXPECT_EQ(engine.rounds_run(), 1);
  token.request_stop(StopReason::kDeadline);
  try {
    engine.run(2);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), StopReason::kDeadline);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  EXPECT_EQ(engine.rounds_run(), 1);  // completed rounds stay valid
}

TEST(CancelTest, AuditSweepReportsBudgetExhausted) {
  const DegreeOneLcp lcp;
  const auto yes = audit_yes_instances(lcp, 1);
  const auto no = audit_no_instances(lcp.k(), 1);
  ASSERT_FALSE(yes.empty());
  ASSERT_FALSE(no.empty());

  AuditOptions options;
  options.adversarial_labelings = 2;

  // Uncancelled sweep: complete, no truncation flag.
  const AuditReport full = audit_sweep(lcp, yes, no, options);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(full.stop_reason, "none");
  EXPECT_GT(full.runs, 0u);
  EXPECT_EQ(full.summary().find("PARTIAL"), std::string::npos);

  // Pre-tripped token: partial result, explicit verdict, zero runs.
  CancelToken token;
  token.request_stop(StopReason::kDeadline);
  options.cancel = &token;
  const AuditReport partial = audit_sweep(lcp, yes, no, options);
  EXPECT_TRUE(partial.budget_exhausted);
  EXPECT_EQ(partial.stop_reason, "deadline");
  EXPECT_EQ(partial.runs, 0u);
  EXPECT_NE(partial.summary().find("PARTIAL"), std::string::npos);

  // Merging a partial report into a clean one keeps the flag.
  AuditReport merged = full;
  merged.merge(partial);
  EXPECT_TRUE(merged.budget_exhausted);
  EXPECT_EQ(merged.stop_reason, "deadline");
}

}  // namespace
}  // namespace shlcp
