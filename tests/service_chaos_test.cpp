// Resilience-layer tests: ChaosPlan, FaultyTransport, and the retrying
// Client (service/chaos.h, service/client.h). The claims pinned here:
//
//   * ChaosPlan::describe / ChaosPlan::parse round-trip exactly (the
//     chaos bench's REPRO string reconstructs the plan), malformed
//     descriptors fail loudly, and standard_family is deterministic;
//   * a calm FaultyTransport is byte-for-byte transparent, so the
//     wrapper can stay installed in the load paths permanently;
//   * chopped writes reorder nothing -- the peer reassembles the exact
//     payload; corruption changes exactly stats().corrupted_bytes
//     bytes; a reset kills the connection for good;
//   * two transports driven by the same plan over the same operation
//     sequence inject identical faults (replay determinism);
//   * the Client retries overloaded refusals (honoring retry_after_ms),
//     retries digest-mismatched responses instead of surfacing them,
//     reconnects after attempt timeouts, attaches the "check" integrity
//     digest, and never retries fatal error codes.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nbhd/checkpoint.h"
#include "service/cache.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/proto.h"
#include "service/service.h"
#include "util/check.h"

namespace shlcp::svc {
namespace {

// ---------------------------------------------------------------------
// ChaosPlan descriptors.

TEST(ChaosPlan, DescribeParseRoundTrip) {
  ChaosPlan plan;
  plan.label = "bench-mixed";
  plan.seed = 0xC4A05C4A05ULL;
  plan.write_chop_permille = 300;
  plan.read_chop_permille = 250;
  plan.corrupt_permille = 60;
  plan.reset_permille = 20;
  plan.delay_permille = 50;
  plan.max_delay_ms = 2;

  const std::string descriptor = plan.describe();
  // The 7-field ';' shape is the REPRO contract of the chaos bench
  // (tools/check_bench_json.py --chaos counts the separators).
  EXPECT_EQ(std::count(descriptor.begin(), descriptor.end(), ';'), 6)
      << descriptor;
  EXPECT_EQ(ChaosPlan::parse(descriptor), plan);

  // Defaults survive the round trip too.
  EXPECT_EQ(ChaosPlan::parse(ChaosPlan{}.describe()), ChaosPlan{});
}

TEST(ChaosPlan, EnabledReflectsFaultRates) {
  EXPECT_FALSE(ChaosPlan{}.enabled());
  ChaosPlan seeded;
  seeded.seed = 123;  // a seed alone injects nothing
  EXPECT_FALSE(seeded.enabled());
  ChaosPlan chop;
  chop.write_chop_permille = 1;
  EXPECT_TRUE(chop.enabled());
  // A delay rate without a delay bound cannot stall anything.
  ChaosPlan zero_delay;
  zero_delay.delay_permille = 500;
  zero_delay.max_delay_ms = 0;
  EXPECT_FALSE(zero_delay.enabled());
}

TEST(ChaosPlan, ParseRejectsMalformedDescriptors) {
  for (const char* bad : {
           "",
           "calm",
           "calm;seed=0x1;wchop=0;rchop=0;corrupt=0;reset=0",  // 6 fields
           "calm;sed=0x1;wchop=0;rchop=0;corrupt=0;reset=0;delay=0@0ms",
           "calm;seed=0x1;wchop=0;rchop=0;corrupt=0;reset=0;delay=0",
           "calm;seed=0x1;wchop=0;rchop=0;corrupt=0;reset=0;delay=0@5",
       }) {
    EXPECT_THROW(ChaosPlan::parse(bad), CheckError) << bad;
  }
}

TEST(ChaosPlan, StandardFamilyIsDeterministic) {
  const std::vector<ChaosPlan> family = ChaosPlan::standard_family(0xFEED);
  EXPECT_EQ(family, ChaosPlan::standard_family(0xFEED));
  ASSERT_GE(family.size(), 3u);
  EXPECT_EQ(family.front().label, "calm");
  EXPECT_FALSE(family.front().enabled());
  bool any_enabled = false;
  for (const ChaosPlan& plan : family) {
    any_enabled = any_enabled || plan.enabled();
    EXPECT_EQ(ChaosPlan::parse(plan.describe()), plan) << plan.describe();
  }
  EXPECT_TRUE(any_enabled);
  // Different base seeds derive different per-plan seeds.
  EXPECT_NE(ChaosPlan::standard_family(0xBEEF).front().seed,
            family.front().seed);
}

// ---------------------------------------------------------------------
// FaultyTransport.

struct SocketPair {
  int ours = -1;   // raw peer end, owned here
  int theirs = -1;  // handed to a FaultyTransport, owned there
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ours = fds[0];
    theirs = fds[1];
  }
  ~SocketPair() {
    if (ours >= 0) {
      ::close(ours);
    }
  }
};

/// Reads exactly `n` bytes from a raw fd (the peer side of a chopped
/// write delivers them in slices).
std::string read_exact(int fd, std::size_t n) {
  std::string out;
  while (out.size() < n) {
    char buf[4096];
    const ssize_t got =
        ::read(fd, buf, std::min(sizeof buf, n - out.size()));
    if (got <= 0) {
      ADD_FAILURE() << "peer read failed with " << out.size() << "/" << n
                    << " bytes";
      return out;
    }
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

TEST(FaultyTransport, CalmPlanIsByteTransparent) {
  SocketPair pair;
  FaultyTransport wire(pair.theirs, pair.theirs, ChaosPlan{});

  const std::string out = "hello through a calm wire \x00\xff\n ok";
  ASSERT_TRUE(wire.write_all(out));
  EXPECT_EQ(read_exact(pair.ours, out.size()), out);

  const std::string back = "and the reply comes back untouched";
  ASSERT_EQ(::write(pair.ours, back.data(), back.size()),
            static_cast<ssize_t>(back.size()));
  std::string got;
  while (got.size() < back.size()) {
    char buf[4096];
    const std::int64_t n = wire.read_some(buf, sizeof buf);
    ASSERT_GT(n, 0);
    got.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, back);

  EXPECT_FALSE(wire.dead());
  const ChaosStats& stats = wire.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_GE(stats.reads, 1u);
  EXPECT_EQ(stats.chopped_writes, 0u);
  EXPECT_EQ(stats.chopped_reads, 0u);
  EXPECT_EQ(stats.corrupted_bytes, 0u);
  EXPECT_EQ(stats.resets, 0u);
  EXPECT_EQ(stats.delays, 0u);
}

TEST(FaultyTransport, ChoppedWritesPreserveContent) {
  ChaosPlan plan;
  plan.label = "chop-always";
  plan.seed = 0xC0FFEE;
  plan.write_chop_permille = 1000;

  SocketPair pair;
  FaultyTransport wire(pair.theirs, pair.theirs, plan);
  for (int round = 0; round < 5; ++round) {
    std::string payload;
    for (int i = 0; i < 100 + 37 * round; ++i) {
      payload.push_back(static_cast<char>('a' + (i * 7 + round) % 26));
    }
    ASSERT_TRUE(wire.write_all(payload));
    EXPECT_EQ(read_exact(pair.ours, payload.size()), payload) << round;
  }
  EXPECT_EQ(wire.stats().writes, 5u);
  EXPECT_EQ(wire.stats().chopped_writes, 5u);
  EXPECT_EQ(wire.stats().corrupted_bytes, 0u);
}

TEST(FaultyTransport, CorruptionChangesExactlyCountedBytes) {
  ChaosPlan plan;
  plan.label = "corrupt-always";
  plan.seed = 0xBAD;
  plan.corrupt_permille = 1000;

  SocketPair pair;
  FaultyTransport wire(pair.theirs, pair.theirs, plan);
  std::uint64_t diffs = 0;
  const int rounds = 20;
  for (int round = 0; round < rounds; ++round) {
    std::string payload(32, static_cast<char>('A' + round));
    ASSERT_TRUE(wire.write_all(payload));
    const std::string received = read_exact(pair.ours, payload.size());
    ASSERT_EQ(received.size(), payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      diffs += received[i] != payload[i] ? 1 : 0;
    }
  }
  EXPECT_EQ(diffs, wire.stats().corrupted_bytes);
  EXPECT_EQ(diffs, static_cast<std::uint64_t>(rounds));  // one byte per op
}

TEST(FaultyTransport, ResetKillsConnectionForGood) {
  ChaosPlan plan;
  plan.label = "reset-always";
  plan.seed = 0x5E7;
  plan.reset_permille = 1000;

  SocketPair pair;
  FaultyTransport wire(pair.theirs, pair.theirs, plan);
  EXPECT_FALSE(wire.write_all("doomed"));
  EXPECT_TRUE(wire.dead());
  EXPECT_EQ(wire.poll_fd(), -1);
  EXPECT_EQ(wire.stats().resets, 1u);

  // Dead is dead: no operation revives the connection.
  EXPECT_FALSE(wire.write_all("still doomed"));
  char buf[16];
  EXPECT_EQ(wire.read_some(buf, sizeof buf), -1);
  EXPECT_EQ(wire.stats().resets, 1u);  // no further draws on a corpse
}

// Two transports with the same plan over the same write sequence must
// inject identical faults and deliver identical bytes -- the replay
// contract that makes a chaos REPRO string reproduce a failure.
TEST(FaultyTransport, SamePlanSameOpsReplaysIdentically) {
  ChaosPlan plan;
  plan.label = "replay";
  plan.seed = 0x12345;
  plan.write_chop_permille = 500;
  plan.corrupt_permille = 400;

  const auto run_once = [&](std::string* received) -> ChaosStats {
    SocketPair pair;
    std::thread drain([&] {
      char buf[4096];
      for (;;) {
        const ssize_t n = ::read(pair.ours, buf, sizeof buf);
        if (n <= 0) {
          return;
        }
        received->append(buf, static_cast<std::size_t>(n));
      }
    });
    ChaosStats stats;
    {
      FaultyTransport wire(pair.theirs, pair.theirs, plan);
      for (int i = 0; i < 30; ++i) {
        std::string payload = encode_frame(
            "{\"id\":" + std::to_string(i) + ",\"op\":\"info\"}");
        EXPECT_TRUE(wire.write_all(payload)) << i;
      }
      stats = wire.stats();
    }  // destruction closes the write side; the drain thread sees EOF
    drain.join();
    return stats;
  };

  std::string first_bytes;
  std::string second_bytes;
  const ChaosStats first = run_once(&first_bytes);
  const ChaosStats second = run_once(&second_bytes);
  EXPECT_EQ(first_bytes, second_bytes);
  EXPECT_EQ(first.writes, second.writes);
  EXPECT_EQ(first.chopped_writes, second.chopped_writes);
  EXPECT_EQ(first.corrupted_bytes, second.corrupted_bytes);
  // The plan must actually have fired, or the test proves nothing.
  EXPECT_GT(first.chopped_writes, 0u);
  EXPECT_GT(first.corrupted_bytes, 0u);
}

// ---------------------------------------------------------------------
// Client retry discipline, against a scripted in-process server.

/// Decides one response. `connection` counts connector calls (0-based),
/// `request_index` counts requests across all connections. nullopt =
/// never answer (the client's attempt times out).
using Responder =
    std::function<std::optional<Json>(const Json& request, int connection,
                                      int request_index)>;

/// A fake daemon: each connector call opens a socketpair whose peer end
/// is served by a thread running `respond` until EOF.
class ScriptedServer {
 public:
  explicit ScriptedServer(Responder respond)
      : respond_(std::move(respond)) {}

  ~ScriptedServer() {
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  Client::Connector connector() {
    return [this]() -> std::unique_ptr<FaultyTransport> {
      int fds[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        return nullptr;
      }
      const int connection = connections_++;
      threads_.emplace_back([this, fd = fds[1], connection] {
        serve(fd, connection);
      });
      return std::make_unique<FaultyTransport>(fds[0], fds[0], ChaosPlan{});
    };
  }

  [[nodiscard]] int connections() const { return connections_; }

 private:
  void serve(int fd, int connection) {
    FrameReader reader;
    std::string frame;
    std::string error;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) {
        break;
      }
      reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (reader.next(&frame, &error) == FrameReader::Next::kFrame) {
        const std::optional<Json> resp =
            respond_(Json::parse(frame), connection, requests_++);
        if (!resp.has_value()) {
          continue;  // scripted silence; the client must time out
        }
        const std::string encoded = encode_frame(resp->dump());
        if (::write(fd, encoded.data(), encoded.size()) !=
            static_cast<ssize_t>(encoded.size())) {
          break;
        }
      }
    }
    ::close(fd);
  }

  Responder respond_;
  std::atomic<int> connections_{0};
  std::atomic<int> requests_{0};
  std::vector<std::thread> threads_;
};

Json scripted_result(int request_index) {
  Json result = Json::object();
  result["answer"] = request_index;
  return result;
}

Json scripted_ok(const Json& request, int request_index) {
  Json result = scripted_result(request_index);
  const std::string digest = fnv1a_hex(result.dump());
  return ok_response(request.at("id"), std::move(result), false, digest);
}

ClientOptions fast_retry_options(int max_attempts) {
  ClientOptions options;
  options.timeout_ms = 5000;
  options.retry.max_attempts = max_attempts;
  options.retry.base_backoff_ms = 1;
  options.retry.max_backoff_ms = 8;
  options.retry.seed = 42;
  return options;
}

TEST(Client, RetriesOverloadedAndHonorsRetryAfterHint) {
  ScriptedServer server([](const Json& request, int, int request_index) {
    if (request_index == 0) {
      return std::optional<Json>(error_response(
          request.at("id"), kErrOverloaded, "queue full", "",
          /*retry_after_ms=*/7));
    }
    return std::optional<Json>(scripted_ok(request, request_index));
  });
  Client client(server.connector(), fast_retry_options(4));
  const CallResult result = client.call("info", Json::object());
  EXPECT_TRUE(result.ok) << result.error_code << ": " << result.error_detail;
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(client.stats().refused_overloaded, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  // The 7 ms hint must raise the 1 ms base backoff, never lower it.
  EXPECT_GE(client.stats().backoff_ms_total, 7u);
}

TEST(Client, DigestMismatchIsRetriedNeverSurfaced) {
  ScriptedServer server([](const Json& request, int, int request_index) {
    if (request_index == 0) {
      // Result bytes that do not match their digest: a corrupted
      // response in flight.
      return std::optional<Json>(
          ok_response(request.at("id"), scripted_result(7), false,
                      "fnv:0000000000000000"));
    }
    return std::optional<Json>(scripted_ok(request, request_index));
  });
  Client client(server.connector(), fast_retry_options(4));
  const CallResult result = client.call("info", Json::object());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(client.stats().digest_mismatches, 1u);
  // The surfaced result is the *verified* one, not the corrupted one.
  EXPECT_EQ(result.result_dump, scripted_result(1).dump());
}

TEST(Client, FatalCodesReturnImmediately) {
  ScriptedServer server([](const Json& request, int, int) {
    return std::optional<Json>(error_response(
        request.at("id"), kErrInvalidParams, "no such instance"));
  });
  Client client(server.connector(), fast_retry_options(5));
  const CallResult result = client.call("check_coloring", Json::object());
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, kErrInvalidParams);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(Client, ExhaustedRetriesReportLastError) {
  ScriptedServer server([](const Json& request, int, int) {
    return std::optional<Json>(error_response(
        request.at("id"), kErrOverloaded, "queue full", "", 1));
  });
  Client client(server.connector(), fast_retry_options(3));
  const CallResult result = client.call("info", Json::object());
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, kErrOverloaded);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(client.stats().refused_overloaded, 3u);
}

TEST(Client, AttachesCheckDigestOfCanonicalPayload) {
  Json seen_check;
  ScriptedServer server(
      [&seen_check](const Json& request, int, int request_index) {
        seen_check = request.contains("check") ? request.at("check") : Json();
        return std::optional<Json>(scripted_ok(request, request_index));
      });
  Json params = Json::object();
  params["instance"] = "cycle5";
  params["k"] = 3;
  Client client(server.connector(), fast_retry_options(2));
  const CallResult result = client.call("check_coloring", params);
  EXPECT_TRUE(result.ok);
  ASSERT_TRUE(seen_check.is_string());
  EXPECT_EQ(seen_check.as_string(),
            fnv1a_hex(artifact_key("check_coloring", params)));
}

TEST(Client, TimeoutDropsConnectionAndRetriesOnAFreshOne) {
  ScriptedServer server([](const Json& request, int connection,
                           int request_index) -> std::optional<Json> {
    if (connection == 0) {
      return std::nullopt;  // stall the first connection forever
    }
    return scripted_ok(request, request_index);
  });
  ClientOptions options = fast_retry_options(4);
  options.timeout_ms = 60;  // fail the stalled attempt quickly
  Client client(server.connector(), options);
  const CallResult result = client.call("info", Json::object());
  EXPECT_TRUE(result.ok) << result.error_detail;
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_EQ(server.connections(), 2);
}

}  // namespace
}  // namespace shlcp::svc
