// Theorem 1.4 (watermelon LCP): completeness over watermelon families,
// strong soundness (randomized plus targeted shapes), the far-port
// reality check the brief announcement leaves implicit (kNoPortCheck is
// mechanically defeated by an all-type-2 odd cycle with self-referential
// certificates), O(log n) certificate sizes, and the Section 7.2 hiding
// witness.

#include <gtest/gtest.h>

#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(WatermelonTest, PromisePredicate) {
  const WatermelonLcp lcp;
  EXPECT_TRUE(lcp.in_promise(make_path(8)));
  EXPECT_TRUE(lcp.in_promise(make_cycle(6)));
  EXPECT_TRUE(lcp.in_promise(make_watermelon({2, 4})));
  EXPECT_TRUE(lcp.in_promise(make_watermelon({3, 3, 5})));
  EXPECT_FALSE(lcp.in_promise(make_watermelon({2, 3})));  // odd cycle
  EXPECT_FALSE(lcp.in_promise(make_star(4)));
  EXPECT_FALSE(lcp.in_promise(make_grid(3, 3)));
}

TEST(WatermelonTest, CompletenessOnFamilies) {
  const WatermelonLcp lcp;
  Rng rng(10);
  std::vector<Graph> graphs{make_path(5),  make_path(8),
                            make_cycle(6), make_cycle(8),
                            make_watermelon({2, 2}),
                            make_watermelon({2, 4, 2}),
                            make_watermelon({3, 3, 3, 5})};
  for (const Graph& g : graphs) {
    ASSERT_TRUE(lcp.in_promise(g));
    // Canonical and random frames.
    {
      const auto report = check_completeness(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
    }
    for (int rep = 0; rep < 3; ++rep) {
      Instance inst;
      inst.g = g;
      inst.ports = PortAssignment::random(g, rng);
      inst.ids = IdAssignment::random(g, 3 * g.num_nodes(), rng);
      inst.labels = Labeling(g.num_nodes());
      const auto report = check_completeness(lcp, inst);
      EXPECT_TRUE(report.ok) << report.failure;
    }
  }
}

TEST(WatermelonTest, NoPortCheckVariantAcceptsOddCycleUniformCerts) {
  // The exploit: oriented ports, one identical certificate everywhere.
  // Claimed far ports route each check back into the same entry of the
  // identical neighbor certificate, so consistency never meets reality.
  const auto witnesses = no_port_check_witnesses();
  // Reuse the generator's construction on an odd cycle.
  Graph g = make_cycle(5);
  std::vector<std::vector<Port>> lists(5);
  for (Node v = 0; v < 5; ++v) {
    const Node next = (v + 1) % 5;
    const auto nb = g.neighbors(v);
    lists[static_cast<std::size_t>(v)] = {nb[0] == next ? 1 : 2,
                                          nb[1] == next ? 1 : 2};
  }
  Instance inst;
  inst.g = g;
  inst.ports = PortAssignment::from_lists(g, std::move(lists));
  inst.ids = IdAssignment::consecutive(g);
  Labeling labels(5);
  for (Node v = 0; v < 5; ++v) {
    labels.at(v) = make_watermelon_type2(1, 99, 1, 1, 0, 2, 1, 99, 2);
  }
  inst.labels = std::move(labels);

  const WatermelonLcp cheat(WatermelonVariant::kNoPortCheck);
  EXPECT_TRUE(cheat.decoder().accepts_all(inst))
      << "the literal condition 3(c) reading should accept everywhere";

  const WatermelonLcp standard(WatermelonVariant::kStandard);
  EXPECT_FALSE(standard.decoder().accepts_all(inst))
      << "the far-port reality check must kill the self-referential certs";
  // And in fact every node rejects under the standard rules.
  for (const bool verdict : standard.decoder().run(inst)) {
    EXPECT_FALSE(verdict);
  }

  // The same uniform certificates on EVEN cycles are accepted by the
  // cheat -- those instances are bipartite, which is what pushes the
  // exploitable views into V(D, n).
  for (const Instance& w : witnesses) {
    EXPECT_TRUE(cheat.decoder().accepts_all(w));
    EXPECT_TRUE(is_bipartite(w.g));
  }
}

TEST(WatermelonTest, StandardStrongSoundnessRandomized) {
  const WatermelonLcp lcp(WatermelonVariant::kStandard);
  Rng rng(2024);
  std::vector<Graph> graphs{make_cycle(5), make_cycle(7),
                            make_watermelon({2, 3}),     // odd theta
                            make_watermelon({2, 2, 3}),  // odd, degree 3
                            make_theta(3, 3, 4)};
  for (int rep = 0; rep < 4; ++rep) {
    graphs.push_back(make_random_graph(7, 1, 3, rng));
  }
  for (const Graph& g : graphs) {
    if (g.num_nodes() == 0) {
      continue;
    }
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 500, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(WatermelonTest, StandardStrongSoundnessExhaustiveTriangle) {
  // Full sweep on the triangle: every node ranges over the whole
  // adversarial space.
  const WatermelonLcp lcp(WatermelonVariant::kStandard, /*max_paths=*/1);
  const auto report = check_strong_soundness_exhaustive(
      lcp, Instance::canonical(make_cycle(3)), 30'000'000);
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(WatermelonTest, EndpointStarMustBeMonochromatic) {
  // Two paths of different parity between the endpoints: the honest
  // prover declines (non-bipartite), and hand-built certificates where
  // the endpoint sees two different edge colors must be rejected there.
  const Graph g = make_watermelon({2, 3});
  Instance inst = Instance::canonical(g);
  const Ident bound = inst.ids.bound();
  const int pb = g.max_degree();
  // Endpoints are nodes 0, 1 (ids 1, 2). Path A interior: node 2;
  // path B interior: nodes 3, 4.
  Labeling labels(5);
  labels.at(0) = make_watermelon_type1(1, 2, bound);
  labels.at(1) = make_watermelon_type1(1, 2, bound);
  auto port_of = [&](Node u, Node w) { return inst.ports.port(g, u, w); };
  // Path A colored 0 at v1-side; path B colored 0 at v1 then alternating.
  labels.at(2) = make_watermelon_type2(
      1, 2, 1, port_of(0, 2), 0, port_of(1, 2), 1, bound, pb);
  labels.at(3) = make_watermelon_type2(
      1, 2, 2, port_of(0, 3), 0, port_of(4, 3), 1, bound, pb);
  labels.at(4) = make_watermelon_type2(
      1, 2, 2, port_of(1, 4), 0, port_of(3, 4), 1, bound, pb);
  inst.labels = std::move(labels);
  const WatermelonLcp lcp;
  // v2 = node 1 sees path A's last edge colored 1 and path B's last edge
  // colored 0: the monochromaticity check 2(d) fires.
  const auto verdicts = lcp.decoder().run(inst);
  EXPECT_FALSE(verdicts[1]);
  // And the accepting set stays bipartite.
  const auto acc = lcp.decoder().accepting_set(inst);
  EXPECT_TRUE(is_bipartite(inst.g.induced_subgraph(acc)));
}

TEST(WatermelonTest, HidingViaSection72Witness) {
  const WatermelonLcp lcp;
  const auto instances = watermelon_witnesses();
  for (const Instance& inst : instances) {
    ASSERT_TRUE(lcp.decoder().accepts_all(inst));
  }
  const auto nbhd = build_from_instances(lcp.decoder(), instances, 2);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value())
      << "Section 7.2 witness family yields no odd cycle";
  EXPECT_FALSE(nbhd.k_colorable(2));
}

TEST(WatermelonTest, CertificateSizeLogarithmic) {
  const WatermelonLcp lcp;
  int prev_bits = 0;
  for (int n : {8, 16, 32, 64, 128}) {
    const Graph g = make_path(n);
    Instance inst = Instance::canonical(g);
    const auto labels = lcp.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    const int bits = labels->max_bits();
    int log_n = 1;
    while ((1 << log_n) < n + 1) {
      ++log_n;
    }
    EXPECT_LE(bits, 1 + 3 * log_n + 2 * 2 + 2);
    EXPECT_GE(bits, prev_bits);  // monotone in n
    prev_bits = bits;
  }
}

TEST(WatermelonTest, IdentifierMattersToDecoder) {
  // The decoder is genuinely id-using: endpoint acceptance depends on the
  // actual identifier matching the claim.
  const WatermelonLcp lcp;
  const Graph g = make_path(5);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(lcp.decoder().accepts_all(inst));
  // Swap the endpoint identifiers with interior ones: claims break.
  Instance swapped = inst;
  swapped.ids = IdAssignment::from_vector({3, 2, 1, 4, 5}, 5);
  EXPECT_FALSE(lcp.decoder().accepts_all(swapped));
}

}  // namespace
}  // namespace shlcp
