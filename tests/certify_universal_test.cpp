// Tests for the universal O(n^2) LCP (Section 1.1): completeness on
// every small yes-instance of the predicate, strong soundness under the
// full matrix-space sweep, full extraction (the anti-hiding pole), and
// the codec round-trip.

#include <gtest/gtest.h>

#include "certify/universal.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/extractor.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(UniversalTest, CodecRoundTrip) {
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    const int n = rng.next_int(1, 8);
    Graph g = make_random_graph(n, 1, 2, rng);
    const IdAssignment ids = IdAssignment::random(g, 2 * n + 3, rng);
    const Certificate c = make_universal_certificate(g, ids);
    const auto decoded = decode_universal_certificate(c);
    ASSERT_TRUE(decoded.has_value());
    // Same graph up to the sorted-id reindexing.
    EXPECT_EQ(decoded->first.num_nodes(), n);
    EXPECT_EQ(decoded->first.num_edges(), g.num_edges());
    for (const Edge& e : g.edges()) {
      const auto& dids = decoded->second;
      const int i = static_cast<int>(
          std::lower_bound(dids.begin(), dids.end(), ids.id_of(e.u)) -
          dids.begin());
      const int j = static_cast<int>(
          std::lower_bound(dids.begin(), dids.end(), ids.id_of(e.v)) -
          dids.begin());
      EXPECT_TRUE(decoded->first.has_edge(i, j));
    }
  }
}

TEST(UniversalTest, CodecRejectsMalformed) {
  EXPECT_FALSE(decode_universal_certificate(Certificate{}).has_value());
  // Non-symmetric matrix.
  EXPECT_FALSE(
      decode_universal_certificate(Certificate{{2, 1, 2, 0b10, 0b00}, 10})
          .has_value());
  // Loop.
  EXPECT_FALSE(
      decode_universal_certificate(Certificate{{2, 1, 2, 0b01, 0b10}, 10})
          .has_value());
  // Unsorted ids.
  EXPECT_FALSE(
      decode_universal_certificate(Certificate{{2, 5, 3, 0b10, 0b01}, 10})
          .has_value());
  // Well-formed K2.
  EXPECT_TRUE(
      decode_universal_certificate(Certificate{{2, 3, 5, 0b10, 0b01}, 10})
          .has_value());
}

TEST(UniversalTest, CompletenessOnAllSmallBipartiteGraphs) {
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  for (int n = 1; n <= 5; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!lcp.in_promise(g)) {
        return true;
      }
      const auto report = check_completeness(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
}

TEST(UniversalTest, StrongSoundnessExhaustiveTiny) {
  // Space = all 2^C(n,2) matrices over the instance's ids; full sweep on
  // all connected graphs with <= 3 nodes (8^n labelings each).
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  for_each_connected_graph(3, [&](const Graph& g) {
    const auto report =
        check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
    return true;
  });
}

TEST(UniversalTest, StrongSoundnessRandomizedOddCycles) {
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  Rng rng(5150);
  for (const Graph& g : {make_cycle(5), make_complete(4)}) {
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 400, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(UniversalTest, WrongTopologyClaimRejected) {
  // Certify P4 but hand out C4's matrix: the endpoint nodes' real degree
  // (1) mismatches the claimed row degree (2).
  const Graph path = make_path(4);
  const Graph cycle = make_cycle(4);
  Instance inst = Instance::canonical(path);
  const Certificate wrong = make_universal_certificate(cycle, inst.ids);
  Labeling labels(4);
  for (Node v = 0; v < 4; ++v) {
    labels.at(v) = wrong;
  }
  inst.labels = std::move(labels);
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  const auto verdicts = lcp.decoder().run(inst);
  EXPECT_FALSE(verdicts[0]);
  EXPECT_FALSE(verdicts[3]);
}

TEST(UniversalTest, NotHidingExtractorExists) {
  // The anti-hiding pole: the exhaustive neighborhood graph is
  // 2-colorable and the extractor succeeds -- certificates of size
  // O(n^2) certify bipartiteness and reveal everything.
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  std::vector<Graph> graphs;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  EnumOptions options;
  options.all_id_orders = true;
  auto nbhd = build_proved(lcp, graphs, options);
  EXPECT_TRUE(nbhd.k_colorable(2));
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 2);
  ASSERT_TRUE(extractor.has_value());
  for (const Graph& g : graphs) {
    Instance inst = Instance::canonical(g);
    inst.labels = *lcp.prove(g, inst.ports, inst.ids);
    const auto colors = extractor->run(inst);
    ASSERT_TRUE(colors.has_value());
    for (const Edge& e : g.edges()) {
      EXPECT_NE((*colors)[static_cast<std::size_t>(e.u)],
                (*colors)[static_cast<std::size_t>(e.v)]);
    }
  }
}

TEST(UniversalTest, QuadraticCertificateSize) {
  const UniversalLcp lcp = make_universal_bipartiteness_lcp();
  int prev = 0;
  for (int n : {4, 8, 16}) {
    const Graph g = make_path(n);
    Instance inst = Instance::canonical(g);
    const int bits = lcp.prove(g, inst.ports, inst.ids)->max_bits();
    EXPECT_GE(bits, n * n);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(UniversalTest, OtherPredicates) {
  // The scheme is generic: certify "is a tree" and "has a triangle".
  const UniversalLcp tree_lcp(
      [](const Graph& g) {
        return is_connected(g) && g.num_edges() == g.num_nodes() - 1;
      },
      "tree");
  const Graph t = make_star(4);
  Instance inst = Instance::canonical(t);
  inst.labels = *tree_lcp.prove(t, inst.ports, inst.ids);
  EXPECT_TRUE(tree_lcp.decoder().accepts_all(inst));
  EXPECT_FALSE(tree_lcp.in_promise(make_cycle(4)));
}

}  // namespace
}  // namespace shlcp
