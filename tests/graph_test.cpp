// Unit tests for the graph substrate: Graph operations and the exact
// algorithms (bipartiteness with odd-cycle witnesses, k-coloring,
// distances, components, paths, cycle finding).

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), CheckError);
  EXPECT_TRUE(g.add_edge_if_absent(0, 2));
  EXPECT_FALSE(g.add_edge_if_absent(0, 2));
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_THROW(g.remove_edge(0, 1), CheckError);
}

TEST(GraphTest, Loop) {
  Graph g(2);
  g.add_loop(0);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, MinMaxDegree) {
  const Graph g = make_star(4);
  EXPECT_EQ(g.min_degree(), 1);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(GraphTest, EdgesList) {
  Graph g(3);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

TEST(GraphTest, InducedSubgraph) {
  const Graph g = make_cycle(5);
  std::vector<Node> keep{0, 1, 2, 4};
  std::vector<Node> old_of_new;
  const Graph sub = g.induced_subgraph(keep, &old_of_new);
  EXPECT_EQ(sub.num_nodes(), 4);
  // Edges kept: 0-1, 1-2, 4-0 (as local 3-0).
  EXPECT_EQ(sub.num_edges(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_TRUE(sub.has_edge(0, 3));
  EXPECT_EQ(old_of_new, keep);
}

TEST(GraphTest, Equality) {
  EXPECT_EQ(make_path(4), make_path(4));
  EXPECT_FALSE(make_path(4) == make_cycle(4));
}

TEST(AlgorithmsTest, BfsDistancesPath) {
  const Graph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AlgorithmsTest, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(AlgorithmsTest, BfsMultiSource) {
  const Graph g = make_path(7);
  const auto d = bfs_distances_multi(g, {0, 6});
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[5], 1);
}

TEST(AlgorithmsTest, Components) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  EXPECT_EQ(num_components(g), 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(make_cycle(4)));
}

TEST(AlgorithmsTest, BipartitePath) {
  const auto res = check_bipartite(make_path(6));
  ASSERT_TRUE(res.bipartite());
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_NE(res.coloring[static_cast<std::size_t>(i)],
              res.coloring[static_cast<std::size_t>(i + 1)]);
  }
}

TEST(AlgorithmsTest, OddCycleWitness) {
  const auto res = check_bipartite(make_cycle(5));
  ASSERT_FALSE(res.bipartite());
  const auto& cycle = res.odd_cycle;
  ASSERT_GE(cycle.size(), 4u);
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_EQ((cycle.size() - 1) % 2, 1u);  // odd number of edges
  EXPECT_TRUE(is_walk(make_cycle(5), cycle));
}

TEST(AlgorithmsTest, OddCycleWitnessInBiggerGraph) {
  // A bipartite component plus a triangle hanging off a path.
  Graph g(7);
  g.add_edge(0, 1);  // bipartite piece
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 4);  // triangle 4-5-6
  const auto res = check_bipartite(g);
  ASSERT_FALSE(res.bipartite());
  EXPECT_TRUE(is_odd_closed_walk(g, res.odd_cycle));
}

TEST(AlgorithmsTest, SelfLoopIsOddCycle) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_loop(1);
  const auto res = check_bipartite(g);
  EXPECT_FALSE(res.bipartite());
}

TEST(AlgorithmsTest, KColoringBasics) {
  EXPECT_TRUE(k_coloring(make_cycle(6), 2).has_value());
  EXPECT_FALSE(k_coloring(make_cycle(5), 2).has_value());
  EXPECT_TRUE(k_coloring(make_cycle(5), 3).has_value());
  EXPECT_FALSE(k_coloring(make_complete(4), 3).has_value());
  EXPECT_TRUE(k_coloring(make_complete(4), 4).has_value());
}

TEST(AlgorithmsTest, KColoringIsProper) {
  const Graph g = make_complete_bipartite(3, 4);
  const auto col = k_coloring(g, 2);
  ASSERT_TRUE(col.has_value());
  for (const Edge& e : g.edges()) {
    EXPECT_NE((*col)[static_cast<std::size_t>(e.u)],
              (*col)[static_cast<std::size_t>(e.v)]);
  }
}

TEST(AlgorithmsTest, KColoringDeterministic) {
  // The coloring is a pure function of the graph (fixed DSATUR
  // tie-breaking) -- Lemma 3.2's extractor depends on this.
  const auto a = k_coloring(make_path(4), 2);
  const auto b = k_coloring(make_path(4), 2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
  const auto c = k_coloring(make_grid(3, 3), 3);
  const auto d = k_coloring(make_grid(3, 3), 3);
  EXPECT_EQ(*c, *d);
}

TEST(AlgorithmsTest, ChromaticNumber) {
  EXPECT_EQ(chromatic_number(make_path(5)), 2);
  EXPECT_EQ(chromatic_number(make_cycle(5)), 3);
  EXPECT_EQ(chromatic_number(make_complete(5)), 5);
  EXPECT_EQ(chromatic_number(make_grid(3, 3)), 2);
}

TEST(AlgorithmsTest, Diameter) {
  EXPECT_EQ(diameter(make_path(6)), 5);
  EXPECT_EQ(diameter(make_cycle(8)), 4);
  EXPECT_EQ(diameter(make_complete(4)), 1);
  EXPECT_EQ(diameter(make_grid(3, 4)), 5);
}

TEST(AlgorithmsTest, ShortestPath) {
  const Graph g = make_cycle(6);
  const auto path = shortest_path(g, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ(path->front(), 0);
  EXPECT_EQ(path->back(), 3);
  EXPECT_TRUE(is_walk(g, *path));
}

TEST(AlgorithmsTest, ShortestPathAvoiding) {
  const Graph g = make_cycle(6);
  // Avoid node 1: the path 0..3 must go the other way around.
  const auto path = shortest_path_avoiding(g, 0, 3, {1});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[1], 5);
  // Avoiding both neighbors of 0 disconnects it.
  EXPECT_FALSE(shortest_path_avoiding(g, 0, 3, {1, 5}).has_value());
}

TEST(AlgorithmsTest, CycleSpaceDimension) {
  EXPECT_EQ(cycle_space_dimension(make_path(5)), 0);
  EXPECT_EQ(cycle_space_dimension(make_cycle(5)), 1);
  EXPECT_EQ(cycle_space_dimension(make_theta(2, 2, 2)), 2);
  EXPECT_EQ(cycle_space_dimension(make_grid(3, 3)), 4);
}

TEST(AlgorithmsTest, FindCycleInComponent) {
  const auto cycle = find_cycle_in_component(make_cycle(7), 2);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_GE(cycle->size(), 4u);
  EXPECT_TRUE(is_walk(make_cycle(7), *cycle));

  EXPECT_FALSE(find_cycle_in_component(make_path(7), 2).has_value());
}

TEST(AlgorithmsTest, FindCycleDistinctNodes) {
  const Graph g = make_theta(2, 3, 4);
  const auto cycle = find_cycle_in_component(g, 0);
  ASSERT_TRUE(cycle.has_value());
  // All nodes distinct except the endpoints.
  std::vector<Node> interior(cycle->begin(), cycle->end() - 1);
  std::sort(interior.begin(), interior.end());
  EXPECT_EQ(std::adjacent_find(interior.begin(), interior.end()),
            interior.end());
}

TEST(AlgorithmsTest, Ball) {
  const Graph g = make_path(7);
  EXPECT_EQ(ball(g, 3, 0), (std::vector<Node>{3}));
  EXPECT_EQ(ball(g, 3, 2), (std::vector<Node>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ball(g, 0, 10).size(), 7u);
}

TEST(AlgorithmsTest, WalkPredicates) {
  const Graph g = make_cycle(4);
  EXPECT_TRUE(is_walk(g, {0, 1, 2, 3, 0}));
  EXPECT_FALSE(is_walk(g, {0, 2}));
  EXPECT_FALSE(is_odd_closed_walk(g, {0, 1, 2, 3, 0}));
  // Closed walks in bipartite graphs are always even.
  EXPECT_FALSE(is_odd_closed_walk(g, {0, 1, 2, 3, 0, 1, 0}));
  const Graph tri = make_cycle(3);
  EXPECT_TRUE(is_odd_closed_walk(tri, {0, 1, 2, 0}));
  EXPECT_TRUE(is_odd_closed_walk(tri, {0, 1, 0, 1, 2, 0}));
}

// Property sweep: random graphs' 2-coloring results agree with the
// odd-cycle witness, and witnesses are genuine.
class RandomGraphBipartiteTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphBipartiteTest, WitnessesAreConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 20; ++rep) {
    const int n = rng.next_int(2, 12);
    const Graph g = make_random_graph(n, 1, 3, rng);
    const auto res = check_bipartite(g);
    if (res.bipartite()) {
      for (const Edge& e : g.edges()) {
        EXPECT_NE(res.coloring[static_cast<std::size_t>(e.u)],
                  res.coloring[static_cast<std::size_t>(e.v)]);
      }
      EXPECT_TRUE(is_k_colorable(g, 2));
    } else {
      EXPECT_TRUE(is_odd_closed_walk(g, res.odd_cycle));
      EXPECT_FALSE(is_k_colorable(g, 2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphBipartiteTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace shlcp
