// Tests for the Lemma 5.4/5.2 walk surgery -- the complete Section 5
// engine, run end to end against the cheating watermelon decoder on
// 1-forgetful C8 hosts:
//
//   odd cycle in V(D, n)
//     -> forgetting detours spliced per edge (Lemma 5.4)
//     -> per-identifier component consistency verified
//     -> identifier components separated (Lemma 5.2/5.3 blocks)
//     -> Lemma 5.1 merge into G_bad
//     -> decoder accepts the whole walk, accepting set non-bipartite.
//
// And negatively: on the C4/C6 witness family (too small for detours)
// the surgery reports exactly which hypothesis is missing.

#include <gtest/gtest.h>

#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/properties.h"
#include "lower/realize.h"
#include "lower/surgery.h"
#include "lower/walks.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"

namespace shlcp {
namespace {

class SurgeryFixture : public ::testing::Test {
 protected:
  WatermelonLcp cheat_{WatermelonVariant::kNoPortCheck};

  /// Builds the neighborhood graph and keeps the instance list aligned
  /// with the provenance indices.
  NbhdGraph build(const std::vector<Instance>& instances) {
    NbhdGraph nbhd;
    for (const Instance& inst : instances) {
      nbhd.absorb(cheat_.decoder(), inst, 2);
    }
    return nbhd;
  }
};

TEST_F(SurgeryFixture, ProvenanceRecorded) {
  const auto instances = no_port_check_c8_witnesses();
  const auto nbhd = build(instances);
  EXPECT_EQ(nbhd.num_instances_absorbed(), 3);
  for (int i = 0; i < nbhd.num_views(); ++i) {
    const Provenance& p = nbhd.view_provenance(i);
    EXPECT_GE(p.instance, 0);
    EXPECT_LT(p.instance, 3);
    // The recorded node really realizes the view.
    const Instance& inst = instances[static_cast<std::size_t>(p.instance)];
    EXPECT_TRUE(inst.view_of(p.node, 1, false) == nbhd.view(i));
  }
  for (const Edge& e : nbhd.graph().edges()) {
    const Provenance* p = nbhd.edge_provenance(e.u, e.v);
    ASSERT_NE(p, nullptr);
    const Instance& inst = instances[static_cast<std::size_t>(p->instance)];
    EXPECT_TRUE(inst.g.has_edge(p->node, p->other));
    EXPECT_TRUE(inst.view_of(p->node, 1, false) ==
                nbhd.view(std::min(e.u, e.v)));
    EXPECT_TRUE(inst.view_of(p->other, 1, false) ==
                nbhd.view(std::max(e.u, e.v)));
  }
}

TEST_F(SurgeryFixture, HostsAreForgetful) {
  for (const Instance& inst : no_port_check_c8_witnesses()) {
    EXPECT_TRUE(is_r_forgetful(inst.g, 1));
    EXPECT_TRUE(is_bipartite(inst.g));
    EXPECT_TRUE(cheat_.decoder().accepts_all(inst));
  }
}

TEST_F(SurgeryFixture, ExpansionProducesOddNonBacktrackingWalk) {
  const auto instances = no_port_check_c8_witnesses();
  const auto nbhd = build(instances);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value());

  const auto result = expand_odd_cycle(nbhd, instances, *cycle, 1);
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.detours, static_cast<int>(cycle->size()) - 1);
  EXPECT_GT(result.walk.size(), cycle->size());
  EXPECT_TRUE(result.walk.front() == result.walk.back());
  EXPECT_EQ((result.walk.size() - 1) % 2, 1u);
  // Every view of the expanded walk is an accepting view of V.
  for (const View& v : result.walk) {
    EXPECT_NE(nbhd.index_of(v), -1);
  }
  // Consecutive views are V-adjacent (the walk lives inside V).
  for (std::size_t i = 0; i + 1 < result.walk.size(); ++i) {
    const int a = nbhd.index_of(result.walk[i]);
    const int b = nbhd.index_of(result.walk[i + 1]);
    EXPECT_TRUE(a == b ? nbhd.graph().has_edge(a, a)
                       : nbhd.graph().has_edge(a, b));
  }
}

TEST_F(SurgeryFixture, ExpandedWalkIsIdConsistent) {
  const auto instances = no_port_check_c8_witnesses();
  const auto nbhd = build(instances);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value());
  const auto result = expand_odd_cycle(nbhd, instances, *cycle, 1);
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(check_walk_id_consistency(result.walk), "");
}

TEST_F(SurgeryFixture, FullSection5EngineEndToEnd) {
  const auto instances = no_port_check_c8_witnesses();
  const auto nbhd = build(instances);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value());

  // Lemma 5.4.
  const auto expanded = expand_odd_cycle(nbhd, instances, *cycle, 1);
  ASSERT_TRUE(expanded.ok) << expanded.failure;

  // Lemma 5.2/5.3: separate identifier components.
  Ident new_bound = 0;
  const auto separated = separate_id_components(expanded.walk, &new_bound);
  ASSERT_EQ(separated.size(), expanded.walk.size());
  EXPECT_GT(new_bound, 0);

  // Lemma 5.1: merge into G_bad.
  const MergeResult merged = merge_views_by_id(separated, new_bound);
  ASSERT_TRUE(merged.ok) << merged.conflict;

  // The decoder ignores identifier values, so every separated view is
  // still accepted inside G_bad.
  const auto verify =
      verify_realization(cheat_.decoder(), merged.instance, separated);
  EXPECT_TRUE(verify.ok) << verify.failure;

  // Conclusion of Theorem 1.5's engine: strong soundness violated.
  const auto accepting = cheat_.decoder().accepting_set(merged.instance);
  EXPECT_FALSE(is_bipartite(merged.instance.g.induced_subgraph(accepting)));
}

TEST_F(SurgeryFixture, SmallHostsLackDetours) {
  // The C4/C6 family: C4 has diameter 2, so no node escapes both
  // endpoints' radius-1 balls -- the surgery must fail with a diagnostic
  // naming the missing hypothesis.
  const auto instances = no_port_check_witnesses();
  const auto nbhd = build(instances);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value());
  const auto result = expand_odd_cycle(nbhd, instances, *cycle, 1);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("forgetting detour"), std::string::npos);
}

TEST_F(SurgeryFixture, SeparationPreservesOrderBetweenOldIds) {
  const auto instances = no_port_check_c8_witnesses();
  const auto nbhd = build(instances);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value());
  const auto expanded = expand_odd_cycle(nbhd, instances, *cycle, 1);
  ASSERT_TRUE(expanded.ok);
  Ident new_bound = 0;
  const auto separated = separate_id_components(expanded.walk, &new_bound);
  // Within every view, the relative order of ids is preserved.
  for (std::size_t p = 0; p < separated.size(); ++p) {
    const auto& before = expanded.walk[p].ids;
    const auto& after = separated[p].ids;
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      for (std::size_t j = 0; j < before.size(); ++j) {
        EXPECT_EQ(before[i] < before[j], after[i] < after[j]);
      }
    }
  }
}

TEST(SurgeryInputTest, RejectsEvenCycles) {
  NbhdGraph nbhd;
  const auto result =
      expand_odd_cycle(nbhd, {}, std::vector<int>{0, 1, 0, 1, 0}, 1);
  EXPECT_FALSE(result.ok);  // 4 edges: even
}

}  // namespace
}  // namespace shlcp
