// HTTP gateway tests: the incremental parser's edge cases (split
// feeds, oversized bodies, chunked refusal, header caps, malformed
// lines) and the served gateway end to end over an ephemeral TCP port
// (healthz, routed ops, keep-alive reuse with a warm cache, pipelined
// ordering, Connection: close, drain). The wire mapping pinned here is
// the one OPERATIONS.md documents: every response body is a full
// shlcp.svc.v1 envelope and the status code is derived from its error
// code.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/http.h"
#include "service/server.h"
#include "service/service.h"
#include "util/json.h"

namespace shlcp::svc {
namespace {

// ---------------------------------------------------------------------
// Parser unit tests.

HttpParser::Next feed_one(HttpParser& parser, std::string_view bytes,
                          HttpRequest* request, int* status,
                          std::string* error) {
  parser.feed(bytes);
  return parser.next(request, status, error);
}

TEST(HttpParser, ParsesPostWithBodyAndCustomHeaders) {
  HttpParser parser;
  HttpRequest request;
  int status = 0;
  std::string error;
  const std::string raw =
      "POST /v1/check_coloring HTTP/1.1\r\n"
      "Content-Length: 8\r\n"
      "X-Shlcp-Deadline-Ms: 250\r\n"
      "X-Shlcp-Check: fnv:0123456789abcdef\r\n"
      "\r\n"
      "{\"k\": 2}";
  ASSERT_EQ(feed_one(parser, raw, &request, &status, &error),
            HttpParser::Next::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/check_coloring");
  EXPECT_EQ(request.body, "{\"k\": 2}");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_EQ(request.deadline_ms, 250u);
  EXPECT_EQ(request.check, "fnv:0123456789abcdef");
  EXPECT_EQ(parser.next(&request, &status, &error),
            HttpParser::Next::kNeedMore);
}

TEST(HttpParser, SplitFeedsAssembleOneRequest) {
  // The head and body arrive in single-byte reads: every prefix must be
  // kNeedMore, the final byte completes the request.
  const std::string raw =
      "GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  HttpParser parser;
  HttpRequest request;
  int status = 0;
  std::string error;
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(feed_one(parser, raw.substr(i, 1), &request, &status, &error),
              HttpParser::Next::kNeedMore)
        << "prefix length " << i + 1;
  }
  ASSERT_EQ(feed_one(parser, raw.substr(raw.size() - 1), &request, &status,
                     &error),
            HttpParser::Next::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
}

TEST(HttpParser, PipelinedRequestsComeBackInOrder) {
  HttpParser parser;
  HttpRequest request;
  int status = 0;
  std::string error;
  parser.feed(
      "POST /v1/a HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
      "POST /v1/b HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
  ASSERT_EQ(parser.next(&request, &status, &error),
            HttpParser::Next::kRequest);
  EXPECT_EQ(request.target, "/v1/a");
  ASSERT_EQ(parser.next(&request, &status, &error),
            HttpParser::Next::kRequest);
  EXPECT_EQ(request.target, "/v1/b");
  EXPECT_EQ(parser.next(&request, &status, &error),
            HttpParser::Next::kNeedMore);
}

TEST(HttpParser, OversizedBodyFailsWith413) {
  HttpParser parser(/*max_body_bytes=*/64);
  HttpRequest request;
  int status = 0;
  std::string error;
  ASSERT_EQ(feed_one(parser,
                     "POST /v1/x HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
                     &request, &status, &error),
            HttpParser::Next::kError);
  EXPECT_EQ(status, 413);
  EXPECT_TRUE(parser.failed());
  // The failure is sticky: later bytes are swallowed, never parsed
  // into fresh requests (the error reply was already emitted once).
  ASSERT_EQ(feed_one(parser, "GET / HTTP/1.1\r\n\r\n", &request, &status,
                     &error),
            HttpParser::Next::kNeedMore);
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, HeaderBlockPastCapFailsWith431) {
  HttpParser parser;
  HttpRequest request;
  int status = 0;
  std::string error;
  std::string raw = "GET / HTTP/1.1\r\n";
  raw += "X-Filler: " + std::string(kMaxHttpHeaderBytes, 'x') + "\r\n";
  ASSERT_EQ(feed_one(parser, raw, &request, &status, &error),
            HttpParser::Next::kError);
  EXPECT_EQ(status, 431);
}

TEST(HttpParser, ChunkedTransferEncodingFailsWith501) {
  HttpParser parser;
  HttpRequest request;
  int status = 0;
  std::string error;
  ASSERT_EQ(feed_one(parser,
                     "POST /v1/x HTTP/1.1\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n",
                     &request, &status, &error),
            HttpParser::Next::kError);
  EXPECT_EQ(status, 501);
}

TEST(HttpParser, MalformedRequestLineFailsWith400) {
  for (const char* raw : {
           "NOT A REQUEST LINE AT ALL EXTRA\r\n\r\n",
           "GET /\r\n\r\n",                          // missing version
           "GET / SPDY/3\r\n\r\n",                   // not HTTP/1.x
           "POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
           "POST / HTTP/1.1\r\nX-Shlcp-Deadline-Ms: soon\r\n\r\n",
       }) {
    HttpParser parser;
    HttpRequest request;
    int status = 0;
    std::string error;
    ASSERT_EQ(feed_one(parser, raw, &request, &status, &error),
              HttpParser::Next::kError)
        << raw;
    EXPECT_EQ(status, 400) << raw;
  }
}

TEST(HttpParser, ConnectionHeaderAndVersionResolveKeepAlive) {
  struct Case {
    const char* raw;
    bool keep_alive;
  };
  for (const Case& c : {
           Case{"GET / HTTP/1.1\r\n\r\n", true},
           Case{"GET / HTTP/1.0\r\n\r\n", false},
           Case{"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
           Case{"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
       }) {
    HttpParser parser;
    HttpRequest request;
    int status = 0;
    std::string error;
    ASSERT_EQ(feed_one(parser, c.raw, &request, &status, &error),
              HttpParser::Next::kRequest)
        << c.raw;
    EXPECT_EQ(request.keep_alive, c.keep_alive) << c.raw;
  }
}

// ---------------------------------------------------------------------
// Gateway end to end.

/// serve_http on 127.0.0.1:0 in a thread; the fixture tears the server
/// down through the cancel token and asserts the drain exit code.
class HttpGateway : public ::testing::Test {
 protected:
  void SetUp() override { boot(); }

  /// Spawns the gateway with the current options_. Split out of SetUp
  /// so subclasses can tune admission caps before booting.
  void boot() {
    options_.cancel = &token_;
    options_.num_threads = 2;
    options_.bound_port = &port_;
    server_ = std::thread(
        [this] { exit_code_ = serve_http("127.0.0.1", 0, options_); });
    for (int i = 0; i < 500 && port_.load() == 0; ++i) {
      ::usleep(10'000);
    }
    ASSERT_GT(port_.load(), 0) << "gateway never bound";
  }

  void TearDown() override {
    token_.request_stop(StopReason::kCancelRequested);
    server_.join();
    EXPECT_EQ(exit_code_, 0);
  }

  int connect_fd() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_.load()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  static void send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Consumes exactly one response (headers, then Content-Length body)
  /// from the front of `wire`, reading more from `fd` as needed. Bytes
  /// past the response stay in `wire` -- pipelined responses arrive in
  /// one TCP segment, so per-call buffering would silently drop them.
  /// Returns false on EOF before a complete response.
  static bool read_response(int fd, std::string* wire, int* status,
                            std::string* headers, std::string* body) {
    std::size_t head_end = wire->find("\r\n\r\n");
    while (head_end == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        return false;
      }
      wire->append(chunk, static_cast<std::size_t>(n));
      head_end = wire->find("\r\n\r\n");
    }
    *headers = wire->substr(0, head_end + 4);
    *status = std::atoi(headers->c_str() + headers->find(' ') + 1);
    const std::size_t cl = headers->find("Content-Length: ");
    EXPECT_NE(cl, std::string::npos) << *headers;
    const std::size_t length = static_cast<std::size_t>(
        std::atoll(headers->c_str() + cl + std::strlen("Content-Length: ")));
    while (wire->size() < head_end + 4 + length) {
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        return false;
      }
      wire->append(chunk, static_cast<std::size_t>(n));
    }
    *body = wire->substr(head_end + 4, length);
    wire->erase(0, head_end + 4 + length);
    return true;
  }

  CancelToken token_;
  ServerOptions options_;
  std::atomic<int> port_{0};
  std::thread server_;
  int exit_code_ = -1;
};

TEST_F(HttpGateway, HealthzAnswersTheHealthOp) {
  const int fd = connect_fd();
  send_all(fd, "GET /healthz HTTP/1.1\r\n\r\n");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  const Json resp = Json::parse(body);
  EXPECT_TRUE(resp.at("ok").as_bool()) << body;
  EXPECT_FALSE(resp.at("result").at("draining").as_bool());
  ::close(fd);
}

TEST_F(HttpGateway, KeepAliveReusesTheConnectionAndTheCache) {
  const int fd = connect_fd();
  const std::string post =
      "POST /v1/check_coloring HTTP/1.1\r\n"
      "Content-Length: 28\r\n\r\n"
      "{\"instance\":\"cycle6\",\"k\":2}\n";
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;

  send_all(fd, post);
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  const Json first = Json::parse(body);
  EXPECT_TRUE(first.at("ok").as_bool()) << body;
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_TRUE(first.at("result").at("colorable").as_bool());

  // Same connection, same payload: the artifact cache must answer and
  // the result must be byte-identical.
  send_all(fd, post);
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  const Json second = Json::parse(body);
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("result").dump(), first.at("result").dump());
  ::close(fd);
}

TEST_F(HttpGateway, PipelinedRequestsAnswerInOrder) {
  const int fd = connect_fd();
  // An unroutable request, a real op, and healthz, written back to
  // back: the canned 404 must not jump the queue.
  send_all(fd,
           "GET /nowhere HTTP/1.1\r\n\r\n"
           "POST /v1/check_coloring HTTP/1.1\r\n"
           "Content-Length: 27\r\n\r\n"
           "{\"instance\":\"path5\",\"k\":2}\n"
           "GET /healthz HTTP/1.1\r\n\r\n");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(Json::parse(body).at("error").at("code").as_string(),
            "unknown_op");
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(Json::parse(body).at("result").at("colorable").as_bool());
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(Json::parse(body).at("ok").as_bool());
  ::close(fd);
}

TEST_F(HttpGateway, UnknownRouteKeepsTheConnectionUsable) {
  const int fd = connect_fd();
  send_all(fd, "GET /bogus HTTP/1.1\r\n\r\n");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 404);
  // A 404 is a routing miss, not a protocol violation: the next request
  // on the same connection must still be served.
  send_all(fd, "GET /healthz HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  ::close(fd);
}

TEST_F(HttpGateway, UnknownOpIs404WithTheWireErrorBody) {
  const int fd = connect_fd();
  send_all(fd,
           "POST /v1/frobnicate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(Json::parse(body).at("error").at("code").as_string(),
            "unknown_op");
  ::close(fd);
}

TEST_F(HttpGateway, BadParamsBodyIs400) {
  const int fd = connect_fd();
  send_all(fd,
           "POST /v1/check_coloring HTTP/1.1\r\n"
           "Content-Length: 9\r\n\r\nnot json!");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 400);
  EXPECT_EQ(Json::parse(body).at("error").at("code").as_string(),
            "invalid_request");
  ::close(fd);
}

TEST_F(HttpGateway, ConnectionCloseIsHonored) {
  const int fd = connect_fd();
  send_all(fd, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(headers.find("Connection: close"), std::string::npos);
  // The server closes after the response: the next read must be EOF.
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
}

/// The gateway with a per-connection in-flight cap of one: the second
/// of two pipelined requests is always shed.
class HttpGatewayShed : public HttpGateway {
 protected:
  void SetUp() override {
    options_.conn_inflight_max = 1;
    boot();
  }
};

TEST_F(HttpGatewayShed, ShedIs429WithRetryAfterConsistentWithTheBody) {
  // Two pipelined POSTs arrive in one segment; with conn_inflight_max=1
  // both are admitted-or-shed in the same poll round, so the second is
  // refused deterministically -- no timing involved. The HTTP mapping
  // under test: status 429, a Retry-After header in *integral seconds*,
  // and the header agreeing (ceiling division) with the JSONL envelope's
  // retry_after_ms for the very same shed decision.
  const int fd = connect_fd();
  const std::string body_json =
      "{\"instance\": \"cycle6\", \"k\": 2}";
  const std::string post =
      "POST /v1/check_coloring HTTP/1.1\r\nContent-Length: " +
      std::to_string(body_json.size()) + "\r\n\r\n" + body_json;
  send_all(fd, post + post);

  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 200) << body;

  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 429) << body;
  const Json envelope = Json::parse(body);
  ASSERT_FALSE(envelope.at("ok").as_bool());
  const Json& error = envelope.at("error");
  EXPECT_EQ(error.at("code").as_string(), "overloaded");
  ASSERT_TRUE(error.contains("retry_after_ms"));
  const std::int64_t retry_after_ms = error.at("retry_after_ms").as_int();
  EXPECT_GT(retry_after_ms, 0);

  const std::size_t at = headers.find("Retry-After: ");
  ASSERT_NE(at, std::string::npos) << headers;
  const std::size_t value_start = at + std::strlen("Retry-After: ");
  const std::size_t value_end = headers.find("\r\n", value_start);
  ASSERT_NE(value_end, std::string::npos);
  const std::string value =
      headers.substr(value_start, value_end - value_start);
  ASSERT_FALSE(value.empty());
  for (const char c : value) {
    EXPECT_TRUE(c >= '0' && c <= '9')
        << "Retry-After must be integral seconds, got '" << value << "'";
  }
  EXPECT_EQ(std::atoll(value.c_str()), (retry_after_ms + 999) / 1000);
  ::close(fd);
}

TEST_F(HttpGateway, OversizedBodyIs413AndCloses) {
  // The fixture's server runs with the default frame cap; claim more
  // than that and the parser refuses at the header stage.
  const int fd = connect_fd();
  send_all(fd, "POST /v1/x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
  int status = 0;
  std::string wire;
  std::string headers;
  std::string body;
  ASSERT_TRUE(read_response(fd, &wire, &status, &headers, &body));
  EXPECT_EQ(status, 413);
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
}

}  // namespace
}  // namespace shlcp::svc
