// Unit tests for the views module: the exact visibility rule of Section
// 2.2 (Fig. 2's invisible edge), canonical equality, anonymization,
// radius-1 subviews, and the Section 5.1 compatibility predicate (Fig. 7).

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lcp/instance.h"
#include "views/canonical.h"
#include "views/compat.h"
#include "views/extract.h"

namespace shlcp {
namespace {

Instance labeled_instance(Graph g) {
  Instance inst = Instance::canonical(std::move(g));
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    inst.labels.at(v) = Certificate{{100 + v}, 8};
  }
  return inst;
}

TEST(ViewsTest, Radius0IsJustTheCenter) {
  const Instance inst = labeled_instance(make_path(4));
  const View v = inst.view_of(1, 0, false);
  EXPECT_EQ(v.num_nodes(), 1);
  EXPECT_EQ(v.center, 0);
  EXPECT_EQ(v.center_id(), 2);
  EXPECT_EQ(v.center_label().fields[0], 101);
}

TEST(ViewsTest, Radius1IsTheStar) {
  const Instance inst = labeled_instance(make_cycle(5));
  const View v = inst.view_of(0, 1, false);
  EXPECT_EQ(v.num_nodes(), 3);
  EXPECT_EQ(v.center_degree(), 2);
  // No edge between the two neighbors is visible even though 1 and 4 are
  // both at distance 1 from each other... (they are not adjacent in C5;
  // check the rule on a triangle instead below).
  EXPECT_EQ(v.g.num_edges(), 2);
}

TEST(ViewsTest, BoundaryEdgeInvisibleOnTriangle) {
  // In a triangle at radius 1, both neighbors are at distance 1 = r, so
  // the edge between them is NOT visible (Fig. 2's rule).
  const Instance inst = labeled_instance(make_cycle(3));
  const View v = inst.view_of(0, 1, false);
  EXPECT_EQ(v.num_nodes(), 3);
  EXPECT_EQ(v.g.num_edges(), 2);
  EXPECT_EQ(v.g.degree(v.center), 2);
}

TEST(ViewsTest, BoundaryEdgeVisibleAtRadius2) {
  const Instance inst = labeled_instance(make_cycle(3));
  const View v = inst.view_of(0, 2, false);
  EXPECT_EQ(v.g.num_edges(), 3);
}

TEST(ViewsTest, Fig2StyleInvisibleEdgeOnC5) {
  // C5 at radius 2 from node 0: nodes 2 and 3 are both at distance 2; the
  // edge {2, 3} must be invisible.
  const Instance inst = labeled_instance(make_cycle(5));
  const View v = inst.view_of(0, 2, false);
  EXPECT_EQ(v.num_nodes(), 5);
  EXPECT_EQ(v.g.num_edges(), 4);
  const Node n2 = v.local_node_of_id(3);  // node 2 has id 3
  const Node n3 = v.local_node_of_id(4);
  ASSERT_NE(n2, -1);
  ASSERT_NE(n3, -1);
  EXPECT_FALSE(v.g.has_edge(n2, n3));
  EXPECT_EQ(v.dist[static_cast<std::size_t>(n2)], 2);
  EXPECT_EQ(v.dist[static_cast<std::size_t>(n3)], 2);
}

TEST(ViewsTest, WholeGraphAtLargeRadius) {
  const Instance inst = labeled_instance(make_grid(3, 3));
  const View v = inst.view_of(4, 10, false);
  EXPECT_EQ(v.num_nodes(), 9);
  EXPECT_EQ(v.g.num_edges(), inst.g.num_edges());
}

TEST(ViewsTest, PortsPreserved) {
  Rng rng(31);
  Instance inst = labeled_instance(make_star(4));
  inst.ports = PortAssignment::random(inst.g, rng);
  const View v = inst.view_of(0, 1, false);
  for (const Node w : v.g.neighbors(v.center)) {
    const Ident wid = v.ids[static_cast<std::size_t>(w)];
    const Node global_w = inst.ids.node_of(wid);
    EXPECT_EQ(v.port(v.center, w), inst.ports.port(inst.g, 0, global_w));
    EXPECT_EQ(v.port(w, v.center), inst.ports.port(inst.g, global_w, 0));
  }
}

TEST(ViewsTest, EqualityReflexiveAndLabelSensitive) {
  const Instance inst = labeled_instance(make_path(5));
  const View a = inst.view_of(2, 1, false);
  const View b = inst.view_of(2, 1, false);
  EXPECT_TRUE(a == b);

  Instance other = inst;
  other.labels.at(1) = Certificate{{999}, 8};
  const View c = other.view_of(2, 1, false);
  EXPECT_FALSE(a == c);
}

TEST(ViewsTest, EqualityIdSensitiveUnlessAnonymized) {
  Instance inst = labeled_instance(make_path(5));
  Instance renamed = inst;
  renamed.ids = IdAssignment::from_vector({5, 4, 3, 2, 1}, 5);
  const View a = inst.view_of(2, 1, false);
  const View b = renamed.view_of(2, 1, false);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.anonymized() == b.anonymized());
}

TEST(ViewsTest, AnonymizedStripsEverything) {
  const Instance inst = labeled_instance(make_cycle(4));
  const View v = inst.view_of(1, 2, false).anonymized();
  EXPECT_TRUE(v.anonymous());
  EXPECT_EQ(v.id_bound, 0);
}

TEST(ViewsTest, SymmetricNodesHaveEqualAnonymousViews) {
  // All nodes of a uniformly-labeled cycle with canonical ports look alike
  // up to ids... canonical ports on a cycle are NOT symmetric (node 0's
  // neighbors sort differently), so use the same node twice and distinct
  // nodes on a vertex-transitive port assignment instead: interior path
  // nodes share the same structure.
  Instance inst = Instance::canonical(make_path(6));
  for (Node v = 0; v < 6; ++v) {
    inst.labels.at(v) = Certificate{{7}, 3};
  }
  const View a = inst.view_of(2, 1, true);
  const View b = inst.view_of(3, 1, true);
  EXPECT_TRUE(a == b);
  // An endpoint looks different.
  const View c = inst.view_of(0, 1, true);
  EXPECT_FALSE(a == c);
}

TEST(ViewsTest, CanonicalOrderStartsAtCenter) {
  const Instance inst = labeled_instance(make_grid(2, 3));
  const View v = inst.view_of(4, 2, false);
  const auto order = canonical_order(v);
  EXPECT_EQ(order.front(), v.center);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(v.num_nodes()));
}

TEST(ViewsTest, RemappedIds) {
  const Instance inst = labeled_instance(make_path(3));
  const View v = inst.view_of(1, 1, false);
  const View w = v.with_remapped_ids({{1, 10}, {2, 20}, {3, 30}}, 99);
  EXPECT_EQ(w.center_id(), 20);
  EXPECT_EQ(w.id_bound, 99);
  EXPECT_FALSE(v == w);
  // Remapping back restores equality.
  const View v2 = w.with_remapped_ids({{10, 1}, {20, 2}, {30, 3}}, 3);
  EXPECT_TRUE(v == v2);
}

TEST(ViewsTest, SubviewRadius1MatchesDirectExtraction) {
  const Instance inst = labeled_instance(make_grid(3, 3));
  const View big = inst.view_of(4, 2, false);
  for (Node x = 0; x < big.num_nodes(); ++x) {
    if (big.dist[static_cast<std::size_t>(x)] >= big.radius) {
      continue;
    }
    const Ident id = big.ids[static_cast<std::size_t>(x)];
    const Node global = inst.ids.node_of(id);
    const View direct = inst.view_of(global, 1, false);
    EXPECT_TRUE(subview_radius1(big, x) == direct)
        << "subview mismatch at id " << id;
  }
}

TEST(CompatTest, SelfCompatibility) {
  const Instance inst = labeled_instance(make_grid(3, 3));
  const View a = inst.view_of(4, 2, false);
  EXPECT_TRUE(node_compatible(a, a.center, a));
}

TEST(CompatTest, NeighborsInSameInstanceAreCompatible) {
  // Fig. 7's spirit: views of nearby nodes in one instance are compatible
  // with respect to the shared nodes.
  const Instance inst = labeled_instance(make_grid(3, 4));
  for (const Edge& e : inst.g.edges()) {
    const View mu1 = inst.view_of(e.u, 2, false);
    const View mu2 = inst.view_of(e.v, 2, false);
    EXPECT_TRUE(compatible_at_id(mu1, inst.ids.id_of(e.v), mu2));
    EXPECT_TRUE(compatible_at_id(mu2, inst.ids.id_of(e.u), mu1));
  }
}

TEST(CompatTest, WrongIdNotCompatible) {
  const Instance inst = labeled_instance(make_path(6));
  const View mu1 = inst.view_of(2, 2, false);
  const View mu2 = inst.view_of(3, 2, false);
  // Node with id 1 in mu1 is not the center of mu2 (id 4).
  EXPECT_FALSE(compatible_at_id(mu1, 1, mu2));
}

TEST(CompatTest, ConflictingInteriorDetected) {
  // Two instances that disagree on a shared interior node's label.
  Instance a = labeled_instance(make_path(6));
  Instance b = labeled_instance(make_path(6));
  b.labels.at(2) = Certificate{{555}, 8};
  const View mu1 = a.view_of(2, 2, false);   // centered at id 3
  const View mu2 = b.view_of(3, 2, false);   // centered at id 4, sees id 3
  // mu1's node with id 4 claims compatibility with mu2's center, but the
  // interior node id 3 has different radius-1 views (labels differ).
  EXPECT_FALSE(compatible_at_id(mu1, 4, mu2));
}

// ---------------------------------------------------------------------------
// The order-invariant pre-canonical fingerprint (views/canonical.h).

TEST(FingerprintTest, EqualViewsHaveEqualFingerprints) {
  // Equal views with potentially different local index layouts (two
  // symmetric centers) must fingerprint identically -- the value is
  // invariant under local reindexing by construction.
  Instance inst = Instance::canonical(make_path(6));
  for (Node v = 0; v < 6; ++v) {
    inst.labels.at(v) = Certificate{{7}, 3};
  }
  const View a = inst.view_of(2, 1, true);
  const View b = inst.view_of(3, 1, true);
  ASSERT_TRUE(a == b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), view_fingerprint(a));
}

TEST(FingerprintTest, CachedOnceAndInvalidated) {
  const Instance inst = labeled_instance(make_path(4));
  View v = inst.view_of(1, 1, false);
  EXPECT_FALSE(v.fingerprint_cached());
  const std::uint64_t fp = v.fingerprint();
  EXPECT_TRUE(v.fingerprint_cached());
  EXPECT_EQ(v.fingerprint(), fp);
  // The mutating copiers drop the cache and re-derive a different value
  // (ids are part of the fingerprint).
  const View anon = v.anonymized();
  EXPECT_FALSE(anon.fingerprint_cached());
  EXPECT_NE(anon.fingerprint(), fp);
}

TEST(FingerprintTest, SensitiveToLabelsIdsAndDistances) {
  const Instance inst = labeled_instance(make_path(5));
  Instance other = inst;
  other.labels.at(1) = Certificate{{999}, 8};
  EXPECT_NE(inst.view_of(2, 1, false).fingerprint(),
            other.view_of(2, 1, false).fingerprint());
  EXPECT_NE(inst.view_of(2, 1, false).fingerprint(),
            inst.view_of(2, 1, true).fingerprint());  // anonymized
  EXPECT_NE(inst.view_of(2, 1, false).fingerprint(),
            inst.view_of(2, 2, false).fingerprint());  // radius
}

/// A hand-built radius-1 anonymous path view 0 - center - 2 whose two
/// edges carry the given (center-side, far-side) port pairs. Per-node
/// port *multisets* depend only on the four values, but the *pairing*
/// of center port to far port is structural.
View port_path_view(Port c0, Port f0, Port c2, Port f2) {
  View v;
  v.g = Graph(3);
  v.g.add_edge(0, 1);
  v.g.add_edge(1, 2);
  v.center = 1;
  v.radius = 1;
  v.dist = {1, 0, 1};
  v.ids = {-1, -1, -1};
  v.labels = std::vector<Certificate>(3);
  v.id_bound = 0;
  // Parallel to g.neighbors(x): node 0 sees {1}, node 1 sees {0, 2},
  // node 2 sees {1}.
  v.ports = {{f0}, {c0, c2}, {f2}};
  return v;
}

TEST(FingerprintTest, CollidingDistinctViewsStayDistinct) {
  // The fingerprint deliberately ignores how cross-edge port pairs line
  // up, so these two views collide: both have one neighbor carrying port
  // 0 and one carrying port 1, but A pairs center-port 0 with far-port 1
  // while B pairs center-port 0 with far-port 0. The exact comparisons
  // must still tell them apart -- this is the collision case the
  // NbhdGraph dedup chains exist for.
  const View a = port_path_view(/*c0=*/0, /*f0=*/1, /*c2=*/1, /*f2=*/0);
  const View b = port_path_view(/*c0=*/0, /*f0=*/0, /*c2=*/1, /*f2=*/1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_FALSE(views_structurally_equal(a, b));
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.canonical(), b.canonical());
}

TEST(FingerprintTest, StructurallyEqualAgreesWithCanonicalCodes) {
  // Cross-check the two exact comparisons against each other over a mix
  // of equal and unequal pairs.
  const Instance inst = labeled_instance(make_cycle(5));
  std::vector<View> views;
  for (Node v = 0; v < 5; ++v) {
    views.push_back(inst.view_of(v, 1, false));
    views.push_back(inst.view_of(v, 2, true));
  }
  for (const View& a : views) {
    for (const View& b : views) {
      EXPECT_EQ(views_structurally_equal(a, b), a.canonical() == b.canonical());
    }
  }
}

TEST(ViewsTest, ToStringSmoke) {
  const Instance inst = labeled_instance(make_path(3));
  const View v = inst.view_of(1, 1, false);
  const std::string s = v.to_string();
  EXPECT_NE(s.find("center"), std::string::npos);
  EXPECT_NE(s.find("cert"), std::string::npos);
}

}  // namespace
}  // namespace shlcp
