// Tests for the Section 5.2 walk machinery: lifting, non-backtracking
// checks, non-backtracking pathfinding, and the Lemma 5.4 forgetting
// detour, whose hypotheses (r-forgetfulness, min degree 2, enough
// diameter) are probed one by one -- this is where Theorem 1.5's
// assumptions become executable (experiment E10's ingredient half).

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lower/walks.h"

namespace shlcp {
namespace {

TEST(WalksTest, LiftWalk) {
  const Instance inst = Instance::canonical(make_cycle(6));
  const std::vector<Node> walk{0, 1, 2, 3};
  const auto views = lift_walk(inst, walk, 1, false);
  ASSERT_EQ(views.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(views[i].center_id(), inst.ids.id_of(walk[i]));
  }
}

TEST(WalksTest, NonBacktrackingPredicate) {
  const Instance inst = Instance::canonical(make_cycle(6));
  const auto good = lift_walk(inst, {0, 1, 2, 3}, 1, false);
  EXPECT_TRUE(is_non_backtracking_walk(good, false));
  const auto bad = lift_walk(inst, {0, 1, 0}, 1, false);
  EXPECT_FALSE(is_non_backtracking_walk(bad, false));
  // Closed wrap-around: 0,1,2,...,5,0 around the cycle is fine;
  // 0,1,0 closed is not.
  const auto closed = lift_walk(inst, {0, 1, 2, 3, 4, 5, 0}, 1, false);
  EXPECT_TRUE(is_non_backtracking_walk(closed, true));
  const auto pendulum = lift_walk(inst, {0, 1, 2, 1, 0}, 1, false);
  EXPECT_FALSE(is_non_backtracking_walk(pendulum, false));
}

TEST(WalksTest, NonBacktrackingPath) {
  const Graph g = make_cycle(8);
  const auto path = non_backtracking_path(g, 0, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(is_walk(g, *path));
  EXPECT_EQ(path->front(), 0);
  EXPECT_EQ(path->back(), 4);
  for (std::size_t i = 2; i < path->size(); ++i) {
    EXPECT_NE((*path)[i], (*path)[i - 2]);
  }
}

TEST(WalksTest, NonBacktrackingPathBanFirst) {
  const Graph g = make_cycle(8);
  // From 0 to 1, banned from stepping to 1 first: must go the long way.
  const auto path = non_backtracking_path(g, 0, 1, /*ban_first=*/1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 8u);
  EXPECT_EQ((*path)[1], 7);
}

TEST(WalksTest, NonBacktrackingPathImpossibleOnTree) {
  const Graph g = make_path(5);
  // Dead-ends cannot be escaped without reversing.
  EXPECT_FALSE(non_backtracking_path(g, 2, 0, /*ban_first=*/1).has_value());
}

TEST(WalksTest, ForgettingDetourOnTorus) {
  // 6x6 torus, r = 1: every edge admits the Lemma 5.4 closed walk.
  const Graph g = make_torus(6, 6);
  ASSERT_TRUE(is_r_forgetful(g, 1));
  const Instance inst = Instance::canonical(g);
  int built = 0;
  for (const Edge& e : g.edges()) {
    const auto detour = forgetting_detour(inst, e.u, e.v, 1);
    if (!detour.has_value()) {
      continue;
    }
    ++built;
    // Closed, even (bipartite host), non-backtracking, starting u -> v.
    EXPECT_EQ(detour->front(), e.u);
    EXPECT_EQ(detour->back(), e.u);
    EXPECT_EQ((*detour)[1], e.v);
    EXPECT_TRUE(is_walk(g, *detour));
    EXPECT_EQ((detour->size() - 1) % 2, 0u);
    const auto views = lift_walk(inst, *detour, 1, false);
    EXPECT_TRUE(is_non_backtracking_walk(views, true));
    // The walk reaches a node whose radius-1 ball avoids both endpoints'
    // balls.
    const auto du = bfs_distances(g, e.u);
    const auto dv = bfs_distances(g, e.v);
    bool far_enough = false;
    for (const Node x : *detour) {
      if (du[static_cast<std::size_t>(x)] > 2 && dv[static_cast<std::size_t>(x)] > 2) {
        far_enough = true;
      }
    }
    EXPECT_TRUE(far_enough);
  }
  EXPECT_EQ(built, g.num_edges());
}

TEST(WalksTest, ForgettingDetourOnTorusRadius2) {
  const Graph g = make_torus(12, 12);
  ASSERT_TRUE(is_r_forgetful(g, 2));
  const Instance inst = Instance::canonical(g);
  const auto detour = forgetting_detour(inst, 0, 1, 2);
  ASSERT_TRUE(detour.has_value());
  EXPECT_TRUE(is_walk(g, *detour));
  EXPECT_EQ((detour->size() - 1) % 2, 0u);  // bipartite torus
}

TEST(WalksTest, ForgettingDetourNeedsMinDegree2) {
  // Pendant vertices kill step 4/5 of the construction.
  const Instance inst = Instance::canonical(make_path(12));
  EXPECT_FALSE(forgetting_detour(inst, 5, 6, 1).has_value());
}

TEST(WalksTest, ForgettingDetourNeedsDiameter) {
  // K4: 1-forgetfulness fails and no far node exists.
  const Instance inst = Instance::canonical(make_complete(4));
  EXPECT_FALSE(forgetting_detour(inst, 0, 1, 1).has_value());
}

TEST(WalksTest, ForgettingDetourNeedsForgetfulness) {
  // C6 is NOT 1-forgetful at distance... actually C6 has diameter 3 >= 3;
  // escape paths exist (the cycle continues away), but no node is at
  // distance > 2 from both endpoints of an edge: the far-node search
  // fails.
  const Instance inst = Instance::canonical(make_cycle(6));
  EXPECT_FALSE(forgetting_detour(inst, 0, 1, 1).has_value());
  // C8 has nodes at distance 3/4: it works.
  const Instance big = Instance::canonical(make_cycle(8));
  EXPECT_TRUE(forgetting_detour(big, 0, 1, 1).has_value());
}

TEST(WalksTest, SpliceClosedWalk) {
  const Graph g = make_cycle(6);
  const std::vector<Node> walk{0, 1, 2};
  const std::vector<Node> detour{1, 2, 1};
  const auto spliced = splice_closed_walk(walk, 1, detour);
  EXPECT_EQ(spliced, (std::vector<Node>{0, 1, 2, 1, 2}));
  EXPECT_TRUE(is_walk(g, spliced));
}

TEST(WalksTest, SpliceValidation) {
  EXPECT_THROW(splice_closed_walk({0, 1}, 0, {1, 0, 1}), CheckError);
  EXPECT_THROW(splice_closed_walk({0, 1}, 0, {0, 1}), CheckError);
}

TEST(WalksTest, DetourPreservesParityWhenSpliced) {
  // Lemma 5.4's purpose: splicing even closed walks preserves the parity
  // of the host walk.
  const Graph g = make_torus(6, 6);
  const Instance inst = Instance::canonical(g);
  const std::vector<Node> base{0, 1, 2, 3};
  const auto detour = forgetting_detour(inst, 1, 2, 1);
  ASSERT_TRUE(detour.has_value());
  const auto spliced = splice_closed_walk(base, 1, *detour);
  EXPECT_TRUE(is_walk(g, spliced));
  EXPECT_EQ((spliced.size() - 1) % 2, (base.size() - 1) % 2);
}

}  // namespace
}  // namespace shlcp
