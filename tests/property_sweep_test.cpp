// Property sweeps: cross-cutting invariants checked on exhaustive tiny
// inputs and seeded random families. These tie modules together the way
// the paper's definitions do -- e.g. views must be invariant under node
// relabeling, the LOCAL engine must agree with direct extraction on
// arbitrary graphs, and the Lemma 5.1 merge must be the inverse of view
// extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/instance.h"
#include "lower/realize.h"
#include "sim/engine.h"
#include "util/combinatorics.h"
#include "util/rng.h"
#include "views/canonical.h"

namespace shlcp {
namespace {

/// Random labeled instance over a random connected graph.
Instance random_instance(int n, Rng& rng) {
  Graph g = make_random_tree(n, rng);
  for (int extra = rng.next_int(0, n); extra > 0; --extra) {
    const Node u = static_cast<Node>(rng.next_below(static_cast<std::uint64_t>(n)));
    const Node v = static_cast<Node>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) {
      g.add_edge_if_absent(u, v);
    }
  }
  Instance inst;
  inst.ports = PortAssignment::random(g, rng);
  inst.ids = IdAssignment::random(g, 3 * n, rng);
  Labeling labels(n);
  for (Node v = 0; v < n; ++v) {
    labels.at(v) = Certificate{{rng.next_int(0, 4), rng.next_int(0, 4)}, 6};
  }
  inst.labels = std::move(labels);
  inst.g = std::move(g);
  return inst;
}

/// Applies a node permutation to an instance (perm[old] = new index).
Instance relabel(const Instance& inst, const std::vector<int>& perm) {
  const int n = inst.num_nodes();
  Graph g(n);
  for (const Edge& e : inst.g.edges()) {
    g.add_edge(perm[static_cast<std::size_t>(e.u)],
               perm[static_cast<std::size_t>(e.v)]);
  }
  std::vector<std::vector<Port>> ports(static_cast<std::size_t>(n));
  std::vector<Ident> ids(static_cast<std::size_t>(n));
  Labeling labels(n);
  for (Node v = 0; v < n; ++v) {
    const Node nv = perm[static_cast<std::size_t>(v)];
    ids[static_cast<std::size_t>(nv)] = inst.ids.id_of(v);
    labels.at(nv) = inst.labels.at(v);
    const auto nb = g.neighbors(nv);
    std::vector<Port> pl(nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      // The old neighbor corresponding to nb[i].
      Node old_w = -1;
      for (Node w = 0; w < n; ++w) {
        if (perm[static_cast<std::size_t>(w)] == nb[i]) {
          old_w = w;
          break;
        }
      }
      pl[i] = inst.ports.port(inst.g, v, old_w);
    }
    ports[static_cast<std::size_t>(nv)] = std::move(pl);
  }
  Instance out;
  out.g = std::move(g);
  out.ports = PortAssignment::from_lists(out.g, std::move(ports));
  out.ids = IdAssignment::from_vector(std::move(ids), inst.ids.bound());
  out.labels = std::move(labels);
  return out;
}

class SeededSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeededSweep, ViewsInvariantUnderRelabeling) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const Instance inst = random_instance(rng.next_int(3, 9), rng);
  const auto perm = random_permutation(inst.num_nodes(), rng);
  const Instance moved = relabel(inst, perm);
  for (int r = 1; r <= 2; ++r) {
    for (Node v = 0; v < inst.num_nodes(); ++v) {
      const Node nv = perm[static_cast<std::size_t>(v)];
      EXPECT_TRUE(inst.view_of(v, r, false) == moved.view_of(nv, r, false))
          << "identified views differ under relabeling";
      EXPECT_TRUE(inst.view_of(v, r, true) == moved.view_of(nv, r, true))
          << "anonymous views differ under relabeling";
    }
  }
}

TEST_P(SeededSweep, ViewDistancesMatchBfs) {
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const Instance inst = random_instance(rng.next_int(4, 10), rng);
  const int r = rng.next_int(1, 3);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const View view = inst.view_of(v, r, false);
    const auto dist = bfs_distances(inst.g, v);
    for (Node x = 0; x < view.num_nodes(); ++x) {
      const Node global = inst.ids.node_of(view.ids[static_cast<std::size_t>(x)]);
      EXPECT_EQ(view.dist[static_cast<std::size_t>(x)],
                dist[static_cast<std::size_t>(global)]);
      EXPECT_LE(view.dist[static_cast<std::size_t>(x)], r);
    }
  }
}

TEST_P(SeededSweep, EngineAgreesWithExtractionOnRandomGraphs) {
  Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  const Instance inst = random_instance(rng.next_int(3, 10), rng);
  const int r = rng.next_int(1, 3);
  SyncEngine engine(inst);
  engine.run(r);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    EXPECT_TRUE(engine.view_of(v, r) == inst.view_of(v, r, false));
  }
}

TEST_P(SeededSweep, MergeInvertsExtraction) {
  Rng rng(400 + static_cast<std::uint64_t>(GetParam()));
  const Instance inst = random_instance(rng.next_int(3, 9), rng);
  if (!is_connected(inst.g)) {
    return;
  }
  std::vector<View> views;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    views.push_back(inst.view_of(v, 2, false));
  }
  const MergeResult merged = merge_views_by_id(views, inst.ids.bound());
  ASSERT_TRUE(merged.ok) << merged.conflict;
  ASSERT_EQ(merged.instance.num_nodes(), inst.num_nodes());
  // Every view re-extracts identically.
  for (const View& v : views) {
    const Node node = merged.instance.ids.node_of(v.center_id());
    ASSERT_NE(node, -1);
    EXPECT_TRUE(merged.instance.view_of(node, 2, false) == v);
  }
}

TEST_P(SeededSweep, CanonicalCodeSeparatesLabelChanges) {
  Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  Instance inst = random_instance(rng.next_int(3, 8), rng);
  const Node v = static_cast<Node>(
      rng.next_below(static_cast<std::uint64_t>(inst.num_nodes())));
  const View before = inst.view_of(v, 1, false);
  inst.labels.at(v) = Certificate{{777}, 10};
  const View after = inst.view_of(v, 1, false);
  EXPECT_FALSE(before == after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededSweep, ::testing::Range(0, 10));

TEST(ExhaustiveSweep, BipartiteCheckMatchesBacktrackingColoring) {
  for (int n = 1; n <= 5; ++n) {
    for_each_graph(n, [&](const Graph& g) {
      EXPECT_EQ(check_bipartite(g).bipartite(), k_coloring(g, 2).has_value());
      return true;
    });
  }
}

TEST(ExhaustiveSweep, ShatterRecognizerMatchesDefinition) {
  // Cross-validate shatter_points against a direct recomputation.
  for_each_connected_graph(5, [&](const Graph& g) {
    const auto pts = shatter_points(g);
    for (Node v = 0; v < g.num_nodes(); ++v) {
      std::vector<Node> keep;
      const auto nb = g.neighbors(v);
      for (Node u = 0; u < g.num_nodes(); ++u) {
        if (u != v && !std::binary_search(nb.begin(), nb.end(), u)) {
          keep.push_back(u);
        }
      }
      const bool expect_shatter =
          keep.size() >= 2 && num_components(g.induced_subgraph(keep)) >= 2;
      const bool found =
          std::find(pts.begin(), pts.end(), v) != pts.end();
      EXPECT_EQ(found, expect_shatter);
    }
    return true;
  });
}

TEST(ExhaustiveSweep, WatermelonGeneratorRecognizerRoundTrip) {
  Rng rng(77);
  for (int rep = 0; rep < 25; ++rep) {
    const int k = rng.next_int(1, 4);
    std::vector<int> lengths;
    for (int i = 0; i < k; ++i) {
      lengths.push_back(rng.next_int(2, 5));
    }
    const Graph g = make_watermelon(lengths);
    const auto dec = watermelon_decomposition(g);
    ASSERT_TRUE(dec.has_value());
    std::vector<int> found;
    for (const auto& path : dec->paths) {
      found.push_back(static_cast<int>(path.size()) - 1);
    }
    std::sort(found.begin(), found.end());
    std::sort(lengths.begin(), lengths.end());
    EXPECT_EQ(found, lengths);
  }
}

TEST(ExhaustiveSweep, PortAssignmentCountMatchesFactorials) {
  Rng rng(88);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = make_random_graph(5, 1, 2, rng);
    std::uint64_t expected = 1;
    for (Node v = 0; v < g.num_nodes(); ++v) {
      expected *= factorial(g.degree(v));
    }
    std::uint64_t count = 0;
    for_each_port_assignment(g, [&](const PortAssignment&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, expected);
  }
}

TEST(ExhaustiveSweep, EvenCyclesAreExactlyTheBipartite2RegularConnected) {
  for_each_connected_graph(6, [&](const Graph& g) {
    const bool expect = g.num_nodes() >= 3 && g.min_degree() == 2 &&
                        g.max_degree() == 2 && is_bipartite(g);
    EXPECT_EQ(is_even_cycle(g), expect);
    return true;
  });
}

}  // namespace
}  // namespace shlcp
