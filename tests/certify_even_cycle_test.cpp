// Lemma 4.2 (even-cycle LCP): completeness over all even cycles / ports /
// phases, exhaustive strong soundness (16 certificates per node) on all
// graphs up to 4 nodes and on the critical odd cycles, anonymity, and the
// hiding property via the Figs. 5/6 witness family.

#include <gtest/gtest.h>

#include "certify/even_cycle.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(EvenCycleTest, PromisePredicate) {
  const EvenCycleLcp lcp;
  EXPECT_TRUE(lcp.in_promise(make_cycle(4)));
  EXPECT_TRUE(lcp.in_promise(make_cycle(10)));
  EXPECT_FALSE(lcp.in_promise(make_cycle(5)));
  EXPECT_FALSE(lcp.in_promise(make_path(6)));
  EXPECT_FALSE(lcp.in_promise(make_theta(2, 2, 2)));
}

class EvenCycleCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(EvenCycleCompletenessTest, AllPortsAccept) {
  const EvenCycleLcp lcp;
  const Graph g = make_cycle(GetParam());
  for_each_port_assignment(g, [&](const PortAssignment& ports) {
    Instance inst;
    inst.g = g;
    inst.ports = ports;
    inst.ids = IdAssignment::consecutive(g);
    inst.labels = Labeling(g.num_nodes());
    const auto report = check_completeness(lcp, inst);
    EXPECT_TRUE(report.ok) << report.failure;
    return report.ok;
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, EvenCycleCompletenessTest,
                         ::testing::Values(4, 6, 8));

TEST(EvenCycleTest, BothPhasesAccepted) {
  const Graph g = make_cycle(6);
  const auto ports = PortAssignment::canonical(g);
  const EvenCycleLcp lcp;
  for (int phase = 0; phase <= 1; ++phase) {
    Instance inst;
    inst.g = g;
    inst.ports = ports;
    inst.ids = IdAssignment::consecutive(g);
    inst.labels = even_cycle_labeling(g, ports, phase);
    EXPECT_TRUE(lcp.decoder().accepts_all(inst));
  }
}

TEST(EvenCycleTest, StrongSoundnessExhaustiveTinyGraphs) {
  // 16^n labelings; all connected graphs on up to 4 nodes (16^4 = 65536
  // per graph) -- exact sweep including the triangle.
  const EvenCycleLcp lcp;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      const auto report =
          check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
}

TEST(EvenCycleTest, StrongSoundnessExhaustiveOddCycle5) {
  // The decisive no-instance: C5 with the full 16^5 labeling sweep.
  const EvenCycleLcp lcp;
  const auto report =
      check_strong_soundness_exhaustive(lcp, Instance::canonical(make_cycle(5)));
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.cases, 1048576u);
}

TEST(EvenCycleTest, SoundnessExhaustiveOddCycle5) {
  const EvenCycleLcp lcp;
  const auto report =
      check_soundness_exhaustive(lcp, Instance::canonical(make_cycle(5)));
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(EvenCycleTest, StrongSoundnessRandomizedLarger) {
  const EvenCycleLcp lcp;
  Rng rng(55);
  for (const Graph& g : {make_cycle(7), make_cycle(9), make_theta(2, 3, 3),
                         make_grid(3, 3)}) {
    Instance inst;
    inst.g = g;
    inst.ports = PortAssignment::random(g, rng);
    inst.ids = IdAssignment::consecutive(g);
    inst.labels = Labeling(g.num_nodes());
    const auto report = check_strong_soundness_random(lcp, inst, 400, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(EvenCycleTest, NonDegree2NodesReject) {
  const EvenCycleLcp lcp;
  // Path endpoints have degree 1: no certificate can make them accept.
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  for (const Certificate& c :
       lcp.certificate_space(g, inst.ids, 0)) {
    inst.labels.at(0) = c;
    EXPECT_FALSE(
        lcp.decoder().accept(lcp.decoder().input_view(inst, 0)));
  }
}

TEST(EvenCycleTest, ColorAgreementAcrossEdgeRequired) {
  const EvenCycleLcp lcp;
  const Graph g = make_cycle(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  // Flip one color in node 2's certificate: both 2 and a neighbor reject.
  Certificate c = inst.labels.at(2);
  c.fields[2] ^= 1;
  c.fields[5] ^= 1;  // keep cA != cB
  inst.labels.at(2) = c;
  const auto verdicts = lcp.decoder().run(inst);
  EXPECT_FALSE(verdicts[2]);
}

TEST(EvenCycleTest, DecoderIsAnonymous) {
  const EvenCycleLcp lcp;
  Rng rng(21);
  const Graph g = make_cycle(6);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(check_anonymous(lcp.decoder(), inst, 25, rng).ok);
}

TEST(EvenCycleTest, HidingViaFig56Witness) {
  const EvenCycleLcp lcp;
  const auto instances = even_cycle_witnesses(6);
  ASSERT_FALSE(instances.empty());
  const auto nbhd = build_from_instances(lcp.decoder(), instances, 2);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value())
      << "no odd cycle among the witness views: hiding would fail";
  EXPECT_FALSE(nbhd.k_colorable(2));
}

TEST(EvenCycleTest, MatchedPortsGiveSelfLoopWitness) {
  // C4 with "matched" ports (each edge has equal port numbers at both
  // ends) and alternating colors makes every anonymized view identical:
  // V(D, n) then has a self-loop -- two adjacent indistinguishable nodes,
  // the strongest possible hiding witness.
  const Graph g = make_cycle(4);
  // Edges 0-1, 1-2, 2-3, 3-0. Matched ports: 0-1 and 2-3 via port pair
  // (1,1); 1-2 and 3-0 via (2,2).
  std::vector<std::vector<Port>> lists(4);
  // neighbors: 0:{1,3} 1:{0,2} 2:{1,3} 3:{0,2}
  lists[0] = {1, 2};
  lists[1] = {1, 2};
  lists[2] = {2, 1};
  lists[3] = {2, 1};
  Instance inst;
  inst.g = g;
  inst.ports = PortAssignment::from_lists(g, std::move(lists));
  inst.ids = IdAssignment::consecutive(g);
  Labeling labels(4);
  for (Node v = 0; v < 4; ++v) {
    labels.at(v) = make_even_cycle_certificate(1, 0, 2, 1);
  }
  inst.labels = std::move(labels);

  const EvenCycleLcp lcp;
  ASSERT_TRUE(lcp.decoder().accepts_all(inst));
  const auto nbhd = build_from_instances(lcp.decoder(), {inst}, 2);
  EXPECT_EQ(nbhd.num_views(), 1);
  EXPECT_TRUE(nbhd.graph().has_edge(0, 0));  // the self-loop
  EXPECT_FALSE(nbhd.k_colorable(2));
  EXPECT_FALSE(nbhd.k_colorable(5));  // a loop defeats every k
}

TEST(EvenCycleTest, CertificateSizeIsConstant) {
  const EvenCycleLcp lcp;
  for (int n : {4, 12, 30}) {
    const Graph g = make_cycle(n);
    Instance inst = Instance::canonical(g);
    const auto labels = lcp.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    EXPECT_EQ(labels->max_bits(), 6);
  }
}

}  // namespace
}  // namespace shlcp
