// End-to-end Theorem 1.5 pipeline (experiment E10): against the cheating
// watermelon decoder (no far-port reality check) the pipeline runs odd
// cycle -> realization -> verified strong-soundness violation; against
// the honest strong LCPs the realization step must fail -- the mechanical
// reason why watermelon and shatter graphs escape the impossibility.

#include <gtest/gtest.h>

#include "certify/shatter.h"
#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/properties.h"
#include "lower/pipeline.h"
#include "nbhd/witness.h"

namespace shlcp {
namespace {

TEST(PipelineTest, CheatingDecoderDefeatedEndToEnd) {
  const WatermelonLcp cheat(WatermelonVariant::kNoPortCheck);
  const auto result = run_theorem15_pipeline(
      cheat.decoder(), no_port_check_witnesses(), /*id_bound=*/99);

  EXPECT_TRUE(result.hiding_witness_found)
      << "the window instances must produce an odd view cycle";
  EXPECT_TRUE(result.realized) << result.realize_conflict;
  EXPECT_TRUE(result.realization_verified) << result.verify_failure;
  EXPECT_TRUE(result.strong_soundness_violated);

  // The counterexample instance really is non-bipartite on its accepting
  // set and every certificate is a legal watermelon certificate.
  const auto acc = cheat.decoder().accepting_set(result.g_bad);
  EXPECT_FALSE(is_bipartite(result.g_bad.g.induced_subgraph(acc)));
  EXPECT_GE(result.g_bad.num_nodes(), 5);
}

TEST(PipelineTest, StandardWatermelonSurvives) {
  // Same pipeline, honest decoder, the paper's hiding witnesses: the odd
  // cycle exists (hiding!) but no candidate walk realizes -- Theorem 1.4
  // coexists with Theorem 1.5 because these yes-instances are not the
  // r-forgetful min-degree-2 graphs the impossibility needs.
  const WatermelonLcp standard(WatermelonVariant::kStandard);
  const auto result = run_theorem15_pipeline(standard.decoder(),
                                             watermelon_witnesses(), 99);
  EXPECT_TRUE(result.hiding_witness_found);
  EXPECT_FALSE(result.strong_soundness_violated);
  EXPECT_FALSE(result.realized && result.realization_verified);
  EXPECT_FALSE(result.realize_conflict.empty());
}

TEST(PipelineTest, RepairedShatterSurvives) {
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint);
  const auto result = run_theorem15_pipeline(
      lcp.decoder(), shatter_witnesses(/*vector_on_point=*/true), 8);
  EXPECT_TRUE(result.hiding_witness_found);
  EXPECT_FALSE(result.strong_soundness_violated);
}

TEST(PipelineTest, LiteralShatterAlsoDefeatable) {
  // The literal shatter decoder is hiding AND not strongly sound; feed
  // the pipeline instances containing the counterexample structure: C5
  // with pendant claimants, certified as in the test of
  // certify_shatter_test.cpp, plus bipartite instances carrying the same
  // views. Rather than reconstruct those by hand here, verify the weaker
  // mechanical fact: the violation instance from the shatter test is
  // accepted on an odd cycle, i.e. Lemma 5.1's conclusion holds for the
  // hand-built G_bad.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  g.add_edge(1, 5);
  g.add_edge(4, 6);
  Instance inst = Instance::canonical(g);
  const Ident claimed = inst.ids.id_of(5);
  const Ident bound = inst.ids.bound();
  Labeling labels(7);
  labels.at(1) = make_shatter_type1(claimed, {0, 1}, bound);
  labels.at(4) = make_shatter_type1(claimed, {0, 0}, bound);
  labels.at(0) = make_shatter_type2(claimed, 1, 0, bound, 2);
  labels.at(2) = make_shatter_type2(claimed, 2, 1, bound, 2);
  labels.at(3) = make_shatter_type2(claimed, 2, 0, bound, 2);
  labels.at(5) = make_shatter_type0(claimed, {}, bound);
  labels.at(6) = make_shatter_type0(claimed, {}, bound);
  inst.labels = std::move(labels);

  const ShatterLcp literal(ShatterVariant::kLiteral);
  // Extract the odd cycle's views and realize them: the merge must
  // reproduce an instance on which the decoder still accepts the cycle.
  std::vector<View> cycle_views;
  for (Node v : {0, 1, 2, 3, 4, 5}) {
    cycle_views.push_back(inst.view_of(v, 1, false));
  }
  const MergeResult merged = merge_views_by_id(cycle_views, bound);
  ASSERT_TRUE(merged.ok) << merged.conflict;
  const auto report =
      verify_realization(literal.decoder(), merged.instance, cycle_views);
  EXPECT_TRUE(report.ok) << report.failure;
  const auto acc = literal.decoder().accepting_set(merged.instance);
  EXPECT_FALSE(is_bipartite(merged.instance.g.induced_subgraph(acc)));
}

TEST(PipelineTest, OddCycleIndicesAreValid) {
  const WatermelonLcp cheat(WatermelonVariant::kNoPortCheck);
  const auto result = run_theorem15_pipeline(
      cheat.decoder(), no_port_check_witnesses(), 99);
  ASSERT_TRUE(result.hiding_witness_found);
  ASSERT_GE(result.odd_cycle.size(), 2u);
  EXPECT_EQ(result.odd_cycle.front(), result.odd_cycle.back());
  EXPECT_EQ(result.odd_cycle.size() % 2, 0u);  // odd edge count
  for (const int idx : result.odd_cycle) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, result.nbhd.num_views());
  }
}

}  // namespace
}  // namespace shlcp
