// Tests for the LOCAL simulator: the module's central claim is that r
// rounds of the full-information protocol reconstruct exactly the paper's
// radius-r view at every node, for every graph family, radius, port
// assignment, and labeling tried (experiment E13's correctness half).

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/revealing.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/gather.h"
#include "util/rng.h"

namespace shlcp {
namespace {

Instance random_labeled_instance(Graph g, Rng& rng) {
  Instance inst;
  inst.ports = PortAssignment::random(g, rng);
  inst.ids = IdAssignment::random(g, g.num_nodes() * 3, rng);
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    labels.at(v) = Certificate{{rng.next_int(0, 9), rng.next_int(0, 9)}, 8};
  }
  inst.labels = std::move(labels);
  inst.g = std::move(g);
  return inst;
}

TEST(MessageTest, KnowledgeMergeUpgrades) {
  Knowledge kb;
  NodeRecord partial;
  partial.id = 5;
  partial.cert = Certificate{{1}, 2};
  kb.merge_record(partial);
  EXPECT_FALSE(kb.find(5)->complete);

  NodeRecord complete = partial;
  complete.complete = true;
  complete.edges.push_back(EdgeInfo{1, 6, 2});
  kb.merge_record(complete);
  EXPECT_TRUE(kb.find(5)->complete);

  // A later partial does not downgrade.
  kb.merge_record(partial);
  EXPECT_TRUE(kb.find(5)->complete);
  EXPECT_EQ(kb.size(), 1u);
}

TEST(MessageTest, ByteAccounting) {
  Message m;
  NodeRecord r;
  r.id = 1;
  r.cert = Certificate{{1, 2, 3}, 6};
  r.edges.push_back(EdgeInfo{1, 2, 1});
  m.records.push_back(r);
  EXPECT_EQ(m.byte_size(), 4u + encoded_size(r));
  EXPECT_GT(encoded_size(r), 12u);
}

class SimEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SimEquivalenceTest, GatheredViewEqualsDirectExtraction) {
  const int radius = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(radius));
  std::vector<Graph> graphs;
  graphs.push_back(make_path(7));
  graphs.push_back(make_cycle(8));
  graphs.push_back(make_grid(3, 4));
  graphs.push_back(make_star(5));
  graphs.push_back(make_theta(2, 3, 4));
  graphs.push_back(make_random_tree(9, rng));
  for (Graph& g : graphs) {
    const Instance inst = random_labeled_instance(std::move(g), rng);
    SyncEngine engine(inst);
    engine.run(radius);
    for (Node v = 0; v < inst.num_nodes(); ++v) {
      const View direct = inst.view_of(v, radius, false);
      const View gathered = engine.view_of(v, radius);
      EXPECT_TRUE(direct == gathered)
          << "mismatch at node " << v << " radius " << radius
          << "\ndirect:\n" << direct.to_string() << "\ngathered:\n"
          << gathered.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, SimEquivalenceTest, ::testing::Values(1, 2, 3));

TEST(SimTest, StatsCountMessages) {
  const Instance inst = Instance::canonical(make_cycle(6));
  SyncEngine engine(inst);
  engine.run(2);
  // Each round sends one message per directed edge: 2 rounds * 12.
  EXPECT_EQ(engine.stats().messages, 24u);
  EXPECT_GT(engine.stats().bytes, 0u);
  EXPECT_EQ(engine.stats().rounds, 2);
}

TEST(SimTest, TrafficGrowsWithRounds) {
  const Instance inst = Instance::canonical(make_grid(4, 4));
  SyncEngine a(inst);
  a.run(1);
  SyncEngine b(inst);
  b.run(3);
  EXPECT_GT(b.stats().bytes, a.stats().bytes);
}

TEST(SimTest, DistributedDecoderMatchesDirectRun) {
  Rng rng(77);
  const RevealingLcp lcp(2);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = make_random_bipartite(8, 3, rng);
    Instance inst = Instance::canonical(g);
    inst.labels = *lcp.prove(g, inst.ports, inst.ids);
    SimStats stats;
    const auto distributed =
        run_decoder_distributed(lcp.decoder(), inst, &stats);
    EXPECT_EQ(distributed, lcp.decoder().run(inst));
    EXPECT_EQ(stats.rounds, 1);
  }
}

TEST(SimTest, DistributedAnonymousDecoder) {
  const DegreeOneLcp lcp;
  const Graph g = make_double_broom(4, 2, 2);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  const auto verdicts = run_decoder_distributed(lcp.decoder(), inst);
  for (const bool v : verdicts) {
    EXPECT_TRUE(v);
  }
}

TEST(SimTest, CorruptedCertificateDetectedDistributedly) {
  const RevealingLcp lcp(2);
  const Graph g = make_path(6);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  // Corrupt node 3's color to match node 2's.
  inst.labels.at(3) = inst.labels.at(2);
  const auto verdicts = run_decoder_distributed(lcp.decoder(), inst);
  EXPECT_FALSE(verdicts[2]);
  EXPECT_FALSE(verdicts[3]);
}

TEST(SimTest, IsolatedNodeHandled) {
  Graph g(3);
  g.add_edge(0, 1);
  Instance inst = Instance::canonical(g);
  SyncEngine engine(inst);
  engine.run(2);
  const View v = engine.view_of(2, 2);
  EXPECT_EQ(v.num_nodes(), 1);
}

TEST(SimTest, RadiusExceedingDiameterStillMatchesDirectExtraction) {
  // r = 5 on a path of diameter 3: the view saturates at the whole graph
  // and the gathered reconstruction must saturate identically.
  Rng rng(2024);
  const Instance inst = random_labeled_instance(make_path(4), rng);
  SyncEngine engine(inst);
  engine.run(5);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const View direct = inst.view_of(v, 5, false);
    EXPECT_EQ(direct.num_nodes(), 4);
    EXPECT_TRUE(direct == engine.view_of(v, 5)) << "node " << v;
  }
}

TEST(SimTest, IsolatedCenterAtLargeRadius) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Instance inst = Instance::canonical(g);
  SyncEngine engine(inst);
  engine.run(4);
  const View v = engine.view_of(3, 4);
  EXPECT_EQ(v.num_nodes(), 1);
  EXPECT_EQ(v.center_degree(), 0);
  EXPECT_TRUE(v == inst.view_of(3, 4, false));
}

TEST(SimTest, BoundaryEdgeInvisibleInGatheredView) {
  // Triangle at r = 1: both neighbors are visible but the edge between
  // them -- joining two nodes at distance exactly r -- is not (Fig. 2 of
  // the paper). The gathered reconstruction must drop it too.
  const Instance inst = Instance::canonical(make_cycle(3));
  SyncEngine engine(inst);
  engine.run(1);
  for (Node v = 0; v < 3; ++v) {
    const View view = engine.view_of(v, 1);
    EXPECT_EQ(view.num_nodes(), 3);
    EXPECT_EQ(view.g.num_edges(), 2) << "boundary edge leaked at node " << v;
    EXPECT_TRUE(view == inst.view_of(v, 1, false));
  }
}

TEST(SimTest, ThetaBoundaryEdgesMatchDirectExtraction) {
  // Theta graphs are where boundary-edge bookkeeping goes wrong: several
  // internally-disjoint paths put many node pairs at equal distance from
  // a hub, so radius-r views carry multiple invisible edges.
  Rng rng(31337);
  for (const int r : {1, 2}) {
    const Instance inst =
        random_labeled_instance(make_theta(2, 3, 4), rng);
    SyncEngine engine(inst);
    engine.run(r);
    for (Node v = 0; v < inst.num_nodes(); ++v) {
      const View direct = inst.view_of(v, r, false);
      const View gathered = engine.view_of(v, r);
      EXPECT_TRUE(direct == gathered)
          << "node " << v << " radius " << r << "\ndirect:\n"
          << direct.to_string() << "\ngathered:\n" << gathered.to_string();
    }
  }
}

}  // namespace
}  // namespace shlcp
