// Unit tests for the observability layer: the Json helper, the metrics
// registry (counters, gauges, histograms), the trace sink's JSONL
// records, and the determinism contract that the sequential and
// parallel V(D, n) builds publish identical counter values.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "certify/degree_one.h"
#include "graph/generators.h"
#include "lcp/enumerate.h"
#include "nbhd/aviews.h"
#include "util/check.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace shlcp {
namespace {

TEST(JsonTest, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj["int"] = std::int64_t{-42};
  obj["uint"] = std::uint64_t{18446744073709551615ull};
  obj["double"] = 1.5;
  obj["bool"] = true;
  obj["null"] = Json();
  obj["string"] = "line\nbreak \"quoted\" \\slash";
  Json arr = Json::array();
  arr.push_back(std::int64_t{1});
  arr.push_back("two");
  obj["array"] = std::move(arr);

  const Json parsed = Json::parse(obj.dump());
  EXPECT_EQ(parsed.at("int").as_int(), -42);
  EXPECT_EQ(parsed.at("uint").as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed.at("double").as_double(), 1.5);
  EXPECT_TRUE(parsed.at("bool").as_bool());
  EXPECT_TRUE(parsed.at("null").is_null());
  EXPECT_EQ(parsed.at("string").as_string(),
            "line\nbreak \"quoted\" \\slash");
  EXPECT_EQ(parsed.at("array").size(), 2u);
  EXPECT_EQ(parsed.at("array").at(0).as_int(), 1);
  EXPECT_EQ(parsed.at("array").at(1).as_string(), "two");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = std::int64_t{1};
  obj["apple"] = std::int64_t{2};
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), CheckError);
  EXPECT_THROW(Json::parse("[1,]"), CheckError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), CheckError);
  EXPECT_THROW(Json::parse("nul"), CheckError);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  const Json parsed = Json::parse("\"a\\u00e9\\u4e2d\"");
  EXPECT_EQ(parsed.as_string(), "a\xc3\xa9\xe4\xb8\xad");
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  metrics::Counter c;
  constexpr std::size_t kItems = 64 * 1024;
  parallel_for_chunks(4, kItems, 256,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          c.inc();
                        }
                      });
  EXPECT_EQ(c.value(), kItems);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  metrics::Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  metrics::HistogramLayout layout;
  layout.bounds = {10, 100};
  metrics::Histogram h(layout);
  h.record(10);   // bucket 0 (<= 10)
  h.record(11);   // bucket 1
  h.record(100);  // bucket 1 (<= 100)
  h.record(101);  // overflow bucket
  EXPECT_EQ(h.num_buckets(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u + 11u + 100u + 101u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  metrics::Counter& a = metrics::counter("test.registry.same");
  metrics::Counter& b = metrics::counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, ResetValuesZeroesButKeepsRegistration) {
  metrics::Counter& c = metrics::counter("test.registry.reset");
  c.add(5);
  metrics::reset_values();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = metrics::snapshot();
  EXPECT_EQ(snap.counters.count("test.registry.reset"), 1u);
}

TEST(RegistryTest, HistogramLayoutConflictThrows) {
  metrics::histogram("test.registry.layout",
                     metrics::HistogramLayout::duration_ns());
  EXPECT_THROW(metrics::histogram("test.registry.layout",
                                  metrics::HistogramLayout::bytes()),
               CheckError);
}

TEST(SnapshotTest, ToJsonCarriesAllSections) {
  metrics::counter("test.snapshot.c").add(3);
  metrics::gauge("test.snapshot.g").set(-1);
  metrics::histogram("test.snapshot.h").record(2'000'000);
  const Json j = metrics::snapshot().to_json();
  EXPECT_EQ(j.at("counters").at("test.snapshot.c").as_uint(), 3u);
  EXPECT_EQ(j.at("gauges").at("test.snapshot.g").as_int(), -1);
  const Json& h = j.at("histograms").at("test.snapshot.h");
  EXPECT_EQ(h.at("count").as_uint(), 1u);
  EXPECT_EQ(h.at("counts").size(), h.at("bounds").size() + 1);
}

#ifndef SHLCP_NO_TRACE
TEST(TraceTest, SpanAndEventRecordsRoundTripThroughJson) {
  const std::string path = ::testing::TempDir() + "/shlcp_trace_test.jsonl";
  trace::enable(path);
  ASSERT_TRUE(trace::enabled());
  {
    trace::Span span("test.span");
    span.note("answer", std::int64_t{42});
    trace::event("test.event", {{"repro", "replay --seed 7"}});
  }
  trace::disable();
  EXPECT_FALSE(trace::enabled());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  std::map<std::string, Json> by_name;
  std::size_t start = 0;
  while (start < contents.size()) {
    const std::size_t nl = contents.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    Json record = Json::parse(contents.substr(start, nl - start));
    by_name.emplace(record.at("name").as_string(), std::move(record));
    start = nl + 1;
  }

  ASSERT_EQ(by_name.count("test.span"), 1u);
  const Json& span = by_name.at("test.span");
  EXPECT_EQ(span.at("type").as_string(), "span");
  EXPECT_EQ(span.at("attrs").at("answer").as_int(), 42);
  EXPECT_GE(span.at("dur_ns").as_uint(), 0u);

  ASSERT_EQ(by_name.count("test.event"), 1u);
  const Json& event = by_name.at("test.event");
  EXPECT_EQ(event.at("type").as_string(), "event");
  EXPECT_EQ(event.at("attrs").at("repro").as_string(), "replay --seed 7");
}
#endif  // SHLCP_NO_TRACE

// The determinism contract from nbhd/nbhd_graph.h: a sequential build
// and a parallel build of the same V(D, n) must publish identical
// nbhd.* / lcp.enumerate.* counter values (shard-local re-registrations
// must never leak into the registry).
TEST(CounterParityTest, SequentialAndParallelBuildsPublishSameCounters) {
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }

  const auto parity_counters = [] {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, value] : metrics::snapshot().counters) {
      if (name.rfind("nbhd.", 0) == 0 ||
          name.rfind("lcp.enumerate.", 0) == 0) {
        out.emplace(name, value);
      }
    }
    return out;
  };

  EnumOptions seq_options;
  metrics::reset_values();
  const auto seq_nbhd = build_exhaustive(lcp, graphs, seq_options);
  const auto seq = parity_counters();

  ParallelEnumOptions par_options;
  par_options.num_threads = 4;
  par_options.frames_per_chunk = 2;
  metrics::reset_values();
  const auto par_nbhd = build_exhaustive(lcp, graphs, par_options);
  const auto par = parity_counters();

  EXPECT_EQ(seq_nbhd.num_views(), par_nbhd.num_views());
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq.at("nbhd.build.views"),
            static_cast<std::uint64_t>(seq_nbhd.num_views()));
  EXPECT_GT(seq.at("lcp.enumerate.frames"), 0u);
  EXPECT_GT(seq.at("lcp.enumerate.instances"), 0u);
}

}  // namespace
}  // namespace shlcp
