// Tests for the fault-injection layer (sim/faults.h).
//
// The two load-bearing claims: (1) the pass-through contract -- an
// installed FaultyChannel with no fault enabled leaves the execution
// bit-identical to the channel-free engine, so the hook costs nothing on
// the honest path; (2) determinism -- the same (instance, plan) always
// yields the same execution, which is what makes repro strings work.
// Around those: per-fault-class behavior (drops degrade, duplication is
// idempotent, crash-stop degrades exactly the crashed neighborhood,
// degraded nodes never accept) and the describe/parse round-trip.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/revealing.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "util/check.h"

namespace shlcp {
namespace {

Instance honest_revealing_instance(Graph g) {
  const RevealingLcp lcp(2);
  Instance inst = Instance::canonical(std::move(g));
  inst.labels = *lcp.prove(inst.g, inst.ports, inst.ids);
  return inst;
}

TEST(FaultPlanTest, DescribeParseRoundTrip) {
  for (const FaultPlan& plan : FaultPlan::standard_family(0xABCDEF, 7)) {
    EXPECT_EQ(FaultPlan::parse(plan.describe()), plan) << plan.describe();
  }
  FaultPlan custom;
  custom.label = "custom";
  custom.seed = 0xDEADBEEFCAFEULL;
  custom.drop_permille = 42;
  custom.duplicate_permille = 7;
  custom.corrupt_permille = 993;
  custom.crash_nodes = {1, 3, 4};
  custom.crash_round = 2;
  custom.byzantine_nodes = {0, 5};
  EXPECT_EQ(FaultPlan::parse(custom.describe()), custom);
}

TEST(FaultPlanTest, ParseRejectsMalformedDescriptors) {
  EXPECT_THROW(FaultPlan::parse("garbage"), CheckError);
  EXPECT_THROW(FaultPlan::parse("x;seed=1;drop=0;dup=0;corrupt=0"), CheckError);
  EXPECT_THROW(
      FaultPlan::parse("x;seed=1;drop=0;dup=0;corrupt=0;crash=-;byz=-"),
      CheckError);  // crash field missing '@round'
}

TEST(FaultPlanTest, EnabledDetectsEveryFaultClass) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  const auto family = FaultPlan::standard_family(1, 5);
  EXPECT_FALSE(family[0].enabled());  // the fault-free member
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_TRUE(family[i].enabled()) << family[i].label;
  }
}

// Acceptance criterion: the channel hook, when installed with an empty
// plan, is bit-identical to no hook at all -- same traffic totals, same
// reconstructed view at every node, same verdicts.
TEST(PassThroughTest, EmptyPlanIsBitIdentical) {
  Rng rng(404);
  std::vector<Graph> graphs;
  graphs.push_back(make_path(7));
  graphs.push_back(make_cycle(8));
  graphs.push_back(make_grid(3, 3));
  graphs.push_back(make_theta(2, 3, 4));
  for (Graph& g : graphs) {
    const Instance inst = Instance::canonical(std::move(g));
    for (const int radius : {1, 2}) {
      SyncEngine ideal(inst);
      ideal.run(radius);
      FaultPlan none;
      none.seed = rng.next_u64();  // seed must not matter when disabled
      FaultyChannel channel(none);
      SyncEngine hooked(inst, &channel);
      hooked.run(radius);
      EXPECT_EQ(ideal.stats().messages, hooked.stats().messages);
      EXPECT_EQ(ideal.stats().bytes, hooked.stats().bytes);
      EXPECT_EQ(ideal.stats().rounds, hooked.stats().rounds);
      for (Node v = 0; v < inst.num_nodes(); ++v) {
        EXPECT_TRUE(ideal.view_of(v, radius) == hooked.view_of(v, radius))
            << "view mismatch at node " << v << " radius " << radius;
      }
      EXPECT_EQ(channel.stats().dropped, 0u);
      EXPECT_EQ(channel.stats().corrupted_fields, 0u);
    }
  }
}

TEST(PassThroughTest, FaultFreePlanReproducesDistributedRun) {
  const RevealingLcp lcp(2);
  const Instance inst = honest_revealing_instance(make_grid(3, 4));
  SimStats stats;
  const auto ideal = run_decoder_distributed(lcp.decoder(), inst, &stats);
  const FaultyRunResult res =
      run_decoder_distributed_faulty(lcp.decoder(), inst, FaultPlan{});
  EXPECT_EQ(res.verdicts, ideal);
  EXPECT_EQ(res.stats.messages, stats.messages);
  EXPECT_EQ(res.stats.bytes, stats.bytes);
  for (const bool d : res.degraded) {
    EXPECT_FALSE(d);
  }
}

TEST(FaultyRunTest, DropAllDegradesEveryConnectedNode) {
  const RevealingLcp lcp(2);
  const Instance inst = honest_revealing_instance(make_path(5));
  FaultPlan plan;
  plan.label = "drop-all";
  plan.seed = 7;
  plan.drop_permille = 1000;
  const FaultyRunResult res =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_TRUE(res.degraded[i]) << "node " << v;
    EXPECT_FALSE(res.verdicts[i]) << "node " << v;
  }
  EXPECT_EQ(res.stats.messages, 0u);
  EXPECT_EQ(res.stats.bytes, 0u);
  EXPECT_EQ(res.faults.dropped, 8u);  // one per directed edge per round
}

TEST(FaultyRunTest, DuplicationIsIdempotent) {
  const RevealingLcp lcp(2);
  const Instance inst = honest_revealing_instance(make_cycle(6));
  FaultPlan plan;
  plan.label = "dup-all";
  plan.seed = 11;
  plan.duplicate_permille = 1000;
  const FaultyRunResult res =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  // Twice the traffic, identical outcome: knowledge merging and the
  // round-1 arrival-port dedup make redelivery a no-op.
  EXPECT_EQ(res.stats.messages, 24u);
  EXPECT_EQ(res.faults.duplicated, 12u);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_FALSE(res.degraded[i]);
    EXPECT_TRUE(res.verdicts[i]) << "node " << v;
  }
}

TEST(FaultyRunTest, DuplicationPreservesViewsAtRadiusTwo) {
  const Instance inst = Instance::canonical(make_theta(2, 2, 3));
  FaultPlan plan;
  plan.seed = 13;
  plan.duplicate_permille = 1000;
  FaultyChannel channel(plan);
  SyncEngine engine(inst, &channel);
  engine.run(2);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    EXPECT_TRUE(engine.view_of(v, 2) == inst.view_of(v, 2, false))
        << "node " << v;
  }
}

TEST(FaultyRunTest, CrashStopDegradesExactlyTheNeighborhood) {
  const RevealingLcp lcp(2);  // radius 1
  const Instance inst = honest_revealing_instance(make_path(5));
  FaultPlan plan;
  plan.label = "crash-mid";
  plan.seed = 17;
  plan.crash_nodes = {2};
  plan.crash_round = 1;
  const FaultyRunResult res =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  // The crashed node gathers nothing; its neighbors never complete their
  // own record. Nodes at distance >= 2 are untouched at radius 1.
  for (const Node v : {1, 2, 3}) {
    EXPECT_TRUE(res.degraded[static_cast<std::size_t>(v)]) << "node " << v;
    EXPECT_FALSE(res.verdicts[static_cast<std::size_t>(v)]) << "node " << v;
  }
  for (const Node v : {0, 4}) {
    EXPECT_FALSE(res.degraded[static_cast<std::size_t>(v)]) << "node " << v;
    EXPECT_TRUE(res.verdicts[static_cast<std::size_t>(v)]) << "node " << v;
  }
}

TEST(FaultyRunTest, CorruptionNeverYieldsDegradedAcceptance) {
  const RevealingLcp lcp(2);
  const Instance inst = honest_revealing_instance(make_cycle(6));
  FaultPlan plan;
  plan.label = "corrupt-all";
  plan.seed = 23;
  plan.corrupt_permille = 1000;
  const FaultyRunResult res =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  EXPECT_EQ(res.faults.corrupted_fields, res.stats.messages);
  for (std::size_t i = 0; i < res.verdicts.size(); ++i) {
    if (res.degraded[i]) {
      EXPECT_FALSE(res.verdicts[i]) << "degraded node " << i << " accepted";
    }
  }
}

TEST(FaultyRunTest, ByzantineSenderTampersEveryOutgoingMessage) {
  const Instance inst = Instance::canonical(make_cycle(5));
  FaultPlan plan;
  plan.seed = 29;
  plan.byzantine_nodes = {2};
  FaultyChannel channel(plan);
  SyncEngine engine(inst, &channel);
  engine.run(2);
  // Node 2 has two neighbors and sends for two rounds.
  EXPECT_EQ(channel.stats().tampered_messages, 4u);
  EXPECT_GE(channel.stats().corrupted_fields, 4u);
}

TEST(FaultyRunTest, DeterministicReplay) {
  const DegreeOneLcp lcp;
  const Graph g = make_double_broom(3, 2, 2);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  FaultPlan plan;
  plan.label = "mixed";
  plan.seed = 0x5EED;
  plan.drop_permille = 300;
  plan.duplicate_permille = 300;
  plan.corrupt_permille = 400;
  plan.byzantine_nodes = {0};
  const FaultyRunResult a =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  const FaultyRunResult b =
      run_decoder_distributed_faulty(lcp.decoder(), inst, plan);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bytes, b.stats.bytes);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.corrupted_fields, b.faults.corrupted_fields);
  EXPECT_EQ(a.faults.tampered_messages, b.faults.tampered_messages);
}

// Satellite: SimStats byte totals equal the independently summed encoded
// sizes of every delivered message (a recording channel observes each
// delivery before the engine accounts for it).
class RecordingChannel final : public ChannelModel {
 public:
  void deliver(int round, Node from, Node to, Message&& message,
               std::vector<Message>& out) override {
    (void)round;
    (void)from;
    (void)to;
    count_ += 1;
    total_bytes_ += message.byte_size();
    out.push_back(std::move(message));
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t total_bytes_ = 0;
};

TEST(SimStatsTest, ByteTotalsMatchPerMessageEncodedSizes) {
  const Instance inst = honest_revealing_instance(make_grid(3, 3));
  RecordingChannel recorder;
  SyncEngine engine(inst, &recorder);
  engine.run(3);
  EXPECT_EQ(engine.stats().messages, recorder.count());
  EXPECT_EQ(engine.stats().bytes, recorder.total_bytes());
  EXPECT_GT(engine.stats().bytes, 4u * engine.stats().messages);
}

}  // namespace
}  // namespace shlcp
