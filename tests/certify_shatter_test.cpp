// Theorem 1.3 (shatter-point LCP): completeness, strong soundness of the
// repaired (vector-on-point) decoder -- exhaustive on tiny graphs,
// randomized beyond -- the REPRODUCTION FINDING that the literal decoder
// of the brief announcement is not strongly sound (C5 plus two pendant
// type-0 claimants), certificate-size accounting, and the Section 7.1
// P1/P2 hiding witness.

#include <gtest/gtest.h>

#include "certify/shatter.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(ShatterTest, PromisePredicate) {
  const ShatterLcp lcp;
  EXPECT_TRUE(lcp.in_promise(make_path(7)));
  EXPECT_TRUE(lcp.in_promise(make_grid(3, 5)));
  EXPECT_FALSE(lcp.in_promise(make_path(4)));     // no shatter point
  EXPECT_FALSE(lcp.in_promise(make_cycle(5)));    // not bipartite
  EXPECT_FALSE(lcp.in_promise(make_complete(4)));
}

class ShatterVariantTest
    : public ::testing::TestWithParam<ShatterVariant> {};

TEST_P(ShatterVariantTest, CompletenessOnPromiseFamilies) {
  const ShatterLcp lcp(GetParam());
  std::vector<Graph> graphs{make_path(7), make_path(8), make_grid(3, 5),
                            make_double_broom(5, 2, 2)};
  // A spider with three legs of length 2.
  Graph spider(7);
  spider.add_edge(0, 1);
  spider.add_edge(1, 2);
  spider.add_edge(0, 3);
  spider.add_edge(3, 4);
  spider.add_edge(0, 5);
  spider.add_edge(5, 6);
  graphs.push_back(std::move(spider));
  for (const Graph& g : graphs) {
    ASSERT_TRUE(lcp.in_promise(g));
    const auto report = check_completeness(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << lcp.decoder().name() << ": " << report.failure;
  }
}

TEST_P(ShatterVariantTest, CompletenessOnAllSmallPromiseGraphs) {
  const ShatterLcp lcp(GetParam());
  int count = 0;
  for (int n = 5; n <= 6; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!lcp.in_promise(g)) {
        return true;
      }
      ++count;
      const auto report = check_completeness(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
  EXPECT_GT(count, 0);
}

INSTANTIATE_TEST_SUITE_P(Variants, ShatterVariantTest,
                         ::testing::Values(ShatterVariant::kLiteral,
                                           ShatterVariant::kVectorOnPoint));

// THE REPRODUCTION FINDING: the literal decoder accepts an odd cycle.
TEST(ShatterTest, LiteralDecoderViolatesStrongSoundness) {
  // C5 with nodes a(0) - t1(1) - b(2) - c(3) - t2(4) - a(0); pendants
  // w1(5) on t1 and w2(6) on t2. t1 and t2 are NOT adjacent. Components:
  // {a} is component 1 (adjacent to both), {b, c} is component 2.
  Graph g(7);
  g.add_edge(0, 1);  // a - t1
  g.add_edge(1, 2);  // t1 - b
  g.add_edge(2, 3);  // b - c
  g.add_edge(3, 4);  // c - t2
  g.add_edge(4, 0);  // t2 - a
  g.add_edge(1, 5);  // t1 - w1
  g.add_edge(4, 6);  // t2 - w2
  Instance inst = Instance::canonical(g);
  const Ident claimed = inst.ids.id_of(5);  // w1's identifier (= 6)
  const Ident bound = inst.ids.bound();

  Labeling labels(7);
  labels.at(1) = make_shatter_type1(claimed, {0, 1}, bound);  // t1
  labels.at(4) = make_shatter_type1(claimed, {0, 0}, bound);  // t2
  labels.at(0) = make_shatter_type2(claimed, 1, 0, bound, 2);  // a
  labels.at(2) = make_shatter_type2(claimed, 2, 1, bound, 2);  // b
  labels.at(3) = make_shatter_type2(claimed, 2, 0, bound, 2);  // c
  labels.at(5) = make_shatter_type0(claimed, {}, bound);        // w1
  labels.at(6) = make_shatter_type0(claimed, {}, bound);        // w2
  inst.labels = std::move(labels);

  const ShatterLcp literal(ShatterVariant::kLiteral);
  const auto acc = literal.decoder().accepting_set(inst);
  // The entire odd cycle accepts (w2 rejects: its claimed id is not its
  // own, so plain soundness survives -- only STRONG soundness breaks).
  for (Node v : {0, 1, 2, 3, 4}) {
    EXPECT_TRUE(std::find(acc.begin(), acc.end(), v) != acc.end())
        << "node " << v << " unexpectedly rejected";
  }
  const Graph induced = inst.g.induced_subgraph(acc);
  EXPECT_FALSE(is_bipartite(induced))
      << "expected the literal decoder to accept an odd cycle";

  // The repaired decoder kills the same labeling (certificates parse
  // differently, so build the equivalent vector-on-point labeling).
  Labeling repaired(7);
  repaired.at(1) = make_shatter_type1(claimed, {}, bound);
  repaired.at(4) = make_shatter_type1(claimed, {}, bound);
  repaired.at(0) = make_shatter_type2(claimed, 1, 0, bound, 2);
  repaired.at(2) = make_shatter_type2(claimed, 2, 1, bound, 2);
  repaired.at(3) = make_shatter_type2(claimed, 2, 0, bound, 2);
  repaired.at(5) = make_shatter_type0(claimed, {0, 1}, bound);
  repaired.at(6) = make_shatter_type0(claimed, {0, 0}, bound);
  Instance inst2 = inst.with_labels(std::move(repaired));
  const ShatterLcp fixed(ShatterVariant::kVectorOnPoint);
  const auto acc2 = fixed.decoder().accepting_set(inst2);
  EXPECT_TRUE(is_bipartite(inst2.g.induced_subgraph(acc2)));
}

TEST(ShatterTest, RepairedStrongSoundnessExhaustiveTiny) {
  // Full labeling sweep on all connected graphs with 3 nodes (the
  // triangle included).
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint);
  for_each_connected_graph(3, [&](const Graph& g) {
    const auto report =
        check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
    return true;
  });
}

TEST(ShatterTest, RepairedStrongSoundnessExhaustiveFourNodes) {
  // The decisive small no-instances at n = 4, swept over the FULL
  // adversarial space (44 certificates per node, ~3.7M labelings each):
  // the triangle-with-pendant (an accepting odd cycle would need exactly
  // the literal decoder's loophole) and C4 plus a chord.
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint);
  Graph tri_pendant = make_cycle(3);
  const Node leaf = tri_pendant.add_node();
  tri_pendant.add_edge(0, leaf);
  Graph diamond = make_cycle(4);
  diamond.add_edge(0, 2);
  for (const Graph& g : {tri_pendant, diamond}) {
    const auto report =
        check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
    EXPECT_GT(report.cases, 3'000'000u);
  }
}

TEST(ShatterTest, RepairedStrongSoundnessRandomized) {
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint, 3);
  Rng rng(1234);
  std::vector<Graph> graphs{make_cycle(5),  make_cycle(7),
                            make_path(7),   make_theta(2, 2, 3),
                            make_grid(3, 3)};
  for (int rep = 0; rep < 6; ++rep) {
    graphs.push_back(make_random_graph(7, 1, 3, rng));
  }
  for (const Graph& g : graphs) {
    if (g.num_nodes() == 0) {
      continue;
    }
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 400, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(ShatterTest, RepairedStrongSoundnessTargetedCounterexampleShapes) {
  // The exact shapes that defeat the literal decoder, under a randomized
  // sweep with the repaired one: C5/C7 with pendant claimants.
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint);
  Rng rng(777);
  for (int cycle_len : {5, 7}) {
    Graph g = make_cycle(cycle_len);
    const Node w1 = g.add_node();
    const Node w2 = g.add_node();
    g.add_edge(1, w1);
    g.add_edge((cycle_len + 1) / 2, w2);
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 2000, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(ShatterTest, HidingViaP1P2Witness) {
  // Section 7.1's construction, for both certificate layouts.
  for (const bool on_point : {false, true}) {
    const ShatterLcp lcp(on_point ? ShatterVariant::kVectorOnPoint
                                  : ShatterVariant::kLiteral);
    const auto instances = shatter_witnesses(on_point);
    // Sanity: the witnesses are honestly accepted.
    for (const Instance& inst : instances) {
      EXPECT_TRUE(lcp.decoder().accepts_all(inst));
    }
    const auto nbhd = build_from_instances(lcp.decoder(), instances, 2);
    EXPECT_TRUE(nbhd.odd_cycle().has_value())
        << "layout " << (on_point ? "vector-on-point" : "literal")
        << ": hiding witness missing";
  }
}

TEST(ShatterTest, CertificateSizeBound) {
  // O(min{Delta^2, n} + log n): on stars-of-paths the vector has as many
  // entries as components; verify the bit count tracks k + log N.
  const ShatterLcp lcp;
  for (int legs : {2, 4, 8}) {
    Graph g(1);
    for (int i = 0; i < legs; ++i) {
      const Node mid = g.add_node();
      const Node end = g.add_node();
      g.add_edge(0, mid);
      g.add_edge(mid, end);
    }
    Instance inst = Instance::canonical(g);
    const auto labels = lcp.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    const int n = g.num_nodes();
    int log_n = 1;
    while ((1 << log_n) < n + 1) {
      ++log_n;
    }
    EXPECT_LE(labels->max_bits(), 2 + log_n + 2 * (log_n + 1) + legs);
    EXPECT_GE(labels->max_bits(), legs);  // the vector dominates
  }
}

TEST(ShatterTest, ProverPicksAValidShatterPoint) {
  const ShatterLcp lcp;
  const Graph g = make_path(9);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(lcp.decoder().accepts_all(inst));
  // The type-0 certificate sits on a genuine shatter point.
  Node point = -1;
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (inst.labels.at(v).fields[0] == 0) {
      point = v;
    }
  }
  ASSERT_NE(point, -1);
  const auto pts = shatter_points(g);
  EXPECT_TRUE(std::find(pts.begin(), pts.end(), point) != pts.end());
}

}  // namespace
}  // namespace shlcp
