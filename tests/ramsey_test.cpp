// Tests for the finite Ramsey search (Lemma 6.1), decoder type oracles,
// and the synthesized order-invariant decoder (Lemma 6.2's finite
// analogue, experiment E11).

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lcp/checker.h"
#include "lower/order_invariant.h"
#include "ramsey/ramsey.h"
#include "ramsey/types.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(RamseyTest, ConstantColoringTakesEverything) {
  const auto found = find_monochromatic_subset(
      10, 2, [](const std::vector<int>&) { return 7; }, 10);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 10u);
}

TEST(RamseyTest, ParitySumColoring) {
  // Color pairs by parity of their sum: all-even or all-odd subsets are
  // monochromatic; {0,2,4,6,8} works, size 6 does not exist within [0,10).
  const auto coloring = [](const std::vector<int>& s) {
    return (s[0] + s[1]) % 2;
  };
  const auto found5 = find_monochromatic_subset(10, 2, coloring, 5);
  ASSERT_TRUE(found5.has_value());
  EXPECT_EQ(*monochromatic_color(*found5, 2, coloring),
            ((*found5)[0] + (*found5)[1]) % 2);
  EXPECT_FALSE(find_monochromatic_subset(10, 2, coloring, 6).has_value());
}

TEST(RamseyTest, R33NeedsSix) {
  // The pentagon 2-coloring of K5 (edges at cyclic distance 1 vs 2) has
  // no monochromatic triangle; every 2-coloring of K6 does (R(3,3) = 6).
  const auto pentagon = [](const std::vector<int>& s) {
    const int d = (s[1] - s[0]) % 5;
    return (d == 1 || d == 4) ? 0 : 1;
  };
  EXPECT_FALSE(find_monochromatic_subset(5, 2, pentagon, 3).has_value());

  // Exhaustively confirm K6 always has a monochromatic triangle for a
  // sample of random colorings.
  Rng rng(12);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<int> colors(15);
    for (auto& c : colors) {
      c = static_cast<int>(rng.next_below(2));
    }
    const auto coloring = [&colors](const std::vector<int>& s) {
      // Edge index in K6.
      int idx = 0;
      for (int i = 0; i < s[0]; ++i) {
        idx += 5 - i;
      }
      idx += s[1] - s[0] - 1;
      return colors[static_cast<std::size_t>(idx)];
    };
    EXPECT_TRUE(find_monochromatic_subset(6, 2, coloring, 3).has_value());
  }
}

TEST(RamseyTest, TriplesColoring) {
  const auto coloring = [](const std::vector<int>& s) {
    return (s[0] + s[1] + s[2]) % 3 == 0 ? 1 : 0;
  };
  const auto found = find_monochromatic_subset(12, 3, coloring, 4);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(monochromatic_color(*found, 3, coloring).has_value());
}

TEST(RamseyTest, LargestSubset) {
  const auto coloring = [](const std::vector<int>& s) {
    return (s[0] + s[1]) % 2;
  };
  const auto largest = largest_monochromatic_subset(9, 2, coloring);
  EXPECT_EQ(largest.size(), 5u);  // the evens {0,2,4,6,8}
}

TEST(RamseyTest, MonochromaticColorDetectsClash) {
  const auto coloring = [](const std::vector<int>& s) { return s[0]; };
  EXPECT_FALSE(monochromatic_color({0, 1, 2}, 2, coloring).has_value());
  EXPECT_TRUE(monochromatic_color({4}, 2, coloring).has_value());
}

// A deliberately id-value-sensitive decoder for the reduction tests:
// accepts iff the sum of the identifiers in the view is even.
LambdaDecoder id_sum_parity_decoder() {
  return LambdaDecoder(1, false, "id-sum-parity", [](const View& v) {
    int sum = 0;
    for (const Ident id : v.ids) {
      sum += id;
    }
    return sum % 2 == 0;
  });
}

TEST(TypeOracleTest, ProbesFromInstance) {
  const Instance inst = Instance::canonical(make_path(4));
  const auto probes = probes_from_instance(inst, 1);
  EXPECT_EQ(probes.size(), 4u);
  for (const View& p : probes) {
    for (const Ident id : p.ids) {
      EXPECT_GE(id, 1);
      EXPECT_LE(id, p.num_nodes());
    }
  }
}

TEST(TypeOracleTest, TypeDistinguishesParity) {
  const auto decoder = id_sum_parity_decoder();
  const Instance inst = Instance::canonical(make_path(3));
  TypeOracle oracle(decoder, probes_from_instance(inst, 1));
  EXPECT_EQ(oracle.arity(), 3);
  // Types of {1,2,3} and {1,2,4} differ (sums flip parity in some probe).
  const int t1 = oracle.type_of({1, 2, 3}, 100);
  const int t2 = oracle.type_of({1, 2, 4}, 100);
  EXPECT_NE(t1, t2);
}

TEST(OrderInvariantTest, UniformSetFoundAndWrapperIsOrderInvariant) {
  const auto decoder = id_sum_parity_decoder();
  const Instance inst = Instance::canonical(make_path(3));
  TypeOracle oracle(decoder, probes_from_instance(inst, 1));

  // A uniform set exists: e.g. identifiers of equal parity make every
  // probe's id-sum parity a function of the structure alone.
  const auto uniform = find_uniform_id_set(oracle, 20, 6, 100);
  ASSERT_TRUE(uniform.has_value());
  EXPECT_EQ(uniform->size(), 6u);

  const OrderInvariantWrapper wrapper(decoder, *uniform, 100);
  Rng rng(31);
  Instance labeled = inst;
  // The wrapper is order-invariant even though the inner decoder is not.
  EXPECT_TRUE(check_order_invariant(wrapper, labeled, 40, rng).ok);
  EXPECT_FALSE(check_order_invariant(decoder, labeled, 40, rng).ok);
}

TEST(OrderInvariantTest, WrapperAgreesWithInnerOnUniformIds) {
  // Lemma 6.2's equivalence: on id assignments drawn inside the uniform
  // set, wrapper and inner decoder give the same verdicts (both tuples
  // are monochromatic-set subsets, hence share their type).
  const auto decoder = id_sum_parity_decoder();
  const Graph g = make_path(3);
  const Instance base = Instance::canonical(g);
  TypeOracle oracle(decoder, probes_from_instance(base, 1));
  const auto uniform = find_uniform_id_set(oracle, 20, 8, 100);
  ASSERT_TRUE(uniform.has_value());

  const OrderInvariantWrapper wrapper(decoder, *uniform, 100);
  // Try several assignments using ids from the uniform set.
  Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<Ident> pool = *uniform;
    rng.shuffle(pool);
    pool.resize(static_cast<std::size_t>(g.num_nodes()));
    Instance inst = base;
    inst.ids = IdAssignment::from_vector(pool, 100);
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const View view = inst.view_of(v, 1, false);
      EXPECT_EQ(wrapper.accept(view), decoder.accept(view))
          << "divergence at node " << v;
    }
  }
}

TEST(OrderInvariantTest, WrapperRejectsOversizedViews) {
  const auto decoder = id_sum_parity_decoder();
  const OrderInvariantWrapper wrapper(decoder, {2, 4}, 10);
  const Instance inst = Instance::canonical(make_star(3));
  // The star's center view has 4 identifiers > |uniform set| = 2.
  EXPECT_THROW(wrapper.accept(inst.view_of(0, 1, false)), CheckError);
}

}  // namespace
}  // namespace shlcp
