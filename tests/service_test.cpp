// Dispatcher, cache, and pipe-server tests for the certification
// service. The load-bearing claims pinned here:
//
//   * every endpoint's response equals what the direct library call
//     computes (the bench re-checks this under load);
//   * a cached replay is byte-identical to the first computation;
//   * the error-code contract (unknown_op, invalid_params,
//     invalid_request, deadline_exceeded, draining) with the lcp/audit
//     repro string echoed for concrete runs;
//   * LRU eviction, on-disk persistence, and corrupt-entry tolerance of
//     the artifact cache;
//   * the pipe server's request/response framing and its drain
//     behavior: after a cancel trip, no request is ever answered ok.

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/audit.h"
#include "nbhd/checkpoint.h"
#include "nbhd/witness.h"
#include "service/cache.h"
#include "service/server.h"
#include "service/service.h"
#include "util/budget.h"

namespace shlcp::svc {
namespace {

namespace fs = std::filesystem;

Json make_request(std::int64_t id, const std::string& op, Json params) {
  Json req = Json::object();
  req["id"] = id;
  req["op"] = op;
  req["params"] = std::move(params);
  return req;
}

Json ok_result(const Json& response) {
  EXPECT_TRUE(response.at("ok").as_bool()) << response.dump();
  return response.at("result");
}

std::string error_code(const Json& response) {
  EXPECT_FALSE(response.at("ok").as_bool()) << response.dump();
  return response.at("error").at("code").as_string();
}

Instance pool_instance(const std::string& name) {
  for (const NamedInstance& named : audit_instance_pool()) {
    if (named.name == name) {
      return named.inst;
    }
  }
  ADD_FAILURE() << "no pool instance " << name;
  return Instance();
}

// ---------------------------------------------------------------------
// Endpoints vs direct library calls.

TEST(ServiceEndpoints, RunDecoderMatchesDirectRun) {
  Service service;
  Json params = Json::object();
  params["lcp"] = "degree-one";
  params["instance"] = "path5";
  params["labels"] = "honest";
  const Json response = service.handle(make_request(1, "run_decoder", params));
  const Json& result = ok_result(response);

  DegreeOneLcp lcp;
  Instance inst = pool_instance("path5");
  inst.labels = *lcp.prove(inst.g, inst.ports, inst.ids);
  const FaultyRunResult direct =
      run_decoder_distributed_faulty(lcp.decoder(), inst, FaultPlan{});

  ASSERT_EQ(result.at("verdicts").size(),
            static_cast<std::size_t>(inst.num_nodes()));
  for (std::size_t v = 0; v < direct.verdicts.size(); ++v) {
    EXPECT_EQ(result.at("verdicts").at(v).as_bool(), direct.verdicts[v]);
  }
  EXPECT_TRUE(result.at("accepts_all").as_bool());
  EXPECT_EQ(result.at("stats").at("messages").as_uint(),
            static_cast<std::uint64_t>(direct.stats.messages));
  EXPECT_EQ(result.at("repro").as_string(),
            make_repro("degree-one", "path5", "honest", FaultPlan{}));
}

TEST(ServiceEndpoints, RunDecoderHonoursFaultPlanDescriptor) {
  Service service;
  FaultPlan plan;
  plan.label = "droppy";
  plan.seed = 7;
  plan.drop_permille = 400;
  Json params = Json::object();
  params["lcp"] = "degree-one";
  params["instance"] = "path5";
  params["labels"] = "honest";
  params["plan"] = plan.describe();
  const Json& result =
      ok_result(service.handle(make_request(2, "run_decoder", params)));

  DegreeOneLcp lcp;
  Instance inst = pool_instance("path5");
  inst.labels = *lcp.prove(inst.g, inst.ports, inst.ids);
  const FaultyRunResult direct =
      run_decoder_distributed_faulty(lcp.decoder(), inst,
                                     FaultPlan::parse(plan.describe()));
  EXPECT_EQ(result.at("faults").at("dropped").as_uint(),
            static_cast<std::uint64_t>(direct.faults.dropped));
  for (std::size_t v = 0; v < direct.verdicts.size(); ++v) {
    EXPECT_EQ(result.at("verdicts").at(v).as_bool(), direct.verdicts[v]);
  }
}

TEST(ServiceEndpoints, CheckColoringVerifyNamesViolatingEdge) {
  Service service;
  Json good = Json::object();
  good["graph"] = graph_to_json(make_cycle(4));
  good["k"] = 2;
  Json& colors = (good["colors"] = Json::array());
  for (const int c : {0, 1, 0, 1}) {
    colors.push_back(c);
  }
  const Json& proper =
      ok_result(service.handle(make_request(3, "check_coloring", good)));
  EXPECT_EQ(proper.at("mode").as_string(), "verify");
  EXPECT_TRUE(proper.at("proper").as_bool());
  EXPECT_TRUE(proper.at("violation").is_null());

  Json bad = good;
  Json& bad_colors = (bad["colors"] = Json::array());
  for (const int c : {0, 0, 0, 1}) {  // edge (0, 1) monochromatic
    bad_colors.push_back(c);
  }
  const Json& improper =
      ok_result(service.handle(make_request(4, "check_coloring", bad)));
  EXPECT_FALSE(improper.at("proper").as_bool());
  EXPECT_EQ(improper.at("violation").at(std::size_t{0}).as_int(), 0);
  EXPECT_EQ(improper.at("violation").at(std::size_t{1}).as_int(), 1);
}

TEST(ServiceEndpoints, CheckColoringSolveMatchesLibrary) {
  Service service;
  for (const int k : {2, 3}) {
    Json params = Json::object();
    params["instance"] = "cycle5";
    params["k"] = k;
    const Json& result =
        ok_result(service.handle(make_request(5, "check_coloring", params)));
    EXPECT_EQ(result.at("mode").as_string(), "solve");
    EXPECT_EQ(result.at("colorable").as_bool(), k == 3);  // C5 is odd
    const std::optional<std::vector<int>> direct =
        k_coloring(pool_instance("cycle5").g, k);
    EXPECT_EQ(result.at("colorable").as_bool(), direct.has_value());
    if (direct) {
      for (std::size_t v = 0; v < direct->size(); ++v) {
        EXPECT_EQ(result.at("coloring").at(v).as_int(), (*direct)[v]);
      }
    }
  }
}

TEST(ServiceEndpoints, SearchWitnessMatchesDirectSearch) {
  Service service;
  Json params = Json::object();
  params["family"] = "degree-one";
  params["max_n"] = 4;
  const Json& result =
      ok_result(service.handle(make_request(6, "search_witness", params)));

  DegreeOneLcp lcp;
  const std::vector<Instance> instances = degree_one_witnesses(4);
  ParallelEnumOptions options;
  options.num_threads = 1;
  const WitnessSearchResult direct =
      search_hiding_witness(lcp.decoder(), instances, 2, options);
  EXPECT_EQ(result.at("hiding").as_bool(), direct.hiding());
  EXPECT_EQ(result.at("num_views").as_uint(),
            static_cast<std::uint64_t>(direct.nbhd.num_views()));
  if (direct.odd_cycle) {
    EXPECT_EQ(result.at("odd_cycle").size(), direct.odd_cycle->size());
  } else {
    EXPECT_TRUE(result.at("odd_cycle").is_null());
  }
}

TEST(ServiceEndpoints, BuildNbhdMatchesDirectBuild) {
  Service service;
  Json params = Json::object();
  params["lcp"] = "degree-one";
  Json& graphs = (params["graphs"] = Json::array());
  graphs.push_back("path:4");
  params["build"] = "proved";
  const Json& result =
      ok_result(service.handle(make_request(7, "build_nbhd", params)));

  DegreeOneLcp lcp;
  EnumOptions enums;
  const NbhdGraph direct = build_proved(lcp, {make_path(4)}, enums);
  EXPECT_EQ(result.at("num_views").as_uint(),
            static_cast<std::uint64_t>(direct.num_views()));
  EXPECT_EQ(result.at("num_edges").as_uint(),
            static_cast<std::uint64_t>(direct.num_edges()));
  EXPECT_EQ(result.at("k_colorable").as_bool(), direct.k_colorable(2));
}

// ---------------------------------------------------------------------
// Error-code contract.

TEST(ServiceErrors, ErrorCodeContract) {
  Service service;
  EXPECT_EQ(error_code(service.handle(
                make_request(1, "frobnicate", Json::object()))),
            kErrUnknownOp);

  Json bad_lcp = Json::object();
  bad_lcp["lcp"] = "no-such-scheme";
  bad_lcp["instance"] = "path5";
  EXPECT_EQ(error_code(service.handle(make_request(2, "run_decoder", bad_lcp))),
            kErrInvalidParams);

  // Envelope typo: unknown member, rejected before dispatch.
  Json typo = make_request(3, "info", Json::object());
  typo["dedline_ms"] = 5;
  EXPECT_EQ(error_code(service.handle(typo)), kErrInvalidRequest);

  // Queue delay past the deadline.
  Json timed = make_request(4, "info", Json::object());
  timed["deadline_ms"] = 5;
  EXPECT_EQ(error_code(service.handle(timed, /*elapsed_ms=*/50)),
            kErrDeadline);

  // handle_text on unparseable bytes: an error response, not a throw.
  const Json garbage = Json::parse(service.handle_text("{nope"));
  EXPECT_EQ(error_code(garbage), kErrInvalidRequest);
}

// A frame of ~2M nested '[' fits the 4 MiB frame cap; the parser's
// depth limit must turn it into an error response instead of letting
// the recursion overflow the stack and kill the daemon.
TEST(ServiceErrors, DeeplyNestedFrameIsErrorResponseNotCrash) {
  Service service;
  const Json bomb = Json::parse(service.handle_text(
      std::string(2u << 20, '[')));
  EXPECT_EQ(error_code(bomb), kErrInvalidRequest);
}

// stoi-parsed grid dimensions whose product overflows int must be
// rejected up front, not wrap around the 16-node bound (UB).
TEST(ServiceErrors, GridDimensionOverflowRejected) {
  Service service;
  for (const char* spec :
       {"grid:65536x65536", "grid:46341x92681", "grid:0x5", "grid:5x0"}) {
    Json params = Json::object();
    params["lcp"] = "degree-one";
    Json& graphs = (params["graphs"] = Json::array());
    graphs.push_back(spec);
    EXPECT_EQ(error_code(service.handle(
                  make_request(1, "build_nbhd", params))),
              kErrInvalidParams)
        << spec;
  }
}

// Cancel-at-boundary deadline enforcement: a build too large for its
// deadline_ms budget is refused with deadline_exceeded at the next
// frame boundary -- a truncated V(D, n) is never answered. One frame
// per graph: three exhaustive 8-9-node enumerations are far past a
// 1 ms budget by the first boundary, yet each individual frame is
// small, so the call both expires reliably and returns promptly.
TEST(ServiceErrors, DeadlineExpiresMidBuildAtFrameBoundary) {
  Service service;
  Json params = Json::object();
  params["lcp"] = "degree-one";
  Json& graphs = (params["graphs"] = Json::array());
  for (const char* spec : {"path:8", "cycle:8", "path:9"}) {
    graphs.push_back(spec);
  }
  params["build"] = "exhaustive";
  Json req = make_request(1, "build_nbhd", params);
  req["deadline_ms"] = 1;
  const Json response = service.handle(req);
  EXPECT_EQ(error_code(response), kErrDeadline);
  EXPECT_NE(response.at("error").at("message").as_string().find("deadline"),
            std::string::npos)
      << response.dump();
}

TEST(ServiceErrors, DrainRefusesEverything) {
  Service service;
  EXPECT_FALSE(service.draining());
  service.begin_drain();
  EXPECT_TRUE(service.draining());
  const Json refused =
      service.handle(make_request(1, "info", Json::object()));
  EXPECT_EQ(error_code(refused), kErrDraining);
  EXPECT_EQ(refused.at("id").as_int(), 1);  // id still echoed
}

// ---------------------------------------------------------------------
// Artifact cache.

TEST(ServiceCache, CachedReplayIsBitIdentical) {
  Service service;
  Json params = Json::object();
  params["instance"] = "cycle5";
  params["k"] = 3;
  const Json first =
      service.handle(make_request(1, "check_coloring", params));
  EXPECT_FALSE(first.at("cached").as_bool());

  // Same payload, different member order: canonical keying must hit.
  Json reordered = Json::object();
  reordered["k"] = 3;
  reordered["instance"] = "cycle5";
  const Json second =
      service.handle(make_request(2, "check_coloring", reordered));
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("result").dump(), first.at("result").dump());
  EXPECT_GE(service.cache_stats().hits, 1u);
}

TEST(ServiceCache, LruEvictionUnderByteBudget) {
  CacheConfig config;
  config.max_bytes = 64;
  ArtifactCache cache(config);
  cache.insert("fnv:aaaa", std::string(40, 'x'));
  cache.insert("fnv:bbbb", std::string(40, 'y'));  // evicts aaaa
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.get("fnv:aaaa").has_value());
  EXPECT_TRUE(cache.get("fnv:bbbb").has_value());
  EXPECT_LE(cache.stats().bytes, config.max_bytes);

  // Touching an entry protects it: refresh bbbb, insert cccc, and the
  // budget still holds one entry -- the freshest insert.
  cache.insert("fnv:cccc", std::string(40, 'z'));
  EXPECT_TRUE(cache.get("fnv:cccc").has_value());
  EXPECT_FALSE(cache.get("fnv:bbbb").has_value());
}

TEST(ServiceCache, PersistsAcrossInstances) {
  const fs::path dir = fs::path(::testing::TempDir()) / "shlcp_cache_persist";
  fs::remove_all(dir);
  fs::create_directories(dir);
  CacheConfig config;
  config.directory = dir.string();

  const std::string key = artifact_key("check_coloring", Json::parse("{}"));
  {
    ArtifactCache warm(config);
    warm.insert(key, "{\"answer\":42}");
  }
  ArtifactCache cold(config);
  const std::optional<std::string> loaded = cold.get(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "{\"answer\":42}");
  EXPECT_EQ(cold.stats().disk_hits, 1u);
  EXPECT_EQ(cold.stats().misses, 0u);

  // Promoted to memory: the second lookup is an in-memory hit.
  EXPECT_TRUE(cold.get(key).has_value());
  EXPECT_EQ(cold.stats().hits, 1u);
}

TEST(ServiceCache, CreatesMissingDirectoryAndSurvivesUnwritableOne) {
  // A daemon pointed at a fresh --cache-dir must not require an
  // out-of-band mkdir: construction creates the directory.
  const fs::path dir = fs::path(::testing::TempDir()) / "shlcp_cache_mkdir" /
                       "nested" / "deeper";
  fs::remove_all(fs::path(::testing::TempDir()) / "shlcp_cache_mkdir");
  CacheConfig config;
  config.directory = dir.string();

  const std::string key = artifact_key("info", Json::parse("{}"));
  {
    ArtifactCache fresh(config);
    EXPECT_TRUE(fs::is_directory(dir));
    fresh.insert(key, "payload");
    EXPECT_EQ(fresh.stats().store_failures, 0u);
  }
  ArtifactCache cold(config);
  EXPECT_TRUE(cold.get(key).has_value());

  // An unwritable "directory" (here: the path names a regular file, so
  // creation fails) degrades stores to counted non-fatal failures --
  // the computed value stays served from memory, never an exception.
  const fs::path blocker = fs::path(::testing::TempDir()) / "shlcp_cache_file";
  fs::remove_all(blocker);
  { std::ofstream out(blocker); out << "in the way"; }
  CacheConfig bad;
  bad.directory = blocker.string();
  ArtifactCache degraded(bad);
  degraded.insert(key, "payload");
  EXPECT_EQ(degraded.stats().store_failures, 1u);
  const std::optional<std::string> served = degraded.get(key);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, "payload");
}

TEST(ServiceCache, CorruptDiskEntryIsMissNotError) {
  const fs::path dir = fs::path(::testing::TempDir()) / "shlcp_cache_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  CacheConfig config;
  config.directory = dir.string();

  const std::string key = artifact_key("info", Json::parse("{}"));
  {
    ArtifactCache warm(config);
    warm.insert(key, "payload");
  }
  // Entry files are "<dir>/<hex of fnv1a(key), colon stripped>.json".
  const std::string digest = fnv1a_hex(key);
  const fs::path file =
      dir / (digest.substr(digest.find(':') + 1) + ".json");
  ASSERT_TRUE(fs::exists(file));

  const auto write_entry = [&](const std::string& stored_key,
                               const std::string& stored_digest) {
    Json entry = Json::object();
    entry["schema"] = kCacheFileSchema;
    entry["key"] = stored_key;
    entry["digest"] = stored_digest;
    entry["result"] = "payload";
    std::ofstream out(file, std::ios::trunc);
    out << entry.dump();
  };

  {  // Outright garbage.
    std::ofstream out(file, std::ios::trunc);
    out << "not json at all";
  }
  ArtifactCache c1(config);
  EXPECT_FALSE(c1.get(key).has_value());

  // Well-formed but digest-mismatched (torn result).
  write_entry(key, "fnv:0000000000000000");
  ArtifactCache c2(config);
  EXPECT_FALSE(c2.get(key).has_value());

  // Right digest, wrong key: a filename (hash) collision must be a
  // miss, never another request's artifact replayed as a hit.
  write_entry(artifact_key("info", Json::parse(R"({"x":1})")),
              fnv1a_hex("payload"));
  ArtifactCache c3(config);
  EXPECT_FALSE(c3.get(key).has_value());

  // Torn write: a kill -9 mid-write leaves a short prefix of a valid
  // entry on disk. Must be a miss (never an abort), and a subsequent
  // insert repairs the entry in place.
  write_entry(key, fnv1a_hex("payload"));
  fs::resize_file(file, 10);
  ArtifactCache c4(config);
  EXPECT_FALSE(c4.get(key).has_value());
  c4.insert(key, "payload");
  ArtifactCache c5(config);
  EXPECT_TRUE(c5.get(key).has_value());
}

// Two requests must never share an entry unless their canonical
// payloads are identical: the key *is* the payload, so op, schema, and
// every parameter byte participate in the match.
TEST(ServiceCache, KeysMatchExactPayloadsOnly) {
  const Json params = Json::parse(R"({"instance":"path5","k":2})");
  EXPECT_EQ(artifact_key("check_coloring", params),
            artifact_key("check_coloring",
                         Json::parse(R"({"k":2,"instance":"path5"})")));
  EXPECT_NE(artifact_key("check_coloring", params),
            artifact_key("run_decoder", params));
  EXPECT_NE(artifact_key("check_coloring", params),
            artifact_key("check_coloring",
                         Json::parse(R"({"instance":"path5","k":3})")));

  ArtifactCache cache;
  cache.insert(artifact_key("check_coloring", params), "A");
  EXPECT_FALSE(
      cache.get(artifact_key("run_decoder", params)).has_value());
}

// ---------------------------------------------------------------------
// Pipe server end to end.

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) {
      ::close(read_fd);
    }
    if (write_fd >= 0) {
      ::close(write_fd);
    }
  }
};

/// Reads one frame from fd, polling up to timeout_ms. Returns nullopt
/// on timeout or EOF.
std::optional<std::string> read_frame(int fd, FrameReader& reader,
                                      int timeout_ms = 10000) {
  std::string frame;
  std::string error;
  while (true) {
    const FrameReader::Next next = reader.next(&frame, &error);
    if (next == FrameReader::Next::kFrame) {
      return frame;
    }
    EXPECT_NE(next, FrameReader::Next::kError) << error;
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      return std::nullopt;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      return std::nullopt;
    }
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

TEST(PipeServer, AnswersRequestsAndExitsCleanlyOnEof) {
  Pipe to_server;
  Pipe from_server;
  CancelToken token;
  ServerOptions options;
  options.in_fd = to_server.read_fd;
  options.out_fd = from_server.write_fd;
  options.cancel = &token;
  options.num_threads = 2;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_pipe(options); });

  FrameReader reader;
  const Json info = make_request(1, "info", Json::object());
  ASSERT_TRUE(write(to_server.write_fd, encode_frame(info.dump()).data(),
                    encode_frame(info.dump()).size()) > 0);
  std::optional<std::string> body = read_frame(from_server.read_fd, reader);
  ASSERT_TRUE(body.has_value());
  const Json info_resp = Json::parse(*body);
  EXPECT_EQ(info_resp.at("id").as_int(), 1);
  EXPECT_TRUE(ok_result(info_resp).at("ops").is_array());

  // A second request through the same stream, batched-path compute.
  Json params = Json::object();
  params["instance"] = "cycle5";
  params["k"] = 3;
  const std::string frame2 =
      encode_frame(make_request(2, "check_coloring", params).dump());
  ASSERT_TRUE(write(to_server.write_fd, frame2.data(), frame2.size()) > 0);
  body = read_frame(from_server.read_fd, reader);
  ASSERT_TRUE(body.has_value());
  const Json col_resp = Json::parse(*body);
  EXPECT_EQ(col_resp.at("id").as_int(), 2);
  EXPECT_TRUE(ok_result(col_resp).at("colorable").as_bool());

  ::close(to_server.write_fd);  // EOF ends the server
  to_server.write_fd = -1;
  server.join();
  EXPECT_EQ(exit_code, 0);
}

TEST(PipeServer, MalformedFrameGetsBadFrameResponse) {
  Pipe to_server;
  Pipe from_server;
  ServerOptions options;
  options.in_fd = to_server.read_fd;
  options.out_fd = from_server.write_fd;
  CancelToken token;
  options.cancel = &token;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_pipe(options); });

  const std::string garbage = "???\n{}\n";
  ASSERT_TRUE(write(to_server.write_fd, garbage.data(), garbage.size()) > 0);
  FrameReader reader;
  const std::optional<std::string> body =
      read_frame(from_server.read_fd, reader);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(error_code(Json::parse(*body)), kErrBadFrame);

  server.join();  // framing lost ends pipe mode
  EXPECT_EQ(exit_code, 0);
}

// After a cancel trip the server must never answer a request ok: a late
// frame is either refused with "draining" or not read at all, and the
// server still exits 0.
TEST(PipeServer, DrainsOnCancelWithoutAcceptingNewWork) {
  Pipe to_server;
  Pipe from_server;
  CancelToken token;
  ServerOptions options;
  options.in_fd = to_server.read_fd;
  options.out_fd = from_server.write_fd;
  options.cancel = &token;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_pipe(options); });

  FrameReader reader;
  const std::string warmup =
      encode_frame(make_request(1, "info", Json::object()).dump());
  ASSERT_TRUE(write(to_server.write_fd, warmup.data(), warmup.size()) > 0);
  ASSERT_TRUE(read_frame(from_server.read_fd, reader).has_value());

  token.request_stop(StopReason::kCancelRequested);
  const std::string late =
      encode_frame(make_request(2, "info", Json::object()).dump());
  ASSERT_TRUE(write(to_server.write_fd, late.data(), late.size()) > 0);
  server.join();
  EXPECT_EQ(exit_code, 0);

  // Whatever made it out for request 2 must be a draining refusal.
  while (true) {
    const std::optional<std::string> body =
        read_frame(from_server.read_fd, reader, /*timeout_ms=*/0);
    if (!body.has_value()) {
      break;
    }
    EXPECT_EQ(error_code(Json::parse(*body)), kErrDraining);
  }
}

// ---------------------------------------------------------------------
// Overload shedding (DESIGN.md §14).

/// Writes `count` pipelined info requests as ONE atomic pipe write, so
/// the server's read loop ingests the whole burst in one gulp and the
/// admission policy sees it at once (deterministic shed counts).
void write_burst(int fd, std::int64_t count) {
  std::string burst;
  for (std::int64_t id = 1; id <= count; ++id) {
    burst += encode_frame(make_request(id, "info", Json::object()).dump());
  }
  ASSERT_LT(burst.size(), 4096u);  // PIPE_BUF: single-write atomicity
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
}

TEST(PipeServer, ShedsPastQueueCapWithRetryAfterHint) {
  Pipe to_server;
  Pipe from_server;
  CancelToken token;
  ServerOptions options;
  options.in_fd = to_server.read_fd;
  options.out_fd = from_server.write_fd;
  options.cancel = &token;
  options.num_threads = 2;
  options.queue_max = 2;
  options.conn_inflight_max = 0;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_pipe(options); });

  write_burst(to_server.write_fd, 5);
  FrameReader reader;
  int oks = 0;
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    const std::optional<std::string> body =
        read_frame(from_server.read_fd, reader);
    ASSERT_TRUE(body.has_value()) << i;
    const Json resp = Json::parse(*body);
    if (resp.at("ok").as_bool()) {
      ++oks;
    } else {
      ++shed;
      EXPECT_EQ(resp.at("error").at("code").as_string(), kErrOverloaded);
      // The refusal carries a positive backpressure hint.
      EXPECT_GT(resp.at("error").at("retry_after_ms").as_int(), 0)
          << resp.dump();
    }
  }
  EXPECT_EQ(oks, 2);  // exactly queue_max admitted
  EXPECT_EQ(shed, 3);

  // The health op reports the episode: cap, admissions, sheds.
  const std::string probe =
      encode_frame(make_request(9, "health", Json::object()).dump());
  ASSERT_EQ(::write(to_server.write_fd, probe.data(), probe.size()),
            static_cast<ssize_t>(probe.size()));
  const std::optional<std::string> body =
      read_frame(from_server.read_fd, reader);
  ASSERT_TRUE(body.has_value());
  const Json health = ok_result(Json::parse(*body));
  EXPECT_FALSE(health.at("draining").as_bool());
  EXPECT_EQ(health.at("queue").at("max").as_uint(), 2u);
  EXPECT_EQ(health.at("queue").at("admitted").as_uint(), 3u);  // 2 + probe
  EXPECT_EQ(health.at("queue").at("shed").as_uint(), 3u);
  EXPECT_TRUE(health.at("cache").contains("hit_rate"));

  ::close(to_server.write_fd);
  to_server.write_fd = -1;
  server.join();
  EXPECT_EQ(exit_code, 0);
}

TEST(PipeServer, ShedsPastConnectionInflightCap) {
  Pipe to_server;
  Pipe from_server;
  CancelToken token;
  ServerOptions options;
  options.in_fd = to_server.read_fd;
  options.out_fd = from_server.write_fd;
  options.cancel = &token;
  options.queue_max = 0;       // the global cap must not be the trigger
  options.conn_inflight_max = 1;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_pipe(options); });

  write_burst(to_server.write_fd, 3);
  FrameReader reader;
  int oks = 0;
  int shed = 0;
  for (int i = 0; i < 3; ++i) {
    const std::optional<std::string> body =
        read_frame(from_server.read_fd, reader);
    ASSERT_TRUE(body.has_value()) << i;
    const Json resp = Json::parse(*body);
    if (resp.at("ok").as_bool()) {
      ++oks;
    } else {
      ++shed;
      EXPECT_EQ(resp.at("error").at("code").as_string(), kErrOverloaded);
      EXPECT_NE(resp.at("error").at("message").as_string().find("in-flight"),
                std::string::npos)
          << resp.dump();
    }
  }
  EXPECT_EQ(oks, 1);
  EXPECT_EQ(shed, 2);

  // A shed is per-frame, not per-connection: once the in-flight request
  // is answered, the stream accepts work again.
  const std::string more =
      encode_frame(make_request(7, "info", Json::object()).dump());
  ASSERT_EQ(::write(to_server.write_fd, more.data(), more.size()),
            static_cast<ssize_t>(more.size()));
  const std::optional<std::string> body =
      read_frame(from_server.read_fd, reader);
  ASSERT_TRUE(body.has_value());
  EXPECT_TRUE(Json::parse(*body).at("ok").as_bool());

  ::close(to_server.write_fd);
  to_server.write_fd = -1;
  server.join();
  EXPECT_EQ(exit_code, 0);
}

// ---------------------------------------------------------------------
// Socket server end to end.

TEST(SocketServer, ServesSequentialConnectionsAndExitsOnCancel) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "shlcp_test.sock").string();
  CancelToken token;
  ServerOptions options;
  options.cancel = &token;
  options.num_threads = 2;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_socket(path, options); });

  const auto connect_client = [&]() -> int {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    for (int attempt = 0; attempt < 250; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return fd;
      }
      if (fd >= 0) {
        ::close(fd);
      }
      ::usleep(20'000);  // server may not have bound yet
    }
    return -1;
  };

  // Sequential connect/request/disconnect rounds: round 2+ exercises
  // accept after earlier slots were closed and reclaimed.
  for (std::int64_t round = 0; round < 3; ++round) {
    const int fd = connect_client();
    ASSERT_GE(fd, 0);
    const std::string frame =
        encode_frame(make_request(round, "info", Json::object()).dump());
    ASSERT_GT(::write(fd, frame.data(), frame.size()), 0);
    FrameReader reader;
    const std::optional<std::string> body = read_frame(fd, reader);
    ASSERT_TRUE(body.has_value());
    const Json resp = Json::parse(*body);
    EXPECT_EQ(resp.at("id").as_int(), round);
    EXPECT_TRUE(ok_result(resp).at("ops").is_array());
    ::close(fd);
  }

  token.request_stop(StopReason::kCancelRequested);
  server.join();
  EXPECT_EQ(exit_code, 0);
  EXPECT_FALSE(fs::exists(path));  // unlinked on exit
}

TEST(TransportServer, PortFileIsPublishedWhileServingAndRemovedOnDrain) {
  // The --port-file readiness handshake, both directions: published
  // (atomically) once the listeners are bound, removed again on a
  // graceful drain. The reverse direction is what makes a *leftover*
  // port file a truthful crash marker for the supervisor -- a clean
  // exit never leaves one behind.
  const std::string sock =
      (fs::path(::testing::TempDir()) / "shlcp_pf.sock").string();
  const std::string port_file =
      (fs::path(::testing::TempDir()) / "shlcp_pf.ports.json").string();
  fs::remove(port_file);

  CancelToken token;
  ServerOptions options;
  options.cancel = &token;
  options.num_threads = 2;
  TransportSpec spec;
  spec.unix_path = sock;
  spec.port_file = port_file;

  int exit_code = -1;
  std::thread server([&] { exit_code = serve_transports(spec, options); });

  bool published = false;
  for (int attempt = 0; attempt < 250; ++attempt) {
    if (fs::exists(port_file)) {
      published = true;
      break;
    }
    ::usleep(20'000);
  }
  ASSERT_TRUE(published) << "port file never published";
  {
    std::ifstream in(port_file);
    std::ostringstream buf;
    buf << in.rdbuf();
    const Json ports = Json::parse(buf.str());
    EXPECT_EQ(ports.at("unix").as_string(), sock);
  }

  token.request_stop(StopReason::kCancelRequested);
  server.join();
  EXPECT_EQ(exit_code, 0);
  EXPECT_FALSE(fs::exists(port_file))  // the satellite assertion
      << "graceful exit must remove the port file";
  EXPECT_FALSE(fs::exists(sock));
}

}  // namespace
}  // namespace shlcp::svc
