// Unit tests for the util module: deterministic RNG, combinatorial
// enumerators, and formatting helpers.

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/combinatorics.h"
#include "util/format.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(CheckTest, ThrowsWithMessage) {
  try {
    SHLCP_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(CheckTest, PassesSilently) {
  EXPECT_NO_THROW(SHLCP_CHECK(2 + 2 == 4));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.next_below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int x = rng.next_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo = saw_lo || (x == -2);
    saw_hi = saw_hi || (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, RandomPermutationIsPermutation) {
  Rng rng(11);
  const auto p = random_permutation(8, rng);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(CombinatoricsTest, PermutationCount) {
  int count = 0;
  for_each_permutation(4, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 24);
}

TEST(CombinatoricsTest, PermutationEarlyStop) {
  int count = 0;
  const bool complete = for_each_permutation(4, [&](const std::vector<int>&) {
    ++count;
    return count < 5;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 5);
}

TEST(CombinatoricsTest, ProductCount) {
  int count = 0;
  for_each_product({2, 3, 4}, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 24);
}

TEST(CombinatoricsTest, ProductEmpty) {
  int count = 0;
  for_each_product({}, [&](const std::vector<int>& digits) {
    EXPECT_TRUE(digits.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(CombinatoricsTest, ProductDigitsValid) {
  for_each_product({3, 2}, [&](const std::vector<int>& d) {
    EXPECT_LT(d[0], 3);
    EXPECT_LT(d[1], 2);
    return true;
  });
}

TEST(CombinatoricsTest, SubsetCount) {
  int count = 0;
  for_each_subset(6, 3, [&](const std::vector<int>& s) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 20);
}

TEST(CombinatoricsTest, SubsetAnySizeCount) {
  int count = 0;
  for_each_subset_any_size(5, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 32);
}

TEST(CombinatoricsTest, Factorial) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(12), 479001600u);
}

TEST(CombinatoricsTest, Binomial) {
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(4, 7), 0u);
}

TEST(CombinatoricsTest, AllPermutationsMaterialized) {
  const auto perms = all_permutations(3);
  EXPECT_EQ(perms.size(), 6u);
  EXPECT_EQ(perms.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(perms.back(), (std::vector<int>{2, 1, 0}));
}

TEST(FormatTest, Printf) {
  EXPECT_EQ(format("x=%d y=%s", 3, "hi"), "x=3 y=hi");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(FormatTest, Join) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ", "), "");
}

TEST(FormatTest, ShowVec) {
  EXPECT_EQ(show_vec({4, 5}), "[4, 5]");
}

}  // namespace
}  // namespace shlcp
