// Unit tests for the paper's graph-class recognizers: minimum degree one,
// even cycles, shatter points, watermelon decompositions, and the
// r-forgetful property, including Lemma 2.1 (r-forgetful implies diameter
// >= 2r + 1) as an executable property sweep (experiment E1's core).

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(PropertiesTest, MinDegreeOne) {
  EXPECT_TRUE(has_min_degree_one(make_path(5)));
  EXPECT_TRUE(has_min_degree_one(make_star(4)));
  EXPECT_FALSE(has_min_degree_one(make_cycle(5)));
  EXPECT_FALSE(has_min_degree_one(make_grid(3, 3)));
}

TEST(PropertiesTest, CycleRecognition) {
  EXPECT_TRUE(is_cycle(make_cycle(5)));
  EXPECT_TRUE(is_even_cycle(make_cycle(6)));
  EXPECT_FALSE(is_even_cycle(make_cycle(7)));
  EXPECT_FALSE(is_cycle(make_path(5)));
  EXPECT_FALSE(is_cycle(make_theta(2, 2, 2)));
  // Two disjoint cycles: 2-regular but disconnected.
  Graph two(8);
  for (int i = 0; i < 4; ++i) {
    two.add_edge(i, (i + 1) % 4);
    two.add_edge(4 + i, 4 + (i + 1) % 4);
  }
  EXPECT_FALSE(is_cycle(two));
}

TEST(PropertiesTest, ShatterPointsOnPath) {
  // On P7 = 0-1-...-6, removing N[v] for v in {2, 3, 4} leaves two sides.
  const auto pts = shatter_points(make_path(7));
  EXPECT_EQ(pts, (std::vector<Node>{2, 3, 4}));
}

TEST(PropertiesTest, ShatterPointsAbsent) {
  EXPECT_FALSE(has_shatter_point(make_complete(5)));
  EXPECT_FALSE(has_shatter_point(make_path(4)));
  EXPECT_FALSE(has_shatter_point(make_cycle(6)));  // leaves one arc
}

TEST(PropertiesTest, StarLeavesAreShatterPoints) {
  // Removing N[leaf] = {leaf, center} strands the other leaves: every
  // leaf of a star with >= 3 leaves is a shatter point (the center is
  // not: N[center] is everything).
  const auto pts = shatter_points(make_star(5));
  EXPECT_EQ(pts.size(), 5u);
  EXPECT_TRUE(std::find(pts.begin(), pts.end(), 0) == pts.end());
}

TEST(PropertiesTest, ShatterPointsCycle7) {
  // C7: G - N[v] is a path of 4 nodes -- one component. No shatter point.
  EXPECT_FALSE(has_shatter_point(make_cycle(7)));
  // Long even cycle: still a single arc.
  EXPECT_FALSE(has_shatter_point(make_cycle(10)));
}

TEST(PropertiesTest, ShatterPointSpider) {
  // Star of three length-2 legs: center c, legs c-a_i-b_i.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(0, 5);
  g.add_edge(5, 6);
  const auto pts = shatter_points(g);
  EXPECT_TRUE(std::find(pts.begin(), pts.end(), 0) != pts.end());
}

TEST(PropertiesTest, WatermelonDecomposition) {
  const Graph g = make_watermelon({2, 3, 4});
  const auto dec = watermelon_decomposition(g);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->paths.size(), 3u);
  int total_interior = 0;
  for (const auto& path : dec->paths) {
    EXPECT_GE(path.size(), 3u);
    EXPECT_EQ(path.front(), dec->v1);
    EXPECT_EQ(path.back(), dec->v2);
    EXPECT_TRUE(is_walk(g, path));
    total_interior += static_cast<int>(path.size()) - 2;
  }
  EXPECT_EQ(total_interior + 2, g.num_nodes());
}

TEST(PropertiesTest, WatermelonSinglePathIsPathGraph) {
  EXPECT_TRUE(is_watermelon(make_path(5)));
  EXPECT_FALSE(is_watermelon(make_path(2)));  // needs length >= 2
}

TEST(PropertiesTest, WatermelonCycle) {
  // A cycle on >= 4 nodes is a two-path watermelon.
  EXPECT_TRUE(is_watermelon(make_cycle(6)));
  EXPECT_TRUE(is_watermelon(make_cycle(5)));
  // Triangle: any two nodes are adjacent, so no length >= 2 split.
  EXPECT_FALSE(is_watermelon(make_cycle(3)));
}

TEST(PropertiesTest, WatermelonRejects) {
  EXPECT_FALSE(is_watermelon(make_star(3)));
  EXPECT_FALSE(is_watermelon(make_grid(2, 3)));
  EXPECT_FALSE(is_watermelon(make_complete(4)));
  // Adjacent endpoints (a path of length 1 present): theta with a direct
  // edge -- built by hand.
  Graph g(4);
  g.add_edge(0, 1);  // direct edge between would-be endpoints
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  EXPECT_FALSE(is_watermelon(g));
}

TEST(PropertiesTest, ForgetfulEscapePathOnPath) {
  const Graph g = make_path(10);
  // From node 4 arrived from 3: escape 4 -> 5 -> 6.
  const auto esc = forgetful_escape_path(g, 4, 3, 2);
  ASSERT_TRUE(esc.has_value());
  EXPECT_EQ(*esc, (std::vector<Node>{4, 5, 6}));
  // From node 1 arrived from 2 there is nowhere to go for r = 2.
  EXPECT_FALSE(forgetful_escape_path(g, 1, 2, 2).has_value());
}

TEST(PropertiesTest, PathsAndFiniteGridsAreNotForgetfulButToriAre) {
  // Reproduction note (see properties.h): under the satisfiable reading
  // of the definition, boundaries break forgetfulness -- a path fails at
  // its ends and a finite grid at its corners -- while boundaryless
  // structures (tori, long cycles) are forgetful, matching the paper's
  // intent of "(regular) grids".
  EXPECT_FALSE(is_r_forgetful(make_path(10), 1));
  EXPECT_FALSE(is_r_forgetful(make_grid(5, 5), 1));
  EXPECT_TRUE(is_r_forgetful(make_torus(6, 6), 1));
  EXPECT_TRUE(is_r_forgetful(make_torus(12, 12), 2));
}

TEST(PropertiesTest, SmallGraphsAreNotForgetful) {
  // Lemma 2.1 contrapositive: diameter <= 2r means not r-forgetful.
  EXPECT_FALSE(is_r_forgetful(make_complete(5), 1));
  EXPECT_FALSE(is_r_forgetful(make_cycle(3), 1));
  EXPECT_FALSE(is_r_forgetful(make_grid(2, 2), 1));
}

TEST(PropertiesTest, LongCyclesAreForgetful) {
  EXPECT_TRUE(is_r_forgetful(make_cycle(8), 1));
  EXPECT_TRUE(is_r_forgetful(make_cycle(12), 2));
  EXPECT_FALSE(is_r_forgetful(make_cycle(4), 1));
}

TEST(PropertiesTest, MaxForgetfulness) {
  EXPECT_EQ(max_forgetfulness(make_cycle(12), 5), 2);
  EXPECT_EQ(max_forgetfulness(make_complete(4), 3), 0);
  EXPECT_EQ(max_forgetfulness(make_grid(9, 9), 4), 0);  // corners block
  EXPECT_GE(max_forgetfulness(make_torus(12, 12), 2), 2);
}

// Lemma 2.1: r-forgetful implies diam(G) >= 2r + 1. Swept over families
// and random graphs (experiment E1).
class Lemma21Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma21Test, ForgetfulImpliesLargeDiameter) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<Graph> graphs;
  graphs.push_back(make_grid(3 + seed % 3, 4 + seed % 2));
  graphs.push_back(make_cycle(5 + seed));
  graphs.push_back(make_torus(3 + seed % 2, 4));
  graphs.push_back(make_random_tree(8 + seed, rng));
  for (int rep = 0; rep < 5; ++rep) {
    Graph g = make_random_graph(8, 1, 4, rng);
    if (is_connected(g)) {
      graphs.push_back(std::move(g));
    }
  }
  for (const Graph& g : graphs) {
    if (!is_connected(g) || g.num_nodes() < 2) {
      continue;
    }
    for (int r = 1; r <= 3; ++r) {
      if (is_r_forgetful(g, r)) {
        EXPECT_GE(diameter(g), 2 * r + 1)
            << "Lemma 2.1 violated on " << g.to_string() << " at r = " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma21Test, ::testing::Range(1, 9));

// Monotonicity property: r-forgetful implies (r-1)-forgetful.
TEST(PropertiesTest, ForgetfulnessIsMonotone) {
  for (const Graph& g :
       {make_grid(6, 6), make_cycle(10), make_torus(5, 5)}) {
    for (int r = 3; r >= 2; --r) {
      if (is_r_forgetful(g, r)) {
        EXPECT_TRUE(is_r_forgetful(g, r - 1));
      }
    }
  }
}

}  // namespace
}  // namespace shlcp
