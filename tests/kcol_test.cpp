// General-k tests: the library's machinery at k = 3 (the paper states
// Lemma 3.2 and the hiding definitions for arbitrary k), and the
// Section 1.3 remark made constructive: because the degree-one LCP's
// neighborhood graph is 3-colorable, a 3-coloring extractor EXISTS for
// its certificates even though the 2-coloring is hidden -- "an LCP that
// hides a K-coloring must hide every k <= K", contrapositively.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/extractor.h"
#include "nbhd/quantified.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(KColTest, Revealing3Completeness) {
  const RevealingLcp lcp(3);
  EXPECT_EQ(lcp.k(), 3);
  for (const Graph& g : {make_cycle(5), make_cycle(7), make_path(6),
                         make_grid(3, 3), make_theta(2, 2, 3)}) {
    ASSERT_TRUE(lcp.in_promise(g));
    const auto report = check_completeness(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
  EXPECT_FALSE(lcp.in_promise(make_complete(4)));
}

TEST(KColTest, Revealing3StrongSoundnessExhaustive) {
  // Accepting sets are self-colored: 3-colorable under every labeling of
  // every connected graph on up to 4 nodes (4 certificates per node).
  const RevealingLcp lcp(3);
  for_each_connected_graph(4, [&](const Graph& g) {
    const auto report =
        check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
    return true;
  });
}

TEST(KColTest, Revealing3SoundnessOnK4) {
  const RevealingLcp lcp(3);
  const auto report =
      check_soundness_exhaustive(lcp, Instance::canonical(make_complete(4)));
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(KColTest, Revealing3NeighborhoodGraphIs3Colorable) {
  const RevealingLcp lcp(3);
  std::vector<Graph> graphs;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  EnumOptions options;
  auto nbhd = build_exhaustive(lcp, graphs, options);
  EXPECT_TRUE(nbhd.k_colorable(3));
  // And the 3-coloring extractor works on every promise instance.
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 3);
  ASSERT_TRUE(extractor.has_value());
  for (const Graph& g : graphs) {
    Instance inst = Instance::canonical(g);
    inst.labels = *lcp.prove(g, inst.ports, inst.ids);
    const auto colors = extractor->run(inst);
    ASSERT_TRUE(colors.has_value());
    for (const Edge& e : g.edges()) {
      EXPECT_NE((*colors)[static_cast<std::size_t>(e.u)],
                (*colors)[static_cast<std::size_t>(e.v)]);
    }
  }
}

TEST(KColTest, Section13ContrapositiveConstructive) {
  // The degree-one LCP hides 2-colorings (odd cycle in V) but its view
  // graph is 3-colorable -- so a THREE-coloring extractor exists and
  // works on every accepted instance of the witness family, exactly the
  // K > k side of the Section 1.3 discussion.
  const DegreeOneLcp lcp;
  const auto witnesses = degree_one_witnesses(4);
  auto nbhd = build_from_instances(lcp.decoder(), witnesses, 2);
  ASSERT_TRUE(nbhd.odd_cycle().has_value());          // hides 2-colorings
  ASSERT_TRUE(nbhd.k_colorable(3));                   // but not 3-colorings
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 3);
  ASSERT_TRUE(extractor.has_value());
  int tested = 0;
  for (const Instance& inst : witnesses) {
    if (!lcp.decoder().accepts_all(inst)) {
      continue;
    }
    const auto colors = extractor->run(inst);
    ASSERT_TRUE(colors.has_value());
    for (const Edge& e : inst.g.edges()) {
      EXPECT_NE((*colors)[static_cast<std::size_t>(e.u)],
                (*colors)[static_cast<std::size_t>(e.v)]);
    }
    ++tested;
  }
  EXPECT_GT(tested, 50);
}

TEST(KColTest, EvenCycleLoopHidesEveryK) {
  // The other side: the even-cycle LCP's self-loop witness defeats
  // K-extraction for EVERY K -- the strongest possible form of the
  // Section 1.3 ordering.
  const EvenCycleLcp lcp;
  // (Rebuild the matched-port loop instance.)
  const Graph g = make_cycle(4);
  std::vector<std::vector<Port>> lists(4);
  lists[0] = {1, 2};
  lists[1] = {1, 2};
  lists[2] = {2, 1};
  lists[3] = {2, 1};
  Instance inst;
  inst.g = g;
  inst.ports = PortAssignment::from_lists(g, std::move(lists));
  inst.ids = IdAssignment::consecutive(g);
  Labeling labels(4);
  for (Node v = 0; v < 4; ++v) {
    labels.at(v) = make_even_cycle_certificate(1, 0, 2, 1);
  }
  inst.labels = std::move(labels);
  auto nbhd = build_from_instances(lcp.decoder(), {inst}, 2);
  for (int k = 2; k <= 7; ++k) {
    EXPECT_FALSE(nbhd.k_colorable(k)) << "k = " << k;
  }
}

TEST(KColTest, CertificateBitsGrowWithK) {
  EXPECT_EQ(make_color_certificate(0, 2).bits, 1);
  EXPECT_EQ(make_color_certificate(2, 3).bits, 2);
  EXPECT_EQ(make_color_certificate(4, 5).bits, 3);
  EXPECT_EQ(make_color_certificate(7, 8).bits, 3);
  EXPECT_EQ(make_color_certificate(8, 9).bits, 4);
}

TEST(KColTest, RandomizedStrongSoundnessAcrossK) {
  Rng rng(808);
  for (int k = 2; k <= 4; ++k) {
    const RevealingLcp lcp(k);
    for (int rep = 0; rep < 5; ++rep) {
      const Graph g = make_random_graph(7, 1, 2, rng);
      const auto report = check_strong_soundness_random(
          lcp, Instance::canonical(g), 200, rng);
      EXPECT_TRUE(report.ok) << "k = " << k << ": " << report.failure;
    }
  }
}

}  // namespace
}  // namespace shlcp
