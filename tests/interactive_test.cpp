// Interactive hiding subsystem tests (src/interactive, DESIGN.md §17).
// The load-bearing claims pinned here:
//
//   * honest prover + verifier complete every round and the recorded
//     transcript re-verifies independently;
//   * strict state-transition rejection: a message in the wrong state
//     or with the wrong shape leaves the session byte-for-byte where it
//     was, while a well-formed-but-failing open consumes it;
//   * the binding audit finds zero violations (second-preimage search,
//     machine forgeries, replays, chaos-corrupted wire messages);
//   * the hiding audit accepts the permuting prover and a hand-rolled
//     non-permuting prover fails its chi-square test (the negative
//     control that proves the test has teeth);
//   * cheating acceptance stays under the (1 - 1/m)^R envelope;
//   * Rng::stream sub-streams derived from one master seed do not
//     alias each other or the chaos/backoff derivations already in the
//     codebase.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "interactive/audit.h"
#include "interactive/commit.h"
#include "interactive/protocol.h"
#include "interactive/session.h"
#include "interactive/table.h"
#include "util/rng.h"

namespace shlcp::ia {
namespace {

std::vector<int> proper_coloring(const Graph& g, int k) {
  const std::optional<std::vector<int>> c = k_coloring(g, k);
  EXPECT_TRUE(c.has_value());
  return *c;
}

/// Drives one honest session to its verdict, in place.
void run_honest(SessionMachine& machine, const std::vector<int>& coloring,
                int k, std::uint64_t seed) {
  CommitProver prover(coloring, k, machine.session_id(), seed ^ 0x5eedULL);
  while (machine.state() != SessionState::kDone) {
    StepOutcome committed = machine.on_commit(prover.commit_round());
    EXPECT_TRUE(committed.accepted) << committed.error;
    ASSERT_TRUE(committed.challenge.has_value());
    const Edge e = *committed.challenge;
    StepOutcome opened = machine.on_open(prover.open(e.u), prover.open(e.v));
    EXPECT_TRUE(opened.accepted) << opened.error;
    EXPECT_TRUE(opened.round_ok.value_or(false)) << opened.round_fail;
  }
}

TEST(Commitment, DomainSeparation) {
  const std::uint64_t base = commitment("s", 0, 0, 0, 0);
  EXPECT_EQ(base, commitment("s", 0, 0, 0, 0));  // deterministic
  EXPECT_NE(base, commitment("t", 0, 0, 0, 0));  // session
  EXPECT_NE(base, commitment("s", 1, 0, 0, 0));  // round
  EXPECT_NE(base, commitment("s", 0, 1, 0, 0));  // node
  EXPECT_NE(base, commitment("s", 0, 0, 1, 0));  // color
  EXPECT_NE(base, commitment("s", 0, 0, 0, 1));  // nonce
}

TEST(SessionMachine, HonestSessionAcceptsAndTranscriptReVerifies) {
  const Graph g = make_cycle(6);
  SessionMachine machine(g, 2, 8, 0xC0FFEE, "t-honest");
  run_honest(machine, proper_coloring(g, 2), 2, 0xC0FFEE);
  EXPECT_TRUE(machine.verdict());
  EXPECT_EQ(machine.rounds_done(), 8u);
  EXPECT_EQ(machine.transcript().size(), 8u);
  EXPECT_EQ(machine.verify_transcript(), "");
}

TEST(SessionMachine, ChallengesArePureInSeedAndRound) {
  const Graph g = make_cycle(5);
  const SessionMachine a(g, 2, 4, 0xABCD, "x");
  const SessionMachine b(g, 2, 4, 0xABCD, "y");  // id does not key challenges
  const SessionMachine c(g, 2, 4, 0xABCE, "x");
  bool some_differ = false;
  for (std::uint64_t r = 0; r < 16; ++r) {
    EXPECT_EQ(a.challenge_for(r), b.challenge_for(r));
    some_differ = some_differ || !(a.challenge_for(r) == c.challenge_for(r));
  }
  EXPECT_TRUE(some_differ);  // a different seed draws a different sequence
}

TEST(SessionMachine, StrictRejectionLeavesSessionUnchanged) {
  const Graph g = make_path(4);
  const std::vector<int> coloring = proper_coloring(g, 2);
  SessionMachine machine(g, 2, 2, 0xD00D, "t-strict");
  CommitProver prover(coloring, 2, "t-strict", 7);

  // Open before any commit: wrong state.
  StepOutcome out = machine.on_open(Opening{0, 0, 0}, Opening{1, 1, 0});
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(machine.state(), SessionState::kAwaitCommit);

  // Wrong commitment count: wrong shape.
  out = machine.on_commit({1, 2, 3});
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(machine.state(), SessionState::kAwaitCommit);

  // A proper commit round...
  const std::vector<std::uint64_t> commits = prover.commit_round();
  out = machine.on_commit(commits);
  ASSERT_TRUE(out.accepted);
  const Edge e = *out.challenge;

  // ...then a double commit (wrong state), an open of a non-challenged
  // node, and a duplicate endpoint -- all strictly rejected.
  out = machine.on_commit(commits);
  EXPECT_FALSE(out.accepted);
  int outsider = 0;
  while (outsider == e.u || outsider == e.v) {
    ++outsider;
  }
  out = machine.on_open(prover.open(outsider), prover.open(e.v));
  EXPECT_FALSE(out.accepted);
  out = machine.on_open(prover.open(e.u), prover.open(e.u));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(machine.state(), SessionState::kAwaitOpen);
  EXPECT_EQ(machine.rounds_done(), 0u);

  // The original, well-formed open still lands: rejection burned nothing.
  out = machine.on_open(prover.open(e.u), prover.open(e.v));
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.round_ok.value_or(false));
}

TEST(SessionMachine, FailingOpenConsumesTheSession) {
  const Graph g = make_cycle(6);
  SessionMachine machine(g, 2, 4, 0xBEEF, "t-consume");
  CommitProver prover(proper_coloring(g, 2), 2, "t-consume", 9);
  StepOutcome out = machine.on_commit(prover.commit_round());
  ASSERT_TRUE(out.accepted);
  const Edge e = *out.challenge;
  Opening bad = prover.open(e.u);
  bad.nonce ^= 1;  // well-formed, but the commitment no longer binds
  out = machine.on_open(bad, prover.open(e.v));
  EXPECT_TRUE(out.accepted);  // judged, not strictly rejected
  EXPECT_FALSE(out.round_ok.value_or(true));
  EXPECT_EQ(machine.state(), SessionState::kDone);
  EXPECT_FALSE(machine.verdict());
  // A consumed session strictly rejects everything.
  EXPECT_FALSE(machine.on_commit(prover.commit_round()).accepted);
}

TEST(Audit, BindingFindsNoViolations) {
  const Graph g = make_cycle(6);
  BindingAuditOptions opt;
  opt.forgery_attempts = 512;  // keep the test quick; the bench goes deep
  opt.machine_forgeries = 8;
  const BindingAuditResult result =
      audit_interactive_binding("cycle6", g, proper_coloring(g, 2), 2, opt);
  EXPECT_EQ(result.violations, 0u) << result.report.summary();
  EXPECT_TRUE(result.report.ok) << result.report.summary();
  EXPECT_GT(result.forgeries_tried, 0u);
  EXPECT_GT(result.replays_tried, 0u);
  EXPECT_GT(result.corrupted_messages, 0u);
}

TEST(Audit, HidingAcceptsThePermutingProver) {
  const Graph g = make_cycle(6);
  // Two distinct proper 2-colorings: the invariant is per-coloring
  // uniformity, i.e. the transcript cannot tell them apart.
  std::vector<int> a = proper_coloring(g, 2);
  std::vector<int> b = a;
  for (int& c : b) {
    c = 1 - c;
  }
  HidingAuditOptions opt;
  opt.sessions = 48;
  opt.rounds = 8;
  const HidingAuditResult result =
      audit_interactive_hiding("cycle6", g, {a, b}, 2, opt);
  EXPECT_TRUE(result.report.ok) << result.report.summary();
  ASSERT_EQ(result.per_coloring.size(), 2u);
  for (const HidingColoringStat& stat : result.per_coloring) {
    EXPECT_TRUE(stat.ok) << stat.chi2 << " vs " << result.threshold;
  }
}

TEST(Audit, NonPermutingProverFailsTheHidingTest) {
  // Negative control: commit the coloring verbatim (no per-round
  // permutation). Every challenged edge then reveals its fixed ordered
  // pair, so the cell counts are maximally lopsided and the chi-square
  // statistic must blow past the same threshold the real audit uses.
  const Graph g = make_cycle(6);
  const std::vector<int> coloring = proper_coloring(g, 2);
  const int k = 2;
  const int cells = k * (k - 1);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(cells), 0);
  std::uint64_t samples = 0;
  Rng seeds(0x1DE47171ULL);
  for (int s = 0; s < 48; ++s) {
    const std::string id = "t-leak-" + std::to_string(s);
    SessionMachine machine(g, k, 8, seeds.next_u64(), id);
    Rng nonces(seeds.next_u64());
    while (machine.state() != SessionState::kDone) {
      const std::uint64_t round = machine.rounds_done();
      std::vector<std::uint64_t> commits;
      std::vector<std::uint64_t> round_nonces;
      for (int v = 0; v < g.num_nodes(); ++v) {
        round_nonces.push_back(nonces.next_u64());
        commits.push_back(commitment(id, round, v,
                                     coloring[static_cast<std::size_t>(v)],
                                     round_nonces.back()));
      }
      StepOutcome out = machine.on_commit(commits);
      ASSERT_TRUE(out.accepted);
      const Edge e = *out.challenge;
      const Opening ou{e.u, coloring[static_cast<std::size_t>(e.u)],
                       round_nonces[static_cast<std::size_t>(e.u)]};
      const Opening ov{e.v, coloring[static_cast<std::size_t>(e.v)],
                       round_nonces[static_cast<std::size_t>(e.v)]};
      out = machine.on_open(ou, ov);
      ASSERT_TRUE(out.accepted);
      ASSERT_TRUE(out.round_ok.value_or(false)) << out.round_fail;
      const int a = ou.color;
      const int b = ov.color;
      counts[static_cast<std::size_t>(a * (k - 1) + (b > a ? b - 1 : b))]++;
      ++samples;
    }
    EXPECT_TRUE(machine.verdict());
  }
  const double expect =
      static_cast<double>(samples) / static_cast<double>(cells);
  double chi2 = 0.0;
  for (const std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expect;
    chi2 += d * d / expect;
  }
  EXPECT_GT(chi2, chi_square_threshold(cells - 1, 3.09));
}

TEST(Audit, CheatingAcceptanceStaysUnderTheEnvelope) {
  // cycle5 is not 2-colorable: any 2-coloring leaves >= 1 bad edge.
  const Graph g = make_cycle(5);
  const std::vector<int> cheat = {0, 1, 0, 1, 0};  // edge {4,0} is mono
  AmplificationOptions opt;
  opt.sessions = 128;
  const std::vector<AmplificationPoint> curve =
      measure_amplification(g, cheat, 2, opt);
  ASSERT_EQ(curve.size(), opt.round_counts.size());
  for (const AmplificationPoint& p : curve) {
    EXPECT_TRUE(p.within) << p.rounds << " rounds: rate " << p.rate
                          << " vs envelope " << p.envelope;
    EXPECT_NEAR(p.envelope, std::pow(1.0 - 1.0 / 5.0,
                                     static_cast<double>(p.rounds)),
                1e-12);
  }
  // Acceptance must actually decay with rounds (the curve is a curve).
  EXPECT_LT(curve.back().rate, 0.5);
}

TEST(RngStream, SubStreamsFromOneSeedDoNotAlias) {
  // One master seed fans out into every derived stream the codebase
  // uses: the interactive domains (challenge / permutation / nonce,
  // per-round indexes), the chaos transport's event rngs
  // (service/chaos.cpp), and the client's backoff jitter
  // (service/client.cpp). 16 draws from each must be pairwise distinct
  // across all streams -- a collision means two "independent" streams
  // share state.
  const std::uint64_t seed = 0x5EED0F00DULL;
  std::vector<std::vector<std::uint64_t>> streams;
  for (const std::uint64_t dom : {kDomChallenge, kDomPermutation, kDomNonce}) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      Rng rng = Rng::stream(seed, dom, index);
      std::vector<std::uint64_t> draws;
      for (int i = 0; i < 16; ++i) {
        draws.push_back(rng.next_u64());
      }
      streams.push_back(std::move(draws));
    }
  }
  // Chaos-style: h = mix64(seed ^ (const + op)); Rng(mix64(h ^ salt)).
  for (const std::uint64_t op : {0ULL, 1ULL, 2ULL}) {
    const std::uint64_t h = mix64(seed ^ (0x6a09e667f3bcc909ULL + op));
    Rng rng(mix64(h ^ 0x1234ULL));
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 16; ++i) {
      draws.push_back(rng.next_u64());
    }
    streams.push_back(std::move(draws));
  }
  // Backoff-jitter style: Rng(mix64(seed ^ mix64(phi + call) ^ attempt)).
  for (std::uint64_t call = 0; call < 3; ++call) {
    Rng rng(mix64(seed ^ mix64(0x9e3779b97f4a7c15ULL + call) ^ 1ULL));
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 16; ++i) {
      draws.push_back(rng.next_u64());
    }
    streams.push_back(std::move(draws));
  }
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& draws : streams) {
    for (const std::uint64_t v : draws) {
      seen.insert(v);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);  // no value repeats across any stream
}

TEST(Protocol, JsonAdapterRunsAnHonestSession) {
  const Graph g = make_cycle(6);
  const std::vector<int> coloring = proper_coloring(g, 2);
  KColCommitSession session(g, 2, 3, 0xFACE, "t-wire");
  CommitProver prover(coloring, 2, "t-wire", 11);
  while (!session.done()) {
    Json commit = Json::object();
    commit["type"] = "commit";
    Json& arr = (commit["commitments"] = Json::array());
    for (const std::uint64_t c : prover.commit_round()) {
      arr.push_back(hex16(c));
    }
    Json reply = session.step(commit);
    EXPECT_EQ(reply.at("schema").as_string(), kInteractiveSchema);
    const Edge e{static_cast<Node>(
                     reply.at("challenge").at(std::size_t{0}).as_int()),
                 static_cast<Node>(
                     reply.at("challenge").at(std::size_t{1}).as_int())};
    Json open = Json::object();
    open["type"] = "open";
    Json& opens = (open["opens"] = Json::array());
    for (const Node v : {e.u, e.v}) {
      const Opening o = prover.open(v);
      Json& entry = opens.push_back(Json::array());
      entry.push_back(o.node);
      entry.push_back(o.color);
      entry.push_back(hex16(o.nonce));
    }
    reply = session.step(open);
    EXPECT_TRUE(reply.at("round_ok").as_bool());
  }
  EXPECT_TRUE(session.describe().at("verdict").as_bool());
  EXPECT_EQ(session.machine().verify_transcript(), "");
}

TEST(Protocol, MalformedMessagesThrowStateErrorWithoutAdvancing) {
  const Graph g = make_path(3);
  KColCommitSession session(g, 2, 1, 0x1, "t-bad");
  Json msg = Json::object();
  EXPECT_THROW(session.step(msg), StateError);  // no type
  msg["type"] = "open";
  EXPECT_THROW(session.step(msg), StateError);  // wrong state
  msg["type"] = "commit";
  EXPECT_THROW(session.step(msg), StateError);  // no commitments
  msg["commitments"] = Json::array();
  EXPECT_THROW(session.step(msg), StateError);  // wrong count
  EXPECT_EQ(session.describe().at("state").as_string(), "await_commit");
  EXPECT_FALSE(session.done());
}

TEST(SessionTable, TtlCapsAndExactAccounting) {
  std::uint64_t now = 0;
  SessionLimits limits;
  limits.ttl_ms = 100;
  limits.global_max = 3;
  limits.per_owner_max = 2;
  SessionTable table(limits, [&now] { return now; });
  const Graph g = make_path(3);
  const auto make = [&g] {
    return std::unique_ptr<InteractiveSession>(
        new KColCommitSession(g, 2, 1, 0x7, "any"));
  };

  EXPECT_EQ(table.open("a", 0, make), SessionTable::Refusal::kNone);
  EXPECT_EQ(table.open("a", 0, make), SessionTable::Refusal::kExists);
  EXPECT_EQ(table.open("b", 0, make), SessionTable::Refusal::kNone);
  // Per-owner cap for owner 0 is full; owner < 0 is exempt.
  EXPECT_EQ(table.open("c", 0, make), SessionTable::Refusal::kOwnerCap);
  EXPECT_EQ(table.open("d", -1, make), SessionTable::Refusal::kNone);
  EXPECT_EQ(table.open("e", -1, make), SessionTable::Refusal::kGlobalCap);

  // TTL: advance past it; the next op sweeps all three away.
  now += 101;
  EXPECT_EQ(table.sweep(), 3u);
  EXPECT_FALSE(table.step("a", Json::object()).found);

  // Reopen and abort one, complete nothing: counters stay exact.
  EXPECT_EQ(table.open("f", 1, make), SessionTable::Refusal::kNone);
  EXPECT_TRUE(table.close("f").found);
  EXPECT_FALSE(table.close("f").found);

  const SessionCounters c = table.counters();
  EXPECT_EQ(c.opened, 4u);
  EXPECT_EQ(c.refused, 2u);  // kExists does not count as refused
  EXPECT_EQ(c.expired, 3u);
  EXPECT_EQ(c.aborted, 1u);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.live, 0u);
  EXPECT_EQ(c.opened, c.completed + c.expired + c.aborted + c.live);
}

TEST(SessionTable, CompletedSessionIsRetiredImmediately) {
  std::uint64_t now = 0;
  SessionTable table(SessionLimits{}, [&now] { return now; });
  const Graph g = make_path(3);
  const std::vector<int> coloring = {0, 1, 0};
  const std::string id = "t-retire";
  EXPECT_EQ(table.open(id, 0,
                       [&] {
                         return std::unique_ptr<InteractiveSession>(
                             new KColCommitSession(g, 2, 1, 0x99, id));
                       }),
            SessionTable::Refusal::kNone);
  CommitProver prover(coloring, 2, id, 3);

  Json commit = Json::object();
  commit["type"] = "commit";
  Json& arr = (commit["commitments"] = Json::array());
  for (const std::uint64_t c : prover.commit_round()) {
    arr.push_back(hex16(c));
  }
  SessionTable::StepResult step = table.step(id, commit);
  ASSERT_TRUE(step.found);
  ASSERT_FALSE(step.state_error) << step.error;
  const Json& ch = step.reply.at("challenge");
  Json open = Json::object();
  open["type"] = "open";
  Json& opens = (open["opens"] = Json::array());
  for (std::size_t i = 0; i < 2; ++i) {
    const Opening o = prover.open(static_cast<int>(ch.at(i).as_int()));
    Json& entry = opens.push_back(Json::array());
    entry.push_back(o.node);
    entry.push_back(o.color);
    entry.push_back(hex16(o.nonce));
  }
  step = table.step(id, open);
  ASSERT_TRUE(step.found);
  EXPECT_TRUE(step.completed);
  EXPECT_TRUE(step.reply.at("verdict").as_bool());

  // Retired: gone from the table, counted completed, not aborted.
  EXPECT_FALSE(table.step(id, open).found);
  EXPECT_FALSE(table.close(id).found);
  const SessionCounters c = table.counters();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.live, 0u);
  EXPECT_EQ(c.opened, c.completed + c.expired + c.aborted + c.live);
}

}  // namespace
}  // namespace shlcp::ia
