// Pinned-schema test for the shared bench report harness: every
// BENCH_*.json emitted by bench/report.h must carry exactly the
// "shlcp.bench.v1" shape validated here (and by
// tools/check_bench_json.py in CI). Widening the schema is allowed only
// together with a version bump and an update to this test.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench/report.h"
#include "util/json.h"
#include "util/metrics.h"

namespace shlcp {
namespace {

Json build_report_json() {
  bench::Report report("schema_probe");
  report.meta()["family"] = "unit-test";
  metrics::counter("test.bench_report.counter").inc();
  Json& values = report.add_case("case_one");
  values["n"] = std::int64_t{5};
  values["ok"] = true;
  return report.to_json();
}

TEST(BenchReportTest, SchemaVersionIsPinned) {
  EXPECT_STREQ(bench::kSchemaVersion, "shlcp.bench.v1");
}

TEST(BenchReportTest, ReportMatchesPinnedSchema) {
  const Json j = build_report_json();

  // Top level: exactly these keys, in this order.
  const auto& members = j.members();
  ASSERT_EQ(members.size(), 6u);
  EXPECT_EQ(members[0].first, "schema");
  EXPECT_EQ(members[1].first, "bench");
  EXPECT_EQ(members[2].first, "run");
  EXPECT_EQ(members[3].first, "meta");
  EXPECT_EQ(members[4].first, "cases");
  EXPECT_EQ(members[5].first, "metrics");

  EXPECT_EQ(j.at("schema").as_string(), "shlcp.bench.v1");
  EXPECT_EQ(j.at("bench").as_string(), "schema_probe");

  const Json& run = j.at("run");
  EXPECT_TRUE(run.at("git").is_string());
  EXPECT_GT(run.at("unix_time").as_int(), 0);
  EXPECT_GE(run.at("hardware_concurrency").as_int(), 1);
  EXPECT_GE(run.at("num_threads").as_int(), 1);
  EXPECT_TRUE(run.at("smoke").is_bool());

  EXPECT_EQ(j.at("meta").at("family").as_string(), "unit-test");

  const Json& cases = j.at("cases");
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases.at(0).at("name").as_string(), "case_one");
  EXPECT_EQ(cases.at(0).at("values").at("n").as_int(), 5);

  const Json& metrics_json = j.at("metrics");
  EXPECT_TRUE(metrics_json.contains("counters"));
  EXPECT_TRUE(metrics_json.contains("gauges"));
  EXPECT_TRUE(metrics_json.contains("histograms"));
  EXPECT_GE(metrics_json.at("counters")
                .at("test.bench_report.counter")
                .as_uint(),
            1u);
}

TEST(BenchReportTest, WriteToEmitsParseableFile) {
  bench::Report report("schema_probe_file");
  report.add_case("only")["x"] = std::int64_t{1};
  const std::string path =
      ::testing::TempDir() + "/BENCH_schema_probe_file.json";
  report.write_to(path);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  const Json parsed = Json::parse(contents);
  EXPECT_EQ(parsed.at("schema").as_string(), "shlcp.bench.v1");
  EXPECT_EQ(parsed.at("bench").as_string(), "schema_probe_file");
  EXPECT_EQ(parsed.at("cases").at(0).at("values").at("x").as_int(), 1);
}

TEST(BenchReportTest, HistogramSnapshotShapeIsConsistent) {
  metrics::histogram("test.bench_report.hist").record(123);
  const Json j = build_report_json();
  const Json& h =
      j.at("metrics").at("histograms").at("test.bench_report.hist");
  EXPECT_EQ(h.at("counts").size(), h.at("bounds").size() + 1);
  EXPECT_GE(h.at("count").as_uint(), 1u);
}

}  // namespace
}  // namespace shlcp
