// Wire-protocol tests for the certification service (service/proto.h),
// plus the util/json parse edge cases the protocol's correctness leans
// on: the cache replays *stored dump strings*, so parse(dump(x)) must be
// a byte-exact round trip across everything a result can contain
// (integer boundaries, odd strings, nested containers), and the framing
// layer must survive arbitrary byte splits and reject malformed input
// with an error response rather than a crash.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "service/proto.h"
#include "util/check.h"
#include "util/json.h"

namespace shlcp::svc {
namespace {

// ---------------------------------------------------------------------
// util/json parse edge cases.

TEST(JsonEdgeCases, TruncatedDocumentsThrow) {
  EXPECT_THROW(Json::parse(""), CheckError);
  EXPECT_THROW(Json::parse("{"), CheckError);
  EXPECT_THROW(Json::parse("{\"a\": 1"), CheckError);
  EXPECT_THROW(Json::parse("[1, 2"), CheckError);
  EXPECT_THROW(Json::parse("\"abc"), CheckError);
  EXPECT_THROW(Json::parse("{\"a\""), CheckError);
  EXPECT_THROW(Json::parse("tru"), CheckError);
  EXPECT_THROW(Json::parse("\"\\u00"), CheckError);
}

TEST(JsonEdgeCases, TrailingCharactersThrow) {
  EXPECT_THROW(Json::parse("1 2"), CheckError);
  EXPECT_THROW(Json::parse("{} x"), CheckError);
  EXPECT_THROW(Json::parse("[] []"), CheckError);
}

// The parser is last-wins on duplicate keys (the object keeps the first
// occurrence's position). Pinned because canonical_dump -- and therefore
// cache keying -- depends on it being deterministic.
TEST(JsonEdgeCases, DuplicateKeysLastWins) {
  const Json j = Json::parse(R"({"a": 1, "b": 2, "a": 3})");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at("a").as_int(), 3);
  EXPECT_EQ(j.at("b").as_int(), 2);
  EXPECT_EQ(j.dump(), R"({"a":3,"b":2})");
}

// Lone surrogates are decoded like any other BMP code point (WTF-8
// style, no pairing): \ud800 becomes the bytes ED A0 80. The parser is
// byte-transparent, not a Unicode validator.
TEST(JsonEdgeCases, LoneSurrogateDecodesToWtf8Bytes) {
  const Json j = Json::parse("\"\\ud800\"");
  EXPECT_EQ(j.as_string(), "\xED\xA0\x80");
}

TEST(JsonEdgeCases, InvalidUtf8BytesAreTransparent) {
  // 0xFF 0xFE is not valid UTF-8; the string layer must still carry it
  // byte-exactly through dump + parse.
  const std::string raw = std::string("ok\xFF\xFE\x80moar");
  const Json j(raw);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), raw);
}

TEST(JsonEdgeCases, ControlCharactersEscapeAndRoundTrip) {
  const std::string raw = std::string("a\x01b\x1F\n\t\"\\");
  const Json j(raw);
  EXPECT_EQ(Json::parse(j.dump()).as_string(), raw);
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonEdgeCases, Int64BoundariesRoundTrip) {
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(Json::parse(Json(lo).dump()).as_int(), lo);
  EXPECT_EQ(Json::parse(Json(hi).dump()).as_int(), hi);
  EXPECT_EQ(Json(lo).dump(), "-9223372036854775808");
  EXPECT_EQ(Json(hi).dump(), "9223372036854775807");
}

TEST(JsonEdgeCases, Uint64BoundaryRoundTrips) {
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Json::parse(Json(top).dump()).as_uint(), top);
  EXPECT_EQ(Json(top).dump(), "18446744073709551615");
}

TEST(JsonEdgeCases, IntegerOverflowThrows) {
  EXPECT_THROW(Json::parse("18446744073709551616"), CheckError);
  EXPECT_THROW(Json::parse("-9223372036854775809"), CheckError);
}

// The parser (and everything downstream of it: canonical_json, dump,
// the Json destructor) recurses per container level, so nesting depth
// must be capped -- otherwise one frame of a few MiB of '[' (well under
// the 4 MiB frame cap) overflows the stack and kills the daemon.
TEST(JsonEdgeCases, NestingDepthCapped) {
  const auto nested_array = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_NO_THROW(Json::parse(nested_array(256)));
  EXPECT_THROW(Json::parse(nested_array(257)), CheckError);

  std::string deep_object = "1";
  for (int i = 0; i < 300; ++i) {
    deep_object = "{\"a\":" + deep_object + "}";
  }
  EXPECT_THROW(Json::parse(deep_object), CheckError);

  // The actual attack shape: ~2M open brackets, no closers needed --
  // the cap must trip long before the input is exhausted.
  EXPECT_THROW(Json::parse(std::string(2u << 20, '[')), CheckError);
}

// ---------------------------------------------------------------------
// Framing.

TEST(Framing, EncodeFrameShape) {
  EXPECT_EQ(encode_frame("{}"), "2\n{}\n");
  EXPECT_EQ(encode_frame(""), "0\n\n");
}

TEST(Framing, RoundTrip) {
  FrameReader reader;
  reader.feed(encode_frame(R"({"id":1})"));
  std::string frame;
  std::string error;
  ASSERT_EQ(reader.next(&frame, &error), FrameReader::Next::kFrame);
  EXPECT_EQ(frame, R"({"id":1})");
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

// The reader must accept any split of the byte stream, including one
// byte at a time across frame boundaries.
TEST(Framing, ByteByByteSplits) {
  const std::string stream =
      encode_frame(R"({"op":"info"})") + encode_frame("[1,2,3]") +
      encode_frame("");
  FrameReader reader;
  std::vector<std::string> frames;
  std::string frame;
  std::string error;
  for (const char c : stream) {
    reader.feed(std::string_view(&c, 1));
    while (reader.next(&frame, &error) == FrameReader::Next::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_FALSE(reader.failed()) << error;
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], R"({"op":"info"})");
  EXPECT_EQ(frames[1], "[1,2,3]");
  EXPECT_EQ(frames[2], "");
}

TEST(Framing, MultipleFramesInOneFeed) {
  FrameReader reader;
  reader.feed(encode_frame("a") + encode_frame("bb") + encode_frame("ccc"));
  std::string frame;
  std::string error;
  for (const char* expected : {"a", "bb", "ccc"}) {
    ASSERT_EQ(reader.next(&frame, &error), FrameReader::Next::kFrame);
    EXPECT_EQ(frame, expected);
  }
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kNeedMore);
}

TEST(Framing, OversizedFrameRejectedNotBuffered) {
  FrameReader reader(/*max_frame_bytes=*/16);
  reader.feed("100\n");  // claims a 100-byte body; cap is 16
  std::string frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
}

// Regression: the byte cap must trigger even when the length prefix
// dribbles in one byte per poll wakeup (next() called between feeds,
// exactly as the server's read loop does), the error must name the
// declared length, and the failure must stay sticky for the rest of
// the connection.
TEST(Framing, ByteCapRejectionWithSplitHeader) {
  FrameReader reader(/*max_frame_bytes=*/16);
  std::string frame;
  std::string error;
  for (const char c : {'1', '0', '0'}) {
    reader.feed(std::string_view(&c, 1));
    ASSERT_EQ(reader.next(&frame, &error), FrameReader::Next::kNeedMore);
    ASSERT_FALSE(reader.failed());
  }
  const char nl = '\n';
  reader.feed(std::string_view(&nl, 1));
  ASSERT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_NE(error.find("100"), std::string::npos) << error;
  EXPECT_NE(error.find("16"), std::string::npos) << error;
  // Sticky: well-formed frames after the oversize claim stay rejected.
  reader.feed(encode_frame("{}"));
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_TRUE(reader.failed());
}

TEST(Framing, GarbageHeaderRejected) {
  FrameReader reader;
  reader.feed("xyz\n{}\n");
  std::string frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_TRUE(reader.failed());
}

TEST(Framing, RunawayHeaderRejected) {
  // No newline within the maximum header width: the reader must fail
  // instead of buffering a boundless "header".
  FrameReader reader;
  reader.feed(std::string(64, '1'));
  std::string frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
}

TEST(Framing, UnterminatedBodyRejected) {
  FrameReader reader;
  reader.feed("2\n{}X");  // body must be followed by '\n'
  std::string frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_NE(error.find("newline"), std::string::npos) << error;
}

// Framing loss is unrecoverable: after one error the reader stays
// failed even if well-formed bytes arrive later.
TEST(Framing, FailureIsSticky) {
  FrameReader reader;
  reader.feed("?\n");
  std::string frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  reader.feed(encode_frame("{}"));
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Next::kError);
  EXPECT_TRUE(reader.failed());
}

// ---------------------------------------------------------------------
// Canonicalization (cache keying).

TEST(Canonical, KeyOrderInvariant) {
  const Json a = Json::parse(R"({"z": 1, "a": {"y": 2, "b": 3}})");
  const Json b = Json::parse(R"({"a": {"b": 3, "y": 2}, "z": 1})");
  EXPECT_NE(a.dump(), b.dump());  // insertion order differs...
  EXPECT_EQ(canonical_dump(a), canonical_dump(b));  // ...canonically equal
  EXPECT_EQ(canonical_dump(a), R"({"a":{"b":3,"y":2},"z":1})");
}

TEST(Canonical, ArrayOrderIsSemantic) {
  const Json a = Json::parse("[1,2]");
  const Json b = Json::parse("[2,1]");
  EXPECT_NE(canonical_dump(a), canonical_dump(b));
}

TEST(Canonical, KeysSortedInsideArrays) {
  const Json a = Json::parse(R"([{"b": 1, "a": 2}])");
  EXPECT_EQ(canonical_dump(a), R"([{"a":2,"b":1}])");
}

// ---------------------------------------------------------------------
// Value codecs.

TEST(Codec, GraphRoundTrip) {
  for (const Graph& g :
       {make_path(1), make_cycle(5), make_grid(2, 3), make_complete(4)}) {
    const Json j = graph_to_json(g);
    const Graph back = graph_from_json(j);
    EXPECT_EQ(graph_to_json(back).dump(), j.dump());
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_EQ(back.num_edges(), g.num_edges());
  }
}

TEST(Codec, LabelingRoundTrip) {
  std::vector<Certificate> certs(3);
  certs[0] = Certificate{{1, 2}, 5};
  certs[1] = Certificate{{}, 0};
  certs[2] = Certificate{{7}, 3};
  const Labeling labels(certs);
  const Json j = labeling_to_json(labels);
  EXPECT_EQ(labeling_from_json(j, 3), labels);
}

TEST(Codec, InstanceRoundTrip) {
  Instance inst = Instance::canonical(make_cycle(4));
  inst.labels.at(0) = Certificate{{1}, 1};
  inst.labels.at(2) = Certificate{{0}, 1};
  const Json j = instance_to_json(inst);
  const Instance back = instance_from_json(j);
  EXPECT_EQ(instance_to_json(back).dump(), j.dump());
  EXPECT_EQ(back.labels, inst.labels);
  EXPECT_EQ(back.g.num_nodes(), inst.g.num_nodes());
}

// ---------------------------------------------------------------------
// Request envelope validation.

TEST(RequestEnvelope, ParsesMinimalAndFullRequests) {
  const Request minimal = parse_request(Json::parse(R"({"op": "info"})"));
  EXPECT_EQ(minimal.op, "info");
  EXPECT_TRUE(minimal.id.is_null());
  EXPECT_TRUE(minimal.params.is_object());
  EXPECT_EQ(minimal.params.size(), 0u);
  EXPECT_EQ(minimal.deadline_ms, 0u);

  const Request full = parse_request(Json::parse(
      R"({"id": 7, "op": "check_coloring", "params": {"k": 2},
          "deadline_ms": 1500, "check": "fnv:00000000deadbeef"})"));
  EXPECT_EQ(full.id.as_int(), 7);
  EXPECT_EQ(full.op, "check_coloring");
  EXPECT_EQ(full.params.at("k").as_int(), 2);
  EXPECT_EQ(full.deadline_ms, 1500u);
  EXPECT_EQ(full.check, "fnv:00000000deadbeef");
  EXPECT_EQ(minimal.check, "");  // absent = unchecked
}

// Unknown members are rejected loudly: a client typo ("dedline_ms")
// must not silently strip the deadline.
TEST(RequestEnvelope, UnknownMembersRejected) {
  EXPECT_THROW(
      parse_request(Json::parse(R"({"op": "info", "dedline_ms": 10})")),
      CheckError);
}

TEST(RequestEnvelope, MalformedEnvelopesRejected) {
  EXPECT_THROW(parse_request(Json::parse("[]")), CheckError);
  EXPECT_THROW(parse_request(Json::parse("{}")), CheckError);  // no op
  EXPECT_THROW(parse_request(Json::parse(R"({"op": 3})")), CheckError);
  EXPECT_THROW(parse_request(Json::parse(R"({"op": ""})")), CheckError);
  EXPECT_THROW(
      parse_request(Json::parse(R"({"op": "info", "params": []})")),
      CheckError);
  EXPECT_THROW(
      parse_request(Json::parse(R"({"op": "info", "deadline_ms": -1})")),
      CheckError);
  EXPECT_THROW(
      parse_request(Json::parse(R"({"op": "info", "check": 5})")),
      CheckError);
}

TEST(RequestEnvelope, ResponseBuilders) {
  const Json ok = ok_response(Json(std::int64_t{3}), Json::parse("{}"),
                              /*cached=*/true);
  EXPECT_EQ(ok.at("schema").as_string(), kWireSchema);
  EXPECT_EQ(ok.at("id").as_int(), 3);
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_TRUE(ok.at("cached").as_bool());

  const Json err = error_response(Json(), "invalid_params", "boom", "REPRO x");
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_TRUE(err.at("id").is_null());
  EXPECT_EQ(err.at("error").at("code").as_string(), "invalid_params");
  EXPECT_EQ(err.at("error").at("message").as_string(), "boom");
  EXPECT_EQ(err.at("error").at("repro").as_string(), "REPRO x");
}

// The resilience members are strictly additive: omitted by default (so
// pre-resilience captures stay byte-stable), present exactly when the
// builder is given one.
TEST(RequestEnvelope, ResilienceMembersAreAdditive) {
  const Json bare = ok_response(Json(std::int64_t{1}), Json::parse("{}"),
                                /*cached=*/false);
  EXPECT_FALSE(bare.contains("digest"));
  const Json digested =
      ok_response(Json(std::int64_t{1}), Json::parse("{}"),
                  /*cached=*/false, "fnv:1234567812345678");
  EXPECT_EQ(digested.at("digest").as_string(), "fnv:1234567812345678");

  const Json plain = error_response(Json(), "overloaded", "queue full");
  EXPECT_FALSE(plain.at("error").contains("retry_after_ms"));
  const Json hinted = error_response(Json(), "overloaded", "queue full", "",
                                     /*retry_after_ms=*/25);
  EXPECT_EQ(hinted.at("error").at("retry_after_ms").as_int(), 25);
}

}  // namespace
}  // namespace shlcp::svc
