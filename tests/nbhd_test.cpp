// Tests for the accepting neighborhood graph (Section 3) and the
// Lemma 3.2 extractor: the revealing LCP's V(D, n) is 2-colorable and the
// compiled extractor recovers a proper coloring on every accepted
// instance (experiment E9's positive control); hiding LCPs defeat the
// extractor construction.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/enumerate.h"
#include "nbhd/aviews.h"
#include "nbhd/extractor.h"
#include "nbhd/witness.h"

namespace shlcp {
namespace {

std::vector<Graph> small_bipartite_connected(int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (is_bipartite(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  return graphs;
}

TEST(NbhdTest, AbsorbRegistersAcceptingViewsOnly) {
  const RevealingLcp lcp(2);
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  inst.labels.at(0) = Certificate{{2}, 1};  // out-of-range: 0 rejects
  NbhdGraph nbhd;
  nbhd.absorb(lcp.decoder(), inst, 2);
  // Node 1 also rejects (cannot verify the malformed neighbor).
  EXPECT_EQ(nbhd.num_views(), 2);
  EXPECT_EQ(nbhd.num_edges(), 1);
}

TEST(NbhdTest, AbsorbRejectsNoInstances) {
  const RevealingLcp lcp(2);
  NbhdGraph nbhd;
  const Instance inst = Instance::canonical(make_cycle(5));
  EXPECT_THROW(nbhd.absorb(lcp.decoder(), inst, 2), CheckError);
  EXPECT_NO_THROW(nbhd.absorb(lcp.decoder(), inst, 2, /*require_yes=*/false));
}

TEST(NbhdTest, DedupAcrossInstances) {
  const RevealingLcp lcp(2);
  const Graph g = make_path(3);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  NbhdGraph nbhd;
  nbhd.absorb(lcp.decoder(), inst, 2);
  const int before = nbhd.num_views();
  nbhd.absorb(lcp.decoder(), inst, 2);  // identical instance: no growth
  EXPECT_EQ(nbhd.num_views(), before);
}

TEST(NbhdTest, IndexOfRoundTrips) {
  const RevealingLcp lcp(2);
  const Graph g = make_cycle(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  NbhdGraph nbhd;
  nbhd.absorb(lcp.decoder(), inst, 2);
  for (int i = 0; i < nbhd.num_views(); ++i) {
    EXPECT_EQ(nbhd.index_of(nbhd.view(i)), i);
  }
  // A foreign view is unknown.
  const Instance other = Instance::canonical(make_star(5));
  EXPECT_EQ(nbhd.index_of(other.view_of(0, 1, true)), -1);
}

TEST(NbhdTest, RevealingNeighborhoodGraphIs2Colorable) {
  // Lemma 3.2, "not hiding" direction: the revealing LCP's exhaustive
  // V(D, n) over all bipartite graphs on <= 4 nodes is 2-colorable.
  const RevealingLcp lcp(2);
  EnumOptions options;
  const auto nbhd = build_exhaustive(lcp, small_bipartite_connected(4), options);
  EXPECT_GT(nbhd.num_views(), 10);
  EXPECT_TRUE(nbhd.k_colorable(2));
  EXPECT_FALSE(nbhd.odd_cycle().has_value());
}

TEST(NbhdTest, ExtractorRecoversColoringEverywhere) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  const auto graphs = small_bipartite_connected(4);
  auto nbhd = build_exhaustive(lcp, graphs, options);
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 2);
  ASSERT_TRUE(extractor.has_value());

  // On every honestly-labeled instance of the same size range, the
  // extractor outputs a PROPER 2-coloring.
  int tested = 0;
  for (const Graph& g : graphs) {
    Instance inst = Instance::canonical(g);
    inst.labels = *lcp.prove(g, inst.ports, inst.ids);
    const auto colors = extractor->run(inst);
    ASSERT_TRUE(colors.has_value());
    for (const Edge& e : g.edges()) {
      EXPECT_NE((*colors)[static_cast<std::size_t>(e.u)],
                (*colors)[static_cast<std::size_t>(e.v)]);
    }
    ++tested;
  }
  EXPECT_GT(tested, 5);
}

TEST(NbhdTest, ExtractorWorksOnAdversarialAcceptedLabelings) {
  // Lemma 3.2's statement quantifies over every accepted certificate
  // assignment, not just honest ones: sweep all accepted labelings of P3.
  const RevealingLcp lcp(2);
  EnumOptions options;
  auto nbhd = build_exhaustive(lcp, small_bipartite_connected(4), options);
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 2);
  ASSERT_TRUE(extractor.has_value());

  const Graph g = make_path(3);
  int accepted = 0;
  for_each_labeled_instance(lcp, {g}, options, [&](const Instance& inst) {
    if (!lcp.decoder().accepts_all(inst)) {
      return true;
    }
    ++accepted;
    const auto colors = extractor->run(inst);
    EXPECT_TRUE(colors.has_value());
    if (colors.has_value()) {
      for (const Edge& e : g.edges()) {
        EXPECT_NE((*colors)[static_cast<std::size_t>(e.u)],
                  (*colors)[static_cast<std::size_t>(e.v)]);
      }
    }
    return true;
  });
  EXPECT_EQ(accepted, 2);  // exactly the two proper colorings of P3
}

TEST(NbhdTest, ExtractorUnknownViewReported) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  auto nbhd = build_exhaustive(lcp, {make_path(2)}, options);
  auto extractor = Extractor::build(lcp.decoder(), std::move(nbhd), 2);
  ASSERT_TRUE(extractor.has_value());
  // A star's center view was never absorbed.
  const Graph g = make_star(3);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_FALSE(extractor->run(inst).has_value());
}

TEST(NbhdTest, ExtractorConstructionFailsForHidingLcps) {
  // Lemma 3.2, hiding direction: a non-2-colorable neighborhood graph
  // defeats the construction.
  {
    const DegreeOneLcp lcp;
    auto nbhd =
        build_from_instances(lcp.decoder(), degree_one_witnesses(4), 2);
    EXPECT_FALSE(Extractor::build(lcp.decoder(), std::move(nbhd), 2)
                     .has_value());
  }
  {
    const EvenCycleLcp lcp;
    auto nbhd =
        build_from_instances(lcp.decoder(), even_cycle_witnesses(6), 2);
    EXPECT_FALSE(Extractor::build(lcp.decoder(), std::move(nbhd), 2)
                     .has_value());
  }
}

TEST(NbhdTest, KColoringOfViewsMatchesChromaticNeeds) {
  // For k = 3 the degree-one witness graph becomes colorable (its odd
  // cycles defeat only k = 2)... unless a loop is present. Verify both.
  const DegreeOneLcp lcp;
  auto nbhd = build_from_instances(lcp.decoder(), degree_one_witnesses(4), 2);
  const bool has_loop = [&] {
    for (int i = 0; i < nbhd.num_views(); ++i) {
      if (nbhd.graph().has_edge(i, i)) {
        return true;
      }
    }
    return false;
  }();
  if (!has_loop) {
    // Loop-free: some finite palette suffices (here already k = 5).
    EXPECT_TRUE(nbhd.k_colorable(5));
  } else {
    EXPECT_FALSE(nbhd.k_colorable(5));
  }
}

TEST(NbhdTest, BuildProvedIsSubgraphOfExhaustive) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  const std::vector<Graph> graphs{make_path(3), make_cycle(4)};
  const auto proved = build_proved(lcp, graphs, options);
  const auto full = build_exhaustive(lcp, graphs, options);
  EXPECT_LE(proved.num_views(), full.num_views());
  // Every proved view appears in the full graph.
  for (int i = 0; i < proved.num_views(); ++i) {
    EXPECT_NE(full.index_of(proved.view(i)), -1);
  }
}

}  // namespace
}  // namespace shlcp
