// Lemma 4.1 (degree-one LCP): completeness and strong soundness checked
// EXHAUSTIVELY on all small graphs (the 4-symbol alphabet makes full
// labeling sweeps exact), anonymity, and the hiding property via the
// Figs. 3/4 odd-cycle witness and Lemma 3.2.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(DegreeOneTest, PromisePredicate) {
  const DegreeOneLcp lcp;
  EXPECT_TRUE(lcp.in_promise(make_path(5)));
  EXPECT_TRUE(lcp.in_promise(make_star(4)));
  EXPECT_TRUE(lcp.in_promise(make_double_broom(3, 2, 2)));
  EXPECT_FALSE(lcp.in_promise(make_cycle(6)));   // min degree 2
  EXPECT_FALSE(lcp.in_promise(make_cycle(5)));   // not bipartite either
  // Odd cycle with a pendant: min degree 1 but not bipartite.
  Graph g = make_cycle(5);
  const Node leaf = g.add_node();
  g.add_edge(0, leaf);
  EXPECT_FALSE(lcp.in_promise(g));
}

TEST(DegreeOneTest, CompletenessOnAllSmallPromiseGraphs) {
  const DegreeOneLcp lcp;
  int graphs_checked = 0;
  for (int n = 2; n <= 6; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!lcp.in_promise(g)) {
        return true;
      }
      ++graphs_checked;
      const auto report = check_completeness(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
  EXPECT_GT(graphs_checked, 100);
}

TEST(DegreeOneTest, CompletenessUnderAllPortsAndIdOrders) {
  // Anonymity means ports are the only relevant dimension, but sweep ids
  // anyway to be sure.
  const DegreeOneLcp lcp;
  const Graph g = make_double_broom(2, 1, 2);  // 5 nodes, min degree 1
  for_each_port_assignment(g, [&](const PortAssignment& ports) {
    return for_each_id_order(g, [&](const IdAssignment& ids) {
      Instance inst;
      inst.g = g;
      inst.ports = ports;
      inst.ids = ids;
      inst.labels = Labeling(g.num_nodes());
      const auto report = check_completeness(lcp, inst);
      EXPECT_TRUE(report.ok) << report.failure;
      return report.ok;
    });
  });
}

TEST(DegreeOneTest, StrongSoundnessExhaustiveAllGraphsUpTo5) {
  // The theorem-level guarantee: for EVERY graph (promise or not), EVERY
  // certificate assignment leaves a bipartite accepting set. 4^n labelings
  // per graph; all connected graphs on up to 5 nodes.
  const DegreeOneLcp lcp;
  std::uint64_t total_labelings = 0;
  for (int n = 2; n <= 5; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      const auto report =
          check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      total_labelings += report.cases;
      return true;
    });
  }
  EXPECT_GT(total_labelings, 500'000u);
}

TEST(DegreeOneTest, StrongSoundnessExhaustiveWithPortVariation) {
  const DegreeOneLcp lcp;
  const Graph g = make_cycle(5);  // the critical odd cycle
  for_each_port_assignment(g, [&](const PortAssignment& ports) {
    Instance inst;
    inst.g = g;
    inst.ports = ports;
    inst.ids = IdAssignment::consecutive(g);
    inst.labels = Labeling(g.num_nodes());
    const auto report = check_strong_soundness_exhaustive(lcp, inst);
    EXPECT_TRUE(report.ok) << report.failure;
    return report.ok;
  });
}

TEST(DegreeOneTest, StrongSoundnessRandomizedLarger) {
  const DegreeOneLcp lcp;
  Rng rng(99);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = make_random_graph(9, 1, 3, rng);
    if (g.num_nodes() == 0) {
      continue;
    }
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 300, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(DegreeOneTest, DecoderIsAnonymous) {
  const DegreeOneLcp lcp;
  Rng rng(3);
  const Graph g = make_double_broom(3, 1, 1);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(lcp.decoder().anonymous());
  EXPECT_TRUE(check_anonymous(lcp.decoder(), inst, 25, rng).ok);
}

/// Runs the decoder at one node of a hand-labeled instance.
bool lcp_accepts_at(const Instance& inst, Node v) {
  const DegreeOneLcp lcp;
  return lcp.decoder().accept(lcp.decoder().input_view(inst, v));
}

TEST(DegreeOneTest, TopRequiresCommonBeta) {
  // The strong-soundness linchpin: a TOP node whose colored neighbors
  // disagree must reject (see the file comment in degree_one.h).
  const Graph g = make_star(3);
  Instance inst = Instance::canonical(g);
  Labeling labels(4);
  labels.at(0) = make_degree_one_certificate(DegreeOneSymbol::kTop);
  labels.at(1) = make_degree_one_certificate(DegreeOneSymbol::kBot);
  labels.at(2) = make_degree_one_certificate(DegreeOneSymbol::kColor0);
  labels.at(3) = make_degree_one_certificate(DegreeOneSymbol::kColor1);
  inst.labels = labels;
  EXPECT_FALSE(lcp_accepts_at(inst, 0));
}

TEST(DegreeOneTest, BotRequiresDegreeOne) {
  const Graph g = make_cycle(4);
  Instance inst = Instance::canonical(g);
  Labeling labels(4);
  labels.at(0) = make_degree_one_certificate(DegreeOneSymbol::kBot);
  labels.at(1) = make_degree_one_certificate(DegreeOneSymbol::kTop);
  labels.at(2) = make_degree_one_certificate(DegreeOneSymbol::kColor0);
  labels.at(3) = make_degree_one_certificate(DegreeOneSymbol::kTop);
  inst.labels = labels;
  EXPECT_FALSE(lcp_accepts_at(inst, 0));
}

TEST(DegreeOneTest, HonestK2Accepted) {
  const DegreeOneLcp lcp;
  const Graph g = make_path(2);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(lcp.decoder().accepts_all(inst));
}

TEST(DegreeOneTest, HidingViaFig34Witness) {
  // Figs. 3/4: the witness family yields a non-2-colorable neighborhood
  // graph; by Lemma 3.2 the LCP hides the 2-coloring.
  const DegreeOneLcp lcp;
  const auto instances = degree_one_witnesses(4);
  ASSERT_FALSE(instances.empty());
  const auto nbhd = build_from_instances(lcp.decoder(), instances, 2);
  EXPECT_GT(nbhd.num_views(), 3);
  const auto cycle = nbhd.odd_cycle();
  ASSERT_TRUE(cycle.has_value()) << "no odd cycle: decoder would be extractable";
  EXPECT_EQ((cycle->size() - 1) % 2, 1u);
  EXPECT_FALSE(nbhd.k_colorable(2));
}

TEST(DegreeOneTest, HidingWitnessSurvivesExhaustiveConstruction) {
  // The full V(D, 4) over all min-degree-1 bipartite graphs on <= 4 nodes
  // (Lemma 3.1's enumeration, exact) is not 2-colorable either.
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  EnumOptions options;
  options.all_ports = true;
  const auto nbhd = build_exhaustive(lcp, graphs, options);
  EXPECT_FALSE(nbhd.k_colorable(2));
}

TEST(DegreeOneTest, NoCommonBetaAblation) {
  // Dropping the common-beta requirement at TOP loses strong soundness.
  // The exhaustive adversarial checker finds the violation automatically
  // on C5 with a pendant BOT (the shape predicted by the parity
  // argument); the standard decoder survives the same sweep.
  Graph g = make_cycle(5);
  const Node pendant = g.add_node();
  g.add_edge(0, pendant);
  const Instance inst = Instance::canonical(g);

  const DegreeOneLcp weakened(DegreeOneVariant::kNoCommonBeta);
  const auto broken = check_strong_soundness_exhaustive(weakened, inst);
  EXPECT_FALSE(broken.ok)
      << "the ablated decoder should accept an odd cycle somewhere in 4^6 "
         "labelings";

  const DegreeOneLcp standard;
  const auto fine = check_strong_soundness_exhaustive(standard, inst);
  EXPECT_TRUE(fine.ok) << fine.failure;

  // The ablation does not affect completeness (the honest prover already
  // makes TOP's colored neighbors agree).
  const Graph promise_graph = make_double_broom(3, 1, 1);
  EXPECT_TRUE(
      check_completeness(weakened, Instance::canonical(promise_graph)).ok);
}

TEST(DegreeOneTest, CertificateSizeIsConstant) {
  const DegreeOneLcp lcp;
  for (int n : {3, 10, 40}) {
    const Graph g = make_path(n);
    Instance inst = Instance::canonical(g);
    const auto labels = lcp.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    EXPECT_EQ(labels->max_bits(), 2);
  }
}

}  // namespace
}  // namespace shlcp
