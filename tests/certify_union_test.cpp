// Theorem 1.1: the union of the degree-one LCP (class H1) and the
// even-cycle LCP (class H2) is a single anonymous, strong and hiding LCP
// for 2-col over H1 union H2 with constant-size certificates.

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/union_lcp.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

class Theorem11Fixture : public ::testing::Test {
 protected:
  DegreeOneLcp degree_one_;
  EvenCycleLcp even_cycle_;
  UnionLcp lcp_{{&degree_one_, &even_cycle_}};
};

TEST_F(Theorem11Fixture, TaggingRoundTrips) {
  const Certificate inner{{3, 4}, 5};
  const Certificate tagged = tag_certificate(1, inner, 2);
  EXPECT_EQ(tagged.bits, 6);
  const auto split = untag_certificate(tagged, 2);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, 1);
  EXPECT_EQ(split->second, inner);
  EXPECT_FALSE(untag_certificate(Certificate{{5, 0}, 3}, 2).has_value());
  EXPECT_FALSE(untag_certificate(Certificate{}, 2).has_value());
}

TEST_F(Theorem11Fixture, PromiseIsTheUnion) {
  EXPECT_TRUE(lcp_.in_promise(make_path(5)));     // H1
  EXPECT_TRUE(lcp_.in_promise(make_cycle(6)));    // H2
  EXPECT_FALSE(lcp_.in_promise(make_cycle(5)));   // odd cycle
  EXPECT_FALSE(lcp_.in_promise(make_grid(3, 3))); // neither class
}

TEST_F(Theorem11Fixture, CompletenessAcrossBothClasses) {
  for (const Graph& g : {make_path(6), make_star(4), make_double_broom(3, 2, 1),
                         make_cycle(4), make_cycle(8)}) {
    const auto report = check_completeness(lcp_, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST_F(Theorem11Fixture, DecoderIsAnonymous) {
  EXPECT_TRUE(lcp_.decoder().anonymous());
  Rng rng(8);
  const Graph g = make_cycle(6);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp_.prove(g, inst.ports, inst.ids);
  EXPECT_TRUE(check_anonymous(lcp_.decoder(), inst, 20, rng).ok);
}

TEST_F(Theorem11Fixture, ConstantSizeCertificates) {
  for (const Graph& g : {make_path(30), make_cycle(24)}) {
    Instance inst = Instance::canonical(g);
    const auto labels = lcp_.prove(g, inst.ports, inst.ids);
    ASSERT_TRUE(labels.has_value());
    EXPECT_LE(labels->max_bits(), 7);  // max(2, 6) + 1 tag bit
  }
}

TEST_F(Theorem11Fixture, MixedTagsNeverAcceptTogether) {
  // A path labeled with degree-one certificates except one node carrying
  // an (honestly-shaped) even-cycle certificate: that node and its
  // neighbors reject.
  const Graph g = make_path(5);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp_.prove(g, inst.ports, inst.ids);
  inst.labels.at(2) =
      tag_certificate(1, make_even_cycle_certificate(1, 0, 2, 1), 2);
  const auto verdicts = lcp_.decoder().run(inst);
  EXPECT_FALSE(verdicts[1]);
  EXPECT_FALSE(verdicts[2]);
  EXPECT_FALSE(verdicts[3]);
}

TEST_F(Theorem11Fixture, StrongSoundnessExhaustiveTiny) {
  // Certificate space: 4 + 16 = 20 per node; all connected graphs on up
  // to 3 nodes plus the two 4-node extremes.
  for (int n = 2; n <= 3; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      const auto report =
          check_strong_soundness_exhaustive(lcp_, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
  for (const Graph& g : {make_cycle(4), make_complete(4)}) {
    const auto report =
        check_strong_soundness_exhaustive(lcp_, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST_F(Theorem11Fixture, StrongSoundnessExhaustiveC5) {
  const auto report = check_strong_soundness_exhaustive(
      lcp_, Instance::canonical(make_cycle(5)), 5'000'000);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.cases, 3'200'000u);  // 20^5
}

TEST_F(Theorem11Fixture, StrongSoundnessRandomized) {
  Rng rng(606);
  for (int rep = 0; rep < 8; ++rep) {
    const Graph g = make_random_graph(8, 1, 3, rng);
    const auto report = check_strong_soundness_random(
        lcp_, Instance::canonical(g), 300, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST_F(Theorem11Fixture, ThreeWayUnion) {
  // The combinator generalizes past the theorem's two classes: add the
  // revealing LCP as a third branch (promise: all bipartite graphs).
  // The tag then costs 2 bits; completeness covers all three classes and
  // strong soundness survives a randomized sweep.
  const RevealingLcp revealing(2);
  const UnionLcp three({&degree_one_, &even_cycle_, &revealing});
  for (const Graph& g : {make_path(5), make_cycle(6), make_grid(3, 3)}) {
    EXPECT_TRUE(three.in_promise(g));
    const auto report = check_completeness(three, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
  Rng rng(51);
  const auto report = check_strong_soundness_random(
      three, Instance::canonical(make_cycle(5)), 800, rng);
  EXPECT_TRUE(report.ok) << report.failure;
  // Tag accounting: 2 bits on top of the widest component.
  const Graph g = make_grid(3, 3);
  Instance inst = Instance::canonical(g);
  const auto labels = three.prove(g, inst.ports, inst.ids);
  ASSERT_TRUE(labels.has_value());
  EXPECT_LE(labels->max_bits(), 8);
}

TEST_F(Theorem11Fixture, HidingInheritedFromBothComponents) {
  // Tag the witness instances of either component and find odd cycles in
  // the union's neighborhood graph -- the hiding witness lifts.
  auto tag_instances = [](std::vector<Instance> instances, int tag) {
    for (Instance& inst : instances) {
      Labeling tagged(inst.num_nodes());
      for (Node v = 0; v < inst.num_nodes(); ++v) {
        tagged.at(v) = tag_certificate(tag, inst.labels.at(v), 2);
      }
      inst.labels = std::move(tagged);
    }
    return instances;
  };
  {
    const auto instances = tag_instances(degree_one_witnesses(4), 0);
    const auto nbhd = build_from_instances(lcp_.decoder(), instances, 2);
    EXPECT_TRUE(nbhd.odd_cycle().has_value());
  }
  {
    const auto instances = tag_instances(even_cycle_witnesses(6), 1);
    const auto nbhd = build_from_instances(lcp_.decoder(), instances, 2);
    EXPECT_TRUE(nbhd.odd_cycle().has_value());
  }
}

}  // namespace
}  // namespace shlcp
