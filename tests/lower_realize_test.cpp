// Tests for the Lemma 5.1 realization machinery: merging views by
// identifier reconstructs instances (idempotence), detects genuine
// conflicts, and verify_realization certifies the lemma's conclusion.

#include <gtest/gtest.h>

#include "certify/revealing.h"
#include "graph/generators.h"
#include "lower/realize.h"
#include "util/rng.h"

namespace shlcp {
namespace {

Instance labeled(Graph g, Rng& rng) {
  Instance inst;
  inst.ports = PortAssignment::random(g, rng);
  inst.ids = IdAssignment::random(g, 2 * g.num_nodes(), rng);
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    labels.at(v) = Certificate{{rng.next_int(0, 5)}, 3};
  }
  inst.labels = std::move(labels);
  inst.g = std::move(g);
  return inst;
}

TEST(RealizeTest, MergeReconstructsInstance) {
  // Merging ALL radius-2 views of a connected instance rebuilds the
  // instance exactly (up to node reindexing by identifier).
  Rng rng(5);
  for (Graph g : {make_cycle(6), make_grid(3, 3), make_theta(2, 3, 4)}) {
    const Instance inst = labeled(std::move(g), rng);
    std::vector<View> views;
    for (Node v = 0; v < inst.num_nodes(); ++v) {
      views.push_back(inst.view_of(v, 2, false));
    }
    const MergeResult merged = merge_views_by_id(views, inst.ids.bound());
    ASSERT_TRUE(merged.ok) << merged.conflict;
    EXPECT_EQ(merged.instance.num_nodes(), inst.num_nodes());
    EXPECT_EQ(merged.instance.g.num_edges(), inst.g.num_edges());
    // Edge sets agree under the identifier correspondence.
    for (const Edge& e : inst.g.edges()) {
      const Node a = merged.node_of_id.at(inst.ids.id_of(e.u));
      const Node b = merged.node_of_id.at(inst.ids.id_of(e.v));
      EXPECT_TRUE(merged.instance.g.has_edge(a, b));
    }
    // Ports and labels agree.
    for (Node v = 0; v < inst.num_nodes(); ++v) {
      const Node m = merged.node_of_id.at(inst.ids.id_of(v));
      EXPECT_EQ(merged.instance.labels.at(m), inst.labels.at(v));
      for (const Node w : inst.g.neighbors(v)) {
        const Node mw = merged.node_of_id.at(inst.ids.id_of(w));
        EXPECT_EQ(merged.instance.ports.port(merged.instance.g, m, mw),
                  inst.ports.port(inst.g, v, w));
      }
    }
  }
}

TEST(RealizeTest, ViewsSurviveInsideRebuiltInstance) {
  Rng rng(8);
  const Instance inst = labeled(make_grid(3, 4), rng);
  std::vector<View> views;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    views.push_back(inst.view_of(v, 1, false));
  }
  const MergeResult merged = merge_views_by_id(views, inst.ids.bound());
  ASSERT_TRUE(merged.ok) << merged.conflict;
  const LambdaDecoder yes(1, false, "yes", [](const View&) { return true; });
  const auto report = verify_realization(yes, merged.instance, views);
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(RealizeTest, LabelConflictDetected) {
  Rng rng(9);
  const Instance a = labeled(make_path(4), rng);
  Instance b = a;
  b.labels.at(1) = Certificate{{99}, 7};
  const View v1 = a.view_of(0, 1, false);
  const View v2 = b.view_of(2, 1, false);  // both see node 1, labels differ
  const MergeResult merged = merge_views_by_id({v1, v2}, a.ids.bound());
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.conflict.find("label conflict"), std::string::npos);
}

TEST(RealizeTest, PortConflictDetected) {
  const Graph g = make_path(3);
  Instance a = Instance::canonical(g);
  Instance b = a;
  // Flip node 1's ports in b.
  b.ports = PortAssignment::from_lists(g, {{1}, {2, 1}, {1}});
  const View v1 = a.view_of(0, 1, false);
  const View v2 = b.view_of(0, 1, false);
  // Both views see the edge {node 0, node 1}; node 1's port on it differs
  // (1 in a, 2 in b).
  const MergeResult merged = merge_views_by_id({v1, v2}, a.ids.bound());
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.conflict.find("port conflict"), std::string::npos);
}

TEST(RealizeTest, DuplicatePortDetected) {
  // Two views hanging different edges on the same port of one node.
  const Graph g = make_path(3);
  const Instance a = Instance::canonical(g);
  Instance b = a;
  b.ports = PortAssignment::from_lists(g, {{1}, {2, 1}, {1}});
  const View v1 = a.view_of(0, 1, false);  // edge (1,2): port at id 2 is 1
  const View v2 = b.view_of(2, 1, false);  // edge (3,2): port at id 2 is 1
  const MergeResult merged = merge_views_by_id({v1, v2}, a.ids.bound());
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.conflict.find("duplicate port"), std::string::npos);
}

TEST(RealizeTest, PortOverflowDetected) {
  // A view claiming port 3 at a node that ends up with merged degree 1.
  const Graph g = make_star(3);
  Instance inst = Instance::canonical(g);
  // Center port list: give the edge to node 3 port 3.
  const View v = inst.view_of(3, 1, false);  // leaf 3 sees center port 3
  const MergeResult merged = merge_views_by_id({v}, inst.ids.bound());
  // The merged graph has only the leaf edge: center degree 1 but port 3.
  EXPECT_FALSE(merged.ok);
  EXPECT_NE(merged.conflict.find("exceeds"), std::string::npos);
}

TEST(RealizeTest, VerifyRealizationCatchesDistortion) {
  // Merging views from two different graphs that share identifiers can
  // succeed structurally yet distort a view (extra edges appear around
  // its boundary); verify_realization must flag it.
  const Graph path = make_path(3);   // ids 1-2-3
  Graph fork(3);                     // 1-2, 1-3
  fork.add_edge(0, 1);
  fork.add_edge(0, 2);
  const Instance a = Instance::canonical(path);
  const Instance b = Instance::canonical(fork);
  const View va = a.view_of(0, 1, false);  // 1 adjacent to 2
  const View vb = b.view_of(0, 1, false);  // 1 adjacent to 2 AND 3
  // Port conflictless merge? In a, node 1's (id 1) port to id 2 is 1; in
  // b, id 1's ports are 1 (to id 2) and 2 (to id 3): consistent.
  const MergeResult merged = merge_views_by_id({va, vb}, 3);
  ASSERT_TRUE(merged.ok) << merged.conflict;
  const LambdaDecoder yes(1, false, "yes", [](const View&) { return true; });
  const auto report = verify_realization(yes, merged.instance, {va, vb});
  // va (center id 1, degree 1) is distorted: in the merge id 1 has
  // degree 2.
  EXPECT_FALSE(report.ok);
}

TEST(RealizeTest, DecoderRejectionReported) {
  Rng rng(10);
  const Instance inst = labeled(make_cycle(4), rng);
  std::vector<View> views;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    views.push_back(inst.view_of(v, 1, false));
  }
  const MergeResult merged = merge_views_by_id(views, inst.ids.bound());
  ASSERT_TRUE(merged.ok);
  const LambdaDecoder no(1, false, "no", [](const View&) { return false; });
  const auto report = verify_realization(no, merged.instance, views);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.failure.find("rejects"), std::string::npos);
}

TEST(RealizeTest, AnonymousViewsRejected) {
  const Instance inst = Instance::canonical(make_path(3));
  const View v = inst.view_of(1, 1, true);
  EXPECT_THROW(merge_views_by_id({v}, 3), CheckError);
}

}  // namespace
}  // namespace shlcp
