// Tests for the parallel V(D, n) construction (util/parallel.h, the
// frame-partitioned sweep of lcp/enumerate.h, and NbhdGraph::merge): the
// acceptance bar is that the parallel build is BIT-IDENTICAL to the
// sequential one -- same views in the same registration order, same
// edges, same odd_cycle() verdict, same first-seen provenance -- for
// id-using (spanning-BFS), anonymous (degree-one), and port-sensitive
// (even-cycle) decoders across thread counts {1, 2, 4}.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/spanning_bfs.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "nbhd/aviews.h"
#include "nbhd/witness.h"
#include "util/parallel.h"

namespace shlcp {
namespace {

// ---------------------------------------------------------------------------
// Worker pool.

TEST(WorkerPoolTest, CoversEveryItemExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    const std::size_t n = 103;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_chunks(n, 7, [&](std::size_t, std::size_t b,
                                       std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(WorkerPoolTest, ChunkIndicesAreDenseAndAligned) {
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.parallel_for_chunks(10, 4, [&](std::size_t ci, std::size_t b,
                                      std::size_t e) {
    EXPECT_EQ(b, ci * 4);
    EXPECT_EQ(e, std::min<std::size_t>(10, b + 4));
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(ci);
  });
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 1, 2}));
}

TEST(WorkerPoolTest, ReusableAcrossJobs) {
  WorkerPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for_chunks(20, 3, [&](std::size_t, std::size_t b,
                                        std::size_t e) {
      sum.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(sum.load(), 20);
  }
}

TEST(WorkerPoolTest, RethrowsLowestChunkError) {
  WorkerPool pool(4);
  try {
    pool.parallel_for_chunks(40, 2, [&](std::size_t ci, std::size_t,
                                        std::size_t) {
      if (ci == 7 || ci == 3 || ci == 12) {
        throw std::runtime_error("chunk " + std::to_string(ci));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(WorkerPoolTest, FailFastCancelsQueuedChunks) {
  // Regression for the fail-fast contract: once a chunk throws, chunks
  // that are still queued must never start. With a single-thread pool the
  // claim order is sequential, so exactly chunks 0..2 run.
  WorkerPool pool(1);
  std::vector<int> ran(10, 0);
  try {
    pool.parallel_for_chunks(10, 1,
                             [&](std::size_t ci, std::size_t, std::size_t) {
                               ran[ci] = 1;
                               if (ci == 2) {
                                 throw std::runtime_error("boom");
                               }
                             });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(WorkerPoolTest, CancellableCompletesWithoutStop) {
  WorkerPool pool(2);
  CancelToken token;
  ParallelRunControl ctrl;
  ctrl.cancel = &token;
  std::atomic<int> sum{0};
  const ParallelRunResult res = pool.run_cancellable(
      20, 3,
      [&](std::size_t, std::size_t b, std::size_t e) {
        sum.fetch_add(static_cast<int>(e - b));
        return true;
      },
      ctrl);
  EXPECT_FALSE(res.stopped());
  EXPECT_EQ(res.completed_prefix_chunks, res.num_chunks);
  EXPECT_EQ(res.num_chunks, 7u);
  EXPECT_EQ(sum.load(), 20);
  EXPECT_FALSE(token.stop_requested());
}

TEST(WorkerPoolTest, CancellableReportsCompletedPrefix) {
  for (const int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    CancelToken token;
    ParallelRunControl ctrl;
    ctrl.cancel = &token;
    const ParallelRunResult res = pool.run_cancellable(
        40, 2,
        [&](std::size_t ci, std::size_t, std::size_t) {
          if (ci == 5) {
            token.request_stop(StopReason::kCancelRequested);
            return false;  // aborted chunk: excluded from the prefix
          }
          return true;
        },
        ctrl);
    EXPECT_TRUE(res.stopped()) << threads << " threads";
    EXPECT_EQ(res.num_chunks, 20u);
    EXPECT_LE(res.completed_prefix_chunks, 5u) << threads << " threads";
    if (threads == 1) {
      // Sequential claim order: exactly chunks 0..4 completed.
      EXPECT_EQ(res.completed_prefix_chunks, 5u);
    }
    EXPECT_EQ(token.reason(), StopReason::kCancelRequested);
  }
}

TEST(WorkerPoolTest, PreStoppedTokenRunsNothing) {
  WorkerPool pool(2);
  CancelToken token;
  token.request_stop(StopReason::kDeadline);
  ParallelRunControl ctrl;
  ctrl.cancel = &token;
  const ParallelRunResult res = pool.run_cancellable(
      10, 1,
      [&](std::size_t, std::size_t, std::size_t) {
        ADD_FAILURE() << "no chunk may start on a tripped token";
        return true;
      },
      ctrl);
  EXPECT_TRUE(res.stopped());
  EXPECT_EQ(res.completed_prefix_chunks, 0u);
}

TEST(WorkerPoolTest, WatchdogFlagsStalledRun) {
  WorkerPool pool(1);
  CancelToken token;
  ParallelRunControl ctrl;
  ctrl.cancel = &token;
  ctrl.stall_timeout_ms = 50;
  const ParallelRunResult res = pool.run_cancellable(
      4, 1,
      [&](std::size_t, std::size_t, std::size_t) {
        // A cooperative-but-stuck body: makes no progress, polls the
        // token. The watchdog must fail it fast with kStall.
        while (!token.stop_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return false;
      },
      ctrl);
  EXPECT_TRUE(res.stopped());
  EXPECT_EQ(res.completed_prefix_chunks, 0u);
  EXPECT_EQ(token.reason(), StopReason::kStall);
}

TEST(WorkerPoolTest, HeartbeatPreventsFalseStall) {
  WorkerPool pool(1);
  CancelToken token;
  ParallelRunControl ctrl;
  ctrl.cancel = &token;
  ctrl.stall_timeout_ms = 60;
  const ParallelRunResult res = pool.run_cancellable(
      1, 1,
      [&](std::size_t, std::size_t, std::size_t) {
        // Legitimately slow chunk (~200ms > timeout) that heartbeats at
        // its safe points: must NOT be flagged as stalled.
        for (int i = 0; i < 20; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          pool.heartbeat();
        }
        return true;
      },
      ctrl);
  EXPECT_FALSE(res.stopped());
  EXPECT_FALSE(token.stop_requested());
}

TEST(WorkerPoolTest, EmptyRangeIsANoop) {
  WorkerPool pool(2);
  int calls = 0;
  pool.parallel_for_chunks(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// Chunk plans and the work-stealing scheduler.

TEST(ChunkPlanTest, UniformPlanShape) {
  const ChunkPlan plan = uniform_plan(10, 4);
  EXPECT_FALSE(plan.adaptive);
  EXPECT_EQ(plan.num_items(), 10u);
  ASSERT_EQ(plan.num_chunks(), 3u);
  EXPECT_EQ(plan.ranges[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(plan.ranges[1], (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_EQ(plan.ranges[2], (std::pair<std::size_t, std::size_t>{8, 10}));
  EXPECT_EQ(uniform_plan(0, 4).num_chunks(), 0u);
}

TEST(ChunkPlanTest, AdaptivePlanBatchesCheapAndIsolatesDense) {
  // target = 108 / (2 threads * 1 range) = 54: the lone cost-100 item
  // must get a chunk of its own, the unit-cost runs batch around it.
  const std::vector<std::uint64_t> costs{1, 1, 1, 1, 100, 1, 1, 1, 1};
  const ChunkPlan plan = adaptive_plan(costs, 2, 1);
  EXPECT_TRUE(plan.adaptive);
  ASSERT_EQ(plan.num_chunks(), 3u);
  EXPECT_EQ(plan.ranges[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(plan.ranges[1], (std::pair<std::size_t, std::size_t>{4, 5}));
  EXPECT_EQ(plan.ranges[2], (std::pair<std::size_t, std::size_t>{5, 9}));
}

TEST(ChunkPlanTest, AdaptivePlanAlwaysCoversContiguously) {
  // Whatever the cost profile (zeros included), the plan must be
  // contiguous ascending ranges exactly covering [0, n).
  const std::vector<std::vector<std::uint64_t>> profiles{
      {},
      {0},
      {5},
      {0, 0, 0, 0},
      {1, 1000, 1, 1000, 1},
      {9, 9, 9, 9, 9, 9, 9, 9},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
  };
  for (const auto& costs : profiles) {
    for (const int threads : {1, 2, 4}) {
      const ChunkPlan plan = adaptive_plan(costs, threads, 2);
      EXPECT_EQ(plan.num_items(), costs.size());
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : plan.ranges) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, costs.size());
    }
  }
}

TEST(WorkerPoolTest, RunPlanExecutesSkewedPlanExactlyOnce) {
  // A deliberately skewed hand-built plan: one huge range plus many tiny
  // ones. Every item must run exactly once at every pool size.
  ChunkPlan plan;
  plan.ranges = {{0, 50}, {50, 51}, {51, 52}, {52, 60}, {60, 61}, {61, 70}};
  for (const int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(70);
    const ParallelRunResult res = pool.run_plan(
        plan,
        [&](std::size_t, std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            hits[i].fetch_add(1);
          }
          return true;
        },
        ParallelRunControl{});
    EXPECT_FALSE(res.stopped());
    EXPECT_EQ(res.chunks_claimed, plan.num_chunks());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(WorkerPoolTest, StealsDrainABlockedOwnersShare) {
  // Two pool threads, ten unit chunks: the caller owns chunks 0-4, the
  // worker 5-9. Chunk 0 blocks until all nine other chunks have run --
  // which is only possible if whoever is NOT stuck in chunk 0 steals the
  // blocked owner's remaining share. Completion therefore proves at
  // least one steal happened (and the counter must say so).
  WorkerPool pool(2);
  const ChunkPlan plan = uniform_plan(10, 1);
  std::atomic<int> others_done{0};
  const ParallelRunResult res = pool.run_plan(
      plan,
      [&](std::size_t ci, std::size_t, std::size_t) {
        if (ci == 0) {
          while (others_done.load() < 9) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        } else {
          others_done.fetch_add(1);
        }
        return true;
      },
      ParallelRunControl{});
  EXPECT_FALSE(res.stopped());
  EXPECT_EQ(res.chunks_claimed, 10u);
  EXPECT_GE(res.steals, 1u);
}

TEST(WorkerPoolTest, LateHighErrorStillRethrowsTheSequentialOne) {
  // Regression: with pre-partitioned deques a high chunk can throw
  // *before* the owner of a lower failing chunk ever reaches it. The
  // fail-fast bound must only prune chunks above the lowest error, so
  // chunk 1 still runs, still throws, and wins the rethrow -- exactly
  // what a sequential loop over the plan would have surfaced.
  WorkerPool pool(2);
  const ChunkPlan plan = uniform_plan(8, 1);  // caller owns 0-3, worker 4-7
  std::atomic<bool> high_thrown{false};
  try {
    pool.run_plan(
        plan,
        [&](std::size_t ci, std::size_t, std::size_t) {
          if (ci == 6) {
            high_thrown.store(true);
            throw std::runtime_error("chunk 6");
          }
          if (ci == 1) {
            // Guarantee the race: chunk 1 does not run until the high
            // error has already been recorded.
            while (!high_thrown.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            throw std::runtime_error("chunk 1");
          }
          return true;
        },
        ParallelRunControl{});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

TEST(WorkerPoolTest, RunPlanReportsCompletedPrefixOnCancel) {
  // Prefix semantics must hold on adaptive (non-uniform) plans too.
  ChunkPlan plan;
  plan.ranges = {{0, 3}, {3, 4}, {4, 9}, {9, 10}, {10, 20}};
  plan.adaptive = true;
  WorkerPool pool(1);
  CancelToken token;
  ParallelRunControl ctrl;
  ctrl.cancel = &token;
  const ParallelRunResult res = pool.run_plan(
      plan,
      [&](std::size_t ci, std::size_t, std::size_t) {
        if (ci == 2) {
          token.request_stop(StopReason::kCancelRequested);
          return false;
        }
        return true;
      },
      ctrl);
  EXPECT_TRUE(res.stopped());
  // Sequential claim order on one thread: chunks 0 and 1 completed.
  EXPECT_EQ(res.completed_prefix_chunks, 2u);
  EXPECT_EQ(plan.ranges[res.completed_prefix_chunks - 1].second, 4u);
}

TEST(ParallelTest, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(3), 3);
  ASSERT_EQ(setenv("SHLCP_NUM_THREADS", "5", 1), 0);
  EXPECT_EQ(resolve_num_threads(0), 5);
  EXPECT_EQ(resolve_num_threads(2), 2);  // explicit beats the environment
  ASSERT_EQ(setenv("SHLCP_NUM_THREADS", "junk", 1), 0);
  EXPECT_GE(resolve_num_threads(0), 1);  // falls back to the hardware
  ASSERT_EQ(unsetenv("SHLCP_NUM_THREADS"), 0);
  EXPECT_GE(resolve_num_threads(0), 1);
}

// ---------------------------------------------------------------------------
// Determinism of the parallel build.

/// Full structural comparison: views in registration order, adjacency,
/// odd-cycle verdict, per-view and per-edge provenance, and the
/// deterministic half of the stats.
void expect_identical(const NbhdGraph& seq, const NbhdGraph& par) {
  ASSERT_EQ(seq.num_views(), par.num_views());
  for (int i = 0; i < seq.num_views(); ++i) {
    EXPECT_TRUE(seq.view(i) == par.view(i)) << "view " << i;
    EXPECT_EQ(seq.view_provenance(i).instance, par.view_provenance(i).instance)
        << "view " << i;
    EXPECT_EQ(seq.view_provenance(i).node, par.view_provenance(i).node)
        << "view " << i;
  }
  EXPECT_TRUE(seq.graph() == par.graph());
  const auto seq_cycle = seq.odd_cycle();
  const auto par_cycle = par.odd_cycle();
  ASSERT_EQ(seq_cycle.has_value(), par_cycle.has_value());
  if (seq_cycle.has_value()) {
    EXPECT_EQ(*seq_cycle, *par_cycle);
  }
  for (const Edge& e : seq.graph().edges()) {
    const Provenance* ps = seq.edge_provenance(e.u, e.v);
    const Provenance* pp = par.edge_provenance(e.u, e.v);
    ASSERT_NE(ps, nullptr) << "edge " << e.u << "," << e.v;
    ASSERT_NE(pp, nullptr) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->instance, pp->instance) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->node, pp->node) << "edge " << e.u << "," << e.v;
    EXPECT_EQ(ps->other, pp->other) << "edge " << e.u << "," << e.v;
  }
  EXPECT_EQ(seq.num_instances_absorbed(), par.num_instances_absorbed());
  EXPECT_EQ(seq.stats().views_deduped, par.stats().views_deduped);
}

std::vector<Graph> connected_bipartite(int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (is_bipartite(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  return graphs;
}

ParallelEnumOptions par_options(const EnumOptions& enums, int threads) {
  ParallelEnumOptions options;
  options.enums = enums;
  options.num_threads = threads;
  options.frames_per_chunk = 1;  // maximal sharding stresses the merge
  return options;
}

TEST(ParallelEnumTest, ExhaustiveSpanningBfsMatchesSequential) {
  // Id-using decoder; the id-order dimension is live.
  const SpanningBfsLcp lcp;
  const auto graphs = connected_bipartite(3);
  EnumOptions enums;
  enums.all_id_orders = true;
  const NbhdGraph seq = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  for (const int threads : {1, 2, 4}) {
    const NbhdGraph par =
        build_exhaustive(lcp, graphs, par_options(enums, threads));
    expect_identical(seq, par);
  }
}

TEST(ParallelEnumTest, ExhaustiveDegreeOneMatchesSequential) {
  // Anonymous decoder; the port dimension is live.
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (const Graph& g : connected_bipartite(4)) {
    if (g.min_degree() == 1) {
      graphs.push_back(g);
    }
  }
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph seq = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  for (const int threads : {1, 2, 4}) {
    const NbhdGraph par =
        build_exhaustive(lcp, graphs, par_options(enums, threads));
    expect_identical(seq, par);
  }
}

TEST(ParallelEnumTest, AdaptivePlanDefaultMatchesSequential) {
  // The default frames_per_chunk = 0 routes through frame_costs +
  // adaptive_plan: chunk boundaries differ from the pinned-chunk layout,
  // but the merged result must still be bit-identical to sequential.
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (const Graph& g : connected_bipartite(4)) {
    if (g.min_degree() == 1) {
      graphs.push_back(g);
    }
  }
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph seq = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  for (const int threads : {2, 4}) {
    ParallelEnumOptions options;
    options.enums = enums;
    options.num_threads = threads;
    ASSERT_EQ(options.frames_per_chunk, 0);  // adaptive is the default
    const NbhdGraph par = build_exhaustive(lcp, graphs, options);
    expect_identical(seq, par);
  }
}

TEST(ParallelEnumTest, FrameCostsMatchLabelingProducts) {
  const DegreeOneLcp lcp;
  const std::vector<Graph> graphs{make_path(2), make_path(4)};
  EnumOptions enums;
  const auto frames = enumerate_frames(graphs, enums);
  const auto costs = frame_costs(lcp, graphs, frames);
  ASSERT_EQ(costs.size(), frames.size());
  // Cross-check each cost against the actual labeling count of its frame.
  for (std::size_t i = 0; i < frames.size(); ++i) {
    std::uint64_t count = 0;
    for_each_labeled_instance_in_frame(lcp, graphs, frames[i], enums,
                                       [&](const Instance&) {
                                         ++count;
                                         return true;
                                       });
    EXPECT_EQ(costs[i], count) << "frame " << i;
  }
}

TEST(ParallelEnumTest, FingerprintCollisionsDedupExactly) {
  // The all-ports sweep registers distinct views that differ only in how
  // cross-edge port pairs line up -- exactly the fingerprint's designed
  // blind spot -- so some dedup chains hold more than one view. The
  // exact chain comparison must still keep every registered view
  // pairwise distinct.
  const DegreeOneLcp lcp;
  std::vector<Graph> graphs;
  for (const Graph& g : connected_bipartite(4)) {
    if (g.min_degree() == 1) {
      graphs.push_back(g);
    }
  }
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph nbhd = build_exhaustive(lcp, graphs, enums);
  ASSERT_GT(nbhd.num_views(), 1);
  EXPECT_LT(nbhd.num_fingerprint_chains(),
            static_cast<std::uint64_t>(nbhd.num_views()))
      << "expected fingerprint collisions in the all-ports family";
  for (int i = 0; i < nbhd.num_views(); ++i) {
    EXPECT_EQ(nbhd.index_of(nbhd.view(i)), i);
    for (int j = i + 1; j < nbhd.num_views(); ++j) {
      EXPECT_FALSE(nbhd.view(i) == nbhd.view(j))
          << "views " << i << " and " << j << " should be distinct";
    }
  }
}

TEST(ParallelEnumTest, ProvedEvenCycleMatchesSequential) {
  // Port-sensitive decoder over the honest prover's stream.
  const EvenCycleLcp lcp;
  const std::vector<Graph> graphs{make_cycle(4), make_cycle(6)};
  EnumOptions enums;
  enums.all_ports = true;
  const NbhdGraph seq = build_proved(lcp, graphs, enums);
  ASSERT_GT(seq.num_views(), 0);
  for (const int threads : {1, 2, 4}) {
    const NbhdGraph par =
        build_proved(lcp, graphs, par_options(enums, threads));
    expect_identical(seq, par);
  }
}

TEST(ParallelEnumTest, WitnessFamiliesMatchSequential) {
  // Explicit witness lists through build_from_instances; both families
  // contain the paper's odd cycles, so the hiding verdict is exercised.
  struct Family {
    const Decoder& decoder;
    std::vector<Instance> instances;
  };
  const DegreeOneLcp degree_one;
  const EvenCycleLcp even_cycle;
  for (const Family& family :
       {Family{degree_one.decoder(), degree_one_witnesses(4)},
        Family{even_cycle.decoder(), even_cycle_witnesses(6)}}) {
    const NbhdGraph seq =
        build_from_instances(family.decoder, family.instances, 2);
    ASSERT_TRUE(seq.odd_cycle().has_value());
    for (const int threads : {1, 2, 4}) {
      EnumOptions enums;
      const NbhdGraph par = build_from_instances(
          family.decoder, family.instances, 2, par_options(enums, threads));
      expect_identical(seq, par);
    }
  }
}

TEST(ParallelEnumTest, SearchHidingWitnessFindsThePaperCycles) {
  const EvenCycleLcp lcp;
  for (const int threads : {1, 2, 4}) {
    ParallelEnumOptions options;
    options.num_threads = threads;
    options.frames_per_chunk = 1;
    const auto result = search_hiding_witness(
        lcp.decoder(), even_cycle_witnesses(6), 2, options);
    EXPECT_TRUE(result.hiding());
    ASSERT_TRUE(result.odd_cycle.has_value());
    EXPECT_EQ(result.odd_cycle->front(), result.odd_cycle->back());
    EXPECT_EQ(result.odd_cycle->size() % 2, 0u);  // odd edge count
  }
}

TEST(ParallelEnumTest, MergePrefersLowestInstanceProvenance) {
  // Two shards absorbing overlapping instances: merging b into a must
  // keep a's (earlier) provenance for shared views/edges and shift b's
  // instance indices for fresh ones.
  const RevealingLcp lcp(2);
  const Graph p3 = make_path(3);
  const Graph p4 = make_path(4);
  Instance i3 = Instance::canonical(p3);
  i3.labels = *lcp.prove(p3, i3.ports, i3.ids);
  Instance i4 = Instance::canonical(p4);
  i4.labels = *lcp.prove(p4, i4.ports, i4.ids);

  NbhdGraph seq;
  seq.absorb(lcp.decoder(), i3, 2);
  seq.absorb(lcp.decoder(), i4, 2);
  seq.absorb(lcp.decoder(), i3, 2);

  NbhdGraph a;
  a.absorb(lcp.decoder(), i3, 2);
  NbhdGraph b;
  b.absorb(lcp.decoder(), i4, 2);
  b.absorb(lcp.decoder(), i3, 2);
  a.merge(std::move(b));

  expect_identical(seq, a);
  EXPECT_EQ(a.num_instances_absorbed(), 3);
  // The P3 views were first seen by instance 0 (shard a), not instance 2.
  EXPECT_EQ(a.view_provenance(0).instance, 0);
}

TEST(ParallelEnumTest, StatsCountDedupesAndAbsorbTime) {
  const RevealingLcp lcp(2);
  const Graph g = make_path(3);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  NbhdGraph nbhd;
  nbhd.absorb(lcp.decoder(), inst, 2);
  const std::uint64_t first = nbhd.stats().views_deduped;
  nbhd.absorb(lcp.decoder(), inst, 2);  // every view again: all dedupes
  EXPECT_EQ(nbhd.stats().views_deduped,
            first + static_cast<std::uint64_t>(nbhd.num_views()));
  EXPECT_GT(nbhd.stats().absorb_ns, 0u);
}

// ---------------------------------------------------------------------------
// Frame-aware errors and the canonical-code cache.

TEST(ParallelEnumTest, LabelingBoundErrorNamesTheFrame) {
  // Regression: the bound used to throw bare ("labeling space exceeds
  // max_labelings_per_frame"), leaving the offending frame unidentified.
  const RevealingLcp lcp(2);
  const std::vector<Graph> graphs{make_path(2), make_path(4)};
  EnumOptions options;
  options.max_labelings_per_frame = 10;  // 3^2 fits, 3^4 does not
  try {
    for_each_labeled_instance(lcp, graphs, options,
                              [](const Instance&) { return true; });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("max_labelings_per_frame (10)"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("graph #1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 nodes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ids=[1, 2, 3, 4]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ports="), std::string::npos) << msg;
  }
}

TEST(ParallelEnumTest, CanonicalCodeIsCachedAndInvalidated) {
  const Instance inst = Instance::canonical(make_path(4));
  View v = inst.view_of(1, 1, false);
  EXPECT_FALSE(v.canonical_cached());
  const auto& code = v.canonical();
  EXPECT_TRUE(v.canonical_cached());
  EXPECT_EQ(&code, &v.canonical());  // compute-once: same vector object

  // Copies share the cache; the mutating copiers drop it and re-derive.
  const View copy = v;
  EXPECT_TRUE(copy.canonical_cached());
  const View anon = v.anonymized();
  EXPECT_FALSE(anon.canonical_cached());
  EXPECT_FALSE(anon == v);  // ids differ, so the codes must differ
  EXPECT_TRUE(anon == inst.view_of(1, 1, true));
}

}  // namespace
}  // namespace shlcp
