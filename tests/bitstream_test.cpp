// Tests for the bit streams and the per-scheme certificate codecs: exact
// round trips, and the honesty of every prover's declared bit sizes
// (encoded size <= declared Certificate::bits on every certificate any
// honest prover emits).

#include <gtest/gtest.h>

#include "certify/codec.h"
#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/shatter.h"
#include "certify/spanning_bfs.h"
#include "certify/watermelon.h"
#include "graph/generators.h"
#include "lcp/instance.h"
#include "util/bitstream.h"
#include "util/rng.h"

namespace shlcp {
namespace {

TEST(BitstreamTest, WriteReadRoundTrip) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0, 1);
  w.write(0xDEAD, 16);
  w.write(1, 1);
  EXPECT_EQ(w.size_bits(), 21);
  BitReader r(w.bytes(), w.size_bits());
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(16), 0xDEADu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.remaining(), 0);
}

TEST(BitstreamTest, OverflowValueRejected) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), CheckError);
}

TEST(BitstreamTest, ReadPastEndRejected) {
  BitWriter w;
  w.write(1, 1);
  BitReader r(w.bytes(), w.size_bits());
  r.read(1);
  EXPECT_THROW(r.read(1), CheckError);
}

TEST(BitstreamTest, RandomRoundTrips) {
  Rng rng(9);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<std::pair<std::uint32_t, int>> items;
    BitWriter w;
    for (int i = 0; i < 20; ++i) {
      const int width = rng.next_int(1, 24);
      const std::uint32_t value =
          static_cast<std::uint32_t>(rng.next_below(1ULL << width));
      items.emplace_back(value, width);
      w.write(value, width);
    }
    BitReader r(w.bytes(), w.size_bits());
    for (const auto& [value, width] : items) {
      EXPECT_EQ(r.read(width), value);
    }
  }
}

TEST(BitstreamTest, BitWidthFor) {
  EXPECT_EQ(bit_width_for(0), 1);
  EXPECT_EQ(bit_width_for(1), 1);
  EXPECT_EQ(bit_width_for(2), 2);
  EXPECT_EQ(bit_width_for(7), 3);
  EXPECT_EQ(bit_width_for(8), 4);
  EXPECT_EQ(bit_width_for(255), 8);
}

TEST(CodecTest, DegreeOneRoundTripAndSize) {
  for (int s = 0; s <= 3; ++s) {
    const Certificate c =
        make_degree_one_certificate(static_cast<DegreeOneSymbol>(s));
    const auto e = encode_degree_one(c);
    EXPECT_LE(e.bits, c.bits);
    EXPECT_EQ(decode_degree_one(e), c);
  }
}

TEST(CodecTest, EvenCycleRoundTripAndSize) {
  for (Port fa = 1; fa <= 2; ++fa) {
    for (int ca = 0; ca <= 1; ++ca) {
      for (Port fb = 1; fb <= 2; ++fb) {
        for (int cb = 0; cb <= 1; ++cb) {
          const Certificate c = make_even_cycle_certificate(fa, ca, fb, cb);
          const auto e = encode_even_cycle(c);
          EXPECT_LE(e.bits, c.bits);
          EXPECT_EQ(decode_even_cycle(e), c);
        }
      }
    }
  }
}

TEST(CodecTest, RevealingRoundTrip) {
  for (int k : {2, 3, 5}) {
    for (int color = 0; color < k; ++color) {
      const Certificate c = make_color_certificate(color, k);
      const auto e = encode_revealing(c, k);
      EXPECT_LE(e.bits, c.bits);
      EXPECT_EQ(decode_revealing(e, k), c);
    }
  }
}

/// Runs a prover over an instance and validates every emitted certificate
/// against the given codec pair.
template <typename Encode, typename Decode>
void validate_prover(const Lcp& lcp, const Graph& g, Encode encode,
                     Decode decode) {
  Instance inst = Instance::canonical(g);
  const auto labels = lcp.prove(g, inst.ports, inst.ids);
  ASSERT_TRUE(labels.has_value()) << lcp.name();
  for (Node v = 0; v < g.num_nodes(); ++v) {
    const Certificate& c = labels->at(v);
    const auto e = encode(c);
    EXPECT_LE(e.bits, c.bits)
        << lcp.name() << ": declared size dishonest at node " << v;
    EXPECT_EQ(decode(e), c) << lcp.name() << ": round trip failed";
  }
}

TEST(CodecTest, SpanningBfsProverHonest) {
  const SpanningBfsLcp lcp;
  for (const Graph& g : {make_path(9), make_grid(3, 4)}) {
    const CodecParams p{g.num_nodes(), g.num_nodes(), g.max_degree(), 0};
    validate_prover(
        lcp, g, [&](const Certificate& c) { return encode_spanning_bfs(c, p); },
        [&](const EncodedCertificate& e) { return decode_spanning_bfs(e, p); });
  }
}

TEST(CodecTest, ShatterProverHonest) {
  const ShatterLcp lcp(ShatterVariant::kVectorOnPoint);
  Graph spider(1);
  for (int i = 0; i < 5; ++i) {
    Node prev = 0;
    for (int j = 0; j < 2; ++j) {
      const Node next = spider.add_node();
      spider.add_edge(prev, next);
      prev = next;
    }
  }
  for (const Graph& g : {make_path(8), spider}) {
    // Recover the instance's component count k from the type-0
    // certificate the prover emits (its vector length).
    Instance probe = Instance::canonical(g);
    const auto labels = lcp.prove(g, probe.ports, probe.ids);
    ASSERT_TRUE(labels.has_value());
    int k = 0;
    for (Node v = 0; v < g.num_nodes(); ++v) {
      if (labels->at(v).fields[0] == 0) {
        k = labels->at(v).fields[2];
      }
    }
    ASSERT_GE(k, 2);
    const CodecParams p{g.num_nodes(), g.num_nodes(), g.max_degree(), k};
    validate_prover(
        lcp, g, [&](const Certificate& c) { return encode_shatter(c, p); },
        [&](const EncodedCertificate& e) { return decode_shatter(e, p); });
  }
}

TEST(CodecTest, WatermelonProverHonest) {
  const WatermelonLcp lcp;
  for (const Graph& g :
       {make_path(8), make_cycle(8), make_watermelon({2, 4, 4})}) {
    const CodecParams p{g.num_nodes(), g.num_nodes(), g.max_degree(), 0};
    validate_prover(
        lcp, g, [&](const Certificate& c) { return encode_watermelon(c, p); },
        [&](const EncodedCertificate& e) { return decode_watermelon(e, p); });
  }
}

TEST(CodecTest, DegreeOneAndEvenCycleProversHonest) {
  const DegreeOneLcp d1;
  validate_prover(
      d1, make_double_broom(3, 2, 1),
      [](const Certificate& c) { return encode_degree_one(c); },
      [](const EncodedCertificate& e) { return decode_degree_one(e); });
  const EvenCycleLcp ec;
  validate_prover(
      ec, make_cycle(8),
      [](const Certificate& c) { return encode_even_cycle(c); },
      [](const EncodedCertificate& e) { return decode_even_cycle(e); });
}

}  // namespace
}  // namespace shlcp
