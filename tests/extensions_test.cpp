// Tests for the step-5 extensions:
//  - quantified hiding / chromatic thresholds (nbhd/quantified.h),
//  - the spanning-BFS bipartiteness baseline (certify/spanning_bfs.h),
//  - the erasure-resilience contrast checker (lcp/checker.h).

#include <gtest/gtest.h>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/spanning_bfs.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "nbhd/aviews.h"
#include "nbhd/quantified.h"
#include "nbhd/witness.h"
#include "util/rng.h"

namespace shlcp {
namespace {

std::vector<Graph> promise_family(const Lcp& lcp, int max_n) {
  std::vector<Graph> graphs;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (lcp.in_promise(g)) {
        graphs.push_back(g);
      }
      return true;
    });
  }
  return graphs;
}

TEST(QuantifiedTest, ComponentAnalysisBasics) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  const auto nbhd = build_exhaustive(lcp, promise_family(lcp, 3), options);
  const auto analysis = analyze_components(nbhd);
  EXPECT_EQ(static_cast<int>(analysis.component_of_view.size()),
            nbhd.num_views());
  EXPECT_GE(analysis.num_components, 1);
  for (const bool b : analysis.component_bipartite) {
    EXPECT_TRUE(b);  // revealing LCP: everything extractable
  }
}

TEST(QuantifiedTest, RevealingLcpHidesNothing) {
  const RevealingLcp lcp(2);
  EnumOptions options;
  const auto nbhd = build_exhaustive(lcp, promise_family(lcp, 4), options);
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  EXPECT_EQ(hidden_fraction(nbhd, lcp.decoder(), inst), 0.0);
}

TEST(QuantifiedTest, EvenCycleHidesEverywhereOnMatchedPorts) {
  // The matched-port C4 instance whose views all coincide (a loop in V):
  // every node is obstructed -- "hiding everywhere", quantified.
  const EvenCycleLcp lcp;
  const Graph g = make_cycle(4);
  std::vector<std::vector<Port>> lists(4);
  lists[0] = {1, 2};
  lists[1] = {1, 2};
  lists[2] = {2, 1};
  lists[3] = {2, 1};
  Instance inst;
  inst.g = g;
  inst.ports = PortAssignment::from_lists(g, std::move(lists));
  inst.ids = IdAssignment::consecutive(g);
  Labeling labels(4);
  for (Node v = 0; v < 4; ++v) {
    labels.at(v) = make_even_cycle_certificate(1, 0, 2, 1);
  }
  inst.labels = std::move(labels);

  auto nbhd = build_from_instances(lcp.decoder(), {inst}, 2);
  EXPECT_EQ(hidden_fraction(nbhd, lcp.decoder(), inst), 1.0);
  // The sharp measure: every node's view is self-conflicting (the loop).
  EXPECT_EQ(self_conflicting_fraction(nbhd, lcp.decoder(), inst), 1.0);
  // A loop defeats every K: no chromatic threshold at all.
  EXPECT_FALSE(chromatic_threshold(nbhd, 10).has_value());
}

TEST(QuantifiedTest, DegreeOneHidesAtFewNodesNotEverywhere) {
  // The degree-one LCP hides "at a single node": its witness view graph
  // is one odd component (so the coarse component measure saturates at 1)
  // but has NO self-conflicting views -- unlike the even-cycle LCP, no
  // two adjacent nodes ever share a view, which is exactly the paper's
  // distinction between hiding somewhere and hiding everywhere.
  const DegreeOneLcp lcp;
  const auto nbhd =
      build_from_instances(lcp.decoder(), degree_one_witnesses(4), 2);
  ASSERT_TRUE(nbhd.odd_cycle().has_value());

  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = degree_one_labeling(g, 0);
  EXPECT_GT(hidden_fraction(nbhd, lcp.decoder(), inst), 0.0);
  EXPECT_EQ(self_conflicting_fraction(nbhd, lcp.decoder(), inst), 0.0);
}

TEST(QuantifiedTest, ChromaticThresholds) {
  // Revealing: threshold 2 (V is bipartite, never 1-colorable once an
  // edge exists). Degree-one: threshold 3 on the witness graph (odd
  // cycles but 3-colorable), meaning 3-colorings are NOT hidden -- the
  // Section 1.3 contrapositive in numbers.
  const RevealingLcp revealing(2);
  EnumOptions options;
  const auto nr = build_exhaustive(revealing, promise_family(revealing, 4),
                                   options);
  EXPECT_EQ(chromatic_threshold(nr, 5), 2);

  const DegreeOneLcp degree_one;
  const auto nd =
      build_from_instances(degree_one.decoder(), degree_one_witnesses(4), 2);
  const auto threshold = chromatic_threshold(nd, 6);
  ASSERT_TRUE(threshold.has_value());
  EXPECT_GE(*threshold, 3);
}

TEST(SpanningBfsTest, Promise) {
  const SpanningBfsLcp lcp;
  EXPECT_TRUE(lcp.in_promise(make_path(6)));
  EXPECT_TRUE(lcp.in_promise(make_grid(3, 4)));
  EXPECT_FALSE(lcp.in_promise(make_cycle(5)));
  Graph two(4);
  two.add_edge(0, 1);
  two.add_edge(2, 3);
  EXPECT_FALSE(lcp.in_promise(two));  // disconnected
}

TEST(SpanningBfsTest, CompletenessOnAllSmallPromiseGraphs) {
  const SpanningBfsLcp lcp;
  for (const Graph& g : promise_family(lcp, 5)) {
    const auto report = check_completeness(lcp, Instance::canonical(g));
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(SpanningBfsTest, StrongSoundnessExhaustiveTiny) {
  const SpanningBfsLcp lcp;
  // Space is n^2 per node: full sweep on all connected graphs <= 4 nodes.
  for (int n = 2; n <= 4; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      const auto report =
          check_strong_soundness_exhaustive(lcp, Instance::canonical(g));
      EXPECT_TRUE(report.ok) << report.failure;
      return true;
    });
  }
}

TEST(SpanningBfsTest, StrongSoundnessRandomized) {
  const SpanningBfsLcp lcp;
  Rng rng(4242);
  for (const Graph& g : {make_cycle(5), make_cycle(7), make_grid(3, 3)}) {
    const auto report = check_strong_soundness_random(
        lcp, Instance::canonical(g), 500, rng);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(SpanningBfsTest, NotHiding) {
  // The whole point of the baseline: V(D, n) is 2-colorable -- the
  // distance parity IS the coloring. Exhaustive at n <= 3 (the space is
  // n^2 certificates per node, so n = 4 exhaustive costs minutes) and
  // honest-labelings-only at n = 4.
  const SpanningBfsLcp lcp;
  {
    EnumOptions options;
    const auto nbhd = build_exhaustive(lcp, promise_family(lcp, 3), options);
    EXPECT_TRUE(nbhd.k_colorable(2));
    EXPECT_EQ(chromatic_threshold(nbhd, 4), 2);
  }
  {
    EnumOptions options;
    options.all_ports = true;
    options.all_id_orders = true;
    const auto nbhd = build_proved(lcp, promise_family(lcp, 4), options);
    EXPECT_TRUE(nbhd.k_colorable(2));
    EXPECT_FALSE(nbhd.odd_cycle().has_value());
  }
}

TEST(SpanningBfsTest, DistParityIsAProperColoring) {
  const SpanningBfsLcp lcp;
  const Graph g = make_grid(3, 4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  ASSERT_TRUE(lcp.decoder().accepts_all(inst));
  for (const Edge& e : g.edges()) {
    EXPECT_NE(inst.labels.at(e.u).fields[1] % 2,
              inst.labels.at(e.v).fields[1] % 2);
  }
}

TEST(SpanningBfsTest, FakeRootRejected) {
  const SpanningBfsLcp lcp;
  const Graph g = make_path(4);
  Instance inst = Instance::canonical(g);
  inst.labels = *lcp.prove(g, inst.ports, inst.ids);
  // Claim a root id that belongs to node 2 while node 0 holds dist 0.
  for (Node v = 0; v < 4; ++v) {
    inst.labels.at(v).fields[0] = inst.ids.id_of(2);
  }
  const auto verdicts = lcp.decoder().run(inst);
  EXPECT_FALSE(verdicts[0]);  // the dist-0 node's actual id mismatches
}

TEST(ErasureTest, SingleErasureAlwaysDetected) {
  // None of the LCPs tolerates even one erased certificate: the erased
  // node itself (empty certificate, malformed) rejects.
  const DegreeOneLcp degree_one;
  const EvenCycleLcp even_cycle;
  const SpanningBfsLcp spanning;
  struct Case {
    const Lcp* lcp;
    Graph g;
  };
  for (const Case& c :
       {Case{&degree_one, make_path(6)}, Case{&even_cycle, make_cycle(6)},
        Case{&spanning, make_grid(2, 3)}}) {
    const auto report =
        check_erasure_completeness(*c.lcp, Instance::canonical(c.g), 1);
    EXPECT_EQ(report.patterns, static_cast<std::uint64_t>(c.g.num_nodes()));
    EXPECT_EQ(report.still_accepted, 0u);
    EXPECT_GE(report.mean_rejections, 1.0);
  }
}

TEST(ErasureTest, ZeroErasuresAccepted) {
  const DegreeOneLcp lcp;
  const auto report =
      check_erasure_completeness(lcp, Instance::canonical(make_path(5)), 0);
  EXPECT_EQ(report.patterns, 1u);
  EXPECT_EQ(report.still_accepted, 1u);
  EXPECT_EQ(report.mean_rejections, 0.0);
}

TEST(ErasureTest, RejectionCountGrowsWithF) {
  const EvenCycleLcp lcp;
  const Instance inst = Instance::canonical(make_cycle(8));
  const auto r1 = check_erasure_completeness(lcp, inst, 1);
  const auto r2 = check_erasure_completeness(lcp, inst, 2);
  EXPECT_GT(r2.mean_rejections, r1.mean_rejections);
}

}  // namespace
}  // namespace shlcp
