// Realizing view collections as concrete instances (Lemma 5.1).
//
// Given views mu_i centered at distinct identifiers, Lemma 5.1 builds
// G_bad by taking their disjoint union and identifying nodes with equal
// identifiers; edges, ports, and labels transfer from the views. The
// merge is well-defined exactly when the views are pairwise compatible in
// the Section 5.1 sense; merge_views_by_id performs the union and reports
// the first hard conflict (label or port disagreement, or a visibility
// contradiction) if the input is not compatible.
//
// The correctness criterion that matters downstream -- and that
// verify_realization checks mechanically -- is the lemma's conclusion:
// for each input view whose center the adversary needs accepted, the
// center's view re-extracted inside G_bad equals the input view, so the
// decoder's verdict there is the recorded accepting verdict.

#pragma once

#include <map>
#include <string>

#include "lcp/checker.h"
#include "lcp/instance.h"

namespace shlcp {

/// Result of a merge attempt.
struct MergeResult {
  /// True iff the union was conflict-free.
  bool ok = false;
  /// First conflict description when !ok.
  std::string conflict;
  /// The built instance (meaningful when ok). Labels/ports of nodes no
  /// view describes completely are filled with defaults.
  Instance instance;
  /// Identifier of each node of `instance`.
  std::vector<Ident> id_of_node;
  /// Node of `instance` holding each identifier.
  std::map<Ident, Node> node_of_id;
};

/// Merges non-anonymous views by identifying equal identifiers.
/// `id_bound` is the N of the resulting instance (must dominate every id).
MergeResult merge_views_by_id(const std::vector<View>& views, Ident id_bound);

/// Lemma 5.1's conclusion, checked: for every view in `h_views`, the view
/// of its center identifier inside `g_bad` equals it (hence the decoder
/// accepts there). Reports the first mismatch.
CheckReport verify_realization(const Decoder& decoder, const Instance& g_bad,
                               const std::vector<View>& h_views);

}  // namespace shlcp
