#include "lower/walks.h"

#include <algorithm>
#include <deque>

#include "graph/algorithms.h"
#include "graph/properties.h"

namespace shlcp {

std::vector<View> lift_walk(const Instance& inst, const std::vector<Node>& walk,
                            int radius, bool anonymous) {
  SHLCP_CHECK(is_walk(inst.g, walk));
  std::vector<View> out;
  out.reserve(walk.size());
  for (const Node v : walk) {
    out.push_back(inst.view_of(v, radius, anonymous));
  }
  return out;
}

bool is_non_backtracking_walk(const std::vector<View>& walk, bool closed) {
  const std::size_t n = walk.size();
  if (n < 3) {
    return true;
  }
  auto center_id = [&](std::size_t i) { return walk[i].center_id(); };
  for (std::size_t i = 0; i < n; ++i) {
    SHLCP_CHECK_MSG(!walk[i].anonymous(),
                    "non-backtracking is defined via center identifiers");
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (center_id(i - 1) == center_id(i + 1)) {
      return false;
    }
  }
  if (closed) {
    SHLCP_CHECK(walk.front().center_id() == walk.back().center_id());
    // Wrap-around triples: (n-2, n-1==0, 1).
    if (n >= 3 && center_id(n - 2) == center_id(1)) {
      return false;
    }
  }
  return true;
}

std::optional<std::vector<Node>> non_backtracking_path(const Graph& g,
                                                       Node from, Node to,
                                                       Node ban_first,
                                                       Node ban_last) {
  g.check_node(from);
  g.check_node(to);
  // States are directed edges (prev, cur); start states are (from, w) for
  // every neighbor w != ban_first. BFS, reconstruct on reaching `to`.
  struct State {
    Node prev;
    Node cur;
  };
  const int n = g.num_nodes();
  auto key = [n](Node prev, Node cur) {
    return static_cast<std::size_t>(prev) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(cur);
  };
  if (from == to) {
    return std::vector<Node>{from};
  }
  std::vector<std::pair<Node, Node>> parent(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {-2, -2});
  std::deque<State> queue;
  for (const Node w : g.neighbors(from)) {
    if (w == ban_first) {
      continue;
    }
    parent[key(from, w)] = {-1, -1};
    queue.push_back(State{from, w});
  }
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    if (s.cur == to && s.prev != ban_last) {
      // Reconstruct.
      std::vector<Node> path{s.cur};
      Node prev = s.prev;
      Node cur = s.cur;
      while (prev != -1) {
        path.push_back(prev);
        const auto p = parent[key(prev, cur)];
        cur = prev;
        prev = p.first;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Node w : g.neighbors(s.cur)) {
      if (w == s.prev) {
        continue;  // no immediate reversal
      }
      if (parent[key(s.cur, w)].first != -2) {
        continue;
      }
      parent[key(s.cur, w)] = {s.prev, s.cur};
      queue.push_back(State{s.cur, w});
    }
  }
  return std::nullopt;
}

std::optional<std::vector<Node>> forgetting_detour(const Instance& inst,
                                                   Node u, Node v, int r) {
  const Graph& g = inst.g;
  SHLCP_CHECK(g.has_edge(u, v));
  SHLCP_CHECK(r >= 1);
  if (g.min_degree() < 2) {
    return std::nullopt;
  }
  // Step 3 ingredient: the escape path away from v with respect to u.
  const auto escape = forgetful_escape_path(g, v, u, r);
  if (!escape.has_value()) {
    return std::nullopt;
  }
  // Far node whose radius-r ball avoids both N^r(u) and N^r(v).
  const auto du = bfs_distances(g, u);
  const auto dv = bfs_distances(g, v);
  Node far = -1;
  for (Node w = 0; w < g.num_nodes(); ++w) {
    if (du[static_cast<std::size_t>(w)] > 2 * r &&
        dv[static_cast<std::size_t>(w)] > 2 * r) {
      far = w;
      break;
    }
  }
  if (far == -1) {
    return std::nullopt;
  }
  // Assemble: u -> v -> escape[1..r] -> (non-backtracking to far) ->
  // (non-backtracking back to u), never immediately reversing.
  std::vector<Node> walk{u};
  for (const Node x : *escape) {
    walk.push_back(x);  // escape[0] == v
  }
  const Node vr = walk.back();
  const Node vr_prev = walk[walk.size() - 2];
  const auto to_far = non_backtracking_path(g, vr, far, vr_prev);
  if (!to_far.has_value()) {
    return std::nullopt;
  }
  for (std::size_t i = 1; i < to_far->size(); ++i) {
    walk.push_back((*to_far)[i]);
  }
  // Return leg: avoid immediately reversing the arrival edge, and avoid
  // arriving at u from v (the closed walk's wrap-around successor is v,
  // so a v -> u final step would backtrack).
  const Node arrive_prev =
      walk.size() >= 2 ? walk[walk.size() - 2] : static_cast<Node>(-1);
  const auto back =
      non_backtracking_path(g, walk.back(), u, arrive_prev, /*ban_last=*/v);
  if (!back.has_value()) {
    return std::nullopt;
  }
  for (std::size_t i = 1; i < back->size(); ++i) {
    walk.push_back((*back)[i]);
  }
  if (!is_walk(g, walk) || walk.front() != walk.back()) {
    return std::nullopt;
  }
  return walk;
}

std::vector<Node> splice_closed_walk(const std::vector<Node>& walk,
                                     std::size_t i,
                                     const std::vector<Node>& detour) {
  SHLCP_CHECK(i < walk.size());
  SHLCP_CHECK(!detour.empty() && detour.front() == detour.back());
  SHLCP_CHECK(detour.front() == walk[i]);
  std::vector<Node> out;
  out.insert(out.end(), walk.begin(), walk.begin() + static_cast<long>(i));
  out.insert(out.end(), detour.begin(), detour.end());
  out.insert(out.end(), walk.begin() + static_cast<long>(i) + 1, walk.end());
  return out;
}

}  // namespace shlcp
