#include "lower/pipeline.h"

#include <algorithm>
#include <deque>

#include "graph/algorithms.h"
#include "nbhd/aviews.h"

namespace shlcp {

namespace {

/// Shortest even-length walk from `a` to `b` in `g` via the bipartite
/// double cover; appending the edge b-a then yields an odd closed walk
/// through that edge. Returns the a..b node sequence, or nullopt.
std::optional<std::vector<int>> shortest_even_walk(const Graph& g, int a,
                                                   int b) {
  const int n = g.num_nodes();
  if (a == b) {
    return std::vector<int>{a};
  }
  // BFS over the bipartite double cover: states are (node, parity).
  std::vector<int> parent(2 * static_cast<std::size_t>(n), -2);
  auto key = [n](int v, int p) { return v + p * n; };
  parent[static_cast<std::size_t>(key(a, 0))] = -1;
  std::deque<std::pair<int, int>> queue{{a, 0}};
  while (!queue.empty()) {
    const auto [v, p] = queue.front();
    queue.pop_front();
    for (const int w : g.neighbors(v)) {
      const int q = 1 - p;
      if (parent[static_cast<std::size_t>(key(w, q))] == -2) {
        parent[static_cast<std::size_t>(key(w, q))] = key(v, p);
        queue.push_back({w, q});
      }
    }
  }
  if (parent[static_cast<std::size_t>(key(b, 0))] == -2) {
    return std::nullopt;
  }
  std::vector<int> walk;
  int state = key(b, 0);
  while (state != -1) {
    walk.push_back(state % n);
    state = parent[static_cast<std::size_t>(state)];
  }
  std::reverse(walk.begin(), walk.end());
  return walk;
}

}  // namespace

PipelineResult run_theorem15_pipeline(const Decoder& decoder,
                                      const std::vector<Instance>& instances,
                                      Ident id_bound) {
  PipelineResult result;
  result.nbhd = build_from_instances(decoder, instances, /*k=*/2);

  const auto first_cycle = result.nbhd.odd_cycle();
  if (!first_cycle.has_value()) {
    return result;  // no hiding witness in this subgraph
  }
  result.hiding_witness_found = true;
  result.odd_cycle = *first_cycle;

  const Graph& vg = result.nbhd.graph();

  // Candidate odd closed walks: for every edge {a, b}, the shortest even
  // walk a..b closed by the edge b-a. Attempt to realize each; keep the
  // first conflict for reporting if none succeeds.
  std::string first_conflict;
  auto attempt = [&](const std::vector<int>& closed_walk) -> bool {
    std::vector<View> h_views;
    for (std::size_t i = 0; i + 1 < closed_walk.size(); ++i) {
      h_views.push_back(result.nbhd.view(closed_walk[i]));
    }
    for (const View& v : h_views) {
      if (v.anonymous()) {
        if (first_conflict.empty()) {
          first_conflict = "anonymous views cannot be merged by id";
        }
        return false;
      }
    }
    MergeResult merged = merge_views_by_id(h_views, id_bound);
    if (!merged.ok) {
      if (first_conflict.empty()) {
        first_conflict = merged.conflict;
      }
      return false;
    }
    const CheckReport verify =
        verify_realization(decoder, merged.instance, h_views);
    if (!verify.ok) {
      if (first_conflict.empty()) {
        first_conflict = verify.failure;
      }
      return false;
    }
    const auto accepting = decoder.accepting_set(merged.instance);
    const Graph induced = merged.instance.g.induced_subgraph(accepting);
    if (is_bipartite(induced)) {
      if (first_conflict.empty()) {
        first_conflict = "realized instance's accepting set stayed bipartite";
      }
      return false;
    }
    result.realized = true;
    result.realization_verified = true;
    result.strong_soundness_violated = true;
    result.g_bad = std::move(merged.instance);
    result.odd_cycle = closed_walk;
    return true;
  };

  // The cycle reported by the bipartiteness check first.
  if (attempt(*first_cycle)) {
    return result;
  }
  for (const Edge& e : vg.edges()) {
    if (e.u == e.v) {
      continue;  // loops only arise for anonymous decoders
    }
    const auto even_walk = shortest_even_walk(vg, e.u, e.v);
    if (!even_walk.has_value() || even_walk->size() % 2 == 0) {
      continue;  // need an even number of edges = odd number of nodes
    }
    std::vector<int> closed = *even_walk;
    closed.push_back(e.u);  // close with the edge b-a (odd total)
    if (closed.size() < 3) {
      continue;
    }
    if (attempt(closed)) {
      return result;
    }
  }
  result.realize_conflict = first_conflict;
  return result;
}

}  // namespace shlcp
