// End-to-end Theorem 1.5 demonstrator.
//
// Theorem 1.5 is a universal impossibility ("no strong and hiding
// order-invariant LCP exists on r-forgetful classes"), so it cannot be
// "run" on all decoders; what can be run is its engine, against concrete
// candidate decoders:
//
//   1. build (a subgraph of) V(D, n) from supplied labeled yes-instances;
//   2. find an odd cycle (the Lemma 3.2 hiding witness);
//   3. attempt to realize the cycle's views as one instance G_bad by the
//      Lemma 5.1 identifier merge;
//   4. verify the realization (views survive inside G_bad, decoder
//      accepts) and test whether the accepting set of G_bad induces an
//      odd cycle -- a mechanical strong-soundness violation.
//
// For a genuinely strong LCP the pipeline MUST die at step 3 or 4 (the
// odd cycle is not realizable); for decoders that are hiding but not
// strong it runs to completion and outputs the counterexample. Both
// outcomes are asserted in tests/lower_pipeline_test.cpp.

#pragma once

#include "lower/realize.h"
#include "nbhd/nbhd_graph.h"

namespace shlcp {

/// Outcome of one pipeline run.
struct PipelineResult {
  /// Step 2: an odd cycle existed in the built neighborhood subgraph.
  bool hiding_witness_found = false;
  /// The odd cycle as view indices into `nbhd` (first == last).
  std::vector<int> odd_cycle;
  /// Step 3: the merge succeeded.
  bool realized = false;
  /// Why the merge failed (the escape hatch of honestly-strong LCPs).
  std::string realize_conflict;
  /// Step 4a: every cycle view survived inside G_bad and is accepted.
  bool realization_verified = false;
  std::string verify_failure;
  /// Step 4b: the accepting set of G_bad induces a non-bipartite
  /// subgraph, i.e. strong soundness is violated.
  bool strong_soundness_violated = false;
  /// The built neighborhood subgraph and (when realized) G_bad.
  NbhdGraph nbhd;
  Instance g_bad;
};

/// Runs the pipeline for a 2-col decoder over explicit labeled
/// yes-instances (each instance's graph must be bipartite). `id_bound`
/// is the identifier budget N for G_bad.
PipelineResult run_theorem15_pipeline(const Decoder& decoder,
                                      const std::vector<Instance>& instances,
                                      Ident id_bound);

}  // namespace shlcp
