#include "lower/order_invariant.h"

#include <algorithm>

namespace shlcp {

std::optional<std::vector<Ident>> find_uniform_id_set(const TypeOracle& oracle,
                                                      Ident id_space,
                                                      int target_size,
                                                      Ident bound) {
  const auto coloring = oracle.as_coloring(bound);
  const auto subset = find_monochromatic_subset(id_space, oracle.arity(),
                                                coloring, target_size);
  if (!subset.has_value()) {
    return std::nullopt;
  }
  std::vector<Ident> ids;
  ids.reserve(subset->size());
  for (const int e : *subset) {
    ids.push_back(e + 1);
  }
  return ids;
}

OrderInvariantWrapper::OrderInvariantWrapper(const Decoder& inner,
                                             std::vector<Ident> uniform_set,
                                             Ident bound)
    : inner_(&inner), uniform_set_(std::move(uniform_set)), bound_(bound) {
  SHLCP_CHECK(!uniform_set_.empty());
  SHLCP_CHECK(std::is_sorted(uniform_set_.begin(), uniform_set_.end()));
  SHLCP_CHECK(std::adjacent_find(uniform_set_.begin(), uniform_set_.end()) ==
              uniform_set_.end());
  SHLCP_CHECK(uniform_set_.back() <= bound_);
}

bool OrderInvariantWrapper::accept(const View& view) const {
  SHLCP_CHECK_MSG(!view.anonymous(), "wrapper consumes identified views");
  std::vector<Ident> sorted = view.ids;
  std::sort(sorted.begin(), sorted.end());
  SHLCP_CHECK_MSG(sorted.size() <= uniform_set_.size(),
                  "uniform set smaller than the view");
  std::vector<std::pair<Ident, Ident>> map;
  map.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    map.emplace_back(sorted[i], uniform_set_[i]);
  }
  return inner_->accept(view.with_remapped_ids(map, bound_));
}

}  // namespace shlcp
