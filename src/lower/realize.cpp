#include "lower/realize.h"

#include <algorithm>
#include <set>

#include "util/format.h"

namespace shlcp {

MergeResult merge_views_by_id(const std::vector<View>& views, Ident id_bound) {
  MergeResult out;

  // Collect all identifiers.
  std::set<Ident> ids;
  for (const View& v : views) {
    SHLCP_CHECK_MSG(!v.anonymous(), "merge requires identified views");
    for (const Ident id : v.ids) {
      SHLCP_CHECK_MSG(1 <= id && id <= id_bound, "id out of bound");
      ids.insert(id);
    }
  }
  std::vector<Ident> id_list(ids.begin(), ids.end());
  std::map<Ident, Node> node_of;
  for (std::size_t i = 0; i < id_list.size(); ++i) {
    node_of[id_list[i]] = static_cast<Node>(i);
  }

  Graph g(static_cast<int>(id_list.size()));
  // Edge bookkeeping: port at each side, plus which view established it.
  std::map<std::pair<Ident, Ident>, Port> port_claim;
  std::map<Ident, Certificate> label_claim;
  std::map<Ident, bool> label_known;

  auto fail = [&out](std::string why) {
    out.ok = false;
    out.conflict = std::move(why);
    return out;
  };

  for (const View& v : views) {
    // Labels: every node of the view claims its certificate.
    for (Node x = 0; x < v.num_nodes(); ++x) {
      const Ident id = v.ids[static_cast<std::size_t>(x)];
      const Certificate& cert = v.labels[static_cast<std::size_t>(x)];
      const auto it = label_claim.find(id);
      if (it == label_claim.end()) {
        label_claim[id] = cert;
      } else if (!(it->second == cert)) {
        return fail(format("label conflict at id %d", id));
      }
    }
    // Edges with ports.
    for (const Edge& e : v.g.edges()) {
      const Ident a = v.ids[static_cast<std::size_t>(e.u)];
      const Ident b = v.ids[static_cast<std::size_t>(e.v)];
      const Port pa = v.port(e.u, e.v);
      const Port pb = v.port(e.v, e.u);
      const auto ita = port_claim.find({a, b});
      if (ita == port_claim.end()) {
        port_claim[{a, b}] = pa;
        port_claim[{b, a}] = pb;
        g.add_edge_if_absent(node_of.at(a), node_of.at(b));
      } else {
        if (ita->second != pa || port_claim.at({b, a}) != pb) {
          return fail(format("port conflict on edge {%d, %d}", a, b));
        }
      }
    }
  }

  // Port lists must be bijections onto [d(v)]; interior nodes of the views
  // pin every incident edge, boundary nodes may come out partial -- fill
  // remaining ports arbitrarily but consistently.
  std::vector<std::vector<Port>> port_lists(
      static_cast<std::size_t>(g.num_nodes()));
  for (Node x = 0; x < g.num_nodes(); ++x) {
    const Ident id = id_list[static_cast<std::size_t>(x)];
    const auto nb = g.neighbors(x);
    std::vector<Port> pl(nb.size(), 0);
    std::set<Port> used;
    for (std::size_t t = 0; t < nb.size(); ++t) {
      const Ident other = id_list[static_cast<std::size_t>(nb[t])];
      const auto it = port_claim.find({id, other});
      SHLCP_CHECK(it != port_claim.end());
      const Port p = it->second;
      if (p > static_cast<int>(nb.size())) {
        return fail(format(
            "port %d at id %d exceeds its merged degree %zu", p, id, nb.size()));
      }
      if (!used.insert(p).second) {
        return fail(format("duplicate port %d at id %d", p, id));
      }
      pl[t] = p;
    }
    port_lists[static_cast<std::size_t>(x)] = std::move(pl);
  }

  out.ok = true;
  out.instance.g = std::move(g);
  out.instance.ports =
      PortAssignment::from_lists(out.instance.g, std::move(port_lists));
  std::vector<Ident> id_vec = id_list;
  out.instance.ids = IdAssignment::from_vector(std::move(id_vec), id_bound);
  Labeling labels(out.instance.g.num_nodes());
  for (Node x = 0; x < out.instance.g.num_nodes(); ++x) {
    const Ident id = id_list[static_cast<std::size_t>(x)];
    const auto it = label_claim.find(id);
    if (it != label_claim.end()) {
      labels.at(x) = it->second;
    }
  }
  out.instance.labels = std::move(labels);
  out.id_of_node = id_list;
  out.node_of_id = std::move(node_of);
  return out;
}

CheckReport verify_realization(const Decoder& decoder, const Instance& g_bad,
                               const std::vector<View>& h_views) {
  CheckReport report;
  for (const View& h : h_views) {
    ++report.cases;
    const Ident center_id = h.center_id();
    const Node node = g_bad.ids.node_of(center_id);
    if (node == -1) {
      report.ok = false;
      report.failure = format("center id %d missing from G_bad", center_id);
      return report;
    }
    const View rebuilt = g_bad.view_of(node, h.radius, /*anonymous=*/false);
    if (!(rebuilt == h)) {
      report.ok = false;
      report.failure = format(
          "view of id %d changed inside G_bad:\noriginal:\n%s\nrebuilt:\n%s",
          center_id, h.to_string().c_str(), rebuilt.to_string().c_str());
      return report;
    }
    View input = rebuilt;
    if (decoder.anonymous()) {
      input = input.anonymized();
    }
    if (!decoder.accept(input)) {
      report.ok = false;
      report.failure =
          format("decoder rejects the realized view of id %d", center_id);
      return report;
    }
  }
  return report;
}

}  // namespace shlcp
