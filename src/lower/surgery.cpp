#include "lower/surgery.h"

#include <map>
#include <set>

#include "lower/walks.h"
#include "util/format.h"
#include "views/extract.h"

namespace shlcp {

SurgeryResult expand_odd_cycle(const NbhdGraph& nbhd,
                               const std::vector<Instance>& instances,
                               const std::vector<int>& cycle, int radius) {
  SurgeryResult result;
  if (cycle.size() < 2 || cycle.front() != cycle.back() ||
      cycle.size() % 2 != 0) {
    result.failure = "input must be an odd closed cycle (first == last)";
    return result;
  }

  result.walk.push_back(nbhd.view(cycle[0]));
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    const int a = cycle[i];
    const int b = cycle[i + 1];
    const Provenance* prov = nbhd.edge_provenance(a, b);
    if (prov == nullptr) {
      result.failure = format("no provenance for V-edge {%d, %d}", a, b);
      return result;
    }
    SHLCP_CHECK(prov->instance >= 0 &&
                prov->instance < static_cast<int>(instances.size()));
    const Instance& inst = instances[static_cast<std::size_t>(prov->instance)];
    // Orient: prov.node realizes view min(a, b).
    const Node u = (a <= b) ? prov->node : prov->other;
    const Node v = (a <= b) ? prov->other : prov->node;

    // Lemma 5.4 detour: closed at u, starting with the edge u -> v.
    const auto detour = forgetting_detour(inst, u, v, radius);
    if (!detour.has_value()) {
      result.failure = format(
          "no forgetting detour in witness instance %d for edge {%d, %d}: "
          "the instance is not %d-forgetful at that edge (or lacks a far "
          "node / minimum degree 2)",
          prov->instance, a, b, radius);
      return result;
    }
    ++result.detours;
    // Append lift(detour)[1..] (ends back at view a), then step to b.
    const auto lifted = lift_walk(inst, *detour, radius,
                                  result.walk.front().anonymous());
    for (std::size_t t = 1; t < lifted.size(); ++t) {
      result.walk.push_back(lifted[t]);
    }
    result.walk.push_back(inst.view_of(v, radius,
                                       result.walk.front().anonymous()));
  }

  // Sanity: odd closed walk over views.
  if (!(result.walk.front() == result.walk.back())) {
    result.failure = "expanded walk failed to close";
    return result;
  }
  if ((result.walk.size() - 1) % 2 != 1) {
    result.failure = "expanded walk lost its odd parity";
    return result;
  }
  result.ok = true;
  return result;
}

namespace {

/// Collects, per identifier, the walk positions whose views contain it.
std::map<Ident, std::vector<std::size_t>> positions_by_id(
    const std::vector<View>& walk) {
  std::map<Ident, std::vector<std::size_t>> out;
  for (std::size_t p = 0; p + 1 < walk.size(); ++p) {  // skip repeated last
    for (const Ident id : walk[p].ids) {
      out[id].push_back(p);
    }
  }
  return out;
}

}  // namespace

std::string check_walk_id_consistency(const std::vector<View>& walk) {
  SHLCP_CHECK(!walk.empty());
  SHLCP_CHECK_MSG(!walk.front().anonymous(),
                  "identifier consistency needs identified views");
  const auto by_id = positions_by_id(walk);
  for (const auto& [id, positions] : by_id) {
    // Components of S(id) along the walk: consecutive walk positions both
    // containing id belong to one component (the walk is a path through
    // H; V-adjacency beyond consecutive positions only helps, so
    // consecutive grouping over-approximates the component count, which
    // makes this check CONSERVATIVE in the right direction: we verify
    // consistency within the groups we know are connected).
    std::vector<std::vector<std::size_t>> components;
    for (const std::size_t p : positions) {
      if (!components.empty() && components.back().back() + 1 == p) {
        components.back().push_back(p);
      } else {
        components.push_back({p});
      }
    }
    // The closing wrap: first and last groups join if positions 0 and
    // end-1 both contain the id.
    if (components.size() > 1 && components.front().front() == 0 &&
        components.back().back() == walk.size() - 2) {
      for (const std::size_t p : components.front()) {
        components.back().push_back(p);
      }
      components.erase(components.begin());
    }
    for (const auto& comp : components) {
      // All views in the component agree on id's certificate; interior
      // occurrences agree on the radius-1 view.
      const View* anchor_interior = nullptr;
      const Certificate* cert = nullptr;
      Node anchor_node = -1;
      for (const std::size_t p : comp) {
        const View& view = walk[p];
        const Node x = view.local_node_of_id(id);
        SHLCP_CHECK(x != -1);
        const Certificate& c = view.labels[static_cast<std::size_t>(x)];
        if (cert == nullptr) {
          cert = &c;
        } else if (!(*cert == c)) {
          return format("id %d: certificate clash inside one component", id);
        }
        if (view.dist[static_cast<std::size_t>(x)] < view.radius) {
          if (anchor_interior == nullptr) {
            anchor_interior = &view;
            anchor_node = x;
          } else if (!(subview_radius1(*anchor_interior, anchor_node) ==
                       subview_radius1(view, x))) {
            return format(
                "id %d: interior radius-1 views clash inside one component",
                id);
          }
        }
      }
    }
  }
  return {};
}

std::vector<View> separate_id_components(const std::vector<View>& walk,
                                         Ident* new_bound) {
  SHLCP_CHECK(!walk.empty());
  SHLCP_CHECK(!walk.front().anonymous());
  const auto by_id = positions_by_id(walk);

  // Component index per (id, walk position), using the same conservative
  // consecutive-plus-wraparound grouping as the consistency check.
  std::map<std::pair<Ident, std::size_t>, int> comp_of;
  std::map<Ident, int> comp_count;
  Ident max_old = 0;
  for (const auto& [id, positions] : by_id) {
    max_old = std::max(max_old, id);
    std::vector<std::vector<std::size_t>> components;
    for (const std::size_t p : positions) {
      if (!components.empty() && components.back().back() + 1 == p) {
        components.back().push_back(p);
      } else {
        components.push_back({p});
      }
    }
    if (components.size() > 1 && components.front().front() == 0 &&
        components.back().back() == walk.size() - 2) {
      for (const std::size_t p : components.front()) {
        components.back().push_back(p);
      }
      components.erase(components.begin());
    }
    comp_count[id] = static_cast<int>(components.size());
    for (std::size_t c = 0; c < components.size(); ++c) {
      for (const std::size_t p : components[c]) {
        comp_of[{id, p}] = static_cast<int>(c);
      }
    }
  }

  // Paper's block construction: identifier i's component c becomes
  // (i - 1) * W + c + 1 with W = |walk| (>= the number of components of
  // any S(i)), preserving relative order between different old ids.
  const Ident window = static_cast<Ident>(walk.size());
  SHLCP_CHECK(new_bound != nullptr);
  *new_bound = max_old * window;

  std::vector<View> out;
  out.reserve(walk.size());
  for (std::size_t p = 0; p < walk.size(); ++p) {
    // The repeated closing view reuses position 0's mapping.
    const std::size_t pos = (p + 1 == walk.size()) ? 0 : p;
    std::vector<std::pair<Ident, Ident>> map;
    for (const Ident id : walk[p].ids) {
      const auto it = comp_of.find({id, pos});
      SHLCP_CHECK(it != comp_of.end());
      map.emplace_back(id, (id - 1) * window + it->second + 1);
    }
    out.push_back(walk[p].with_remapped_ids(map, *new_bound));
  }
  return out;
}

}  // namespace shlcp
