// The order-invariance reduction (Lemma 6.2), finite analogue.
//
// Given an identifier-using decoder D of bounded view size, color every
// s-subset of the identifier space by D's type (ramsey/types.h) and find a
// monochromatic set B by Ramsey search. The synthesized decoder D'
// re-identifies every view it sees: the i-th smallest identifier present
// becomes the i-th element of B, then D runs. D' is order-invariant by
// construction, and on views whose identifiers already lie inside B it
// agrees with D on every probe structure (both tuples are s-subsets of
// the monochromatic B, so they have the same type). The paper pads the
// instance with isolated nodes to justify the enlarged identifier space;
// here the space bound is explicit.

#pragma once

#include "lcp/decoder.h"
#include "ramsey/types.h"

namespace shlcp {

/// Ramsey search for an identifier set of `target_size` over the space
/// [1, id_space] on which every arity-sized tuple has the same decoder
/// type (relative to the oracle's probes). `bound` is the N announced to
/// the decoder during probing. Returns the set (1-based identifiers) or
/// nullopt.
std::optional<std::vector<Ident>> find_uniform_id_set(const TypeOracle& oracle,
                                                      Ident id_space,
                                                      int target_size,
                                                      Ident bound);

/// The synthesized order-invariant decoder D'.
class OrderInvariantWrapper final : public Decoder {
 public:
  /// `uniform_set` must be strictly increasing and at least as large as
  /// any view D' will see; `bound` is the id bound fed to the inner
  /// decoder after remapping.
  OrderInvariantWrapper(const Decoder& inner, std::vector<Ident> uniform_set,
                        Ident bound);

  [[nodiscard]] int radius() const override { return inner_->radius(); }
  [[nodiscard]] bool anonymous() const override { return false; }
  [[nodiscard]] std::string name() const override {
    return "order-invariant(" + inner_->name() + ")";
  }

  /// Remaps the view's identifiers rank-wise into the uniform set and
  /// consults the inner decoder.
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  const Decoder* inner_;
  std::vector<Ident> uniform_set_;
  Ident bound_;
};

}  // namespace shlcp
