// Walk machinery of Section 5.2: lifting node walks into view walks,
// non-backtracking checks, and the forgetting detour of Lemma 5.4.
//
// Lemma 5.4 replaces each edge of an odd walk in V(D, n) with a closed
// walk W_e inside a witnessing yes-instance G_e that (1) starts with the
// edge u-v, (2) escapes v along an r-forgetful path, (3) travels to a node
// whose radius-r view shares nothing with the views of u and v, and (4)
// returns without backtracking. forgetting_detour builds exactly that
// walk; its properties (closed, even, non-backtracking, reaching a
// disjoint view) are what the tests and bench_lower_bound assert, which
// also pins down where each hypothesis of Theorem 1.5 (r-forgetfulness,
// minimum degree 2, a second cycle) enters.

#pragma once

#include <optional>

#include "lcp/instance.h"

namespace shlcp {

/// Lifts a node walk of `inst` to the corresponding view walk.
std::vector<View> lift_walk(const Instance& inst, const std::vector<Node>& walk,
                            int radius, bool anonymous);

/// Section 5.2's non-backtracking predicate on a view walk: for every
/// interior view, the predecessor's and successor's center identifiers
/// differ; for a closed walk the wrap-around triples are included.
/// Requires non-anonymous views.
bool is_non_backtracking_walk(const std::vector<View>& walk, bool closed);

/// A walk in `g` from `from` to `to` that never immediately reverses an
/// edge; `ban_first` forbids the first step from going to that node
/// (models "without going through v_{r-1}"), and `ban_last` forbids
/// arriving at `to` from that node (used to keep a closed walk
/// non-backtracking across its wrap-around). BFS over directed edge
/// states; nullopt if impossible.
std::optional<std::vector<Node>> non_backtracking_path(const Graph& g,
                                                       Node from, Node to,
                                                       Node ban_first = -1,
                                                       Node ban_last = -1);

/// The Lemma 5.4 closed walk W_e for the edge {u, v} of `inst.g`:
///   u -> v -> (r-forgetful escape path from v w.r.t. u) -> far node w
///   whose N^r(w) avoids N^r(u) and N^r(v) -> back to u, all without
///   backtracking. Requires delta(G) >= 2. Returns nullopt when any
///   ingredient is missing (not r-forgetful at (v, u), no sufficiently far
///   node, or no return path).
std::optional<std::vector<Node>> forgetting_detour(const Instance& inst,
                                                   Node u, Node v, int r);

/// Splices `detour` (a closed walk at `walk[i]`) into `walk` before
/// position i+1; the result is a walk when both inputs are.
std::vector<Node> splice_closed_walk(const std::vector<Node>& walk,
                                     std::size_t i,
                                     const std::vector<Node>& detour);

}  // namespace shlcp
