// The walk surgery of Lemma 5.4: expanding an odd cycle of V(D, n) into
// an odd closed walk whose per-identifier view sets are consistent.
//
// An odd cycle C of V(D, n) mixes views from different witness instances,
// and realizing it directly usually fails: the same identifier appears in
// views that disagree about its surroundings. Lemma 5.4 fixes this by
// replacing every edge e = {mu_1, mu_2} of C with a closed detour W_e
// inside the yes-instance G_e witnessing that edge: the walk escapes
// along an r-forgetful path, travels to a node whose radius-r view is
// disjoint from both endpoints' views, and returns -- so that by the time
// the walk leaves G_e, everything it saw there has been "forgotten", and
// each identifier's views come from at most two adjacent instances.
//
// expand_odd_cycle performs exactly that, using the provenance recorded
// by NbhdGraph::absorb to map V-edges back to instances, and
// check_walk_id_consistency verifies the property the detours buy:
// within every connected component of S(i) (the walk views containing
// identifier i), all views agree on i's certificate, and its radius-1
// surroundings agree wherever i is interior.

#pragma once

#include <string>

#include "nbhd/nbhd_graph.h"

namespace shlcp {

/// Outcome of the Lemma 5.4 expansion.
struct SurgeryResult {
  bool ok = false;
  std::string failure;
  /// The expanded odd closed view walk W' (first == last when ok).
  std::vector<View> walk;
  /// Number of detours spliced (= the cycle's edge count).
  int detours = 0;
};

/// Expands the odd cycle `cycle` (view indices into `nbhd`, first ==
/// last) by splicing a forgetting detour from the witnessing instance of
/// every edge. `instances` must be the list absorbed into `nbhd`, in
/// absorption order; `radius` is the decoder's r. Fails when some
/// witnessing instance lacks the Lemma 5.4 ingredients (not r-forgetful
/// at the edge, no far node, minimum degree < 2) -- which is precisely
/// the situation of non-r-forgetful promise classes.
SurgeryResult expand_odd_cycle(const NbhdGraph& nbhd,
                               const std::vector<Instance>& instances,
                               const std::vector<int>& cycle, int radius);

/// The consistency property the surgery establishes (a necessary
/// condition for component-wise realizability, checked mechanically):
/// for every identifier i, within each connected component of the walk
/// views containing i, all views agree on i's certificate, and pairs of
/// views where i is interior agree on its radius-1 view. Returns an
/// empty string on success, else a description of the first clash.
std::string check_walk_id_consistency(const std::vector<View>& walk);

/// Lemma 5.2/5.3's identifier separation: each connected component of
/// S(i) (the walk positions whose views contain identifier i) receives
/// its own fresh identifier, drawn from the paper's order-preserving
/// block construction I_i = [(i-1)W + 1, iW] with W = |walk| -- so
/// relative identifier order is preserved (old i < j implies every
/// replacement of i is below every replacement of j) and the Lemma 5.1
/// merge no longer conflates distinct occurrences of one identifier.
/// Outputs the rewritten walk; `new_bound` receives the enlarged N
/// (old bound times W), mirroring the paper's padding with isolated
/// nodes. Requires identified views.
std::vector<View> separate_id_components(const std::vector<View>& walk,
                                         Ident* new_bound);

}  // namespace shlcp
