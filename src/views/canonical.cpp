#include "views/canonical.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <string_view>

#include "util/metrics.h"

namespace shlcp {

std::vector<Node> canonical_order(const View& v) {
  const int k = v.num_nodes();
  std::vector<Node> order;
  order.reserve(static_cast<std::size_t>(k));
  std::vector<int> index(static_cast<std::size_t>(k), -1);
  std::deque<Node> queue;
  index[static_cast<std::size_t>(v.center)] = 0;
  order.push_back(v.center);
  queue.push_back(v.center);
  while (!queue.empty()) {
    const Node x = queue.front();
    queue.pop_front();
    // Visit x's visible edges in increasing port order.
    const auto nb = v.g.neighbors(x);
    const auto& px = v.ports[static_cast<std::size_t>(x)];
    std::vector<std::pair<Port, Node>> by_port;
    by_port.reserve(nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      by_port.emplace_back(px[i], nb[i]);
    }
    std::sort(by_port.begin(), by_port.end());
    for (const auto& [p, y] : by_port) {
      if (index[static_cast<std::size_t>(y)] == -1) {
        index[static_cast<std::size_t>(y)] = static_cast<int>(order.size());
        order.push_back(y);
        queue.push_back(y);
      }
    }
  }
  SHLCP_CHECK_MSG(static_cast<int>(order.size()) == k,
                  "view graph must be connected from the center");
  return order;
}

namespace {

/// The actual encoder behind View::canonical (runs once per view object).
std::vector<std::int64_t> compute_canonical_code(const View& v) {
  const auto order = canonical_order(v);
  const int k = v.num_nodes();
  std::vector<int> index(static_cast<std::size_t>(k), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    index[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::vector<std::int64_t> code;
  code.reserve(static_cast<std::size_t>(8 * k + 16));
  code.push_back(v.radius);
  code.push_back(v.id_bound);
  code.push_back(k);
  for (const Node x : order) {
    code.push_back(v.dist[static_cast<std::size_t>(x)]);
    code.push_back(v.ids[static_cast<std::size_t>(x)]);
    const auto& cert = v.labels[static_cast<std::size_t>(x)];
    code.push_back(cert.bits);
    code.push_back(static_cast<std::int64_t>(cert.fields.size()));
    for (const int f : cert.fields) {
      code.push_back(f);
    }
    // Edges of x in increasing port order: (port here, canonical index of
    // the neighbor, port there).
    const auto nb = v.g.neighbors(x);
    const auto& px = v.ports[static_cast<std::size_t>(x)];
    std::vector<std::pair<Port, Node>> by_port;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      by_port.emplace_back(px[i], nb[i]);
    }
    std::sort(by_port.begin(), by_port.end());
    code.push_back(static_cast<std::int64_t>(by_port.size()));
    for (const auto& [p, y] : by_port) {
      code.push_back(p);
      code.push_back(index[static_cast<std::size_t>(y)]);
      code.push_back(v.port(y, x));
    }
  }
  return code;
}

/// SplitMix64 finalizer: the avalanche stage behind the fingerprint mix.
constexpr std::uint64_t fp_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The encoder behind View::fingerprint. Per-node hashes are combined
/// with commutative operators (sum and xor), so the value is invariant
/// under local reindexing by construction -- no BFS, no sorting, no
/// allocation. See the header for what it deliberately leaves out.
std::uint64_t compute_fingerprint(const View& v) {
  const int n = v.num_nodes();
  std::uint64_t header = fp_mix64(0x51f0u ^ static_cast<std::uint64_t>(v.radius));
  header = fp_mix64(header ^ static_cast<std::uint64_t>(v.id_bound));
  header = fp_mix64(header ^ static_cast<std::uint64_t>(n));
  header = fp_mix64(header ^ static_cast<std::uint64_t>(v.g.num_edges()));
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  for (Node x = 0; x < n; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    std::uint64_t h = fp_mix64(static_cast<std::uint64_t>(v.dist[xi]));
    h = fp_mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(v.ids[xi])));
    const Certificate& cert = v.labels[xi];
    h = fp_mix64(h ^ static_cast<std::uint64_t>(cert.bits));
    h = fp_mix64(h ^ cert.fields.size());
    for (const int f : cert.fields) {
      h = fp_mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(f)));
    }
    const auto& px = v.ports[xi];
    h = fp_mix64(h ^ px.size());
    std::uint64_t port_mix = 0;
    for (const Port p : px) {
      port_mix += fp_mix64(0xb0a7ull + static_cast<std::uint64_t>(p));
    }
    h = fp_mix64(h ^ port_mix);
    if (x == v.center) {
      h = fp_mix64(h ^ 0xCE17E5ull);
    }
    sum += h;
    xr ^= h;
  }
  return fp_mix64(header ^ sum) ^ fp_mix64(xr ^ 0x5EEDull);
}

}  // namespace

std::uint64_t View::fingerprint() const {
  if (!fp_cached_) {
    fp_ = compute_fingerprint(*this);
    fp_cached_ = true;
  }
  return fp_;
}

std::uint64_t view_fingerprint(const View& v) { return v.fingerprint(); }

bool views_structurally_equal(const View& a, const View& b) {
  if (&a == &b) {
    return true;
  }
  // When both sides already paid for exact codes, comparing them is the
  // cheapest exact test available.
  if (a.canonical_cached() && b.canonical_cached()) {
    return a.canonical() == b.canonical();
  }
  const int n = a.num_nodes();
  if (n != b.num_nodes() || a.radius != b.radius ||
      a.id_bound != b.id_bound || a.g.num_edges() != b.g.num_edges()) {
    return false;
  }
  const auto node_matches = [&](Node x, Node y) {
    const auto xi = static_cast<std::size_t>(x);
    const auto yi = static_cast<std::size_t>(y);
    return a.dist[xi] == b.dist[yi] && a.ids[xi] == b.ids[yi] &&
           a.labels[xi] == b.labels[yi];
  };
  if (!node_matches(a.center, b.center)) {
    return false;
  }
  // Dual port-ordered BFS: map_ab is the unique candidate isomorphism
  // (port rigidity), grown edge by edge; any mismatch refutes equality.
  std::vector<Node> map_ab(static_cast<std::size_t>(n), -1);
  std::vector<char> seen_b(static_cast<std::size_t>(n), 0);
  std::vector<Node> queue;
  queue.reserve(static_cast<std::size_t>(n));
  map_ab[static_cast<std::size_t>(a.center)] = b.center;
  seen_b[static_cast<std::size_t>(b.center)] = 1;
  queue.push_back(a.center);
  std::vector<std::pair<Port, Node>> by_port_a;
  std::vector<std::pair<Port, Node>> by_port_b;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const Node x = queue[qi];
    const Node y = map_ab[static_cast<std::size_t>(x)];
    const auto nb_a = a.g.neighbors(x);
    const auto nb_b = b.g.neighbors(y);
    if (nb_a.size() != nb_b.size()) {
      return false;
    }
    const auto& pa = a.ports[static_cast<std::size_t>(x)];
    const auto& pb = b.ports[static_cast<std::size_t>(y)];
    by_port_a.clear();
    by_port_b.clear();
    for (std::size_t i = 0; i < nb_a.size(); ++i) {
      by_port_a.emplace_back(pa[i], nb_a[i]);
      by_port_b.emplace_back(pb[i], nb_b[i]);
    }
    std::sort(by_port_a.begin(), by_port_a.end());
    std::sort(by_port_b.begin(), by_port_b.end());
    for (std::size_t i = 0; i < by_port_a.size(); ++i) {
      if (by_port_a[i].first != by_port_b[i].first) {
        return false;
      }
      const Node na = by_port_a[i].second;
      const Node nb = by_port_b[i].second;
      const Node mapped = map_ab[static_cast<std::size_t>(na)];
      if (mapped != -1) {
        if (mapped != nb) {
          return false;
        }
        continue;
      }
      if (seen_b[static_cast<std::size_t>(nb)] != 0 ||
          !node_matches(na, nb)) {
        return false;
      }
      map_ab[static_cast<std::size_t>(na)] = nb;
      seen_b[static_cast<std::size_t>(nb)] = 1;
      queue.push_back(na);
    }
  }
  // Views are connected from the center, and n plus all per-node degrees
  // matched, so reaching here means the bijection is complete.
  return static_cast<int>(queue.size()) == n;
}

const std::vector<std::int64_t>& View::canonical() const {
  // Cache-pressure counters for the enumeration hot path: each View
  // computes its code at most once; every later canonical() call (edge
  // registration, index_of lookups, shard merges) should be a hit.
  static metrics::Counter& computes = metrics::counter("views.canonical.computes");
  static metrics::Counter& hits = metrics::counter("views.canonical.cache_hits");
  if (canon_ == nullptr) {
    computes.inc();
    canon_ = std::make_shared<const std::vector<std::int64_t>>(
        compute_canonical_code(*this));
  } else {
    hits.inc();
  }
  return *canon_;
}

const std::vector<std::int64_t>& canonical_code(const View& v) {
  return v.canonical();
}

std::string canonical_key(const View& v) {
  const auto& code = v.canonical();
  SHLCP_DCHECK(v.canonical_cached());
  std::string key;
  key.resize(code.size() * sizeof(std::int64_t));
  std::memcpy(key.data(), code.data(), key.size());
  return key;
}

std::size_t ViewHash::operator()(const View& v) const {
  const auto& code = v.canonical();
  SHLCP_DCHECK(v.canonical_cached());
  return std::hash<std::string_view>{}(std::string_view(
      reinterpret_cast<const char*>(code.data()),
      code.size() * sizeof(std::int64_t)));
}

}  // namespace shlcp
