#include "views/canonical.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <string_view>

#include "util/metrics.h"

namespace shlcp {

std::vector<Node> canonical_order(const View& v) {
  const int k = v.num_nodes();
  std::vector<Node> order;
  order.reserve(static_cast<std::size_t>(k));
  std::vector<int> index(static_cast<std::size_t>(k), -1);
  std::deque<Node> queue;
  index[static_cast<std::size_t>(v.center)] = 0;
  order.push_back(v.center);
  queue.push_back(v.center);
  while (!queue.empty()) {
    const Node x = queue.front();
    queue.pop_front();
    // Visit x's visible edges in increasing port order.
    const auto nb = v.g.neighbors(x);
    const auto& px = v.ports[static_cast<std::size_t>(x)];
    std::vector<std::pair<Port, Node>> by_port;
    by_port.reserve(nb.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      by_port.emplace_back(px[i], nb[i]);
    }
    std::sort(by_port.begin(), by_port.end());
    for (const auto& [p, y] : by_port) {
      if (index[static_cast<std::size_t>(y)] == -1) {
        index[static_cast<std::size_t>(y)] = static_cast<int>(order.size());
        order.push_back(y);
        queue.push_back(y);
      }
    }
  }
  SHLCP_CHECK_MSG(static_cast<int>(order.size()) == k,
                  "view graph must be connected from the center");
  return order;
}

namespace {

/// The actual encoder behind View::canonical (runs once per view object).
std::vector<std::int64_t> compute_canonical_code(const View& v) {
  const auto order = canonical_order(v);
  const int k = v.num_nodes();
  std::vector<int> index(static_cast<std::size_t>(k), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    index[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::vector<std::int64_t> code;
  code.reserve(static_cast<std::size_t>(8 * k + 16));
  code.push_back(v.radius);
  code.push_back(v.id_bound);
  code.push_back(k);
  for (const Node x : order) {
    code.push_back(v.dist[static_cast<std::size_t>(x)]);
    code.push_back(v.ids[static_cast<std::size_t>(x)]);
    const auto& cert = v.labels[static_cast<std::size_t>(x)];
    code.push_back(cert.bits);
    code.push_back(static_cast<std::int64_t>(cert.fields.size()));
    for (const int f : cert.fields) {
      code.push_back(f);
    }
    // Edges of x in increasing port order: (port here, canonical index of
    // the neighbor, port there).
    const auto nb = v.g.neighbors(x);
    const auto& px = v.ports[static_cast<std::size_t>(x)];
    std::vector<std::pair<Port, Node>> by_port;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      by_port.emplace_back(px[i], nb[i]);
    }
    std::sort(by_port.begin(), by_port.end());
    code.push_back(static_cast<std::int64_t>(by_port.size()));
    for (const auto& [p, y] : by_port) {
      code.push_back(p);
      code.push_back(index[static_cast<std::size_t>(y)]);
      code.push_back(v.port(y, x));
    }
  }
  return code;
}

}  // namespace

const std::vector<std::int64_t>& View::canonical() const {
  // Cache-pressure counters for the enumeration hot path: each View
  // computes its code at most once; every later canonical() call (edge
  // registration, index_of lookups, shard merges) should be a hit.
  static metrics::Counter& computes = metrics::counter("views.canonical.computes");
  static metrics::Counter& hits = metrics::counter("views.canonical.cache_hits");
  if (canon_ == nullptr) {
    computes.inc();
    canon_ = std::make_shared<const std::vector<std::int64_t>>(
        compute_canonical_code(*this));
  } else {
    hits.inc();
  }
  return *canon_;
}

const std::vector<std::int64_t>& canonical_code(const View& v) {
  return v.canonical();
}

std::string canonical_key(const View& v) {
  const auto& code = v.canonical();
  SHLCP_DCHECK(v.canonical_cached());
  std::string key;
  key.resize(code.size() * sizeof(std::int64_t));
  std::memcpy(key.data(), code.data(), key.size());
  return key;
}

std::size_t ViewHash::operator()(const View& v) const {
  const auto& code = v.canonical();
  SHLCP_DCHECK(v.canonical_cached());
  return std::hash<std::string_view>{}(std::string_view(
      reinterpret_cast<const char*>(code.data()),
      code.size() * sizeof(std::int64_t)));
}

}  // namespace shlcp
