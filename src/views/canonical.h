// Canonical encoding of views.
//
// Port assignments make port-preserving isomorphisms rigid: at every node
// the incident (visible) edges carry distinct port numbers, so a
// center-fixing, port-preserving map is forced along every walk from the
// center. A deterministic BFS that explores edges in increasing port order
// therefore assigns every view a canonical node ordering, and serializing
// the view along that ordering yields an *exact* canonical form: two views
// are isomorphic (center, distances, ports, ids, labels all preserved) iff
// their codes are equal.
//
// This is the workhorse behind View equality, the AViews set of Lemma 3.1
// (dedupe of accepting views), and the node set of the accepting
// neighborhood graph V(D, n).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "views/view.h"

namespace shlcp {

/// The canonical code of a view: a flat integer sequence, equal iff the
/// views are equal. Disconnected view graphs are not valid views (every
/// node of G_v^r is reachable from the center); checked. The code is
/// computed once per View object and cached (View::canonical); this
/// returns the cached reference.
const std::vector<std::int64_t>& canonical_code(const View& v);

/// Canonical code packed into a string (for use as a hash-map key).
/// Serialized with a single exact-size buffer (one resize + one memcpy
/// from the cached code); no incremental appends.
std::string canonical_key(const View& v);

/// The canonical local ordering itself: order[i] = local node visited i-th
/// by the port-ordered BFS (order[0] == center).
std::vector<Node> canonical_order(const View& v);

/// Hash functor over views. Hashes the bytes of the cached canonical code
/// directly (no key string is materialized, no re-canonicalization).
struct ViewHash {
  std::size_t operator()(const View& v) const;
};

/// Equality functor matching ViewHash.
struct ViewEq {
  bool operator()(const View& a, const View& b) const { return a == b; }
};

}  // namespace shlcp
