// Canonical encoding of views.
//
// Port assignments make port-preserving isomorphisms rigid: at every node
// the incident (visible) edges carry distinct port numbers, so a
// center-fixing, port-preserving map is forced along every walk from the
// center. A deterministic BFS that explores edges in increasing port order
// therefore assigns every view a canonical node ordering, and serializing
// the view along that ordering yields an *exact* canonical form: two views
// are isomorphic (center, distances, ports, ids, labels all preserved) iff
// their codes are equal.
//
// This is the workhorse behind View equality, the AViews set of Lemma 3.1
// (dedupe of accepting views), and the node set of the accepting
// neighborhood graph V(D, n).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "views/view.h"

namespace shlcp {

/// The canonical code of a view: a flat integer sequence, equal iff the
/// views are equal. Disconnected view graphs are not valid views (every
/// node of G_v^r is reachable from the center); checked. The code is
/// computed once per View object and cached (View::canonical); this
/// returns the cached reference.
const std::vector<std::int64_t>& canonical_code(const View& v);

/// Canonical code packed into a string (for use as a hash-map key).
/// Serialized with a single exact-size buffer (one resize + one memcpy
/// from the cached code); no incremental appends.
std::string canonical_key(const View& v);

/// The canonical local ordering itself: order[i] = local node visited i-th
/// by the port-ordered BFS (order[0] == center).
std::vector<Node> canonical_order(const View& v);

/// Cheap order-invariant 64-bit pre-canonical fingerprint: a commutative
/// mix of the per-node data (distance, identifier, certificate, degree,
/// incident-port multiset) plus the global header (radius, id bound, node
/// and edge counts). Equal views always have equal fingerprints, so the
/// fingerprint can *gate* dedup: only fingerprint collisions need an
/// exact comparison. It deliberately ignores how ports pair up across an
/// edge (that is what keeps it allocation-free and sort-free), so
/// distinct views CAN collide -- collisions are resolved by
/// views_structurally_equal, never assumed away. Computed once per View
/// object and cached (View::fingerprint); this returns the cached value.
std::uint64_t view_fingerprint(const View& v);

/// Exact structural equality (the same relation as canonical-code
/// equality) via a dual port-ordered BFS from the two centers, comparing
/// as it walks. Port rigidity (file comment) makes the candidate
/// isomorphism unique, so one pass decides. Early-exits on the first
/// mismatch and materializes no canonical code; when both sides already
/// carry cached codes it just compares those. This is the workhorse
/// behind operator==(View, View) and the fingerprint-gated dedup in
/// NbhdGraph.
bool views_structurally_equal(const View& a, const View& b);

/// Hash functor over views. Hashes the bytes of the cached canonical code
/// directly (no key string is materialized, no re-canonicalization).
struct ViewHash {
  std::size_t operator()(const View& v) const;
};

/// Equality functor matching ViewHash.
struct ViewEq {
  bool operator()(const View& a, const View& b) const { return a == b; }
};

}  // namespace shlcp
