#include "views/view.h"

#include <algorithm>
#include <sstream>

#include "util/format.h"
#include "views/canonical.h"

namespace shlcp {

Port View::port(Node x, Node y) const {
  const auto nb = g.neighbors(x);
  const auto it = std::lower_bound(nb.begin(), nb.end(), y);
  SHLCP_CHECK_MSG(it != nb.end() && *it == y, "View::port: edge not visible");
  return ports[static_cast<std::size_t>(x)]
              [static_cast<std::size_t>(it - nb.begin())];
}

Node View::neighbor_at(Node x, Port p) const {
  const auto& px = ports[static_cast<std::size_t>(x)];
  for (std::size_t i = 0; i < px.size(); ++i) {
    if (px[i] == p) {
      return g.neighbors(x)[i];
    }
  }
  return -1;
}

bool View::anonymous() const {
  return std::all_of(ids.begin(), ids.end(),
                     [](Ident id) { return id == -1; });
}

View View::anonymized() const {
  View copy = *this;
  copy.invalidate_canonical_cache();
  std::fill(copy.ids.begin(), copy.ids.end(), -1);
  copy.id_bound = 0;
  return copy;
}

View View::with_remapped_ids(const std::vector<std::pair<Ident, Ident>>& map,
                             Ident new_bound) const {
  View copy = *this;
  copy.invalidate_canonical_cache();
  for (auto& id : copy.ids) {
    if (id == -1) {
      continue;
    }
    bool found = false;
    for (const auto& [from, to] : map) {
      if (from == id) {
        id = to;
        found = true;
        break;
      }
    }
    SHLCP_CHECK_MSG(found, "with_remapped_ids: id missing from map");
  }
  copy.id_bound = new_bound;
  return copy;
}

Node View::local_node_of_id(Ident id) const {
  for (std::size_t x = 0; x < ids.size(); ++x) {
    if (ids[x] == id) {
      return static_cast<Node>(x);
    }
  }
  return -1;
}

std::string View::to_string() const {
  std::ostringstream os;
  os << "View(r=" << radius << ", center=" << center << ", N=" << id_bound
     << ")";
  for (Node x = 0; x < num_nodes(); ++x) {
    os << "\n  node " << x << " d=" << dist[static_cast<std::size_t>(x)]
       << " id=" << ids[static_cast<std::size_t>(x)]
       << " cert=" << show_certificate(labels[static_cast<std::size_t>(x)])
       << " edges:";
    const auto nb = g.neighbors(x);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      os << " (" << ports[static_cast<std::size_t>(x)][i] << ")->" << nb[i];
    }
  }
  return os.str();
}

bool operator==(const View& a, const View& b) {
  // Fingerprint reject first (cheap, cached), then the exact dual-BFS
  // comparison -- no canonical code is materialized for a comparison
  // unless both sides already cached one.
  if (a.fingerprint() != b.fingerprint()) {
    return false;
  }
  return views_structurally_equal(a, b);
}

}  // namespace shlcp
