#include "views/compat.h"

#include "util/check.h"
#include "views/extract.h"

namespace shlcp {

bool node_compatible(const View& mu1, Node u, const View& mu2) {
  SHLCP_CHECK_MSG(mu1.radius == mu2.radius,
                  "compatibility requires equal radii");
  SHLCP_CHECK_MSG(!mu1.anonymous() && !mu2.anonymous(),
                  "compatibility is defined on identified views");
  mu1.g.check_node(u);

  // Condition 1: u carries the identifier of mu2's center.
  if (mu1.ids[static_cast<std::size_t>(u)] != mu2.center_id()) {
    return false;
  }

  // Condition 2: interior nodes sharing an identifier have identical
  // radius-1 views.
  const int r = mu1.radius;
  for (Node w1 = 0; w1 < mu1.num_nodes(); ++w1) {
    if (mu1.dist[static_cast<std::size_t>(w1)] >= r) {
      continue;
    }
    const Ident id1 = mu1.ids[static_cast<std::size_t>(w1)];
    const Node w2 = mu2.local_node_of_id(id1);
    if (w2 == -1 || mu2.dist[static_cast<std::size_t>(w2)] >= r) {
      continue;
    }
    if (subview_radius1(mu1, w1) != subview_radius1(mu2, w2)) {
      return false;
    }
  }
  return true;
}

bool compatible_at_id(const View& mu1, Ident id, const View& mu2) {
  const Node u = mu1.local_node_of_id(id);
  if (u == -1) {
    return false;
  }
  return node_compatible(mu1, u, mu2);
}

}  // namespace shlcp
