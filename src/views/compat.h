// Compatibility between views (Section 5.1 of the paper).
//
// Distinct from the *yes-instance-compatibility* of Section 3 (which is an
// existential statement over instances and is handled by the neighborhood-
// graph builder). Here, a node u inside view mu1 is compatible with view
// mu2 when (1) u carries the identifier of mu2's center, and (2) every
// interior node of mu1 whose identifier also appears on an interior node
// of mu2 has an identical radius-1 view in both (graph structure, ports,
// identifiers, and labels). Fig. 7 of the paper illustrates the predicate.
//
// This is the glue condition of the realizability machinery: Lemma 5.1
// merges views that pairwise agree in this sense into a single instance
// G_bad.

#pragma once

#include "views/view.h"

namespace shlcp {

/// True iff local node `u` of `mu1` is compatible with `mu2`.
/// Requires both views non-anonymous and of equal radius.
bool node_compatible(const View& mu1, Node u, const View& mu2);

/// True iff `mu1` is compatible with `mu2` with respect to some node
/// carrying identifier `id` (the phrasing used in the realizability
/// definition). False when `mu1` has no node with that identifier.
bool compatible_at_id(const View& mu1, Ident id, const View& mu2);

}  // namespace shlcp
