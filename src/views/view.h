// Radius-r views (Section 2.2 of the paper).
//
// view_r(G, prt, Id, I)(v) is the tuple (G_v^r, prt|, Id|, I|) where G_v^r
// is the subgraph induced by the union of all paths of length <= r
// starting at v. Concretely: the node set is N^r(v) and an edge {x, y} of
// G is visible iff min(dist(v,x), dist(v,y)) <= r - 1 -- the full
// structure up to r-1 hops, but *no* connections between two nodes both at
// distance exactly r (Fig. 2 of the paper shows such an invisible edge).
//
// A View stores the view graph with dense local indices, the distance of
// each local node from the center, the original port numbers of the
// visible edges, the identifiers (or -1 throughout for anonymous views),
// the certificates, and the identifier bound N that the input function
// I(v) = (N, ell(v)) carries.
//
// Equality of views is structural: two views are equal iff there is an
// isomorphism between their view graphs preserving the center, distances,
// ports, identifiers, and labels. Because ports totally order the edges at
// every node, such an isomorphism is unique when it exists, and a
// deterministic port-ordered BFS yields an exact canonical form (see
// views/canonical.h).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"
#include "graph/labeling.h"
#include "graph/ports.h"

namespace shlcp {

/// A radius-r view. Local node indices 0..k-1 index into all parallel
/// vectors; `center` is a local index. See file comment for semantics.
struct View {
  /// The view graph G_v^r (local indices).
  Graph g;
  /// Local index of the center node.
  Node center = 0;
  /// View radius r.
  int radius = 0;
  /// Distance from the center, per local node (0..r).
  std::vector<int> dist;
  /// Port lists parallel to g.neighbors(x) for each local node x, holding
  /// the *original* port numbers (a boundary node's visible ports need not
  /// form a prefix of [d(x)]).
  std::vector<std::vector<Port>> ports;
  /// Identifiers per local node; all -1 in an anonymous view.
  std::vector<Ident> ids;
  /// Certificates per local node.
  std::vector<Certificate> labels;
  /// The identifier bound N known to every node (0 in anonymous views).
  Ident id_bound = 0;

  /// Number of nodes in the view.
  [[nodiscard]] int num_nodes() const { return g.num_nodes(); }

  /// Degree of the center in the original graph (all center edges are
  /// visible for r >= 1).
  [[nodiscard]] int center_degree() const { return g.degree(center); }

  /// Identifier of the center.
  [[nodiscard]] Ident center_id() const {
    return ids[static_cast<std::size_t>(center)];
  }

  /// Certificate of the center.
  [[nodiscard]] const Certificate& center_label() const {
    return labels[static_cast<std::size_t>(center)];
  }

  /// Port at local node x of the visible edge {x, y}.
  [[nodiscard]] Port port(Node x, Node y) const;

  /// Local neighbor of x through port p, or -1 if no *visible* edge at x
  /// carries port p.
  [[nodiscard]] Node neighbor_at(Node x, Port p) const;

  /// True iff no identifiers are present.
  [[nodiscard]] bool anonymous() const;

  /// Copy with all identifiers erased (and id_bound zeroed).
  [[nodiscard]] View anonymized() const;

  /// Copy with identifiers remapped through `map` (old id -> new id) and a
  /// new bound. Every present id must be a key of the map.
  [[nodiscard]] View with_remapped_ids(
      const std::vector<std::pair<Ident, Ident>>& map, Ident new_bound) const;

  /// Local node holding identifier `id`, or -1.
  [[nodiscard]] Node local_node_of_id(Ident id) const;

  /// Human-readable multi-line rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// The canonical code (views/canonical.h), computed once on first use
  /// and shared by copies. The wire/cache surfaces (canonical_key,
  /// ViewHash) route through this cache, so the port-ordered BFS runs
  /// once per distinct view object instead of once per comparison; the
  /// enumeration hot path itself dedups via fingerprint() +
  /// views_structurally_equal and never has to materialize a code. Not
  /// synchronized: concurrent first use on the SAME View object is a
  /// data race (the parallel sweep only shares views that are
  /// worker-local or frozen after registration).
  [[nodiscard]] const std::vector<std::int64_t>& canonical() const;

  /// True iff the canonical code has been computed (for assertions).
  [[nodiscard]] bool canonical_cached() const { return canon_ != nullptr; }

  /// The order-invariant pre-canonical fingerprint (views/canonical.h),
  /// computed once on first use and cached. Same synchronization caveat
  /// as canonical(): concurrent first use on the SAME View object is a
  /// data race; the parallel sweep only shares worker-local or frozen
  /// views.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// True iff the fingerprint has been computed (for assertions).
  [[nodiscard]] bool fingerprint_cached() const { return fp_cached_; }

  /// Drops the cached code and fingerprint. Any code that mutates a
  /// view's fields after canonical() / fingerprint() may have run must
  /// call this (the in-class mutators anonymized / with_remapped_ids do).
  void invalidate_canonical_cache() {
    canon_.reset();
    fp_cached_ = false;
  }

 private:
  mutable std::shared_ptr<const std::vector<std::int64_t>> canon_;
  mutable std::uint64_t fp_ = 0;
  mutable bool fp_cached_ = false;
};

/// Structural equality via canonical encodings (see views/canonical.h).
bool operator==(const View& a, const View& b);
inline bool operator!=(const View& a, const View& b) { return !(a == b); }

}  // namespace shlcp
