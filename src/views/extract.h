// Extraction of radius-r views from a (graph, ports, ids, labeling)
// instance, with the paper's exact visibility rule (Section 2.2, Fig. 2):
// nodes of the view are N^r(v); an edge is visible iff at least one of its
// endpoints is at distance <= r - 1 from the center.

#pragma once

#include <vector>

#include "views/view.h"

namespace shlcp {

/// Extracts the radius-r view of node `v`. Pass `ids == nullptr` for an
/// anonymous view (all identifiers -1, id_bound 0). Requires r >= 0; the
/// r = 0 view is the single center node with its certificate.
View extract_view(const Graph& g, const PortAssignment& ports,
                  const IdAssignment* ids, const Labeling& labels, int r,
                  Node v);

/// Views of every node, indexed by node.
std::vector<View> extract_all_views(const Graph& g, const PortAssignment& ports,
                                    const IdAssignment* ids,
                                    const Labeling& labels, int r);

/// The radius-1 view of a non-boundary node *inside an existing view*.
/// Requires dist(center, x) < view.radius so that all of x's edges are
/// visible; the result is exactly x's radius-1 view in the original graph.
/// Used by the Section 5.1 compatibility predicate.
View subview_radius1(const View& view, Node x);

}  // namespace shlcp
