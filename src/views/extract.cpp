#include "views/extract.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace shlcp {

View extract_view(const Graph& g, const PortAssignment& ports,
                  const IdAssignment* ids, const Labeling& labels, int r,
                  Node v) {
  SHLCP_CHECK(r >= 0);
  g.check_node(v);
  SHLCP_CHECK(labels.num_nodes() == g.num_nodes());
  SHLCP_CHECK(ports.num_nodes() == g.num_nodes());
  if (ids != nullptr) {
    SHLCP_CHECK(ids->num_nodes() == g.num_nodes());
  }

  const auto dist = bfs_distances(g, v);
  // Local index map: nodes of N^r(v) in increasing global order.
  std::vector<Node> locals;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (dist[static_cast<std::size_t>(u)] != -1 &&
        dist[static_cast<std::size_t>(u)] <= r) {
      locals.push_back(u);
    }
  }
  std::vector<int> local_of(static_cast<std::size_t>(g.num_nodes()), -1);
  for (std::size_t i = 0; i < locals.size(); ++i) {
    local_of[static_cast<std::size_t>(locals[i])] = static_cast<int>(i);
  }

  View view;
  view.radius = r;
  view.center = local_of[static_cast<std::size_t>(v)];
  view.id_bound = (ids != nullptr) ? ids->bound() : 0;
  view.g = Graph(static_cast<int>(locals.size()));
  view.dist.resize(locals.size());
  view.ids.resize(locals.size());
  view.labels.resize(locals.size());
  view.ports.resize(locals.size());

  for (std::size_t i = 0; i < locals.size(); ++i) {
    const Node u = locals[i];
    view.dist[i] = dist[static_cast<std::size_t>(u)];
    view.ids[i] = (ids != nullptr) ? ids->id_of(u) : -1;
    view.labels[i] = labels.at(u);
  }

  // Visibility rule: edge {x, y} visible iff min(dist) <= r - 1.
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const Node x = locals[i];
    for (const Node y : g.neighbors(x)) {
      if (x >= y) {
        continue;  // handle each global edge once (loops: x == y skipped;
                   // the paper's constructions never use loops in views)
      }
      const int j = local_of[static_cast<std::size_t>(y)];
      if (j == -1) {
        continue;
      }
      const int dx = dist[static_cast<std::size_t>(x)];
      const int dy = dist[static_cast<std::size_t>(y)];
      if (std::min(dx, dy) <= r - 1) {
        view.g.add_edge(static_cast<Node>(i), j);
      }
    }
  }

  // Ports parallel to the *view* adjacency lists, holding original port
  // numbers.
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const Node x = locals[i];
    const auto local_nb = view.g.neighbors(static_cast<Node>(i));
    auto& px = view.ports[i];
    px.resize(local_nb.size());
    for (std::size_t t = 0; t < local_nb.size(); ++t) {
      const Node y_global = locals[static_cast<std::size_t>(local_nb[t])];
      px[t] = ports.port(g, x, y_global);
    }
  }
  return view;
}

std::vector<View> extract_all_views(const Graph& g, const PortAssignment& ports,
                                    const IdAssignment* ids,
                                    const Labeling& labels, int r) {
  std::vector<View> out;
  out.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (Node v = 0; v < g.num_nodes(); ++v) {
    out.push_back(extract_view(g, ports, ids, labels, r, v));
  }
  return out;
}

View subview_radius1(const View& view, Node x) {
  view.g.check_node(x);
  SHLCP_CHECK_MSG(view.dist[static_cast<std::size_t>(x)] < view.radius,
                  "subview_radius1 requires an interior node");
  // All of x's original edges are visible in `view` (its distance from the
  // view center is < r), so extracting at radius 1 inside the view graph
  // is exactly x's radius-1 view in the original instance.
  const auto nb = view.g.neighbors(x);

  View sub;
  sub.radius = 1;
  sub.id_bound = view.id_bound;
  // Local nodes: x then its neighbors in increasing local index order.
  std::vector<Node> locals{x};
  for (const Node y : nb) {
    locals.push_back(y);
  }
  std::vector<int> local_of(static_cast<std::size_t>(view.num_nodes()), -1);
  for (std::size_t i = 0; i < locals.size(); ++i) {
    local_of[static_cast<std::size_t>(locals[i])] = static_cast<int>(i);
  }
  sub.center = 0;
  sub.g = Graph(static_cast<int>(locals.size()));
  sub.dist.resize(locals.size());
  sub.ids.resize(locals.size());
  sub.labels.resize(locals.size());
  sub.ports.resize(locals.size());
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const Node u = locals[i];
    sub.dist[i] = (i == 0) ? 0 : 1;
    sub.ids[i] = view.ids[static_cast<std::size_t>(u)];
    sub.labels[i] = view.labels[static_cast<std::size_t>(u)];
  }
  // Radius-1 visibility: only edges incident to the center.
  for (std::size_t t = 0; t < nb.size(); ++t) {
    sub.g.add_edge(0, static_cast<Node>(t + 1));
  }
  // Ports: center's ports to each neighbor, and each neighbor's port back.
  auto& pc = sub.ports[0];
  pc.resize(nb.size());
  const auto sub_nb = sub.g.neighbors(0);
  for (std::size_t t = 0; t < sub_nb.size(); ++t) {
    const Node y_local_sub = sub_nb[t];
    const Node y_view = locals[static_cast<std::size_t>(y_local_sub)];
    pc[t] = view.port(x, y_view);
    auto& py = sub.ports[static_cast<std::size_t>(y_local_sub)];
    py.resize(1);
    py[0] = view.port(y_view, x);
  }
  return sub;
}

}  // namespace shlcp
