// A fully specified network instance: graph + port assignment + identifier
// assignment + labeling. This is the paper's "labeled instance"
// (G, prt, Id, ell); when the graph satisfies the target language it is a
// *labeled yes-instance* (Section 3).

#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/ids.h"
#include "graph/labeling.h"
#include "graph/ports.h"
#include "views/view.h"

namespace shlcp {

/// Bundles (G, prt, Id, ell). Value type; copy freely.
struct Instance {
  Graph g;
  PortAssignment ports;
  IdAssignment ids;
  Labeling labels;

  /// Canonical instance over `graph`: canonical ports, consecutive ids,
  /// empty labels.
  static Instance canonical(Graph graph);

  /// Random ports and random ids in [1, id_bound]; empty labels.
  static Instance randomized(Graph graph, Ident id_bound, Rng& rng);

  /// Number of nodes.
  [[nodiscard]] int num_nodes() const { return g.num_nodes(); }

  /// Radius-r view of v; `anonymous` strips identifiers.
  [[nodiscard]] View view_of(Node v, int r, bool anonymous) const;

  /// Views of all nodes.
  [[nodiscard]] std::vector<View> all_views(int r, bool anonymous) const;

  /// Copy of this instance with a different labeling.
  [[nodiscard]] Instance with_labels(Labeling new_labels) const;
};

}  // namespace shlcp
