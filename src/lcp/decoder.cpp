#include "lcp/decoder.h"

namespace shlcp {

std::vector<bool> Decoder::run(const Instance& inst) const {
  std::vector<bool> verdicts(static_cast<std::size_t>(inst.num_nodes()));
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    verdicts[static_cast<std::size_t>(v)] = accept(input_view(inst, v));
  }
  return verdicts;
}

std::vector<Node> Decoder::accepting_set(const Instance& inst) const {
  const auto verdicts = run(inst);
  std::vector<Node> out;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    if (verdicts[static_cast<std::size_t>(v)]) {
      out.push_back(v);
    }
  }
  return out;
}

bool Decoder::accepts_all(const Instance& inst) const {
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    if (!accept(input_view(inst, v))) {
      return false;
    }
  }
  return true;
}

Instance prove_instance(const Lcp& lcp, const Instance& inst) {
  auto labels = lcp.prove(inst.g, inst.ports, inst.ids);
  SHLCP_CHECK_MSG(labels.has_value(),
                  "prove_instance: honest prover declined the instance");
  return inst.with_labels(std::move(*labels));
}

}  // namespace shlcp
