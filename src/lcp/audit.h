// Adversarial soundness audit driver.
//
// The paper's central claims are adversarial: soundness must survive a
// malicious prover, and the brief-announcement constructions claim
// *strong* soundness (every accepting set induces a k-colorable
// subgraph). This module turns the ad-hoc attack loops that used to live
// in examples/adversarial_prover.cpp into a reusable subsystem and
// extends them with the fault layer of sim/faults.h. It mechanically
// checks three invariants for any Lcp:
//
//  1. Completeness is preserved on honest, fault-free executions of
//     yes-instances -- with the channel hook installed (the hook itself
//     must not perturb the protocol).
//  2. Soundness on no-instances survives EVERY fault plan: faults may
//     only add rejections, never manufacture global acceptance of a
//     non-k-colorable graph. With faults disabled the check is the full
//     strong-soundness judgment (accepting set k-colorable).
//  3. Degraded view reconstruction is detected and reported: a node
//     whose knowledge no longer supports a radius-r reconstruction
//     always rejects, and every completeness rejection under faults is
//     attributed to a named fault (degraded knowledge or a tampered
//     view), never left unexplained.
//
// Every failure carries a single-line repro string (instance name +
// labeling seed + fault-plan descriptor) that reconstructs the exact
// run; examples/fault_audit.cpp replays such strings from the command
// line.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lcp/decoder.h"
#include "sim/engine.h"

namespace shlcp {

/// An instance with a stable name used in repro strings. Catalog names
/// (audit_instance_pool) are reconstructible across processes.
struct NamedInstance {
  std::string name;
  Instance inst;
};

/// One audit failure. `invariant` is "completeness", "soundness",
/// "degraded-view", or "attribution"; `repro` replays the exact run.
struct AuditFinding {
  std::string invariant;
  std::string repro;
  std::string detail;
};

struct AuditOptions {
  /// Master seed; every labeling seed and fault plan derives from it.
  std::uint64_t seed = 0xA0D17;
  /// Adversarial labelings sampled per (no-instance, fault plan).
  int adversarial_labelings = 48;
  /// Optional cooperative stop flag (not owned; must outlive the audit).
  /// A tripped token makes the audit return its partial results with
  /// budget_exhausted set -- invariants checked so far stay valid, and
  /// the early exit is explicit, never a silently shortened sweep.
  const CancelToken* cancel = nullptr;
};

struct AuditReport {
  bool ok = true;
  /// Distributed executions performed.
  std::uint64_t runs = 0;
  std::uint64_t completeness_runs = 0;
  std::uint64_t soundness_runs = 0;
  /// Node-verdicts that were degraded (and therefore rejected).
  std::uint64_t degraded_verdicts = 0;
  /// Completeness rejections under faults attributed to a named fault.
  std::uint64_t attributed_rejections = 0;
  /// True when the audit stopped early on a tripped CancelToken: the
  /// counters and findings cover only the runs performed. `ok` still
  /// reflects those runs -- a partial audit is a weaker claim, which is
  /// why the truncation is surfaced as its own field.
  bool budget_exhausted = false;
  /// StopReason name of the early exit ("none" when the sweep finished).
  std::string stop_reason = "none";
  std::vector<AuditFinding> findings;

  /// AND of ok, sums of counters, findings concatenated; OR of
  /// budget_exhausted (first non-"none" stop_reason wins).
  void merge(const AuditReport& other);

  /// One-line human summary.
  [[nodiscard]] std::string summary() const;
};

/// Deterministic adversarial labeling sampler: certificate spaces are
/// computed once, then labeling(seed) is a pure function of the seed
/// (uniform per-node draws, mixed with mutations of the honest labeling
/// when the prover accepts the frame -- the same adversary model as
/// check_strong_soundness_random, made replayable).
class AdversarialSampler {
 public:
  AdversarialSampler(const Lcp& lcp, const Instance& base);

  [[nodiscard]] Labeling labeling(std::uint64_t seed) const;

 private:
  int num_nodes_;
  std::vector<std::vector<Certificate>> spaces_;
  std::optional<Labeling> honest_;
};

/// Repro string for one run. `labels` is "honest" for the prover's
/// labeling or "seed:0x..." for an AdversarialSampler seed.
std::string make_repro(const std::string& lcp_name,
                       const std::string& instance_name,
                       const std::string& labels, const FaultPlan& plan);

/// Replays a completeness run (honest labeling) under `plan`.
FaultyRunResult replay_honest(const Lcp& lcp, const Instance& inst,
                              const FaultPlan& plan);

/// Replays an adversarial run: AdversarialSampler labeling from
/// `labeling_seed`, executed under `plan`.
FaultyRunResult replay_adversarial(const Lcp& lcp, const Instance& inst,
                                   std::uint64_t labeling_seed,
                                   const FaultPlan& plan);

/// Invariants 1 and 3 on a yes-instance: honest certificates, executed
/// fault-free and under every plan in `plans`. Fault-free runs must
/// unanimously accept; under faults every rejection must be attributed
/// (degraded knowledge or a view that differs from the honest one) and
/// no degraded node may accept.
AuditReport audit_completeness_under_faults(
    const Lcp& lcp, const NamedInstance& yes,
    const std::vector<FaultPlan>& plans, const CancelToken* cancel = nullptr);

/// Invariant 2 on a no-instance (non-k-colorable graph): adversarial
/// labelings executed under every plan. Any globally accepted run is a
/// soundness violation; fault-free runs additionally get the full
/// strong-soundness judgment.
AuditReport audit_soundness_under_faults(const Lcp& lcp,
                                         const NamedInstance& no,
                                         const std::vector<FaultPlan>& plans,
                                         const AuditOptions& options);

/// The full sweep: completeness audit on every yes-instance and
/// soundness audit on every no-instance, each under the standard fault
/// family (FaultPlan::standard_family) sized to the instance.
AuditReport audit_sweep(const Lcp& lcp,
                        const std::vector<NamedInstance>& yes_instances,
                        const std::vector<NamedInstance>& no_instances,
                        const AuditOptions& options = {});

/// The shared catalog of small named canonical instances the audits and
/// replay tooling draw from. Names are stable (part of repro strings).
std::vector<NamedInstance> audit_instance_pool();

/// Pool members inside `lcp`'s promise class that its prover certifies;
/// at most `max_count`.
std::vector<NamedInstance> audit_yes_instances(const Lcp& lcp,
                                               int max_count = 3);

/// Pool members that are NOT k-colorable (no-instances of k-col); at
/// most `max_count`.
std::vector<NamedInstance> audit_no_instances(int k, int max_count = 3);

/// The malicious-prover attack that examples/adversarial_prover.cpp used
/// to hand-roll: exhaustive over the certificate space when it fits
/// under `exhaustive_limit`, seeded-random otherwise. Failure messages
/// embed the host name and the Rng state for replay.
struct AttackReport {
  std::uint64_t labelings = 0;
  bool broken = false;
  /// "exhaustive" or "random".
  std::string mode;
  std::string failure;
};

AttackReport attack_strong_soundness(const Lcp& lcp, const NamedInstance& host,
                                     int samples, std::uint64_t seed,
                                     std::uint64_t exhaustive_limit = 20'000);

}  // namespace shlcp
