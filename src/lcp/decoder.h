// Decoders and locally checkable proofs (Sections 2.2-2.5 of the paper).
//
// A binary Decoder is an r-round local algorithm mapping views to
// accept/reject. An Lcp bundles a decoder with its honest prover (the
// certificate construction used in the completeness proof), the promise
// class H it targets, and an adversarial certificate space used by the
// exhaustive strong-soundness checker and the AViews enumerator.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lcp/instance.h"
#include "views/view.h"

namespace shlcp {

/// An r-round binary decoder: a computable map from views to {0, 1}.
class Decoder {
 public:
  virtual ~Decoder() = default;

  /// The number of verification rounds r (the view radius).
  [[nodiscard]] virtual int radius() const = 0;

  /// True iff the decoder ignores identifiers entirely (Section 2.2). The
  /// framework feeds anonymous decoders id-stripped views so that view
  /// dedup in the neighborhood graph is modulo identifiers.
  [[nodiscard]] virtual bool anonymous() const = 0;

  /// Decoder name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// The verdict at the center of `view`.
  [[nodiscard]] virtual bool accept(const View& view) const = 0;

  /// Runs the decoder at every node of `inst`; out[v] is v's verdict.
  [[nodiscard]] std::vector<bool> run(const Instance& inst) const;

  /// Nodes accepting in `inst`, sorted.
  [[nodiscard]] std::vector<Node> accepting_set(const Instance& inst) const;

  /// True iff every node accepts.
  [[nodiscard]] bool accepts_all(const Instance& inst) const;

  /// The view this decoder consumes at node v of inst (anonymized iff the
  /// decoder is anonymous).
  [[nodiscard]] View input_view(const Instance& inst, Node v) const {
    return inst.view_of(v, radius(), anonymous());
  }
};

/// A locally checkable proof for k-col restricted to a promise class H:
/// decoder + honest prover + promise predicate + adversarial certificate
/// space.
class Lcp {
 public:
  virtual ~Lcp() = default;

  /// Number of colors k of the certified language k-col (2 throughout the
  /// paper's constructions).
  [[nodiscard]] virtual int k() const { return 2; }

  /// The verification decoder D.
  [[nodiscard]] virtual const Decoder& decoder() const = 0;

  /// The honest prover: certificates that make every node accept on a
  /// yes-instance from H. Returns nullopt when (g, ports, ids) is outside
  /// the promise class (behavior is then unconstrained by the model).
  [[nodiscard]] virtual std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const = 0;

  /// The promise predicate: G in H. Yes-instances are H; no-instances are
  /// the non-k-colorable graphs (Section 2.5).
  [[nodiscard]] virtual bool in_promise(const Graph& g) const = 0;

  /// Adversarial certificate candidates for node v: a finite set covering
  /// every certificate that could make any node's verdict differ from a
  /// default reject. Used by exhaustive strong-soundness checking and the
  /// AViews builder; implementations document completeness of the space.
  [[nodiscard]] virtual std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const = 0;

  /// Name for reports; defaults to the decoder's name.
  [[nodiscard]] virtual std::string name() const { return decoder().name(); }
};

/// Convenience: run `lcp`'s honest prover on `inst` and return the labeled
/// instance; requires the prover to succeed.
Instance prove_instance(const Lcp& lcp, const Instance& inst);

/// A decoder defined by a lambda; handy in tests and for the cheating
/// decoders of the lower-bound pipeline.
class LambdaDecoder final : public Decoder {
 public:
  LambdaDecoder(int radius, bool anonymous, std::string name,
                std::function<bool(const View&)> fn)
      : radius_(radius),
        anonymous_(anonymous),
        name_(std::move(name)),
        fn_(std::move(fn)) {}

  [[nodiscard]] int radius() const override { return radius_; }
  [[nodiscard]] bool anonymous() const override { return anonymous_; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool accept(const View& view) const override {
    return fn_(view);
  }

 private:
  int radius_;
  bool anonymous_;
  std::string name_;
  std::function<bool(const View&)> fn_;
};

}  // namespace shlcp
