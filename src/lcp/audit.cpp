#include "lcp/audit.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lcp/checker.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace shlcp {

namespace {

/// FNV-1a 64; keys labeling seeds to instance names deterministically.
std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Nodes accepting in one faulty run, sorted.
std::vector<Node> accepting_nodes(const FaultyRunResult& res) {
  std::vector<Node> acc;
  for (std::size_t v = 0; v < res.verdicts.size(); ++v) {
    if (res.verdicts[v]) {
      acc.push_back(static_cast<Node>(v));
    }
  }
  return acc;
}

/// Every violated invariant flows through here: fails the report,
/// tallies audit.findings (total and per invariant) in the registry,
/// and emits a trace event carrying the full REPRO string so a trace
/// file alone is enough to replay the failure.
void record_finding(AuditReport& report, AuditFinding finding) {
  metrics::counter("audit.findings").inc();
  metrics::counter(std::string("audit.findings.") + finding.invariant).inc();
  trace::event("audit.finding", {{"invariant", finding.invariant},
                                 {"repro", finding.repro},
                                 {"detail", finding.detail}});
  report.ok = false;
  report.findings.push_back(std::move(finding));
}

/// Folds one audit function's tallies into the registry (the report
/// starts empty in each audit_* entry point, so these are deltas).
void publish_audit_tallies(const AuditReport& report) {
  metrics::counter("audit.runs").add(report.runs);
  metrics::counter("audit.runs.completeness").add(report.completeness_runs);
  metrics::counter("audit.runs.soundness").add(report.soundness_runs);
  metrics::counter("audit.verdicts.degraded").add(report.degraded_verdicts);
  metrics::counter("audit.rejections.attributed")
      .add(report.attributed_rejections);
}

/// Polls an optional cancel token; on a trip, marks `report` as a
/// partial result (explicit budget_exhausted verdict + counters/trace)
/// and returns true so the caller winds down its sweep loop.
bool audit_cancelled(const CancelToken* cancel, AuditReport& report) {
  if (cancel == nullptr || !cancel->stop_requested()) {
    return false;
  }
  if (!report.budget_exhausted) {
    report.budget_exhausted = true;
    report.stop_reason = to_string(cancel->reason());
    metrics::counter("audit.cancelled").inc();
    trace::event("audit.cancelled",
                 {{"reason", report.stop_reason},
                  {"runs", report.runs}});
  }
  return true;
}

}  // namespace

void AuditReport::merge(const AuditReport& other) {
  ok = ok && other.ok;
  runs += other.runs;
  completeness_runs += other.completeness_runs;
  soundness_runs += other.soundness_runs;
  degraded_verdicts += other.degraded_verdicts;
  attributed_rejections += other.attributed_rejections;
  if (other.budget_exhausted && !budget_exhausted) {
    budget_exhausted = true;
    stop_reason = other.stop_reason;
  }
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
}

std::string AuditReport::summary() const {
  return format(
      "%s: %llu runs (%llu completeness, %llu soundness), %llu degraded "
      "verdicts, %llu attributed rejections, %d finding(s)%s",
      ok ? "OK" : "FAIL", static_cast<unsigned long long>(runs),
      static_cast<unsigned long long>(completeness_runs),
      static_cast<unsigned long long>(soundness_runs),
      static_cast<unsigned long long>(degraded_verdicts),
      static_cast<unsigned long long>(attributed_rejections),
      static_cast<int>(findings.size()),
      budget_exhausted
          ? format(" [PARTIAL: stopped early, reason=%s]", stop_reason.c_str())
                .c_str()
          : "");
}

AdversarialSampler::AdversarialSampler(const Lcp& lcp, const Instance& base)
    : num_nodes_(base.num_nodes()) {
  spaces_.reserve(static_cast<std::size_t>(num_nodes_));
  for (Node v = 0; v < num_nodes_; ++v) {
    spaces_.push_back(lcp.certificate_space(base.g, base.ids, v));
    SHLCP_CHECK_MSG(!spaces_.back().empty(),
                    "certificate space must be non-empty");
  }
  honest_ = lcp.prove(base.g, base.ports, base.ids);
}

Labeling AdversarialSampler::labeling(std::uint64_t seed) const {
  Rng rng(seed);
  const int n = num_nodes_;
  Labeling labels(n);
  const bool mutate_honest = honest_.has_value() && rng.next_coin();
  if (mutate_honest) {
    labels = *honest_;
    const int flips = rng.next_int(1, std::max(1, n / 2));
    for (int f = 0; f < flips; ++f) {
      const Node v =
          static_cast<Node>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto& space = spaces_[static_cast<std::size_t>(v)];
      labels.at(v) = space[rng.next_below(space.size())];
    }
  } else {
    for (Node v = 0; v < n; ++v) {
      const auto& space = spaces_[static_cast<std::size_t>(v)];
      labels.at(v) = space[rng.next_below(space.size())];
    }
  }
  return labels;
}

std::string make_repro(const std::string& lcp_name,
                       const std::string& instance_name,
                       const std::string& labels, const FaultPlan& plan) {
  return format("REPRO lcp=%s instance=%s labels=%s plan={%s}",
                lcp_name.c_str(), instance_name.c_str(), labels.c_str(),
                plan.describe().c_str());
}

FaultyRunResult replay_honest(const Lcp& lcp, const Instance& inst,
                              const FaultPlan& plan) {
  const auto honest = lcp.prove(inst.g, inst.ports, inst.ids);
  SHLCP_CHECK_MSG(honest.has_value(),
                  "honest replay needs a certifiable instance");
  return run_decoder_distributed_faulty(lcp.decoder(),
                                        inst.with_labels(*honest), plan);
}

FaultyRunResult replay_adversarial(const Lcp& lcp, const Instance& inst,
                                   std::uint64_t labeling_seed,
                                   const FaultPlan& plan) {
  const AdversarialSampler sampler(lcp, inst);
  return run_decoder_distributed_faulty(
      lcp.decoder(), inst.with_labels(sampler.labeling(labeling_seed)), plan);
}

AuditReport audit_completeness_under_faults(
    const Lcp& lcp, const NamedInstance& yes,
    const std::vector<FaultPlan>& plans, const CancelToken* cancel) {
  AuditReport report;
  trace::Span span("audit.completeness");
  span.note("lcp", lcp.name());
  span.note("instance", yes.name);
  const auto honest = lcp.prove(yes.inst.g, yes.inst.ports, yes.inst.ids);
  if (!honest.has_value()) {
    record_finding(report, AuditFinding{
        "completeness",
        make_repro(lcp.name(), yes.name, "honest", FaultPlan{}),
        format("prover declined promise instance %s (n=%d)", yes.name.c_str(),
               yes.inst.num_nodes())});
    return report;
  }
  const Instance labeled = yes.inst.with_labels(*honest);
  const int r = lcp.decoder().radius();
  // Ground truth for attribution: the direct view extraction (what a
  // fault-free gathered view provably equals, per tests/sim_test.cpp).
  std::vector<View> honest_views;
  honest_views.reserve(static_cast<std::size_t>(labeled.num_nodes()));
  for (Node v = 0; v < labeled.num_nodes(); ++v) {
    honest_views.push_back(labeled.view_of(v, r, false));
  }
  for (const FaultPlan& plan : plans) {
    if (audit_cancelled(cancel, report)) {
      break;
    }
    const FaultyRunResult res =
        run_decoder_distributed_faulty(lcp.decoder(), labeled, plan);
    report.runs += 1;
    report.completeness_runs += 1;
    const std::string repro = make_repro(lcp.name(), yes.name, "honest", plan);
    for (Node v = 0; v < labeled.num_nodes(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (res.degraded[i]) {
        report.degraded_verdicts += 1;
        if (res.verdicts[i]) {
          record_finding(report, AuditFinding{
              "degraded-view", repro,
              format("node %d accepted despite degraded reconstruction", v)});
        }
      }
      if (res.verdicts[i]) {
        continue;
      }
      if (!plan.enabled()) {
        // Invariant 1: the installed hook must not perturb fault-free
        // completeness.
        record_finding(report, AuditFinding{
            "completeness", repro,
            format("node %d rejects honest certificates on the fault-free "
                   "channel",
                   v)});
        continue;
      }
      // Invariant 3 (attribution): a rejection under faults must trace to
      // degraded knowledge or a view that differs from the honest one.
      const bool attributed =
          res.degraded[i] || !res.views[i].has_value() ||
          !(*res.views[i] == honest_views[i]);
      if (attributed) {
        report.attributed_rejections += 1;
      } else {
        record_finding(report, AuditFinding{
            "attribution", repro,
            format("node %d rejected with a pristine honest view under plan "
                   "%s -- verdict flip has no attributable fault",
                   v, plan.label.c_str())});
      }
    }
  }
  publish_audit_tallies(report);
  return report;
}

AuditReport audit_soundness_under_faults(const Lcp& lcp,
                                         const NamedInstance& no,
                                         const std::vector<FaultPlan>& plans,
                                         const AuditOptions& options) {
  AuditReport report;
  trace::Span span("audit.soundness");
  span.note("lcp", lcp.name());
  span.note("instance", no.name);
  SHLCP_CHECK_MSG(!is_k_colorable(no.inst.g, lcp.k()),
                  "soundness audit expects a non-k-colorable no-instance");
  const AdversarialSampler sampler(lcp, no.inst);
  const std::uint64_t base =
      mix64(options.seed ^ hash_string(no.name) ^ hash_string(lcp.name()));
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const FaultPlan& plan = plans[p];
    if (audit_cancelled(options.cancel, report)) {
      break;
    }
    for (int s = 0; s < options.adversarial_labelings; ++s) {
      if (audit_cancelled(options.cancel, report)) {
        break;
      }
      const std::uint64_t labeling_seed =
          mix64(base ^ (static_cast<std::uint64_t>(p) << 32) ^
                static_cast<std::uint64_t>(s));
      const Labeling labels = sampler.labeling(labeling_seed);
      const FaultyRunResult res = run_decoder_distributed_faulty(
          lcp.decoder(), no.inst.with_labels(labels), plan);
      report.runs += 1;
      report.soundness_runs += 1;
      const std::string repro =
          make_repro(lcp.name(), no.name,
                     format("seed:0x%llx",
                            static_cast<unsigned long long>(labeling_seed)),
                     plan);
      bool all_accept = true;
      for (std::size_t i = 0; i < res.verdicts.size(); ++i) {
        all_accept = all_accept && res.verdicts[i];
        if (res.degraded[i]) {
          report.degraded_verdicts += 1;
          if (res.verdicts[i]) {
            record_finding(report, AuditFinding{
                "degraded-view", repro,
                format("node %d accepted despite degraded reconstruction",
                       static_cast<int>(i))});
          }
        }
      }
      if (all_accept) {
        // Invariant 2: no fault plan may manufacture global acceptance of
        // a no-instance.
        record_finding(report, AuditFinding{
            "soundness", repro,
            format("all %d nodes accept a non-%d-colorable instance under "
                   "plan %s",
                   no.inst.num_nodes(), lcp.k(), plan.label.c_str())});
      } else if (!plan.enabled()) {
        // Fault-free adversarial runs get the full strong-soundness
        // judgment: the accepting set must induce a k-colorable subgraph.
        const auto acc = accepting_nodes(res);
        if (!is_k_colorable(no.inst.g.induced_subgraph(acc), lcp.k())) {
          record_finding(report, AuditFinding{
              "soundness", repro,
              format("accepting set %s induces a non-%d-colorable subgraph",
                     show_vec(acc).c_str(), lcp.k())});
        }
      }
    }
  }
  publish_audit_tallies(report);
  return report;
}

AuditReport audit_sweep(const Lcp& lcp,
                        const std::vector<NamedInstance>& yes_instances,
                        const std::vector<NamedInstance>& no_instances,
                        const AuditOptions& options) {
  AuditReport report;
  for (const NamedInstance& yes : yes_instances) {
    if (audit_cancelled(options.cancel, report)) {
      return report;
    }
    const auto plans = FaultPlan::standard_family(
        mix64(options.seed ^ hash_string(yes.name)), yes.inst.num_nodes());
    report.merge(
        audit_completeness_under_faults(lcp, yes, plans, options.cancel));
  }
  for (const NamedInstance& no : no_instances) {
    if (audit_cancelled(options.cancel, report)) {
      return report;
    }
    const auto plans = FaultPlan::standard_family(
        mix64(options.seed ^ hash_string(no.name)), no.inst.num_nodes());
    report.merge(audit_soundness_under_faults(lcp, no, plans, options));
  }
  return report;
}

std::vector<NamedInstance> audit_instance_pool() {
  std::vector<NamedInstance> pool;
  const auto add = [&](const char* name, Graph g) {
    pool.push_back(NamedInstance{name, Instance::canonical(std::move(g))});
  };
  add("path5", make_path(5));
  add("path6", make_path(6));
  add("star5", make_star(5));
  add("cycle5", make_cycle(5));
  add("cycle6", make_cycle(6));
  add("cycle7", make_cycle(7));
  add("cycle8", make_cycle(8));
  add("grid23", make_grid(2, 3));
  add("grid33", make_grid(3, 3));
  add("theta222", make_theta(2, 2, 2));
  add("theta223", make_theta(2, 2, 3));
  add("melon2222", make_watermelon({2, 2, 2, 2}));
  add("broom322", make_double_broom(3, 2, 2));
  add("complete4", make_complete(4));
  return pool;
}

std::vector<NamedInstance> audit_yes_instances(const Lcp& lcp, int max_count) {
  std::vector<NamedInstance> out;
  for (NamedInstance& cand : audit_instance_pool()) {
    if (static_cast<int>(out.size()) >= max_count) {
      break;
    }
    if (!lcp.in_promise(cand.inst.g)) {
      continue;
    }
    if (!lcp.prove(cand.inst.g, cand.inst.ports, cand.inst.ids).has_value()) {
      continue;
    }
    out.push_back(std::move(cand));
  }
  return out;
}

std::vector<NamedInstance> audit_no_instances(int k, int max_count) {
  std::vector<NamedInstance> out;
  for (NamedInstance& cand : audit_instance_pool()) {
    if (static_cast<int>(out.size()) >= max_count) {
      break;
    }
    if (is_k_colorable(cand.inst.g, k)) {
      continue;
    }
    out.push_back(std::move(cand));
  }
  return out;
}

AttackReport attack_strong_soundness(const Lcp& lcp, const NamedInstance& host,
                                     int samples, std::uint64_t seed,
                                     std::uint64_t exhaustive_limit) {
  AttackReport attack;
  CheckReport check;
  if (labeling_space_size(lcp, host.inst) <= exhaustive_limit) {
    attack.mode = "exhaustive";
    check = check_strong_soundness_exhaustive(lcp, host.inst, exhaustive_limit);
  } else {
    attack.mode = "random";
    Rng rng(mix64(seed ^ hash_string(host.name)));
    check = check_strong_soundness_random(lcp, host.inst, samples, rng);
  }
  attack.labelings = check.cases;
  attack.broken = !check.ok;
  if (!check.ok) {
    attack.failure =
        format("host=%s mode=%s seed=0x%llx\n%s", host.name.c_str(),
               attack.mode.c_str(), static_cast<unsigned long long>(seed),
               check.failure.c_str());
  }
  return attack;
}

}  // namespace shlcp
