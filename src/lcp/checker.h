// Mechanical verification of the LCP properties (Sections 2.2-2.5).
//
// - Completeness: the honest prover's certificates are accepted by every
//   node of a yes-instance.
// - Strong soundness: for EVERY labeling, the subgraph induced by the
//   accepting nodes is k-colorable. Checked exhaustively over the LCP's
//   declared certificate space (exact for small instances) or by seeded
//   randomized adversaries (for larger ones).
// - Soundness: on a no-instance, every labeling leaves at least one
//   rejecting node (implied by strong soundness; also checkable directly).
// - Anonymity / order-invariance: decoder verdicts invariant under
//   arbitrary / order-preserving identifier remappings.
//
// Every checker returns a CheckReport carrying the first counterexample
// found, rendered with enough detail to replay it.

#pragma once

#include <cstdint>
#include <string>

#include "lcp/decoder.h"
#include "util/rng.h"

namespace shlcp {

/// Outcome of a property check.
struct CheckReport {
  /// True iff the property held on everything examined.
  bool ok = true;
  /// Number of labelings / instances examined.
  std::uint64_t cases = 0;
  /// Human-readable description of the first counterexample (empty if ok).
  std::string failure;

  /// Merges another report into this one (AND of ok, sum of cases, first
  /// failure wins).
  void merge(const CheckReport& other);
};

/// Completeness on a single instance whose graph lies in the promise
/// class: the honest prover must produce certificates accepted by all
/// nodes. Fails the report if the prover declines a promise instance.
CheckReport check_completeness(const Lcp& lcp, const Instance& inst);

/// Exhaustive strong (promise) soundness for the fixed (g, ports, ids) of
/// `base`: enumerates every labeling from the LCP's certificate space and
/// verifies the accepting set induces a k-colorable subgraph. The total
/// number of labelings must not exceed `limit`.
CheckReport check_strong_soundness_exhaustive(const Lcp& lcp,
                                              const Instance& base,
                                              std::uint64_t limit = 20'000'000);

/// Randomized strong soundness: samples labelings (uniform over the
/// certificate space, plus mutations of the honest labeling when the
/// prover accepts the instance).
CheckReport check_strong_soundness_random(const Lcp& lcp, const Instance& base,
                                          int samples, Rng& rng);

/// Exhaustive plain soundness on a no-instance (non-k-colorable graph):
/// for every labeling some node rejects.
CheckReport check_soundness_exhaustive(const Lcp& lcp, const Instance& base,
                                       std::uint64_t limit = 20'000'000);

/// Verdicts invariant under `trials` random identifier reassignments.
CheckReport check_anonymous(const Decoder& decoder, const Instance& labeled,
                            int trials, Rng& rng);

/// Verdicts invariant under `trials` random order-preserving identifier
/// reassignments into a larger id space.
CheckReport check_order_invariant(const Decoder& decoder,
                                  const Instance& labeled, int trials,
                                  Rng& rng);

/// Number of labelings the exhaustive checkers would enumerate for `base`
/// (product of per-node certificate-space sizes, saturating).
std::uint64_t labeling_space_size(const Lcp& lcp, const Instance& base);

/// Resilient-labeling-scheme contrast (Section 1.2 / [FOS22]). Erases the
/// certificates of every f-subset of nodes (replaced by the empty
/// certificate) of an honestly-labeled instance and counts the patterns
/// that keep unanimous acceptance, plus the average number of rejecting
/// nodes. Resilient schemes demand completeness under erasure; the
/// paper's LCPs trade that away for strong soundness, and this report
/// quantifies by how much.
struct ErasureReport {
  /// Erasure patterns tried (C(n, f)).
  std::uint64_t patterns = 0;
  /// Patterns after which every node still accepts.
  std::uint64_t still_accepted = 0;
  /// Mean number of rejecting nodes over all patterns.
  double mean_rejections = 0.0;
};

/// Requires the honest prover to accept `inst`'s frame and 0 <= f <= n.
ErasureReport check_erasure_completeness(const Lcp& lcp, const Instance& inst,
                                         int f);

}  // namespace shlcp
