#include "lcp/checker.h"

#include <algorithm>
#include <limits>

#include "graph/algorithms.h"
#include "util/combinatorics.h"
#include "util/format.h"

namespace shlcp {

void CheckReport::merge(const CheckReport& other) {
  cases += other.cases;
  if (ok && !other.ok) {
    ok = false;
    failure = other.failure;
  }
}

CheckReport check_completeness(const Lcp& lcp, const Instance& inst) {
  CheckReport report;
  report.cases = 1;
  const auto labels = lcp.prove(inst.g, inst.ports, inst.ids);
  if (!labels.has_value()) {
    report.ok = false;
    report.failure = format("prover declined a promise instance (n=%d, m=%d)",
                            inst.num_nodes(), inst.g.num_edges());
    return report;
  }
  const Instance labeled = inst.with_labels(*labels);
  const auto verdicts = lcp.decoder().run(labeled);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    if (!verdicts[static_cast<std::size_t>(v)]) {
      report.ok = false;
      report.failure =
          format("node %d rejects the honest certificates; view:\n%s", v,
                 lcp.decoder().input_view(labeled, v).to_string().c_str());
      return report;
    }
  }
  return report;
}

namespace {

/// Shared machinery of the exhaustive labeling sweeps: enumerate every
/// labeling from the certificate space and call `judge` with the labeled
/// instance; `judge` returns an empty string on pass or a failure message.
CheckReport sweep_labelings(
    const Lcp& lcp, const Instance& base, std::uint64_t limit,
    const std::function<std::string(const Instance&)>& judge) {
  CheckReport report;
  const int n = base.num_nodes();
  std::vector<std::vector<Certificate>> spaces;
  spaces.reserve(static_cast<std::size_t>(n));
  std::vector<int> radix;
  radix.reserve(static_cast<std::size_t>(n));
  for (Node v = 0; v < n; ++v) {
    spaces.push_back(lcp.certificate_space(base.g, base.ids, v));
    SHLCP_CHECK_MSG(!spaces.back().empty(),
                    "certificate space must be non-empty");
    radix.push_back(static_cast<int>(spaces.back().size()));
  }
  SHLCP_CHECK_MSG(labeling_space_size(lcp, base) <= limit,
                  "labeling space too large for exhaustive sweep");
  Instance work = base;
  for_each_product(radix, [&](const std::vector<int>& digits) {
    Labeling labels(n);
    for (Node v = 0; v < n; ++v) {
      labels.at(v) = spaces[static_cast<std::size_t>(v)]
                           [static_cast<std::size_t>(digits[static_cast<std::size_t>(v)])];
    }
    work.labels = std::move(labels);
    ++report.cases;
    std::string fail = judge(work);
    if (!fail.empty()) {
      report.ok = false;
      report.failure = std::move(fail);
      return false;
    }
    return true;
  });
  return report;
}

/// Judge for strong soundness: accepting set must induce a k-colorable
/// subgraph.
std::string judge_strong(const Lcp& lcp, const Instance& labeled) {
  const auto acc = lcp.decoder().accepting_set(labeled);
  const Graph sub = labeled.g.induced_subgraph(acc);
  if (is_k_colorable(sub, lcp.k())) {
    return {};
  }
  std::string certs;
  for (Node v = 0; v < labeled.num_nodes(); ++v) {
    certs += format(" %d:%s", v, show_certificate(labeled.labels.at(v)).c_str());
  }
  return format(
      "strong soundness violated: accepting set %s induces a non-%d-colorable "
      "subgraph; certificates:%s\ngraph: %s",
      show_vec(acc).c_str(), lcp.k(), certs.c_str(),
      labeled.g.to_string().c_str());
}

/// Judge for plain soundness on a no-instance: someone must reject.
std::string judge_plain(const Lcp& lcp, const Instance& labeled) {
  if (!lcp.decoder().accepts_all(labeled)) {
    return {};
  }
  return format("soundness violated: all nodes accept a no-instance (n=%d)",
                labeled.num_nodes());
}

}  // namespace

std::uint64_t labeling_space_size(const Lcp& lcp, const Instance& base) {
  const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max() / 2;
  std::uint64_t total = 1;
  for (Node v = 0; v < base.num_nodes(); ++v) {
    const auto space = lcp.certificate_space(base.g, base.ids, v);
    const auto size = static_cast<std::uint64_t>(space.size());
    if (size == 0 || total > cap / size) {
      return cap;
    }
    total *= size;
  }
  return total;
}

CheckReport check_strong_soundness_exhaustive(const Lcp& lcp,
                                              const Instance& base,
                                              std::uint64_t limit) {
  return sweep_labelings(lcp, base, limit, [&](const Instance& labeled) {
    return judge_strong(lcp, labeled);
  });
}

CheckReport check_soundness_exhaustive(const Lcp& lcp, const Instance& base,
                                       std::uint64_t limit) {
  SHLCP_CHECK_MSG(!is_k_colorable(base.g, lcp.k()),
                  "plain soundness check expects a no-instance");
  return sweep_labelings(lcp, base, limit, [&](const Instance& labeled) {
    return judge_plain(lcp, labeled);
  });
}

CheckReport check_strong_soundness_random(const Lcp& lcp, const Instance& base,
                                          int samples, Rng& rng) {
  CheckReport report;
  const int n = base.num_nodes();
  std::vector<std::vector<Certificate>> spaces;
  for (Node v = 0; v < n; ++v) {
    spaces.push_back(lcp.certificate_space(base.g, base.ids, v));
    SHLCP_CHECK(!spaces.back().empty());
  }
  const auto honest = lcp.prove(base.g, base.ports, base.ids);

  Instance work = base;
  for (int s = 0; s < samples; ++s) {
    // Captured before any draw of this sample: Rng(pre_state) replays the
    // sample exactly (labeling construction included), so a failure
    // message alone suffices to reconstruct the counterexample.
    const std::uint64_t pre_state = rng.state();
    Labeling labels(n);
    const bool mutate_honest = honest.has_value() && rng.next_coin();
    if (mutate_honest) {
      labels = *honest;
      // Corrupt a random non-empty subset of nodes.
      const int flips = rng.next_int(1, std::max(1, n / 2));
      for (int f = 0; f < flips; ++f) {
        const Node v = static_cast<Node>(rng.next_below(static_cast<std::uint64_t>(n)));
        const auto& space = spaces[static_cast<std::size_t>(v)];
        labels.at(v) = space[rng.next_below(space.size())];
      }
    } else {
      for (Node v = 0; v < n; ++v) {
        const auto& space = spaces[static_cast<std::size_t>(v)];
        labels.at(v) = space[rng.next_below(space.size())];
      }
    }
    work.labels = std::move(labels);
    ++report.cases;
    std::string fail = judge_strong(lcp, work);
    if (!fail.empty()) {
      report.ok = false;
      report.failure = format(
          "%s\nreplay: sample %d, Rng state 0x%llx (run one sample of "
          "check_strong_soundness_random with Rng(0x%llx))",
          fail.c_str(), s, static_cast<unsigned long long>(pre_state),
          static_cast<unsigned long long>(pre_state));
      return report;
    }
  }
  return report;
}

ErasureReport check_erasure_completeness(const Lcp& lcp, const Instance& inst,
                                         int f) {
  const int n = inst.num_nodes();
  SHLCP_CHECK(0 <= f && f <= n);
  const auto honest = lcp.prove(inst.g, inst.ports, inst.ids);
  SHLCP_CHECK_MSG(honest.has_value(),
                  "erasure check needs an honestly certifiable instance");
  const Instance base = inst.with_labels(*honest);

  ErasureReport report;
  std::uint64_t total_rejections = 0;
  for_each_subset(n, f, [&](const std::vector<int>& erased) {
    Instance damaged = base;
    for (const int v : erased) {
      damaged.labels.at(v) = Certificate{};
    }
    ++report.patterns;
    const auto verdicts = lcp.decoder().run(damaged);
    int rejections = 0;
    for (const bool b : verdicts) {
      rejections += b ? 0 : 1;
    }
    total_rejections += static_cast<std::uint64_t>(rejections);
    if (rejections == 0) {
      ++report.still_accepted;
    }
    return true;
  });
  report.mean_rejections =
      report.patterns == 0
          ? 0.0
          : static_cast<double>(total_rejections) /
                static_cast<double>(report.patterns);
  return report;
}

CheckReport check_anonymous(const Decoder& decoder, const Instance& labeled,
                            int trials, Rng& rng) {
  CheckReport report;
  // Anonymous decoders consume anonymized views by construction, so the
  // check is only informative for id-consuming decoders; it still verifies
  // the claimed invariance either way by re-running under fresh ids.
  const auto baseline = decoder.run(labeled);
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t pre_state = rng.state();
    Instance remapped = labeled;
    remapped.ids =
        IdAssignment::random(labeled.g, labeled.ids.bound(), rng);
    ++report.cases;
    const auto verdicts = decoder.run(remapped);
    if (verdicts != baseline) {
      report.ok = false;
      report.failure = format(
          "decoder %s is identifier-sensitive: verdicts changed under an id "
          "reassignment (trial %d; replay with Rng(0x%llx))",
          decoder.name().c_str(), t,
          static_cast<unsigned long long>(pre_state));
      return report;
    }
  }
  return report;
}

CheckReport check_order_invariant(const Decoder& decoder,
                                  const Instance& labeled, int trials,
                                  Rng& rng) {
  CheckReport report;
  const auto baseline = decoder.run(labeled);
  const int n = labeled.num_nodes();
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t pre_state = rng.state();
    // Order-preserving remap: draw n fresh ids from a stretched space and
    // assign them in the same relative order as the originals.
    const Ident stretched = std::max<Ident>(labeled.ids.bound() * 4, n * 4);
    std::vector<Ident> fresh;
    {
      IdAssignment draw = IdAssignment::random(labeled.g, stretched, rng);
      fresh = draw.raw();
      std::sort(fresh.begin(), fresh.end());
    }
    // Rank of each node's original id.
    std::vector<std::pair<Ident, Node>> ranked;
    for (Node v = 0; v < n; ++v) {
      ranked.emplace_back(labeled.ids.id_of(v), v);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<Ident> ids(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids[static_cast<std::size_t>(ranked[static_cast<std::size_t>(i)].second)] =
          fresh[static_cast<std::size_t>(i)];
    }
    Instance remapped = labeled;
    remapped.ids = IdAssignment::from_vector(std::move(ids), stretched);
    ++report.cases;
    const auto verdicts = decoder.run(remapped);
    if (verdicts != baseline) {
      report.ok = false;
      report.failure = format(
          "decoder %s is not order-invariant: verdicts changed under an "
          "order-preserving id remap (trial %d; replay with Rng(0x%llx))",
          decoder.name().c_str(), t,
          static_cast<unsigned long long>(pre_state));
      return report;
    }
  }
  return report;
}

}  // namespace shlcp
