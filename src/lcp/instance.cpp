#include "lcp/instance.h"

#include "views/extract.h"

namespace shlcp {

Instance Instance::canonical(Graph graph) {
  Instance inst;
  inst.ports = PortAssignment::canonical(graph);
  inst.ids = IdAssignment::consecutive(graph);
  inst.labels = Labeling(graph.num_nodes());
  inst.g = std::move(graph);
  return inst;
}

Instance Instance::randomized(Graph graph, Ident id_bound, Rng& rng) {
  Instance inst;
  inst.ports = PortAssignment::random(graph, rng);
  inst.ids = IdAssignment::random(graph, id_bound, rng);
  inst.labels = Labeling(graph.num_nodes());
  inst.g = std::move(graph);
  return inst;
}

View Instance::view_of(Node v, int r, bool anonymous) const {
  return extract_view(g, ports, anonymous ? nullptr : &ids, labels, r, v);
}

std::vector<View> Instance::all_views(int r, bool anonymous) const {
  return extract_all_views(g, ports, anonymous ? nullptr : &ids, labels, r);
}

Instance Instance::with_labels(Labeling new_labels) const {
  SHLCP_CHECK(new_labels.num_nodes() == g.num_nodes());
  Instance copy = *this;
  copy.labels = std::move(new_labels);
  return copy;
}

}  // namespace shlcp
