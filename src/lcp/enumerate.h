// Streams of labeled instances for the exhaustive engines.
//
// Lemma 3.1's algorithm "iterates over all possible labeled yes-instances
// (G, prt, Id, ell) such that G is of size at most n". This header
// provides that iteration, factored so each dimension (graphs, ports,
// identifier orders, labelings) can be toggled between exhaustive and
// canonical-only -- e.g. anonymous decoders do not need the id dimension,
// and vertex-transitive experiments can fix ports.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lcp/decoder.h"

namespace shlcp {

/// Options controlling which dimensions are enumerated exhaustively.
struct EnumOptions {
  /// Enumerate every port assignment (else canonical ports only).
  bool all_ports = false;
  /// Enumerate every identifier order type (else consecutive ids only).
  bool all_id_orders = false;
  /// Upper bound on labelings per (graph, ports, ids) frame; the stream
  /// throws if the LCP's certificate space exceeds it.
  std::uint64_t max_labelings_per_frame = 20'000'000;
};

/// Visits labeled instances built from each graph in `graphs` crossed with
/// the enabled dimensions and every labeling from `lcp.certificate_space`.
/// Return false from `visit` to stop early; returns false iff stopped.
bool for_each_labeled_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Visits only the *honestly labeled* instances: each (graph, ports, ids)
/// frame with the prover's certificates (skipping frames the prover
/// declines). This is the cheap stream for completeness sweeps and for
/// seeding the neighborhood graph with the certificates that matter.
bool for_each_proved_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Collects all k-colorable graphs among `candidates` (utility for
/// assembling yes-instance families).
std::vector<Graph> filter_yes_graphs(const std::vector<Graph>& candidates,
                                     int k);

}  // namespace shlcp
