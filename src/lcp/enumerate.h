// Streams of labeled instances for the exhaustive engines.
//
// Lemma 3.1's algorithm "iterates over all possible labeled yes-instances
// (G, prt, Id, ell) such that G is of size at most n". This header
// provides that iteration, factored so each dimension (graphs, ports,
// identifier orders, labelings) can be toggled between exhaustive and
// canonical-only -- e.g. anonymous decoders do not need the id dimension,
// and vertex-transitive experiments can fix ports.
//
// The sweep also comes in a frame-partitioned form for the parallel
// builders (nbhd/aviews.h): a *frame* is one (graph, ports, ids) triple,
// frames are independent (each carries its own labeling product), and
// enumerate_frames materializes them in the exact order the sequential
// stream visits them, so chunking frames across workers and reducing in
// chunk order reproduces the sequential result bit for bit.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "lcp/decoder.h"

namespace shlcp {

/// Options controlling which dimensions are enumerated exhaustively.
struct EnumOptions {
  /// Enumerate every port assignment (else canonical ports only).
  bool all_ports = false;
  /// Enumerate every identifier order type (else consecutive ids only).
  bool all_id_orders = false;
  /// Upper bound on labelings per (graph, ports, ids) frame; the stream
  /// throws (naming the offending frame) if the LCP's certificate space
  /// exceeds it.
  std::uint64_t max_labelings_per_frame = 20'000'000;
};

/// Options for the multithreaded sweep: the sequential dimension toggles
/// plus worker-pool shape. Used by the parallel builders in nbhd/aviews.h.
struct ParallelEnumOptions {
  /// Dimension toggles, shared with the sequential stream.
  EnumOptions enums;
  /// Worker threads; 0 resolves via SHLCP_NUM_THREADS, then the hardware
  /// (util/parallel.h). 1 forces the sequential path.
  int num_threads = 0;
  /// Frames (or instances, for explicit witness lists) per work unit.
  /// Chunks are contiguous, so larger chunks trade load balance for fewer
  /// shard merges.
  int frames_per_chunk = 4;
};

/// One (graph, ports, ids) frame of the sweep. `graph_index` indexes the
/// graph family the frame was enumerated from.
struct EnumFrame {
  int graph_index = 0;
  PortAssignment ports;
  IdAssignment ids;
};

/// Materializes every frame of the sweep over `graphs` x EnumOptions, in
/// exactly the order for_each_labeled_instance visits them.
std::vector<EnumFrame> enumerate_frames(const std::vector<Graph>& graphs,
                                        const EnumOptions& options);

/// Visits every labeling of one frame (labelings in certificate-space
/// product order, as the sequential stream). Return false from `visit` to
/// stop early; returns false iff stopped.
bool for_each_labeled_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame,
    const EnumOptions& options, const std::function<bool(const Instance&)>& visit);

/// The honestly-labeled instance of one frame: the prover's certificates,
/// or nullopt when the prover declines the frame.
std::optional<Instance> proved_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame);

/// Visits labeled instances built from each graph in `graphs` crossed with
/// the enabled dimensions and every labeling from `lcp.certificate_space`.
/// Return false from `visit` to stop early; returns false iff stopped.
bool for_each_labeled_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Visits only the *honestly labeled* instances: each (graph, ports, ids)
/// frame with the prover's certificates (skipping frames the prover
/// declines). This is the cheap stream for completeness sweeps and for
/// seeding the neighborhood graph with the certificates that matter.
bool for_each_proved_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Collects all k-colorable graphs among `candidates` (utility for
/// assembling yes-instance families).
std::vector<Graph> filter_yes_graphs(const std::vector<Graph>& candidates,
                                     int k);

}  // namespace shlcp
