// Streams of labeled instances for the exhaustive engines.
//
// Lemma 3.1's algorithm "iterates over all possible labeled yes-instances
// (G, prt, Id, ell) such that G is of size at most n". This header
// provides that iteration, factored so each dimension (graphs, ports,
// identifier orders, labelings) can be toggled between exhaustive and
// canonical-only -- e.g. anonymous decoders do not need the id dimension,
// and vertex-transitive experiments can fix ports.
//
// The sweep also comes in a frame-partitioned form for the parallel
// builders (nbhd/aviews.h): a *frame* is one (graph, ports, ids) triple,
// frames are independent (each carries its own labeling product), and
// enumerate_frames materializes them in the exact order the sequential
// stream visits them, so chunking frames across workers and reducing in
// chunk order reproduces the sequential result bit for bit.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lcp/decoder.h"
#include "util/budget.h"

namespace shlcp {

/// Options controlling which dimensions are enumerated exhaustively.
struct EnumOptions {
  /// Enumerate every port assignment (else canonical ports only).
  bool all_ports = false;
  /// Enumerate every identifier order type (else consecutive ids only).
  bool all_id_orders = false;
  /// Upper bound on labelings per (graph, ports, ids) frame; the stream
  /// throws (naming the offending frame) if the LCP's certificate space
  /// exceeds it.
  std::uint64_t max_labelings_per_frame = 20'000'000;
};

/// Frame-granular checkpointing for the sharded builders
/// (nbhd/aviews.h): the build periodically persists a manifest of the
/// completed frame prefix plus the merged NbhdGraph state, and can
/// resume from it after a crash, budget trip, or SIGINT.
struct CheckpointOptions {
  /// Checkpoint directory (created on demand); empty disables
  /// checkpointing entirely.
  std::string directory;
  /// Checkpoint cadence: a manifest is written roughly every this many
  /// completed frames (rounded up to whole chunks).
  std::uint64_t every_frames = 64;
  /// Resume from an existing manifest in `directory` when one is
  /// present (a mismatching manifest is a loud CheckError, never a
  /// silent restart). When false an existing manifest is overwritten.
  bool resume = true;

  [[nodiscard]] bool enabled() const { return !directory.empty(); }
};

/// Options for the multithreaded sweep: the sequential dimension toggles
/// plus worker-pool shape, resource budgets, and checkpointing. Used by
/// the parallel builders in nbhd/aviews.h.
struct ParallelEnumOptions {
  /// Dimension toggles, shared with the sequential stream.
  EnumOptions enums;
  /// Worker threads; 0 resolves via SHLCP_NUM_THREADS, then the hardware
  /// (util/parallel.h). 1 forces the sequential path.
  int num_threads = 0;
  /// Work-unit shape. 0 (the default) builds a cost-adaptive chunk plan
  /// from per-frame labeling counts (frame_costs + adaptive_plan in
  /// util/parallel.h): cheap frames batch into coarse chunks, dense
  /// frames get chunks of their own. A value >= 1 pins fixed uniform
  /// chunks of that many frames (or instances, for explicit witness
  /// lists) -- the legacy layout, still used by tests that want to
  /// stress shard merging with single-frame chunks. Either way chunks
  /// are contiguous, so the merged result is identical.
  int frames_per_chunk = 0;
  /// Per-build resource caps (util/budget.h). Default: unlimited. A
  /// non-default budget requires the *_resumable builders -- the plain
  /// NbhdGraph-returning builders fail loudly on an early exit rather
  /// than return a silently truncated graph.
  RunBudget budget;
  /// Frame-granular checkpoint/resume. Default: disabled.
  CheckpointOptions checkpoint;
  /// Optional external stop flag (not owned; must outlive the build).
  /// Shared with the budget enforcement: budget trips request a stop on
  /// this token when provided.
  CancelToken* cancel = nullptr;
  /// Watchdog for wedged workers: when > 0, a run whose progress
  /// counter stalls for this long is cancelled with StopReason::kStall
  /// (util/parallel.h). 0 disables the watchdog.
  std::uint64_t stall_timeout_ms = 0;

  /// True iff nothing interrupt-related is configured, i.e. the build
  /// can take the legacy uninstrumented path bit-identically.
  [[nodiscard]] bool plain() const {
    return budget.unlimited() && !checkpoint.enabled() && cancel == nullptr &&
           stall_timeout_ms == 0;
  }
};

/// One (graph, ports, ids) frame of the sweep. `graph_index` indexes the
/// graph family the frame was enumerated from.
struct EnumFrame {
  int graph_index = 0;
  PortAssignment ports;
  IdAssignment ids;
};

/// Materializes every frame of the sweep over `graphs` x EnumOptions, in
/// exactly the order for_each_labeled_instance visits them.
std::vector<EnumFrame> enumerate_frames(const std::vector<Graph>& graphs,
                                        const EnumOptions& options);

/// Per-frame work estimates for adaptive_plan (util/parallel.h): the
/// frame's labeling count, i.e. the product of `lcp.certificate_space`
/// sizes over its nodes (saturated at 2^64 - 1 instead of enforcing
/// max_labelings_per_frame -- the enumeration itself still enforces the
/// bound). Deterministic in its inputs; costs[i] belongs to frames[i].
std::vector<std::uint64_t> frame_costs(const Lcp& lcp,
                                       const std::vector<Graph>& graphs,
                                       const std::vector<EnumFrame>& frames);

/// Visits every labeling of one frame (labelings in certificate-space
/// product order, as the sequential stream). Return false from `visit` to
/// stop early; returns false iff stopped.
bool for_each_labeled_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame,
    const EnumOptions& options, const std::function<bool(const Instance&)>& visit);

/// The honestly-labeled instance of one frame: the prover's certificates,
/// or nullopt when the prover declines the frame.
std::optional<Instance> proved_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame);

/// Visits labeled instances built from each graph in `graphs` crossed with
/// the enabled dimensions and every labeling from `lcp.certificate_space`.
/// Return false from `visit` to stop early; returns false iff stopped.
bool for_each_labeled_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Visits only the *honestly labeled* instances: each (graph, ports, ids)
/// frame with the prover's certificates (skipping frames the prover
/// declines). This is the cheap stream for completeness sweeps and for
/// seeding the neighborhood graph with the certificates that matter.
bool for_each_proved_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit);

/// Collects all k-colorable graphs among `candidates` (utility for
/// assembling yes-instance families).
std::vector<Graph> filter_yes_graphs(const std::vector<Graph>& candidates,
                                     int k);

}  // namespace shlcp
