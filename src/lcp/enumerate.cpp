#include "lcp/enumerate.h"

#include "graph/algorithms.h"
#include "util/combinatorics.h"

namespace shlcp {

namespace {

/// Runs `body` for every (ports, ids) frame of `g` selected by `options`.
bool for_each_frame(const Graph& g, const EnumOptions& options,
                    const std::function<bool(const PortAssignment&,
                                             const IdAssignment&)>& body) {
  const auto with_ports = [&](const PortAssignment& ports) {
    if (options.all_id_orders) {
      return for_each_id_order(
          g, [&](const IdAssignment& ids) { return body(ports, ids); });
    }
    return body(ports, IdAssignment::consecutive(g));
  };
  if (options.all_ports) {
    return for_each_port_assignment(g, with_ports);
  }
  return with_ports(PortAssignment::canonical(g));
}

}  // namespace

bool for_each_labeled_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit) {
  for (const Graph& g : graphs) {
    const bool keep_going = for_each_frame(
        g, options, [&](const PortAssignment& ports, const IdAssignment& ids) {
          // Per-node certificate spaces for this frame.
          const int n = g.num_nodes();
          std::vector<std::vector<Certificate>> spaces;
          std::vector<int> radix;
          std::uint64_t total = 1;
          for (Node v = 0; v < n; ++v) {
            spaces.push_back(lcp.certificate_space(g, ids, v));
            SHLCP_CHECK(!spaces.back().empty());
            radix.push_back(static_cast<int>(spaces.back().size()));
            total *= static_cast<std::uint64_t>(spaces.back().size());
            SHLCP_CHECK_MSG(total <= options.max_labelings_per_frame,
                            "labeling space exceeds max_labelings_per_frame");
          }
          Instance inst;
          inst.g = g;
          inst.ports = ports;
          inst.ids = ids;
          return for_each_product(radix, [&](const std::vector<int>& digits) {
            Labeling labels(n);
            for (Node v = 0; v < n; ++v) {
              labels.at(v) =
                  spaces[static_cast<std::size_t>(v)]
                        [static_cast<std::size_t>(digits[static_cast<std::size_t>(v)])];
            }
            inst.labels = std::move(labels);
            return visit(inst);
          });
        });
    if (!keep_going) {
      return false;
    }
  }
  return true;
}

bool for_each_proved_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit) {
  for (const Graph& g : graphs) {
    const bool keep_going = for_each_frame(
        g, options, [&](const PortAssignment& ports, const IdAssignment& ids) {
          auto labels = lcp.prove(g, ports, ids);
          if (!labels.has_value()) {
            return true;
          }
          Instance inst;
          inst.g = g;
          inst.ports = ports;
          inst.ids = ids;
          inst.labels = std::move(*labels);
          return visit(inst);
        });
    if (!keep_going) {
      return false;
    }
  }
  return true;
}

std::vector<Graph> filter_yes_graphs(const std::vector<Graph>& candidates,
                                     int k) {
  std::vector<Graph> out;
  for (const Graph& g : candidates) {
    if (is_k_colorable(g, k)) {
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace shlcp
