#include "lcp/enumerate.h"

#include "graph/algorithms.h"
#include "util/combinatorics.h"
#include "util/format.h"
#include "util/metrics.h"

namespace shlcp {

namespace {

// Counter placement is chosen so the sequential drivers and the
// frame-sharded parallel path tally identical totals (the parity test
// in tests/metrics_test.cpp pins this): frames are counted once per
// frame in enumerate_frames / the sequential frame loops (never in
// for_each_labeled_instance_in_frame, which the parallel workers call
// per already-counted frame), and instances are counted in the shared
// visit_frame_labelings product.
metrics::Counter& frames_counter() {
  static metrics::Counter& c = metrics::counter("lcp.enumerate.frames");
  return c;
}

metrics::Counter& instances_counter() {
  static metrics::Counter& c = metrics::counter("lcp.enumerate.instances");
  return c;
}

metrics::Counter& proved_counter() {
  static metrics::Counter& c =
      metrics::counter("lcp.enumerate.proved_instances");
  return c;
}

/// Runs `body` for every (ports, ids) frame of `g` selected by `options`.
bool for_each_frame(const Graph& g, const EnumOptions& options,
                    const std::function<bool(const PortAssignment&,
                                             const IdAssignment&)>& body) {
  const auto with_ports = [&](const PortAssignment& ports) {
    if (options.all_id_orders) {
      return for_each_id_order(
          g, [&](const IdAssignment& ids) { return body(ports, ids); });
    }
    return body(ports, IdAssignment::consecutive(g));
  };
  if (options.all_ports) {
    return for_each_port_assignment(g, with_ports);
  }
  return with_ports(PortAssignment::canonical(g));
}

/// Identifies a frame in error messages: which graph of the family, its
/// size, and the port/id assignments, so a blown labeling bound points at
/// the offending frame instead of leaving the caller to bisect the sweep.
std::string describe_frame(int graph_index, const Graph& g,
                           const PortAssignment& ports,
                           const IdAssignment& ids) {
  std::string port_lists;
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (v > 0) {
      port_lists += " ";
    }
    port_lists += show_vec(ports.ports_of(v));
  }
  return format("graph #%d (%d nodes, %d edges), ids=%s (N=%d), ports=[%s]",
                graph_index, g.num_nodes(), g.num_edges(),
                show_vec(ids.raw()).c_str(), ids.bound(), port_lists.c_str());
}

/// The shared per-frame labeling product: builds the certificate spaces,
/// enforces max_labelings_per_frame, and streams every labeling of the
/// frame through `visit`.
bool visit_frame_labelings(const Lcp& lcp, const Graph& g, int graph_index,
                           const PortAssignment& ports,
                           const IdAssignment& ids,
                           const EnumOptions& options,
                           const std::function<bool(const Instance&)>& visit) {
  const int n = g.num_nodes();
  std::vector<std::vector<Certificate>> spaces;
  std::vector<int> radix;
  std::uint64_t total = 1;
  for (Node v = 0; v < n; ++v) {
    spaces.push_back(lcp.certificate_space(g, ids, v));
    SHLCP_CHECK(!spaces.back().empty());
    radix.push_back(static_cast<int>(spaces.back().size()));
    total *= static_cast<std::uint64_t>(spaces.back().size());
    SHLCP_CHECK_MSG(
        total <= options.max_labelings_per_frame,
        format("labeling space exceeds max_labelings_per_frame (%llu) "
               "after node %d of frame: ",
               static_cast<unsigned long long>(options.max_labelings_per_frame),
               v) +
            describe_frame(graph_index, g, ports, ids));
  }
  Instance inst;
  inst.g = g;
  inst.ports = ports;
  inst.ids = ids;
  return for_each_product(radix, [&](const std::vector<int>& digits) {
    instances_counter().inc();
    Labeling labels(n);
    for (Node v = 0; v < n; ++v) {
      labels.at(v) =
          spaces[static_cast<std::size_t>(v)]
                [static_cast<std::size_t>(digits[static_cast<std::size_t>(v)])];
    }
    inst.labels = std::move(labels);
    return visit(inst);
  });
}

}  // namespace

std::vector<EnumFrame> enumerate_frames(const std::vector<Graph>& graphs,
                                        const EnumOptions& options) {
  std::vector<EnumFrame> frames;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    for_each_frame(graphs[gi], options,
                   [&](const PortAssignment& ports, const IdAssignment& ids) {
                     frames_counter().inc();
                     EnumFrame frame;
                     frame.graph_index = static_cast<int>(gi);
                     frame.ports = ports;
                     frame.ids = ids;
                     frames.push_back(std::move(frame));
                     return true;
                   });
  }
  return frames;
}

std::vector<std::uint64_t> frame_costs(const Lcp& lcp,
                                       const std::vector<Graph>& graphs,
                                       const std::vector<EnumFrame>& frames) {
  std::vector<std::uint64_t> costs;
  costs.reserve(frames.size());
  for (const EnumFrame& frame : frames) {
    const auto gi = static_cast<std::size_t>(frame.graph_index);
    SHLCP_CHECK(gi < graphs.size());
    const Graph& g = graphs[gi];
    std::uint64_t total = 1;
    for (Node v = 0; v < g.num_nodes(); ++v) {
      const auto space = lcp.certificate_space(g, frame.ids, v);
      SHLCP_CHECK(!space.empty());
      const auto size = static_cast<std::uint64_t>(space.size());
      // Saturating product: cost estimation must not throw on a frame
      // the enumeration itself would reject via max_labelings_per_frame.
      total = (total > ~std::uint64_t{0} / size) ? ~std::uint64_t{0}
                                                 : total * size;
    }
    costs.push_back(total);
  }
  return costs;
}

bool for_each_labeled_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame,
    const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit) {
  const auto gi = static_cast<std::size_t>(frame.graph_index);
  SHLCP_CHECK(gi < graphs.size());
  return visit_frame_labelings(lcp, graphs[gi], frame.graph_index, frame.ports,
                               frame.ids, options, visit);
}

std::optional<Instance> proved_instance_in_frame(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumFrame& frame) {
  const auto gi = static_cast<std::size_t>(frame.graph_index);
  SHLCP_CHECK(gi < graphs.size());
  auto labels = lcp.prove(graphs[gi], frame.ports, frame.ids);
  if (!labels.has_value()) {
    return std::nullopt;
  }
  proved_counter().inc();
  Instance inst;
  inst.g = graphs[gi];
  inst.ports = frame.ports;
  inst.ids = frame.ids;
  inst.labels = std::move(*labels);
  return inst;
}

bool for_each_labeled_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit) {
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const bool keep_going = for_each_frame(
        g, options, [&](const PortAssignment& ports, const IdAssignment& ids) {
          frames_counter().inc();
          return visit_frame_labelings(lcp, g, static_cast<int>(gi), ports,
                                       ids, options, visit);
        });
    if (!keep_going) {
      return false;
    }
  }
  return true;
}

bool for_each_proved_instance(
    const Lcp& lcp, const std::vector<Graph>& graphs, const EnumOptions& options,
    const std::function<bool(const Instance&)>& visit) {
  for (const Graph& g : graphs) {
    const bool keep_going = for_each_frame(
        g, options, [&](const PortAssignment& ports, const IdAssignment& ids) {
          frames_counter().inc();
          auto labels = lcp.prove(g, ports, ids);
          if (!labels.has_value()) {
            return true;
          }
          proved_counter().inc();
          Instance inst;
          inst.g = g;
          inst.ports = ports;
          inst.ids = ids;
          inst.labels = std::move(*labels);
          return visit(inst);
        });
    if (!keep_going) {
      return false;
    }
  }
  return true;
}

std::vector<Graph> filter_yes_graphs(const std::vector<Graph>& candidates,
                                     int k) {
  std::vector<Graph> out;
  for (const Graph& g : candidates) {
    if (is_k_colorable(g, k)) {
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace shlcp
