// Minimal JSON value type for the observability layer.
//
// The metrics snapshot, the trace sink, and the bench/report harness all
// need to emit (and the tests to re-parse) small JSON documents. Pulling
// in a third-party JSON library for that would be the only external
// dependency in the repo besides gtest/benchmark, so instead we keep a
// deliberately small value type here: ordered objects, arrays, strings,
// integers (signed and unsigned kept exact -- counters are uint64 and
// must survive a dump/parse round trip bit-for-bit), doubles, booleans,
// null. Parsing accepts exactly the JSON this library dumps plus
// ordinary whitespace; it is not a general-purpose validator.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shlcp {

/// An ordered JSON value. Objects preserve insertion order so that the
/// emitted BENCH_*.json files are stable and diffable across runs.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }
  /// Any of kInt / kUint / kDouble.
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }
  /// kInt or kUint (exact integers, not doubles).
  bool is_integer() const { return type_ == Type::kInt || type_ == Type::kUint; }

  /// Typed accessors; SHLCP_CHECK on type mismatch. Integer accessors
  /// convert between signed/unsigned when the value fits.
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array access. push_back returns the stored element for chaining.
  Json& push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  const std::vector<Json>& items() const;

  /// Object access. operator[] inserts a null member when absent (and
  /// turns a null value into an object, so `j["a"]["b"] = 1` works).
  Json& operator[](std::string_view key);
  bool contains(std::string_view key) const;
  const Json& at(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serializes. indent < 0 emits a single line (JSONL-friendly);
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses `text`; throws shlcp::CheckError on malformed input,
  /// trailing garbage, or containers nested deeper than 256 levels
  /// (the cap keeps recursion bounded on untrusted wire input).
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace shlcp
