// Small exact combinatorial enumerators used by the exhaustive checkers.
//
// All enumerators are callback-driven (no materialized vectors of vectors
// unless asked for) so the exhaustive soundness / neighborhood-graph
// builders can stream through label assignments and port assignments with
// zero allocation per item. Callbacks returning `false` stop the
// enumeration early.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/check.h"

namespace shlcp {

/// Visits every permutation of [0, n) in lexicographic order.
/// `visit` receives the permutation; return false to stop. Returns false
/// iff the enumeration was stopped early.
bool for_each_permutation(int n,
                          const std::function<bool(const std::vector<int>&)>& visit);

/// Visits every element of the product space prod_i [0, radix[i]).
/// `visit` receives the current digit vector. Empty product (all-zero
/// length) visits the single empty tuple. Return false from visit to stop.
bool for_each_product(const std::vector<int>& radix,
                      const std::function<bool(const std::vector<int>&)>& visit);

/// Visits every k-subset of [0, n) in lexicographic order, as a sorted
/// vector of ints. Return false from visit to stop early.
bool for_each_subset(int n, int k,
                     const std::function<bool(const std::vector<int>&)>& visit);

/// Visits every subset of [0, n) (all sizes), encoded as a sorted vector.
/// Requires n <= 30. Return false from visit to stop early.
bool for_each_subset_any_size(
    int n, const std::function<bool(const std::vector<int>&)>& visit);

/// Number of permutations of n elements; requires 0 <= n <= 20.
std::uint64_t factorial(int n);

/// Binomial coefficient C(n, k); saturating at uint64 max is not handled,
/// so keep n small (n <= 60 is always safe for k <= 5).
std::uint64_t binomial(int n, int k);

/// All permutations of [0, n) materialized. Requires n <= 8 (guard against
/// accidental blowup).
std::vector<std::vector<int>> all_permutations(int n);

}  // namespace shlcp
