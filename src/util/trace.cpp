#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::trace {

namespace {

std::uint64_t raw_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sink state. g_enabled is the fast-path flag; the FILE* and its mutex
// are only touched when a record is actually written.
std::atomic<bool> g_enabled{false};
std::mutex g_sink_mu;
std::FILE* g_sink = nullptr;

std::uint64_t trace_epoch() noexcept {
  static const std::uint64_t epoch = raw_now_ns();
  return epoch;
}

Json make_record(const char* type, const char* name, unsigned tid) {
  Json rec = Json::object();
  rec["type"] = type;
  rec["name"] = name;
  rec["tid"] = static_cast<std::uint64_t>(tid);
  return rec;
}

void write_line(const Json& rec) {
  const std::string line = rec.dump(-1);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink == nullptr) {
    return;  // disable() raced with an in-flight span; drop the record
  }
  std::fwrite(line.data(), 1, line.size(), g_sink);
  std::fputc('\n', g_sink);
}

#ifndef SHLCP_NO_TRACE
// Honor SHLCP_TRACE=<path> from the environment before main() runs, so
// any binary (bench, example, test) can be traced without code changes.
struct EnvEnable {
  EnvEnable() {
    const char* path = std::getenv("SHLCP_TRACE");
    if (path != nullptr && *path != '\0') {
      enable(path);
    }
  }
};
const EnvEnable g_env_enable;
#endif

}  // namespace

#ifndef SHLCP_NO_TRACE
bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
#endif

void enable(const std::string& path) {
#ifdef SHLCP_NO_TRACE
  (void)path;
#else
  trace_epoch();  // pin the epoch before the first record
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink != nullptr) {
    std::fclose(g_sink);
    g_sink = nullptr;
    g_enabled.store(false, std::memory_order_relaxed);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  SHLCP_CHECK_MSG(f != nullptr,
                  format("trace::enable: cannot open '%s'", path.c_str()));
  g_sink = f;
  g_enabled.store(true, std::memory_order_relaxed);
#endif
}

void disable() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_enabled.store(false, std::memory_order_relaxed);
  if (g_sink != nullptr) {
    std::fclose(g_sink);
    g_sink = nullptr;
  }
}

std::uint64_t now_ns() noexcept { return raw_now_ns() - trace_epoch(); }

unsigned thread_id() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace detail {

void write_span(const char* name, unsigned tid, std::uint64_t t0_ns,
                std::uint64_t dur_ns,
                const std::vector<std::pair<std::string, Json>>& attrs) {
  Json rec = make_record("span", name, tid);
  rec["t0_ns"] = t0_ns;
  rec["dur_ns"] = dur_ns;
  Json& a = rec["attrs"] = Json::object();
  for (const auto& [k, v] : attrs) {
    a[k] = v;
  }
  write_line(rec);
}

void write_event(const char* name, unsigned tid, std::uint64_t t_ns,
                 const std::vector<std::pair<std::string, Json>>& attrs) {
  Json rec = make_record("event", name, tid);
  rec["t_ns"] = t_ns;
  Json& a = rec["attrs"] = Json::object();
  for (const auto& [k, v] : attrs) {
    a[k] = v;
  }
  write_line(rec);
}

}  // namespace detail

}  // namespace shlcp::trace
