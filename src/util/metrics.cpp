#include "util/metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::metrics {

namespace detail {

unsigned thread_stripe_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return index;
}

}  // namespace detail

namespace {

HistogramLayout exponential_layout(std::uint64_t first, std::uint64_t factor,
                                   int buckets) {
  HistogramLayout layout;
  std::uint64_t bound = first;
  for (int i = 0; i < buckets; ++i) {
    layout.bounds.push_back(bound);
    bound *= factor;
  }
  return layout;
}

}  // namespace

const HistogramLayout& HistogramLayout::duration_ns() {
  static const HistogramLayout layout =
      exponential_layout(/*first=*/1'000, /*factor=*/4, /*buckets=*/14);
  return layout;
}

const HistogramLayout& HistogramLayout::bytes() {
  static const HistogramLayout layout =
      exponential_layout(/*first=*/64, /*factor=*/4, /*buckets=*/11);
  return layout;
}

const HistogramLayout& HistogramLayout::count() {
  static const HistogramLayout layout =
      exponential_layout(/*first=*/1, /*factor=*/4, /*buckets=*/16);
  return layout;
}

Histogram::Histogram(const HistogramLayout& layout) : bounds_(layout.bounds) {
  SHLCP_CHECK_MSG(!bounds_.empty(), "Histogram needs at least one bucket bound");
  SHLCP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "Histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_buckets());
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(std::uint64_t value) noexcept {
  // First bucket whose inclusive upper edge holds the value; past the
  // last bound, the overflow bucket at index bounds_.size().
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  SHLCP_CHECK_MSG(i < num_buckets(), "Histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Json Snapshot::to_json() const {
  Json out = Json::object();
  Json& c = out["counters"] = Json::object();
  for (const auto& [name, value] : counters) {
    c[name] = value;
  }
  Json& g = out["gauges"] = Json::object();
  for (const auto& [name, value] : gauges) {
    g[name] = value;
  }
  Json& h = out["histograms"] = Json::object();
  for (const auto& [name, hist] : histograms) {
    Json& entry = h[name] = Json::object();
    Json& bounds = entry["bounds"] = Json::array();
    for (const std::uint64_t b : hist.bounds) {
      bounds.push_back(b);
    }
    Json& counts = entry["counts"] = Json::array();
    for (const std::uint64_t n : hist.counts) {
      counts.push_back(n);
    }
    entry["count"] = hist.count;
    entry["sum"] = hist.sum;
  }
  return out;
}

namespace {

/// One line per metric, indented by dotted-name depth, with shared
/// prefixes printed once:  "nbhd" / "  build" / "    views   35".
void append_tree_lines(std::string& out,
                       const std::vector<std::pair<std::string, std::string>>&
                           name_value_pairs) {
  std::vector<std::string> open;  // currently-open prefix segments
  for (const auto& [name, value] : name_value_pairs) {
    std::vector<std::string> segments;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = name.find('.', start);
      if (dot == std::string::npos) {
        segments.push_back(name.substr(start));
        break;
      }
      segments.push_back(name.substr(start, dot - start));
      start = dot + 1;
    }
    std::size_t common = 0;
    while (common < open.size() && common + 1 < segments.size() &&
           open[common] == segments[common]) {
      ++common;
    }
    open.resize(common);
    while (open.size() + 1 < segments.size()) {
      out += std::string(2 * open.size(), ' ');
      out += segments[open.size()];
      out += "\n";
      open.push_back(segments[open.size()]);
    }
    std::string line = std::string(2 * open.size(), ' ') + segments.back();
    if (line.size() < 44) {
      line.append(44 - line.size(), ' ');
    } else {
      line.push_back(' ');
    }
    out += line;
    out += value;
    out += "\n";
  }
}

}  // namespace

std::string Snapshot::pretty_tree() const {
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& [name, value] : counters) {
    rows.emplace_back(name, std::to_string(value));
  }
  for (const auto& [name, value] : gauges) {
    rows.emplace_back(name, std::to_string(value));
  }
  for (const auto& [name, hist] : histograms) {
    const double mean =
        hist.count == 0 ? 0.0
                        : static_cast<double>(hist.sum) /
                              static_cast<double>(hist.count);
    rows.emplace_back(name, format("histogram count=%llu sum=%llu mean=%.1f",
                                   static_cast<unsigned long long>(hist.count),
                                   static_cast<unsigned long long>(hist.sum),
                                   mean));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  append_tree_lines(out, rows);
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const HistogramLayout& layout) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(layout))
             .first;
  } else {
    SHLCP_CHECK_MSG(it->second->bounds() == layout.bounds,
                    format("histogram '%s' re-registered with a different "
                           "bucket layout",
                           std::string(name).c_str()));
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist hist;
    hist.bounds = h->bounds();
    hist.counts.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      hist.counts.push_back(h->bucket_count(i));
    }
    hist.count = h->count();
    hist.sum = h->sum();
    snap.histograms.emplace(name, std::move(hist));
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    c->reset();
  }
  for (const auto& [name, g] : gauges_) {
    g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    h->reset();
  }
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }

Histogram& histogram(std::string_view name, const HistogramLayout& layout) {
  return Registry::global().histogram(name, layout);
}

Snapshot snapshot() { return Registry::global().snapshot(); }

void reset_values() { Registry::global().reset_values(); }

}  // namespace shlcp::metrics
