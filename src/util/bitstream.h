// Bit-level streams for certificate encoding.
//
// Certificates in this library are structured field tuples whose declared
// `bits` sizes drive all the f(n) accounting the paper's statements are
// about. This module closes the loop: BitWriter/BitReader provide exact
// bit-granular packing, and certificate_codec.h uses them to serialize
// every scheme's certificates into real bitstrings of exactly the
// declared width, round-trip them, and thereby validate that the
// declared sizes are honest (tests/bitstream_test.cpp).

#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace shlcp {

/// Append-only bit buffer, most significant bit of each value first.
class BitWriter {
 public:
  /// Appends the `width` low bits of `value`. Requires 0 <= width <= 32
  /// and value < 2^width.
  void write(std::uint32_t value, int width);

  /// Bits written so far.
  [[nodiscard]] int size_bits() const { return size_bits_; }

  /// The packed bytes (last byte zero-padded).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  int size_bits_ = 0;
};

/// Sequential reader over a BitWriter's output.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, int size_bits)
      : bytes_(&bytes), size_bits_(size_bits) {}

  /// Reads `width` bits; throws past the end.
  std::uint32_t read(int width);

  /// Bits remaining.
  [[nodiscard]] int remaining() const { return size_bits_ - cursor_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  int size_bits_;
  int cursor_ = 0;
};

/// Number of bits needed to store values in [0, bound] (>= 1).
int bit_width_for(int bound);

}  // namespace shlcp
