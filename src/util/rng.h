// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (random graph generation,
// randomized adversarial provers, shuffles) draws from this splitmix64
// generator so that all experiments are reproducible from a single seed.
// We deliberately do not use std::mt19937 so the bit streams are identical
// across standard-library implementations.

#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace shlcp {

/// splitmix64 finalizer: bijective avalanche mix. This is the one mixing
/// primitive every seed-derivation scheme in the repo builds on (fault
/// plans, chaos plans, retry backoff, vnode placement, interactive
/// commitments); having it here keeps the derivations auditable in one
/// place instead of re-implemented per subsystem.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// splitmix64: tiny, fast, high-quality 64-bit PRNG. Passes BigCrush when
/// used as a stream; more than enough for randomized testing.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Current internal state. Rng(state()) reproduces the remaining
  /// stream exactly -- failure messages embed it so any randomized
  /// counterexample can be replayed from the report alone.
  [[nodiscard]] std::uint64_t state() const { return state_; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound) {
    SHLCP_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi) {
    SHLCP_CHECK(lo <= hi);
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability num/den. Requires 0 <= num <= den.
  bool next_bool(std::uint64_t num, std::uint64_t den) {
    SHLCP_CHECK(den > 0 && num <= den);
    return next_below(den) < num;
  }

  /// Fair coin.
  bool next_coin() { return (next_u64() & 1) != 0; }

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give each
  /// experiment repetition its own stream.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  /// Derives an independent named sub-stream of a master seed.
  /// `domain` is a per-subsystem tag (spelled as a constant at the call
  /// site), `index` the repetition within it -- e.g. the round number of
  /// an interactive session or the attempt number of a retry loop. Each
  /// argument is avalanche-mixed before combining, so adjacent indices,
  /// adjacent domains, and adjacent seeds all yield unrelated streams
  /// (tests/interactive_test.cpp checks pairwise prefix independence
  /// across the derivation schemes actually used in the repo).
  static Rng stream(std::uint64_t seed, std::uint64_t domain,
                    std::uint64_t index) {
    std::uint64_t s = mix64(seed + 0x9e3779b97f4a7c15ULL);
    s = mix64(s ^ mix64(domain + 0xbf58476d1ce4e5b9ULL));
    s = mix64(s ^ mix64(index + 0x94d049bb133111ebULL));
    return Rng(s);
  }

 private:
  std::uint64_t state_;
};

/// Returns a uniformly random permutation of [0, n).
std::vector<int> random_permutation(int n, Rng& rng);

}  // namespace shlcp
