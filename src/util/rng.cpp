#include "util/rng.h"

#include <numeric>

namespace shlcp {

std::vector<int> random_permutation(int n, Rng& rng) {
  SHLCP_CHECK(n >= 0);
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  rng.shuffle(p);
  return p;
}

}  // namespace shlcp
