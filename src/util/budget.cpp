#include "util/budget.h"

#include <chrono>
#include <csignal>
#include <cstdio>

#include "util/check.h"

namespace shlcp {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The token a live SigintGuard routes SIGINT into. A plain atomic
/// pointer: the handler only calls the async-signal-safe request_stop.
std::atomic<CancelToken*> g_sigint_token{nullptr};

extern "C" void shlcp_sigint_handler(int) {
  CancelToken* token = g_sigint_token.load(std::memory_order_relaxed);
  if (token != nullptr) {
    token->request_stop(StopReason::kInterrupt);
  }
}

}  // namespace

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelRequested:
      return "cancel_requested";
    case StopReason::kInterrupt:
      return "interrupt";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kFrameBudget:
      return "frame_budget";
    case StopReason::kInstanceBudget:
      return "instance_budget";
    case StopReason::kMemoryBudget:
      return "memory_budget";
    case StopReason::kStall:
      return "stall";
  }
  return "unknown";
}

std::uint64_t current_rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (parsed != 2) {
    return 0;
  }
  return static_cast<std::uint64_t>(resident) * 4096u;
#else
  return 0;
#endif
}

SigintGuard::SigintGuard(CancelToken& token) {
  CancelToken* expected = nullptr;
  SHLCP_CHECK_MSG(g_sigint_token.compare_exchange_strong(
                      expected, &token, std::memory_order_relaxed),
                  "only one SigintGuard may be armed at a time");
  previous_ = std::signal(SIGINT, shlcp_sigint_handler);
}

SigintGuard::~SigintGuard() {
  std::signal(SIGINT, previous_ == SIG_ERR ? SIG_DFL : previous_);
  g_sigint_token.store(nullptr, std::memory_order_relaxed);
}

BudgetTracker::BudgetTracker(const RunBudget& budget, CancelToken& token)
    : budget_(budget), token_(token) {
  if (budget_.wall_ms > 0) {
    deadline_ns_ = steady_now_ns() + budget_.wall_ms * 1'000'000u;
  }
  if (budget_.arm_sigint) {
    sigint_.emplace(token_);
  }
}

void BudgetTracker::add_frames(std::uint64_t frames) noexcept {
  frames_.fetch_add(frames, std::memory_order_relaxed);
}

void BudgetTracker::add_instances(std::uint64_t count) noexcept {
  const std::uint64_t total =
      instances_.fetch_add(count, std::memory_order_relaxed) + count;
  if (budget_.max_instances != 0 && total >= budget_.max_instances) {
    token_.request_stop(StopReason::kInstanceBudget);
  }
}

bool BudgetTracker::should_stop() noexcept {
  if (token_.stop_requested()) {
    return true;
  }
  if (deadline_ns_ != 0 && steady_now_ns() >= deadline_ns_) {
    token_.request_stop(StopReason::kDeadline);
    return true;
  }
  if (budget_.max_instances != 0 &&
      instances_.load(std::memory_order_relaxed) >= budget_.max_instances) {
    token_.request_stop(StopReason::kInstanceBudget);
    return true;
  }
  if (budget_.max_memory_bytes != 0 &&
      polls_.fetch_add(1, std::memory_order_relaxed) % 32 == 0 &&
      current_rss_bytes() >= budget_.max_memory_bytes) {
    token_.request_stop(StopReason::kMemoryBudget);
    return true;
  }
  return false;
}

}  // namespace shlcp
