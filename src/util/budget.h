// Resource budgets and cooperative cancellation for the long sweeps.
//
// The Lemma 3.1 enumeration is the one genuinely long-running job in this
// repository: at n = 7-8 a V(D, n) sweep runs for minutes to hours. This
// header provides the primitives that make such runs interruptible
// instead of all-or-nothing:
//
//  * CancelToken -- a shared stop flag with a *reason*. The first
//    request_stop wins; everything downstream (worker pools, chunk
//    bodies, the simulator, the audit driver) polls it cooperatively.
//    request_stop is async-signal-safe, so a SIGINT handler may call it.
//  * RunBudget -- declarative per-build caps: wall-clock, frames,
//    instances, resident memory, plus opt-in SIGINT arming.
//  * BudgetTracker -- the runtime enforcer: work loops report progress
//    (add_frames / add_instances) and poll should_stop(); the
//    tracker converts an exceeded cap into a request_stop with the
//    matching reason, so every early exit carries an explicit cause.
//
// Cancellation here is *cooperative and chunk-granular*: a budget trip
// never tears down a thread mid-computation. Work units observe the stop
// flag at their own safe points (between frames, between labelings,
// between simulator rounds) and unwind; the enclosing builder then
// preserves the completed prefix deterministically (util/parallel.h) and
// reports the StopReason instead of a silently truncated result.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace shlcp {

/// Why a run stopped early. kNone means "still running / ran to
/// completion"; every other value names the budget or signal that
/// tripped. Ordered so that lower values never mask a more specific
/// diagnosis (first request_stop wins regardless).
enum class StopReason : int {
  kNone = 0,
  /// Explicit CancelToken::request_stop by the embedding application.
  kCancelRequested,
  /// SIGINT observed while a SigintGuard was armed.
  kInterrupt,
  /// RunBudget::wall_ms deadline passed.
  kDeadline,
  /// RunBudget::max_frames reached.
  kFrameBudget,
  /// RunBudget::max_instances reached.
  kInstanceBudget,
  /// RunBudget::max_memory_bytes exceeded by the resident set.
  kMemoryBudget,
  /// The worker-pool watchdog saw no progress for the stall timeout.
  kStall,
};

/// Stable lowercase name ("frame_budget", "interrupt", ...) used in
/// manifests, metrics labels, and repro strings.
const char* to_string(StopReason reason) noexcept;

/// Classifies a stop: *hard* stops (time, memory, signal, explicit
/// cancellation, stall) abort work mid-chunk at the next safe point,
/// while *soft* stops (the work-count budgets) let already-started
/// chunks finish so every run makes forward progress -- a resume loop
/// under a tiny frame budget terminates instead of re-discarding the
/// same partial chunk forever.
constexpr bool is_hard_stop(StopReason reason) noexcept {
  return reason == StopReason::kCancelRequested ||
         reason == StopReason::kInterrupt || reason == StopReason::kDeadline ||
         reason == StopReason::kMemoryBudget || reason == StopReason::kStall;
}

/// Shared cooperative stop flag. Cheap to poll (one relaxed load);
/// request_stop is lock-free and async-signal-safe. The first stop
/// reason sticks; later requests are ignored.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  [[nodiscard]] bool stop_requested() const noexcept {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int>(StopReason::kNone);
  }

  [[nodiscard]] StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Requests a stop with `reason`; returns true iff this call set the
  /// flag (false when a stop was already pending). Safe from signal
  /// handlers and concurrent threads.
  bool request_stop(StopReason reason) noexcept {
    int expected = static_cast<int>(StopReason::kNone);
    return reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                           std::memory_order_relaxed);
  }

  /// Clears the flag (between independent runs sharing one token).
  void reset() noexcept {
    reason_.store(static_cast<int>(StopReason::kNone),
                  std::memory_order_relaxed);
  }

 private:
  std::atomic<int> reason_{static_cast<int>(StopReason::kNone)};
};

/// Thrown by cooperative call sites (e.g. SyncEngine::run) when a
/// cancellation interrupts work that has no way to return a partial
/// result. Carries the StopReason so callers can report it explicitly.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(StopReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  [[nodiscard]] StopReason reason() const noexcept { return reason_; }

 private:
  StopReason reason_;
};

/// Declarative per-build resource caps. Zero means "unlimited" for every
/// numeric field, so a default RunBudget changes nothing.
struct RunBudget {
  /// Wall-clock deadline in milliseconds from tracker construction.
  std::uint64_t wall_ms = 0;
  /// Cap on (graph, ports, ids) frames *started* this run. The builders
  /// enforce it deterministically by frame index: a chunk is started iff
  /// its first frame lies below the cap, so overshoot is bounded by one
  /// chunk and every run under a tiny cap still makes progress.
  std::uint64_t max_frames = 0;
  /// Cap on labeled instances visited this run (checked between chunks
  /// and between frames, so overshoot is bounded by one chunk).
  std::uint64_t max_instances = 0;
  /// Cap on the process resident set (bytes); 0 or unsupported platforms
  /// disable the check.
  std::uint64_t max_memory_bytes = 0;
  /// Route SIGINT into the token for the tracker's lifetime, so ^C
  /// checkpoints and exits cleanly instead of killing the process.
  bool arm_sigint = false;

  /// True iff no cap is set and SIGINT is not armed -- the tracker (and
  /// budget-aware builders) can skip all bookkeeping.
  [[nodiscard]] bool unlimited() const noexcept {
    return wall_ms == 0 && max_frames == 0 && max_instances == 0 &&
           max_memory_bytes == 0 && !arm_sigint;
  }
};

/// Current resident-set size in bytes, or 0 when the platform offers no
/// cheap way to read it (the memory cap then never trips).
std::uint64_t current_rss_bytes() noexcept;

/// RAII: routes SIGINT into `token` (reason kInterrupt) while alive and
/// restores the previous handler on destruction. At most one guard may
/// be armed at a time; arming a second is a loud CheckError.
class SigintGuard {
 public:
  explicit SigintGuard(CancelToken& token);
  ~SigintGuard();
  SigintGuard(const SigintGuard&) = delete;
  SigintGuard& operator=(const SigintGuard&) = delete;

 private:
  void (*previous_)(int) = nullptr;
};

/// Runtime budget enforcer for one build. Work loops report progress and
/// poll should_stop(); the tracker translates an exceeded cap into
/// token().request_stop(reason). All methods are thread-safe.
class BudgetTracker {
 public:
  /// Starts the wall clock now. `token` must outlive the tracker.
  BudgetTracker(const RunBudget& budget, CancelToken& token);

  /// Reports `frames` frames started (bookkeeping only; the frame cap is
  /// enforced by the builders via frame index, see RunBudget::max_frames).
  void add_frames(std::uint64_t frames) noexcept;

  /// Reports `count` labeled instances visited (batch per frame; do not
  /// call per instance in hot loops). Requests a kInstanceBudget stop
  /// once the running total crosses max_instances.
  void add_instances(std::uint64_t count) noexcept;

  /// Polls every cap that is time- or state-based: the token itself, the
  /// deadline, the instance cap, and (sampled, every 32nd call) the
  /// memory cap. Returns true -- after requesting a stop with the
  /// matching reason -- when the run must wind down.
  bool should_stop() noexcept;

  [[nodiscard]] std::uint64_t frames_started() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t instances() const noexcept {
    return instances_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken& token() noexcept { return token_; }

 private:
  const RunBudget budget_;
  CancelToken& token_;
  std::uint64_t deadline_ns_ = 0;  // steady-clock ns since epoch; 0 = none
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> instances_{0};
  std::atomic<std::uint64_t> polls_{0};
  std::optional<SigintGuard> sigint_;
};

}  // namespace shlcp
