#include "util/combinatorics.h"

#include <algorithm>
#include <numeric>

namespace shlcp {

bool for_each_permutation(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  SHLCP_CHECK(n >= 0);
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  do {
    if (!visit(p)) {
      return false;
    }
  } while (std::next_permutation(p.begin(), p.end()));
  return true;
}

bool for_each_product(
    const std::vector<int>& radix,
    const std::function<bool(const std::vector<int>&)>& visit) {
  for (const int r : radix) {
    SHLCP_CHECK_MSG(r >= 1, "every radix must be positive");
  }
  std::vector<int> digits(radix.size(), 0);
  for (;;) {
    if (!visit(digits)) {
      return false;
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < digits.size()) {
      if (++digits[i] < radix[i]) {
        break;
      }
      digits[i] = 0;
      ++i;
    }
    if (i == digits.size()) {
      return true;
    }
  }
}

bool for_each_subset(
    int n, int k, const std::function<bool(const std::vector<int>&)>& visit) {
  SHLCP_CHECK(0 <= k && k <= n);
  std::vector<int> s(static_cast<std::size_t>(k));
  std::iota(s.begin(), s.end(), 0);
  for (;;) {
    if (!visit(s)) {
      return false;
    }
    // Advance to next k-subset in lexicographic order.
    int i = k - 1;
    while (i >= 0 && s[static_cast<std::size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) {
      return true;
    }
    ++s[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      s[static_cast<std::size_t>(j)] = s[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

bool for_each_subset_any_size(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  SHLCP_CHECK(0 <= n && n <= 30);
  const std::uint32_t limit = 1u << n;
  std::vector<int> s;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    s.clear();
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        s.push_back(i);
      }
    }
    if (!visit(s)) {
      return false;
    }
  }
  return true;
}

std::uint64_t factorial(int n) {
  SHLCP_CHECK(0 <= n && n <= 20);
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) {
    f *= static_cast<std::uint64_t>(i);
  }
  return f;
}

std::uint64_t binomial(int n, int k) {
  SHLCP_CHECK(n >= 0);
  if (k < 0 || k > n) {
    return 0;
  }
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (int i = 1; i <= k; ++i) {
    r = r * static_cast<std::uint64_t>(n - k + i) /
        static_cast<std::uint64_t>(i);
  }
  return r;
}

std::vector<std::vector<int>> all_permutations(int n) {
  SHLCP_CHECK_MSG(n <= 8, "materializing permutations is capped at n = 8");
  std::vector<std::vector<int>> out;
  out.reserve(factorial(n));
  for_each_permutation(n, [&](const std::vector<int>& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

}  // namespace shlcp
