// Structured trace sink: spans and events as JSON Lines.
//
// A Span brackets a region of work (one V(D, n) build, one simulator
// round, one audit run) and is written as a single JSONL record at
// destruction, carrying the thread id, the steady-clock start offset,
// the duration, and any note()d attributes. An event is an
// instantaneous record (an audit finding with its REPRO string).
//
// Cost model:
//  * disabled at runtime (the default): one relaxed atomic load per
//    Span construction, nothing else -- note() and the destructor see
//    active_ == false and return immediately.
//  * disabled at compile time (-DSHLCP_NO_TRACE, CMake option
//    SHLCP_DISABLE_TRACE): enabled() is constexpr false, so the
//    optimizer deletes the instrumentation entirely.
//  * enabled: attributes are buffered in the Span and one formatted
//    line is appended to the sink under a mutex at span end. Tracing is
//    a debugging tool; enabling it serializes writers and is expected
//    to cost throughput (measured in DESIGN.md §10).
//
// Enable by setting the environment variable SHLCP_TRACE=<path> before
// the process starts, or programmatically with trace::enable(path).
// Records (one JSON object per line):
//   {"type":"span","name":...,"tid":N,"t0_ns":N,"dur_ns":N,"attrs":{...}}
//   {"type":"event","name":...,"tid":N,"t_ns":N,"attrs":{...}}
// Timestamps are steady-clock nanoseconds relative to the first use of
// the trace clock in the process, so spans from different threads share
// one timeline.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.h"

namespace shlcp::trace {

#ifdef SHLCP_NO_TRACE
constexpr bool enabled() noexcept { return false; }
#else
/// True when a sink is open. One relaxed atomic load.
bool enabled() noexcept;
#endif

/// Opens `path` (truncating) and starts recording. Throws CheckError if
/// the file cannot be opened. No-op under SHLCP_NO_TRACE.
void enable(const std::string& path);

/// Flushes and closes the sink; enabled() becomes false.
void disable();

/// Steady-clock nanoseconds since the process's trace epoch.
std::uint64_t now_ns() noexcept;

/// Small dense id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime.
unsigned thread_id() noexcept;

namespace detail {
void write_span(const char* name, unsigned tid, std::uint64_t t0_ns,
                std::uint64_t dur_ns,
                const std::vector<std::pair<std::string, Json>>& attrs);
void write_event(const char* name, unsigned tid, std::uint64_t t_ns,
                 const std::vector<std::pair<std::string, Json>>& attrs);
}  // namespace detail

/// RAII span. Construct at the top of the region; attach attributes
/// with note(); the record is written when the Span is destroyed.
/// `name` must outlive the Span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (enabled()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ != nullptr) {
      detail::write_span(name_, thread_id(), t0_, now_ns() - t0_, attrs_);
    }
  }

  /// True when this span will be written; guard expensive attribute
  /// computation with it.
  bool active() const noexcept { return name_ != nullptr; }

  void note(std::string_view key, Json value) {
    if (name_ != nullptr) {
      attrs_.emplace_back(std::string(key), std::move(value));
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::vector<std::pair<std::string, Json>> attrs_;
};

/// Writes an instantaneous event record (no-op when disabled).
inline void event(const char* name,
                  std::initializer_list<std::pair<const char*, Json>> attrs = {}) {
  if (enabled()) {
    std::vector<std::pair<std::string, Json>> copy;
    copy.reserve(attrs.size());
    for (const auto& [k, v] : attrs) {
      copy.emplace_back(k, v);
    }
    detail::write_event(name, thread_id(), now_ns(), copy);
  }
}

}  // namespace shlcp::trace
