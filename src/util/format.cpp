#include "util/format.h"

#include <cstdio>

namespace shlcp {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string show_vec(const std::vector<int>& v) {
  return "[" + join(v, ", ") + "]";
}

}  // namespace shlcp
