// A small fixed-size worker pool for the exhaustive sweeps.
//
// The Lemma 3.1 enumeration splits into independent (graph, ports, ids)
// frames, so the parallel strategy is plain data parallelism: partition a
// dense item range [0, n) into contiguous chunks, hand chunks to workers
// dynamically (an atomic counter, so uneven frames load-balance), and let
// the caller reduce per-chunk results *in chunk-index order*. Chunks are
// contiguous in item order, so a chunk-ordered reduce visits items in
// exactly the sequential order -- that is what makes the parallel
// neighborhood-graph build bit-identical to the sequential one (see
// NbhdGraph::merge).
//
// Error handling is deterministic and fail-fast: if chunk bodies throw,
// remaining *queued* chunks are cancelled (already-running chunks finish)
// and the exception from the lowest-indexed failing chunk is rethrown.
//
// Cancellation: run_cancellable takes a CancelToken plus an optional
// stall watchdog. Workers stop claiming new chunks once the token trips;
// chunk bodies additionally poll the token at their own safe points and
// may abort mid-chunk (returning false). The run then reports the
// *completed chunk prefix* -- the largest p such that chunks [0, p) all
// ran to completion -- which is what lets a budgeted V(D, n) build keep a
// deterministic, resumable amount of work (nbhd/aviews.h). Chunks beyond
// the prefix may also have completed; the caller discards them, trading a
// bounded amount of redone work for exact sequential semantics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/budget.h"

namespace shlcp {

/// Resolves a worker-thread count: `requested` if >= 1, else the
/// SHLCP_NUM_THREADS environment variable if set to an integer >= 1, else
/// std::thread::hardware_concurrency() (minimum 1).
int resolve_num_threads(int requested = 0);

/// Body run once per chunk: `chunk_index` is dense and in item order
/// (chunk c covers items [c * chunk, min((c + 1) * chunk, n))).
using ChunkBody =
    std::function<void(std::size_t chunk_index, std::size_t begin,
                       std::size_t end)>;

/// Cooperative chunk body: returns true when the chunk ran to
/// completion, false when it aborted early (budget trip observed at a
/// safe point). An aborted chunk's side effects must be discardable by
/// the caller -- it is excluded from the completed prefix.
using CancellableChunkBody =
    std::function<bool(std::size_t chunk_index, std::size_t begin,
                       std::size_t end)>;

/// Cancellation plumbing for one run_cancellable call.
struct ParallelRunControl {
  /// Stop flag polled before every chunk claim; chunk bodies should poll
  /// it too. May be null (no external cancellation).
  CancelToken* cancel = nullptr;
  /// When > 0, a watchdog thread watches the pool's progress counter
  /// (chunk claims, completions, and explicit heartbeat() calls); if no
  /// progress happens for this long, it requests a kStall stop on
  /// `cancel` so cooperative bodies fail fast instead of the run hanging
  /// forever. Requires `cancel` to be non-null. The watchdog cannot
  /// preempt a body that never reaches a safe point.
  std::uint64_t stall_timeout_ms = 0;
};

/// What a cancellable run did.
struct ParallelRunResult {
  /// Chunks [0, completed_prefix_chunks) all ran to completion; the
  /// caller may reduce exactly this prefix deterministically.
  std::size_t completed_prefix_chunks = 0;
  /// Total chunks of the range.
  std::size_t num_chunks = 0;
  /// True iff the run stopped before completing every chunk.
  [[nodiscard]] bool stopped() const {
    return completed_prefix_chunks < num_chunks;
  }
};

/// Fixed-size pool of worker threads. The calling thread participates in
/// every parallel_for_chunks, so a pool of size t uses t OS threads total
/// (t - 1 background workers). A pool of size 1 runs everything inline.
class WorkerPool {
 public:
  /// Spawns num_threads - 1 background workers; requires num_threads >= 1.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total threads (background workers + the caller).
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Splits [0, n) into ceil(n / chunk) contiguous chunks of size `chunk`
  /// (the last may be short) and runs `body` once per chunk, distributing
  /// chunks dynamically across the pool. Blocks until every chunk is done.
  /// If bodies throw, remaining queued chunks are cancelled and the
  /// exception of the lowest-indexed chunk that threw is rethrown.
  /// Not reentrant: must not be called from inside a chunk body.
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           const ChunkBody& body);

  /// Cancellable variant: stops claiming chunks when ctrl.cancel trips
  /// (or a body throws), and reports the completed chunk prefix instead
  /// of requiring full completion. Exceptions still rethrow the
  /// lowest-indexed one after the run winds down.
  ParallelRunResult run_cancellable(std::size_t n, std::size_t chunk,
                                    const CancellableChunkBody& body,
                                    const ParallelRunControl& ctrl);

  /// Progress heartbeat for the stall watchdog: long-running chunk
  /// bodies call this at their safe points (e.g. once per frame) so a
  /// legitimately slow chunk is not mistaken for a wedged one.
  void heartbeat() noexcept {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void run_chunks();
  ParallelRunResult run_job(std::size_t n, std::size_t chunk,
                            const CancellableChunkBody& body,
                            const ParallelRunControl& ctrl);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job or shutdown
  std::condition_variable done_cv_;  // caller: all claimers out
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;

  // Current job; written under mu_ before the generation bump, read by
  // workers only after observing the bump under mu_ (or claim-guarded by
  // active_claimers_, which the caller waits on before resetting).
  const CancellableChunkBody* body_ = nullptr;
  CancelToken* job_cancel_ = nullptr;  // may be null
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 0;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> stop_claims_{false};  // fail-fast / cancellation latch
  std::atomic<std::uint64_t> progress_{0};  // watchdog heartbeat counter
  std::vector<char> chunk_done_;     // guarded by mu_
  int active_claimers_ = 0;          // guarded by mu_
  std::size_t error_chunk_ = 0;      // guarded by mu_
  std::exception_ptr error_;         // guarded by mu_
};

/// One-shot convenience: builds a pool of resolve_num_threads(num_threads)
/// workers for a single parallel_for_chunks call.
void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body);

}  // namespace shlcp
