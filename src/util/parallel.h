// A small fixed-size worker pool for the exhaustive sweeps.
//
// The Lemma 3.1 enumeration splits into independent (graph, ports, ids)
// frames, so the parallel strategy is plain data parallelism over a dense
// item range [0, n). Work distribution is two-layered:
//
//  * A deterministic *chunk plan* splits the range into contiguous,
//    ascending [begin, end) ranges. uniform_plan cuts fixed-size chunks;
//    adaptive_plan cuts by per-item cost estimates, so cheap items batch
//    into coarse chunks and expensive items split finer (the dense/sparse
//    decomposition of the frame space). The plan depends only on its
//    inputs, never on timing.
//  * A work-stealing scheduler executes the plan: each pool thread owns a
//    deque of plan indices (the plan is pre-partitioned contiguously
//    across threads), pops from its own front, and when empty steals the
//    back half of the most-loaded victim's deque. Which thread runs which
//    chunk is timing-dependent; *what* each chunk computes is not.
//
// The caller reduces per-chunk results *in plan-index order*. Chunks are
// contiguous in item order, so a plan-ordered reduce visits items in
// exactly the sequential order -- that is what makes the parallel
// neighborhood-graph build bit-identical to the sequential one (see
// NbhdGraph::merge), independent of chunk sizes and steal timing.
//
// Error handling is deterministic and fail-fast: once a chunk body
// throws, queued chunks *above* the lowest failing index are cancelled
// (already-running chunks finish, and chunks below it still run -- a
// sequential loop would have executed them before reaching the error),
// so the rethrown exception is exactly the one a sequential run of the
// same plan would have surfaced, regardless of steal timing.
//
// Cancellation: run_cancellable / run_plan take a CancelToken plus an
// optional stall watchdog. Workers stop claiming new chunks once the
// token trips; chunk bodies additionally poll the token at their own safe
// points and may abort mid-chunk (returning false). The run then reports
// the *completed chunk prefix* -- the largest p such that chunks [0, p)
// all ran to completion -- which is what lets a budgeted V(D, n) build
// keep a deterministic, resumable amount of work (nbhd/aviews.h). Chunks
// beyond the prefix may also have completed; the caller discards them,
// trading a bounded amount of redone work for exact sequential semantics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/budget.h"

namespace shlcp {

/// Resolves a worker-thread count: `requested` if >= 1, else the
/// SHLCP_NUM_THREADS environment variable if set to an integer >= 1, else
/// std::thread::hardware_concurrency() (minimum 1).
int resolve_num_threads(int requested = 0);

/// A deterministic work-distribution plan: contiguous, ascending
/// [begin, end) item ranges exactly covering [0, num_items). Chunk i of a
/// run executes ranges[i]; reducing per-chunk results in index order
/// reproduces sequential item order.
struct ChunkPlan {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  /// True when the plan was cut by per-item costs (adaptive_plan); feeds
  /// the parallel.chunks_adaptive metric.
  bool adaptive = false;

  [[nodiscard]] std::size_t num_chunks() const { return ranges.size(); }
  [[nodiscard]] std::size_t num_items() const {
    return ranges.empty() ? 0 : ranges.back().second;
  }
};

/// Fixed-size chunks of `chunk` items (the last may be short): the
/// legacy frame-partitioned layout, kept for callers that pin a chunk
/// size (and as the degenerate plan when no costs are known).
ChunkPlan uniform_plan(std::size_t n, std::size_t chunk);

/// Cost-adaptive chunks: greedily cuts [0, costs.size()) so every chunk
/// carries roughly total_cost / (threads * ranges_per_thread) worth of
/// work. Runs of cheap items batch into one coarse chunk; an expensive
/// item (>= the target by itself) gets a chunk of its own, so one dense
/// frame never drags a whole coarse chunk's tail. Deterministic in its
/// inputs. Zero costs are treated as 1 so empty-looking items still make
/// progress.
ChunkPlan adaptive_plan(const std::vector<std::uint64_t>& costs, int threads,
                        std::size_t ranges_per_thread = 8);

/// Body run once per chunk: `chunk_index` is dense and in item order
/// (chunk c covers the plan's ranges[c]).
using ChunkBody =
    std::function<void(std::size_t chunk_index, std::size_t begin,
                       std::size_t end)>;

/// Cooperative chunk body: returns true when the chunk ran to
/// completion, false when it aborted early (budget trip observed at a
/// safe point). An aborted chunk's side effects must be discardable by
/// the caller -- it is excluded from the completed prefix.
using CancellableChunkBody =
    std::function<bool(std::size_t chunk_index, std::size_t begin,
                       std::size_t end)>;

/// Cancellation plumbing for one run_cancellable / run_plan call.
struct ParallelRunControl {
  /// Stop flag polled before every chunk claim; chunk bodies should poll
  /// it too. May be null (no external cancellation).
  CancelToken* cancel = nullptr;
  /// When > 0, a watchdog thread watches the pool's progress counter
  /// (chunk claims, completions, and explicit heartbeat() calls); if no
  /// progress happens for this long, it requests a kStall stop on
  /// `cancel` so cooperative bodies fail fast instead of the run hanging
  /// forever. Requires `cancel` to be non-null. The watchdog cannot
  /// preempt a body that never reaches a safe point.
  std::uint64_t stall_timeout_ms = 0;
};

/// What a cancellable run did.
struct ParallelRunResult {
  /// Chunks [0, completed_prefix_chunks) all ran to completion; the
  /// caller may reduce exactly this prefix deterministically.
  std::size_t completed_prefix_chunks = 0;
  /// Total chunks of the plan.
  std::size_t num_chunks = 0;
  /// Chunks that actually started (claims; <= num_chunks when stopped).
  std::size_t chunks_claimed = 0;
  /// Work-stealing transfers during the run (0 on a 1-thread pool; also
  /// published as the parallel.steals counter). Timing-dependent --
  /// diagnostics, never part of the deterministic result.
  std::size_t steals = 0;
  /// True iff the run stopped before completing every chunk.
  [[nodiscard]] bool stopped() const {
    return completed_prefix_chunks < num_chunks;
  }
};

/// Fixed-size pool of worker threads. The calling thread participates in
/// every run, so a pool of size t uses t OS threads total (t - 1
/// background workers). A pool of size 1 runs everything inline.
class WorkerPool {
 public:
  /// Spawns num_threads - 1 background workers; requires num_threads >= 1.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total threads (background workers + the caller).
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Splits [0, n) into ceil(n / chunk) contiguous chunks of size `chunk`
  /// (the last may be short) and runs `body` once per chunk, distributing
  /// chunks across the pool with work stealing. Blocks until every chunk
  /// is done. If bodies throw, queued chunks above the lowest failing
  /// index are cancelled and its exception is rethrown (see the
  /// error-handling contract above).
  /// Not reentrant: must not be called from inside a chunk body.
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           const ChunkBody& body);

  /// Cancellable variant over fixed-size chunks: stops claiming chunks
  /// when ctrl.cancel trips (or a body throws), and reports the completed
  /// chunk prefix instead of requiring full completion. Exceptions still
  /// rethrow the lowest-indexed one after the run winds down.
  ParallelRunResult run_cancellable(std::size_t n, std::size_t chunk,
                                    const CancellableChunkBody& body,
                                    const ParallelRunControl& ctrl);

  /// The general form: executes an explicit (possibly cost-adaptive)
  /// chunk plan with the work-stealing scheduler. `plan` must outlive the
  /// call. Same cancellation, prefix, and error semantics as
  /// run_cancellable.
  ParallelRunResult run_plan(const ChunkPlan& plan,
                             const CancellableChunkBody& body,
                             const ParallelRunControl& ctrl);

  /// Progress heartbeat for the stall watchdog: long-running chunk
  /// bodies call this at their safe points (e.g. once per frame) so a
  /// legitimately slow chunk is not mistaken for a wedged one.
  void heartbeat() noexcept {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// One thread's share of the plan: plan indices [head, tail), owner
  /// pops at head, thieves take the back half of [head, tail). Guarded
  /// by mu (leaf lock: never held while taking the pool mutex).
  struct alignas(64) Deque {
    std::mutex mu;
    std::size_t head = 0;
    std::size_t tail = 0;
  };

  /// Claim outcomes for one scheduler step of run_chunks.
  static constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

  void worker_loop(std::size_t self);
  void run_chunks(std::size_t self);
  std::size_t claim_chunk(std::size_t self);
  ParallelRunResult run_job(const ChunkPlan& plan,
                            const CancellableChunkBody& body,
                            const ParallelRunControl& ctrl);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Deque>> queues_;  // one per pool thread

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job or shutdown
  std::condition_variable done_cv_;  // caller: all claimers out
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;

  // Current job; written under mu_ before the generation bump, read by
  // workers only after observing the bump under mu_ (or claim-guarded by
  // active_claimers_, which the caller waits on before resetting).
  const CancellableChunkBody* body_ = nullptr;
  const ChunkPlan* plan_ = nullptr;
  CancelToken* job_cancel_ = nullptr;  // may be null
  std::size_t num_chunks_ = 0;
  std::atomic<bool> stop_claims_{true};  // cancellation / teardown latch
  // Lowest chunk index that has thrown this job (kNoChunk = none).
  // Claimed chunks at or above it are skipped, chunks below it still
  // run, so the surfaced exception is deterministically the one a
  // sequential loop would have hit -- regardless of steal timing.
  std::atomic<std::size_t> error_bound_{kNoChunk};
  std::atomic<std::uint64_t> progress_{0};  // watchdog heartbeat counter
  std::atomic<std::size_t> claims_{0};    // chunks started this job
  std::atomic<std::size_t> steals_{0};    // steal transfers this job
  std::vector<char> chunk_done_;     // guarded by mu_
  int active_claimers_ = 0;          // guarded by mu_
  std::size_t error_chunk_ = 0;      // guarded by mu_
  std::exception_ptr error_;         // guarded by mu_
};

/// One-shot convenience: builds a pool of resolve_num_threads(num_threads)
/// workers for a single parallel_for_chunks call.
void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body);

}  // namespace shlcp
