// A small fixed-size worker pool for the exhaustive sweeps.
//
// The Lemma 3.1 enumeration splits into independent (graph, ports, ids)
// frames, so the parallel strategy is plain data parallelism: partition a
// dense item range [0, n) into contiguous chunks, hand chunks to workers
// dynamically (an atomic counter, so uneven frames load-balance), and let
// the caller reduce per-chunk results *in chunk-index order*. Chunks are
// contiguous in item order, so a chunk-ordered reduce visits items in
// exactly the sequential order -- that is what makes the parallel
// neighborhood-graph build bit-identical to the sequential one (see
// NbhdGraph::merge).
//
// Error handling is deterministic too: if chunk bodies throw, the
// exception from the lowest-indexed failing chunk is rethrown.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shlcp {

/// Resolves a worker-thread count: `requested` if >= 1, else the
/// SHLCP_NUM_THREADS environment variable if set to an integer >= 1, else
/// std::thread::hardware_concurrency() (minimum 1).
int resolve_num_threads(int requested = 0);

/// Body run once per chunk: `chunk_index` is dense and in item order
/// (chunk c covers items [c * chunk, min((c + 1) * chunk, n))).
using ChunkBody =
    std::function<void(std::size_t chunk_index, std::size_t begin,
                       std::size_t end)>;

/// Fixed-size pool of worker threads. The calling thread participates in
/// every parallel_for_chunks, so a pool of size t uses t OS threads total
/// (t - 1 background workers). A pool of size 1 runs everything inline.
class WorkerPool {
 public:
  /// Spawns num_threads - 1 background workers; requires num_threads >= 1.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total threads (background workers + the caller).
  [[nodiscard]] int num_threads() const {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Splits [0, n) into ceil(n / chunk) contiguous chunks of size `chunk`
  /// (the last may be short) and runs `body` once per chunk, distributing
  /// chunks dynamically across the pool. Blocks until every chunk is done.
  /// If bodies throw, rethrows the exception of the lowest failing chunk.
  /// Not reentrant: must not be called from inside a chunk body.
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           const ChunkBody& body);

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job or shutdown
  std::condition_variable done_cv_;  // caller: all chunks done, claimers out
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;

  // Current job; written under mu_ before the generation bump, read by
  // workers only after observing the bump under mu_ (or claim-guarded by
  // active_claimers_, which the caller waits on before resetting).
  const ChunkBody* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 0;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t chunks_done_ = 0;      // guarded by mu_
  int active_claimers_ = 0;          // guarded by mu_
  std::size_t error_chunk_ = 0;      // guarded by mu_
  std::exception_ptr error_;         // guarded by mu_
};

/// One-shot convenience: builds a pool of resolve_num_threads(num_threads)
/// workers for a single parallel_for_chunks call.
void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body);

}  // namespace shlcp
