// Minimal string formatting helpers for reports and error messages.
//
// We avoid std::format (not consistently available on the target
// toolchain) and iostream state juggling; these helpers cover the small
// surface the library needs: joining containers and a printf-like
// format() returning std::string.

#pragma once

#include <cstdarg>
#include <sstream>
#include <string>
#include <vector>

namespace shlcp {

/// printf-style formatting into a std::string.
/// Attribute-checked so mismatched format arguments fail at compile time.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string format(const char* fmt, ...);

/// Joins the elements of `items` with `sep`, using operator<< per element.
template <typename Container>
std::string join(const Container& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) {
      os << sep;
    }
    first = false;
    os << item;
  }
  return os.str();
}

/// Human-friendly rendering of an integer vector, e.g. "[1, 2, 3]".
std::string show_vec(const std::vector<int>& v);

}  // namespace shlcp
