#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.h"
#include "util/format.h"

namespace shlcp {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  SHLCP_CHECK_MSG(type_ == Type::kBool, "Json::as_bool on non-bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) {
    return int_;
  }
  SHLCP_CHECK_MSG(type_ == Type::kUint, "Json::as_int on non-integer");
  SHLCP_CHECK_MSG(
      uint_ <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
      "Json::as_int overflow");
  return static_cast<std::int64_t>(uint_);
}

std::uint64_t Json::as_uint() const {
  if (type_ == Type::kUint) {
    return uint_;
  }
  SHLCP_CHECK_MSG(type_ == Type::kInt, "Json::as_uint on non-integer");
  SHLCP_CHECK_MSG(int_ >= 0, "Json::as_uint on negative value");
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  switch (type_) {
    case Type::kDouble:
      return double_;
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    default:
      SHLCP_CHECK_MSG(false, "Json::as_double on non-number");
  }
  return 0.0;  // unreachable
}

const std::string& Json::as_string() const {
  SHLCP_CHECK_MSG(type_ == Type::kString, "Json::as_string on non-string");
  return string_;
}

Json& Json::push_back(Json v) {
  SHLCP_CHECK_MSG(type_ == Type::kArray, "Json::push_back on non-array");
  array_.push_back(std::move(v));
  return array_.back();
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  SHLCP_CHECK_MSG(type_ == Type::kObject, "Json::size on non-container");
  return object_.size();
}

const Json& Json::at(std::size_t i) const {
  SHLCP_CHECK_MSG(type_ == Type::kArray, "Json::at(index) on non-array");
  SHLCP_CHECK_MSG(i < array_.size(), "Json::at index out of range");
  return array_[i];
}

const std::vector<Json>& Json::items() const {
  SHLCP_CHECK_MSG(type_ == Type::kArray, "Json::items on non-array");
  return array_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  SHLCP_CHECK_MSG(type_ == Type::kObject, "Json::operator[] on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

bool Json::contains(std::string_view key) const {
  SHLCP_CHECK_MSG(type_ == Type::kObject, "Json::contains on non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

const Json& Json::at(std::string_view key) const {
  SHLCP_CHECK_MSG(type_ == Type::kObject, "Json::at(key) on non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  SHLCP_CHECK_MSG(false, format("Json::at: missing key '%s'",
                                std::string(key).c_str()));
  return object_.front().second;  // unreachable
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  SHLCP_CHECK_MSG(type_ == Type::kObject, "Json::members on non-object");
  return object_;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan; degrade to null
      }
      break;
    }
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Nesting cap for parse. The parser, canonical_json, dump, and the
/// Json destructor all recurse once per container level, so untrusted
/// input (service frames arrive straight from the wire) must not be
/// able to choose the recursion depth: a few MiB of '[' would
/// otherwise overflow the stack. 256 is far beyond any document this
/// library produces.
constexpr int kMaxParseDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    SHLCP_CHECK_MSG(pos_ == text_.size(), "Json::parse: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    SHLCP_CHECK_MSG(pos_ < text_.size(), "Json::parse: unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    SHLCP_CHECK_MSG(next() == c,
                    format("Json::parse: expected '%c' at offset %zu", c, pos_ - 1));
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        SHLCP_CHECK_MSG(consume_literal("true"), "Json::parse: bad literal");
        return Json(true);
      case 'f':
        SHLCP_CHECK_MSG(consume_literal("false"), "Json::parse: bad literal");
        return Json(false);
      case 'n':
        SHLCP_CHECK_MSG(consume_literal("null"), "Json::parse: bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    enter_container();
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') {
        --depth_;
        return obj;
      }
      SHLCP_CHECK_MSG(c == ',', "Json::parse: expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    enter_container();
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') {
        --depth_;
        return arr;
      }
      SHLCP_CHECK_MSG(c == ',', "Json::parse: expected ',' or ']' in array");
    }
  }

  void enter_container() {
    ++depth_;
    SHLCP_CHECK_MSG(depth_ <= kMaxParseDepth,
                    format("Json::parse: nesting deeper than %d levels",
                           kMaxParseDepth));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          SHLCP_CHECK_MSG(pos_ + 4 <= text_.size(),
                          "Json::parse: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              SHLCP_CHECK_MSG(false, "Json::parse: bad \\u escape");
            }
          }
          // We only emit \u escapes for control characters; decode the
          // BMP code point as UTF-8 so round trips are lossless.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          SHLCP_CHECK_MSG(false, "Json::parse: bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    SHLCP_CHECK_MSG(!token.empty() && token != "-", "Json::parse: bad number");
    if (is_double) {
      return Json(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), nullptr, 10);
      SHLCP_CHECK_MSG(errno == 0, "Json::parse: integer out of range");
      return Json(static_cast<std::int64_t>(v));
    }
    const unsigned long long v = std::strtoull(token.c_str(), nullptr, 10);
    SHLCP_CHECK_MSG(errno == 0, "Json::parse: integer out of range");
    return Json(static_cast<std::uint64_t>(v));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace shlcp
