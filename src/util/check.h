// Precondition / invariant checking for the shlcp library.
//
// Following the C++ Core Guidelines (I.6, E.12) we express preconditions
// explicitly and fail loudly: a violated SHLCP_CHECK throws
// shlcp::CheckError with the failing expression, file, and line. The
// library is exact mathematics on small objects, so we keep checks on in
// all build types -- correctness dominates speed everywhere except the
// innermost enumeration loops, which use SHLCP_DCHECK (compiled out in
// NDEBUG builds).

#pragma once

#include <stdexcept>
#include <string>

namespace shlcp {

/// Error thrown when a SHLCP_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Builds the CheckError message and throws. Out-of-line so the macro
/// expansion stays small at every call site.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace shlcp

/// Always-on invariant check. `msg` may be any expression convertible to
/// std::string (use shlcp::format for interpolation).
#define SHLCP_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::shlcp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (false)

#define SHLCP_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::shlcp::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)

/// Debug-only check for hot loops.
#ifdef NDEBUG
#define SHLCP_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define SHLCP_DCHECK(expr) SHLCP_CHECK(expr)
#endif
