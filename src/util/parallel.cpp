#include "util/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/check.h"

namespace shlcp {

int resolve_num_threads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  if (const char* env = std::getenv("SHLCP_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

WorkerPool::WorkerPool(int num_threads) {
  SHLCP_CHECK_MSG(num_threads >= 1, "WorkerPool needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      ++active_claimers_;
    }
    run_chunks();
  }
}

void WorkerPool::run_chunks() {
  // Claim chunks until the counter runs past the end or the stop latch
  // trips (a sibling chunk threw, or the job's CancelToken fired). Job
  // state (body_, job_n_, ...) is stable for the whole claim loop: the
  // caller does not reset it until active_claimers_ drops to zero.
  for (;;) {
    if (stop_claims_.load(std::memory_order_relaxed) ||
        (job_cancel_ != nullptr && job_cancel_->stop_requested())) {
      break;
    }
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks_) {
      break;
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = c * job_chunk_;
    const std::size_t end = std::min(job_n_, begin + job_chunk_);
    bool completed = false;
    try {
      completed = (*body_)(c, begin, end);
    } catch (...) {
      // Fail fast: no new chunks after an exception; already-running
      // chunks finish, and the lowest-indexed exception is rethrown.
      stop_claims_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      if (error_ == nullptr || c < error_chunk_) {
        error_ = std::current_exception();
        error_chunk_ = c;
      }
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (completed) {
      std::lock_guard<std::mutex> lk(mu_);
      chunk_done_[c] = 1;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  --active_claimers_;
  if (active_claimers_ == 0) {
    done_cv_.notify_all();
  }
}

ParallelRunResult WorkerPool::run_job(std::size_t n, std::size_t chunk,
                                      const CancellableChunkBody& body,
                                      const ParallelRunControl& ctrl) {
  SHLCP_CHECK_MSG(chunk >= 1, "chunk size must be >= 1");
  ParallelRunResult result;
  if (n == 0) {
    return result;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    SHLCP_CHECK_MSG(body_ == nullptr,
                    "parallel_for_chunks is not reentrant");
    body_ = &body;
    job_cancel_ = ctrl.cancel;
    job_n_ = n;
    job_chunk_ = chunk;
    num_chunks_ = (n + chunk - 1) / chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    stop_claims_.store(false, std::memory_order_relaxed);
    chunk_done_.assign(num_chunks_, 0);
    error_ = nullptr;
    error_chunk_ = 0;
    ++generation_;
    ++active_claimers_;  // the caller claims too
  }
  result.num_chunks = num_chunks_;

  // Optional stall watchdog: if the progress counter does not move for
  // stall_timeout_ms, request a cooperative kStall stop so polling chunk
  // bodies unwind instead of the run blocking forever. (A body that
  // never reaches a safe point cannot be preempted -- the watchdog makes
  // hangs *diagnosable and escapable* for cooperative bodies, it is not
  // thread cancellation.)
  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool job_finished = false;
  if (ctrl.stall_timeout_ms > 0) {
    SHLCP_CHECK_MSG(ctrl.cancel != nullptr,
                    "stall watchdog requires a CancelToken");
    watchdog = std::thread([&] {
      const auto timeout = std::chrono::milliseconds(ctrl.stall_timeout_ms);
      const auto poll = std::max<std::chrono::milliseconds>(
          std::chrono::milliseconds(1), timeout / 8);
      std::uint64_t last = progress_.load(std::memory_order_relaxed);
      auto last_change = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lk(wd_mu);
      for (;;) {
        if (wd_cv.wait_for(lk, poll, [&] { return job_finished; })) {
          return;
        }
        const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
        const auto now = std::chrono::steady_clock::now();
        if (cur != last) {
          last = cur;
          last_change = now;
        } else if (now - last_change >= timeout) {
          ctrl.cancel->request_stop(StopReason::kStall);
          stop_claims_.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  work_cv_.notify_all();
  run_chunks();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_claimers_ == 0; });
    // All claimers are out, so chunk_done_ is final: the completed
    // prefix is deterministic given which chunks completed.
    std::size_t prefix = 0;
    while (prefix < num_chunks_ && chunk_done_[prefix] != 0) {
      ++prefix;
    }
    result.completed_prefix_chunks = prefix;
    body_ = nullptr;
    job_cancel_ = nullptr;
    error = error_;
    error_ = nullptr;
    // Park the claim state. A job that stopped early (cooperative
    // cancel) leaves next_chunk_ < num_chunks_ with stop_claims_ still
    // false; a worker that only now wakes for this generation would
    // march straight into the claim loop and call the dead job's body.
    // Both stores happen before this lock is released, so any such
    // late waker (whose predicate check re-acquires mu_) sees them and
    // claims nothing. The next job's setup resets both.
    stop_claims_.store(true, std::memory_order_relaxed);
    next_chunk_.store(num_chunks_, std::memory_order_relaxed);
  }
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lk(wd_mu);
      job_finished = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return result;
}

void WorkerPool::parallel_for_chunks(std::size_t n, std::size_t chunk,
                                     const ChunkBody& body) {
  const CancellableChunkBody wrapped =
      [&body](std::size_t c, std::size_t begin, std::size_t end) {
        body(c, begin, end);
        return true;
      };
  run_job(n, chunk, wrapped, ParallelRunControl{});
}

ParallelRunResult WorkerPool::run_cancellable(std::size_t n, std::size_t chunk,
                                              const CancellableChunkBody& body,
                                              const ParallelRunControl& ctrl) {
  return run_job(n, chunk, body, ctrl);
}

void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body) {
  WorkerPool pool(resolve_num_threads(num_threads));
  pool.parallel_for_chunks(n, chunk, body);
}

}  // namespace shlcp
