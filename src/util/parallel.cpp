#include "util/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/check.h"
#include "util/metrics.h"

namespace shlcp {

int resolve_num_threads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  if (const char* env = std::getenv("SHLCP_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ChunkPlan uniform_plan(std::size_t n, std::size_t chunk) {
  SHLCP_CHECK_MSG(chunk >= 1, "chunk size must be >= 1");
  ChunkPlan plan;
  plan.ranges.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    plan.ranges.emplace_back(begin, std::min(n, begin + chunk));
  }
  return plan;
}

ChunkPlan adaptive_plan(const std::vector<std::uint64_t>& costs, int threads,
                        std::size_t ranges_per_thread) {
  SHLCP_CHECK_MSG(threads >= 1, "adaptive_plan needs at least one thread");
  SHLCP_CHECK_MSG(ranges_per_thread >= 1,
                  "adaptive_plan needs ranges_per_thread >= 1");
  ChunkPlan plan;
  plan.adaptive = true;
  const std::size_t n = costs.size();
  if (n == 0) {
    return plan;
  }
  // Labeling-count costs can be astronomically large products; saturate
  // instead of wrapping so the target stays monotone in the inputs.
  const auto sat_add = [](std::uint64_t a, std::uint64_t b) {
    return a + b < a ? ~std::uint64_t{0} : a + b;
  };
  const auto item_cost = [&](std::size_t i) {
    return std::max<std::uint64_t>(1, costs[i]);
  };
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total = sat_add(total, item_cost(i));
  }
  const std::uint64_t divisor =
      static_cast<std::uint64_t>(threads) *
      static_cast<std::uint64_t>(ranges_per_thread);
  const std::uint64_t target = std::max<std::uint64_t>(1, total / divisor);
  std::size_t begin = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ci = item_cost(i);
    if (ci >= target) {
      // A dense item: close the pending cheap batch and give the item a
      // chunk of its own so it never pins a coarse chunk's tail.
      if (begin < i) {
        plan.ranges.emplace_back(begin, i);
      }
      plan.ranges.emplace_back(i, i + 1);
      begin = i + 1;
      acc = 0;
      continue;
    }
    acc = sat_add(acc, ci);
    if (acc >= target) {
      plan.ranges.emplace_back(begin, i + 1);
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < n) {
    plan.ranges.emplace_back(begin, n);
  }
  return plan;
}

WorkerPool::WorkerPool(int num_threads) {
  SHLCP_CHECK_MSG(num_threads >= 1, "WorkerPool needs at least one thread");
  queues_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Deque>());
  }
  threads_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    // The caller is pool thread 0; background workers are 1..t-1.
    threads_.emplace_back(
        [this, self = static_cast<std::size_t>(i + 1)] { worker_loop(self); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::worker_loop(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      ++active_claimers_;
    }
    run_chunks(self);
  }
}

std::size_t WorkerPool::claim_chunk(std::size_t self) {
  Deque& own = *queues_[self];
  {
    std::lock_guard<std::mutex> lk(own.mu);
    if (own.head < own.tail) {
      return own.head++;
    }
  }
  // Own deque drained: steal the back half of the most-loaded victim's
  // range. Ranges stay contiguous under steals (victim keeps its front,
  // thief takes the back), but contiguity is only a locality nicety --
  // correctness needs just "every plan index claimed exactly once".
  for (;;) {
    std::size_t victim = kNoChunk;
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i == self) {
        continue;
      }
      Deque& q = *queues_[i];
      std::lock_guard<std::mutex> lk(q.mu);
      const std::size_t rem = q.tail - q.head;
      if (rem > best) {
        best = rem;
        victim = i;
      }
    }
    if (victim == kNoChunk) {
      // Every deque is empty. Chunks still running elsewhere never spawn
      // new deque entries, so there is nothing left to claim.
      return kNoChunk;
    }
    Deque& v = *queues_[victim];
    // Thieves write both their own deque and the victim's; scoped_lock's
    // deadlock-avoiding acquisition covers the thief/thief races.
    std::scoped_lock lk(v.mu, own.mu);
    const std::size_t rem = v.tail - v.head;
    if (rem == 0) {
      continue;  // lost the race to another thief; rescan
    }
    const std::size_t take = rem - rem / 2;  // ceil(rem / 2), >= 1
    own.head = v.tail - take;
    own.tail = v.tail;
    v.tail -= take;
    steals_.fetch_add(1, std::memory_order_relaxed);
    return own.head++;
  }
}

void WorkerPool::run_chunks(std::size_t self) {
  // Claim chunks until the deques drain or the stop latch trips (a
  // sibling chunk threw, or the job's CancelToken fired). Job state
  // (body_, plan_, ...) is stable for the whole claim loop: the caller
  // does not reset it until active_claimers_ drops to zero.
  for (;;) {
    if (stop_claims_.load(std::memory_order_relaxed) ||
        (job_cancel_ != nullptr && job_cancel_->stop_requested())) {
      break;
    }
    const std::size_t c = claim_chunk(self);
    if (c == kNoChunk) {
      break;
    }
    claims_.fetch_add(1, std::memory_order_relaxed);
    if (c >= error_bound_.load(std::memory_order_acquire)) {
      // Fail fast: a lower-indexed chunk already threw, so a sequential
      // run would never have reached this chunk. Skip it (cheap) but
      // keep draining -- chunks *below* the error bound must still run
      // so the rethrown error is the sequential one.
      continue;
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    const auto [begin, end] = plan_->ranges[c];
    bool completed = false;
    try {
      completed = (*body_)(c, begin, end);
    } catch (...) {
      // Record the lowest-indexed exception and lower the claim bound;
      // all writers hold mu_, so error_bound_ only ever decreases.
      std::lock_guard<std::mutex> lk(mu_);
      if (error_ == nullptr || c < error_chunk_) {
        error_ = std::current_exception();
        error_chunk_ = c;
        error_bound_.store(c, std::memory_order_release);
      }
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (completed) {
      std::lock_guard<std::mutex> lk(mu_);
      chunk_done_[c] = 1;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  --active_claimers_;
  if (active_claimers_ == 0) {
    done_cv_.notify_all();
  }
}

ParallelRunResult WorkerPool::run_job(const ChunkPlan& plan,
                                      const CancellableChunkBody& body,
                                      const ParallelRunControl& ctrl) {
  ParallelRunResult result;
  result.num_chunks = plan.num_chunks();
  if (plan.num_chunks() == 0) {
    return result;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    SHLCP_CHECK_MSG(body_ == nullptr,
                    "parallel_for_chunks is not reentrant");
    body_ = &body;
    plan_ = &plan;
    job_cancel_ = ctrl.cancel;
    num_chunks_ = plan.num_chunks();
    claims_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    stop_claims_.store(false, std::memory_order_relaxed);
    chunk_done_.assign(num_chunks_, 0);
    error_ = nullptr;
    error_chunk_ = 0;
    error_bound_.store(kNoChunk, std::memory_order_relaxed);
    // Seed the deques: contiguous, evenly-counted shares of the plan.
    // The plan's ranges are already cost-balanced (adaptive) or uniform,
    // so an even count split is an even work split to first order; the
    // steal path corrects the rest at run time.
    const std::size_t nq = queues_.size();
    for (std::size_t i = 0; i < nq; ++i) {
      Deque& q = *queues_[i];
      std::lock_guard<std::mutex> qlk(q.mu);
      q.head = num_chunks_ * i / nq;
      q.tail = num_chunks_ * (i + 1) / nq;
    }
    ++generation_;
    ++active_claimers_;  // the caller claims too
  }

  // Optional stall watchdog: if the progress counter does not move for
  // stall_timeout_ms, request a cooperative kStall stop so polling chunk
  // bodies unwind instead of the run blocking forever. (A body that
  // never reaches a safe point cannot be preempted -- the watchdog makes
  // hangs *diagnosable and escapable* for cooperative bodies, it is not
  // thread cancellation.)
  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool job_finished = false;
  if (ctrl.stall_timeout_ms > 0) {
    SHLCP_CHECK_MSG(ctrl.cancel != nullptr,
                    "stall watchdog requires a CancelToken");
    watchdog = std::thread([&] {
      const auto timeout = std::chrono::milliseconds(ctrl.stall_timeout_ms);
      const auto poll = std::max<std::chrono::milliseconds>(
          std::chrono::milliseconds(1), timeout / 8);
      std::uint64_t last = progress_.load(std::memory_order_relaxed);
      auto last_change = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lk(wd_mu);
      for (;;) {
        if (wd_cv.wait_for(lk, poll, [&] { return job_finished; })) {
          return;
        }
        const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
        const auto now = std::chrono::steady_clock::now();
        if (cur != last) {
          last = cur;
          last_change = now;
        } else if (now - last_change >= timeout) {
          ctrl.cancel->request_stop(StopReason::kStall);
          stop_claims_.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  work_cv_.notify_all();
  run_chunks(/*self=*/0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_claimers_ == 0; });
    // All claimers are out, so chunk_done_ is final: the completed
    // prefix is deterministic given which chunks completed.
    std::size_t prefix = 0;
    while (prefix < num_chunks_ && chunk_done_[prefix] != 0) {
      ++prefix;
    }
    result.completed_prefix_chunks = prefix;
    result.chunks_claimed = claims_.load(std::memory_order_relaxed);
    result.steals = steals_.load(std::memory_order_relaxed);
    body_ = nullptr;
    plan_ = nullptr;
    job_cancel_ = nullptr;
    error = error_;
    error_ = nullptr;
    // Park the claim state. A job that stopped early (cooperative
    // cancel) leaves non-empty deques; a worker that only now wakes for
    // this generation would march straight into the claim loop and call
    // the dead job's body. The store happens before this lock is
    // released, so any such late waker (whose predicate check re-acquires
    // mu_) sees it at the top of the claim loop and claims nothing. The
    // next job's setup reseeds the deques.
    stop_claims_.store(true, std::memory_order_relaxed);
  }
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lk(wd_mu);
      job_finished = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  }
  // Scheduler diagnostics (timing-dependent; never part of the
  // deterministic build result, so publishing per run is safe).
  if (result.steals > 0) {
    metrics::counter("parallel.steals").add(result.steals);
  }
  if (plan.adaptive) {
    metrics::counter("parallel.chunks_adaptive").add(result.chunks_claimed);
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return result;
}

void WorkerPool::parallel_for_chunks(std::size_t n, std::size_t chunk,
                                     const ChunkBody& body) {
  const ChunkPlan plan = uniform_plan(n, chunk);
  const CancellableChunkBody wrapped =
      [&body](std::size_t c, std::size_t begin, std::size_t end) {
        body(c, begin, end);
        return true;
      };
  run_job(plan, wrapped, ParallelRunControl{});
}

ParallelRunResult WorkerPool::run_cancellable(std::size_t n, std::size_t chunk,
                                              const CancellableChunkBody& body,
                                              const ParallelRunControl& ctrl) {
  const ChunkPlan plan = uniform_plan(n, chunk);
  return run_job(plan, body, ctrl);
}

ParallelRunResult WorkerPool::run_plan(const ChunkPlan& plan,
                                       const CancellableChunkBody& body,
                                       const ParallelRunControl& ctrl) {
  if (!plan.ranges.empty()) {
    // Plans must be contiguous and ascending from 0 (the deterministic
    // merge contract); catch malformed hand-built plans early.
    SHLCP_CHECK_MSG(plan.ranges.front().first == 0,
                    "ChunkPlan must start at item 0");
    for (std::size_t i = 0; i < plan.ranges.size(); ++i) {
      SHLCP_CHECK_MSG(plan.ranges[i].first < plan.ranges[i].second,
                      "ChunkPlan ranges must be non-empty");
      if (i > 0) {
        SHLCP_CHECK_MSG(plan.ranges[i].first == plan.ranges[i - 1].second,
                        "ChunkPlan ranges must be contiguous");
      }
    }
  }
  return run_job(plan, body, ctrl);
}

void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body) {
  WorkerPool pool(resolve_num_threads(num_threads));
  pool.parallel_for_chunks(n, chunk, body);
}

}  // namespace shlcp
