#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace shlcp {

int resolve_num_threads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  if (const char* env = std::getenv("SHLCP_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

WorkerPool::WorkerPool(int num_threads) {
  SHLCP_CHECK_MSG(num_threads >= 1, "WorkerPool needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      ++active_claimers_;
    }
    run_chunks();
  }
}

void WorkerPool::run_chunks() {
  // Claim chunks until the counter runs past the end. Job state (body_,
  // job_n_, ...) is stable for the whole claim loop: the caller does not
  // reset it until active_claimers_ drops to zero.
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks_) {
      break;
    }
    const std::size_t begin = c * job_chunk_;
    const std::size_t end = std::min(job_n_, begin + job_chunk_);
    try {
      (*body_)(c, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (error_ == nullptr || c < error_chunk_) {
        error_ = std::current_exception();
        error_chunk_ = c;
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++chunks_done_;
    if (chunks_done_ == num_chunks_) {
      done_cv_.notify_all();
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  --active_claimers_;
  if (active_claimers_ == 0) {
    done_cv_.notify_all();
  }
}

void WorkerPool::parallel_for_chunks(std::size_t n, std::size_t chunk,
                                     const ChunkBody& body) {
  SHLCP_CHECK_MSG(chunk >= 1, "chunk size must be >= 1");
  if (n == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    SHLCP_CHECK_MSG(body_ == nullptr,
                    "parallel_for_chunks is not reentrant");
    body_ = &body;
    job_n_ = n;
    job_chunk_ = chunk;
    num_chunks_ = (n + chunk - 1) / chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    chunks_done_ = 0;
    error_ = nullptr;
    error_chunk_ = 0;
    ++generation_;
    ++active_claimers_;  // the caller claims too
  }
  work_cv_.notify_all();
  run_chunks();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return chunks_done_ == num_chunks_ && active_claimers_ == 0;
    });
    body_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void parallel_for_chunks(int num_threads, std::size_t n, std::size_t chunk,
                         const ChunkBody& body) {
  WorkerPool pool(resolve_num_threads(num_threads));
  pool.parallel_for_chunks(n, chunk, body);
}

}  // namespace shlcp
