#include "util/check.h"

#include <sstream>

namespace shlcp::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "SHLCP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " -- " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace shlcp::detail
