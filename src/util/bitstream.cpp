#include "util/bitstream.h"

namespace shlcp {

void BitWriter::write(std::uint32_t value, int width) {
  SHLCP_CHECK(0 <= width && width <= 32);
  SHLCP_CHECK_MSG(width == 32 || value < (1ULL << width),
                  "value does not fit the declared width");
  for (int i = width - 1; i >= 0; --i) {
    const int bit = static_cast<int>((value >> i) & 1u);
    const int byte_index = size_bits_ / 8;
    const int bit_index = 7 - (size_bits_ % 8);
    if (byte_index == static_cast<int>(bytes_.size())) {
      bytes_.push_back(0);
    }
    if (bit != 0) {
      bytes_[static_cast<std::size_t>(byte_index)] |=
          static_cast<std::uint8_t>(1u << bit_index);
    }
    ++size_bits_;
  }
}

std::uint32_t BitReader::read(int width) {
  SHLCP_CHECK(0 <= width && width <= 32);
  SHLCP_CHECK_MSG(cursor_ + width <= size_bits_, "bitstream exhausted");
  std::uint32_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int byte_index = cursor_ / 8;
    const int bit_index = 7 - (cursor_ % 8);
    const int bit =
        ((*bytes_)[static_cast<std::size_t>(byte_index)] >> bit_index) & 1;
    value = (value << 1) | static_cast<std::uint32_t>(bit);
    ++cursor_;
  }
  return value;
}

int bit_width_for(int bound) {
  SHLCP_CHECK(bound >= 0);
  int width = 1;
  while ((1LL << width) <= bound) {
    ++width;
  }
  return width;
}

}  // namespace shlcp
