// Process-wide metrics registry: counters, gauges, and fixed-layout
// histograms.
//
// Every subsystem that wants to report a quantity registers it here
// under a dotted name ("nbhd.build.views", "sim.messages.delivered");
// the registry owns the storage for the lifetime of the process, so
// call sites can cache a reference in a function-local static and pay
// one atomic add per event. Counters are striped across cache lines so
// the parallel enumeration workers never contend on a single word;
// values are relaxed-ordering because metrics are monotone tallies, not
// synchronization.
//
// Snapshots are taken under the registration mutex and rendered either
// as JSON (for bench/report.h's BENCH_*.json files) or as an indented
// tree grouped by the dotted-name hierarchy (for examples/metrics_dump).
//
// Determinism contract: instrumented library code must bump counters so
// that the sequential and parallel V(D, n) builds publish identical
// values -- see the NbhdStats publication note in nbhd/nbhd_graph.h and
// the parity test in tests/metrics_test.cpp.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace shlcp::metrics {

/// Number of independent stripes per counter. Each stripe lives on its
/// own cache line; threads hash to a stripe by a process-unique
/// thread index, so up to this many threads increment without sharing.
inline constexpr unsigned kCounterStripes = 16;

namespace detail {
/// Small dense per-thread index used to pick a counter stripe.
unsigned thread_stripe_index() noexcept;
}  // namespace detail

/// Monotone event tally. add() is wait-free (one relaxed fetch_add on
/// the caller's stripe); value() sums the stripes and is intended for
/// snapshot time, not hot paths.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) noexcept {
    stripes_[detail::thread_stripe_index()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Stripe& s : stripes_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kCounterStripes> stripes_;
};

/// Last-writer-wins signed level (thread counts, pool sizes, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed bucket layout shared by histograms: `bounds[i]` is the
/// inclusive upper edge of bucket i; one implicit overflow bucket
/// catches everything above the last bound.
struct HistogramLayout {
  std::vector<std::uint64_t> bounds;

  /// Exponential nanosecond buckets, 1us .. ~67s (1us * 4^k).
  static const HistogramLayout& duration_ns();
  /// Exponential byte buckets, 64 B .. 64 MiB.
  static const HistogramLayout& bytes();
  /// Exponential count buckets, 1 .. ~1e9.
  static const HistogramLayout& count();
};

/// Concurrent fixed-bucket histogram. record() does one binary search
/// over the (immutable) bounds plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(const HistogramLayout& layout);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept;

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Number of buckets including the overflow bucket.
  std::size_t num_buckets() const { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every registered metric.
struct Snapshot {
  struct Hist {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Hist> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"bounds": [...], "counts": [...], "count": n, "sum": s}}}.
  Json to_json() const;

  /// Indented tree grouped by dotted-name segments, e.g.
  ///   nbhd
  ///     build
  ///       views                 35
  std::string pretty_tree() const;
};

/// Name -> metric map. Registration takes a mutex; returned references
/// stay valid for the process lifetime, so hot paths should register
/// once (function-local static reference) and then only touch atomics.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// The layout is fixed at first registration; re-registering the same
  /// name with a different layout is a CheckError.
  Histogram& histogram(
      std::string_view name,
      const HistogramLayout& layout = HistogramLayout::duration_ns());

  Snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered). Tests and
  /// the metrics_dump CLI use this to isolate one experiment's tallies.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthands for Registry::global().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(
    std::string_view name,
    const HistogramLayout& layout = HistogramLayout::duration_ns());
Snapshot snapshot();
void reset_values();

/// Records the elapsed steady-clock nanoseconds into a histogram when
/// it goes out of scope.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram& h)
      : hist_(h), start_(std::chrono::steady_clock::now()) {}
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;
  ~ScopedTimerNs() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace shlcp::metrics
