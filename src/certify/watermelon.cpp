#include "certify/watermelon.h"

#include <algorithm>
#include <map>

#include "graph/algorithms.h"
#include "graph/properties.h"

namespace shlcp {

namespace {

int ceil_log2(int x) {
  int bits = 1;
  while ((1 << bits) < x) {
    ++bits;
  }
  return bits;
}

struct Parsed {
  int type = -1;
  Ident id1 = -1;
  Ident id2 = -1;
  int num = -1;
  Port far[2] = {0, 0};
  int color[2] = {-1, -1};
};

std::optional<Parsed> parse(const Certificate& c) {
  const auto& f = c.fields;
  if (f.size() < 3 || (f[0] != 1 && f[0] != 2)) {
    return std::nullopt;
  }
  Parsed p;
  p.type = f[0];
  p.id1 = f[1];
  p.id2 = f[2];
  if (p.id1 < 1 || p.id2 <= p.id1) {
    return std::nullopt;  // id1 < id2 in increasing order
  }
  if (p.type == 1) {
    return f.size() == 3 ? std::optional<Parsed>(p) : std::nullopt;
  }
  if (f.size() != 8) {
    return std::nullopt;
  }
  p.num = f[3];
  p.far[0] = f[4];
  p.color[0] = f[5];
  p.far[1] = f[6];
  p.color[1] = f[7];
  if (p.num < 1 || p.far[0] < 1 || p.far[1] < 1) {
    return std::nullopt;
  }
  auto color_ok = [](int x) { return x == 0 || x == 1; };
  if (!color_ok(p.color[0]) || !color_ok(p.color[1]) ||
      p.color[0] == p.color[1]) {
    return std::nullopt;  // the two incident edges get distinct colors
  }
  return p;
}

}  // namespace

Certificate make_watermelon_type1(Ident id1, Ident id2, Ident id_bound) {
  SHLCP_CHECK(id1 < id2);
  return Certificate{{1, id1, id2}, 1 + 2 * ceil_log2(id_bound + 1)};
}

Certificate make_watermelon_type2(Ident id1, Ident id2, int num, Port p1,
                                  int c1, Port p2, int c2, Ident id_bound,
                                  int port_bound) {
  SHLCP_CHECK(id1 < id2);
  return Certificate{{2, id1, id2, num, p1, c1, p2, c2},
                     1 + 3 * ceil_log2(id_bound + 1) +
                         2 * ceil_log2(port_bound + 1) + 2};
}

bool WatermelonDecoder::accept(const View& view) const {
  const auto own = parse(view.center_label());
  if (!own.has_value()) {
    return false;
  }
  const Node c = view.center;
  const auto nb = view.g.neighbors(c);
  std::vector<Parsed> theirs;
  theirs.reserve(nb.size());
  for (const Node w : nb) {
    auto p = parse(view.labels[static_cast<std::size_t>(w)]);
    if (!p.has_value()) {
      return false;
    }
    theirs.push_back(std::move(*p));
  }

  // Condition 1: all neighbors agree on the endpoint identifiers.
  for (const Parsed& t : theirs) {
    if (t.id1 != own->id1 || t.id2 != own->id2) {
      return false;
    }
  }

  if (own->type == 1) {
    // Condition 2(a): we are one of the claimed endpoints.
    if (view.center_id() != own->id1 && view.center_id() != own->id2) {
      return false;
    }
    std::vector<int> nums;
    std::vector<int> star_colors;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const Node w = nb[i];
      const Parsed& t = theirs[i];
      // 2(b): all neighbors are path nodes whose entry for the shared edge
      // points back at us.
      if (t.type != 2) {
        return false;
      }
      const Port j = view.port(w, c);  // neighbor's own port on the edge
      if (j != 1 && j != 2) {
        return false;  // a type-2 certificate only describes ports 1 and 2
      }
      if (t.far[static_cast<std::size_t>(j - 1)] != view.port(c, w)) {
        return false;
      }
      nums.push_back(t.num);
      // 2(d): the colors of our incident edges, as claimed by the
      // neighbors' entries for those edges.
      star_colors.push_back(t.color[static_cast<std::size_t>(j - 1)]);
    }
    // 2(c): path numbers pairwise distinct.
    std::sort(nums.begin(), nums.end());
    if (std::adjacent_find(nums.begin(), nums.end()) != nums.end()) {
      return false;
    }
    // 2(d): the endpoint star is monochromatic.
    for (const int col : star_colors) {
      if (col != star_colors[0]) {
        return false;
      }
    }
    return true;
  }

  // Type 2. Condition 3(a): exactly two neighbors, reached via our own
  // ports 1 and 2.
  if (view.center_degree() != 2) {
    return false;
  }
  for (Port i = 1; i <= 2; ++i) {
    const Node w = view.neighbor_at(c, i);
    if (w == -1) {
      return false;
    }
    const Parsed& t = theirs[static_cast<std::size_t>(
        std::lower_bound(nb.begin(), nb.end(), w) - nb.begin())];
    const Port actual_far = view.port(w, c);
    if (variant_ == WatermelonVariant::kStandard &&
        own->far[static_cast<std::size_t>(i - 1)] != actual_far) {
      // Far-port claims must match the visible reality; see file comment
      // in watermelon.h.
      return false;
    }
    if (t.type == 1) {
      // 3(b): the endpoint's actual identifier is one of the claimed two.
      const Ident wid = view.ids[static_cast<std::size_t>(w)];
      if (wid != own->id1 && wid != own->id2) {
        return false;
      }
      continue;
    }
    // 3(c): same path number; reciprocal port and color bookkeeping.
    if (t.num != own->num) {
      return false;
    }
    const Port j = own->far[static_cast<std::size_t>(i - 1)];
    if (j != 1 && j != 2) {
      return false;
    }
    if (t.far[static_cast<std::size_t>(j - 1)] != i ||
        t.color[static_cast<std::size_t>(j - 1)] !=
            own->color[static_cast<std::size_t>(i - 1)]) {
      return false;
    }
  }
  return true;
}

std::optional<Labeling> WatermelonLcp::prove(const Graph& g,
                                             const PortAssignment& ports,
                                             const IdAssignment& ids) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  const auto dec = watermelon_decomposition(g);
  SHLCP_CHECK(dec.has_value());
  const Ident e1 = ids.id_of(dec->v1);
  const Ident e2 = ids.id_of(dec->v2);
  const Ident id1 = std::min(e1, e2);
  const Ident id2 = std::max(e1, e2);
  const Ident bound = ids.bound();
  const int port_bound = g.max_degree();

  // Color every path's edges alternately starting with 0 at v1.
  std::map<Edge, int> edge_color;
  for (const auto& path : dec->paths) {
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      edge_color[make_edge(path[j], path[j + 1])] = static_cast<int>(j % 2);
    }
  }

  Labeling labels(g.num_nodes());
  labels.at(dec->v1) = make_watermelon_type1(id1, id2, bound);
  labels.at(dec->v2) = make_watermelon_type1(id1, id2, bound);
  for (std::size_t path_idx = 0; path_idx < dec->paths.size(); ++path_idx) {
    const auto& path = dec->paths[path_idx];
    for (std::size_t j = 1; j + 1 < path.size(); ++j) {
      const Node u = path[j];
      const Node w1 = ports.neighbor_at(g, u, 1);
      const Node w2 = ports.neighbor_at(g, u, 2);
      labels.at(u) = make_watermelon_type2(
          id1, id2, static_cast<int>(path_idx) + 1, ports.port(g, w1, u),
          edge_color.at(make_edge(u, w1)), ports.port(g, w2, u),
          edge_color.at(make_edge(u, w2)), bound, port_bound);
    }
  }
  return labels;
}

bool WatermelonLcp::in_promise(const Graph& g) const {
  return g.num_nodes() >= 3 && is_watermelon(g) && is_bipartite(g);
}

std::vector<Certificate> WatermelonLcp::certificate_space(
    const Graph& g, const IdAssignment& ids, Node /*v*/) const {
  std::vector<Certificate> space;
  const Ident bound = ids.bound();
  const int port_bound = g.max_degree();
  const int port_cap = std::min(port_bound, 4);

  // All sorted id pairs over identifiers present in the graph.
  std::vector<Ident> present;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    present.push_back(ids.id_of(u));
  }
  std::sort(present.begin(), present.end());
  for (std::size_t a = 0; a < present.size(); ++a) {
    for (std::size_t b = a + 1; b < present.size(); ++b) {
      const Ident id1 = present[a];
      const Ident id2 = present[b];
      space.push_back(make_watermelon_type1(id1, id2, bound));
      for (int num = 1; num <= max_paths_in_space_; ++num) {
        for (Port p1 = 1; p1 <= port_cap; ++p1) {
          for (Port p2 = 1; p2 <= port_cap; ++p2) {
            for (int c1 = 0; c1 <= 1; ++c1) {
              space.push_back(make_watermelon_type2(id1, id2, num, p1, c1, p2,
                                                    1 - c1, bound, port_bound));
            }
          }
        }
      }
    }
  }
  return space;
}

}  // namespace shlcp
