#include "certify/union_lcp.h"

#include "util/format.h"

namespace shlcp {

namespace {

int ceil_log2(int x) {
  int bits = 1;
  while ((1 << bits) < x) {
    ++bits;
  }
  return bits;
}

/// Strips the tag from every certificate in `view`; nullopt if any
/// certificate is malformed or carries a different tag than `tag`.
std::optional<View> strip_view(const View& view, int tag, int num_parts) {
  View stripped = view;
  for (auto& cert : stripped.labels) {
    const auto split = untag_certificate(cert, num_parts);
    if (!split.has_value() || split->first != tag) {
      return std::nullopt;
    }
    cert = split->second;
  }
  return stripped;
}

}  // namespace

Certificate tag_certificate(int tag, const Certificate& inner, int num_parts) {
  SHLCP_CHECK(0 <= tag && tag < num_parts);
  Certificate out;
  out.fields.reserve(inner.fields.size() + 1);
  out.fields.push_back(tag);
  out.fields.insert(out.fields.end(), inner.fields.begin(),
                    inner.fields.end());
  out.bits = inner.bits + ceil_log2(num_parts);
  return out;
}

std::optional<std::pair<int, Certificate>> untag_certificate(
    const Certificate& c, int num_parts) {
  if (c.fields.empty() || c.fields[0] < 0 || c.fields[0] >= num_parts) {
    return std::nullopt;
  }
  Certificate inner;
  inner.fields.assign(c.fields.begin() + 1, c.fields.end());
  inner.bits = c.bits - ceil_log2(num_parts);
  return std::make_pair(c.fields[0], inner);
}

UnionDecoder::UnionDecoder(std::vector<const Lcp*> parts)
    : parts_(std::move(parts)) {
  SHLCP_CHECK(!parts_.empty());
  radius_ = parts_[0]->decoder().radius();
  anonymous_ = true;
  for (const Lcp* part : parts_) {
    SHLCP_CHECK_MSG(part->decoder().radius() == radius_,
                    "union requires equal radii");
    anonymous_ = anonymous_ && part->decoder().anonymous();
  }
}

std::string UnionDecoder::name() const {
  std::string out = "union(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += parts_[i]->decoder().name();
  }
  return out + ")";
}

bool UnionDecoder::accept(const View& view) const {
  const int num_parts = static_cast<int>(parts_.size());
  const auto own =
      untag_certificate(view.center_label(), num_parts);
  if (!own.has_value()) {
    return false;
  }
  const int tag = own->first;
  const auto stripped = strip_view(view, tag, num_parts);
  if (!stripped.has_value()) {
    return false;  // some visible certificate carries a different tag
  }
  return parts_[static_cast<std::size_t>(tag)]->decoder().accept(*stripped);
}

UnionLcp::UnionLcp(std::vector<const Lcp*> parts)
    : parts_(parts), decoder_(std::move(parts)) {}

std::optional<Labeling> UnionLcp::prove(const Graph& g,
                                        const PortAssignment& ports,
                                        const IdAssignment& ids) const {
  const int num_parts = static_cast<int>(parts_.size());
  for (int tag = 0; tag < num_parts; ++tag) {
    const Lcp* part = parts_[static_cast<std::size_t>(tag)];
    if (!part->in_promise(g)) {
      continue;
    }
    auto inner = part->prove(g, ports, ids);
    if (!inner.has_value()) {
      continue;
    }
    Labeling tagged(g.num_nodes());
    for (Node v = 0; v < g.num_nodes(); ++v) {
      tagged.at(v) = tag_certificate(tag, inner->at(v), num_parts);
    }
    return tagged;
  }
  return std::nullopt;
}

bool UnionLcp::in_promise(const Graph& g) const {
  for (const Lcp* part : parts_) {
    if (part->in_promise(g)) {
      return true;
    }
  }
  return false;
}

std::vector<Certificate> UnionLcp::certificate_space(
    const Graph& g, const IdAssignment& ids, Node v) const {
  const int num_parts = static_cast<int>(parts_.size());
  std::vector<Certificate> space;
  for (int tag = 0; tag < num_parts; ++tag) {
    for (const Certificate& inner :
         parts_[static_cast<std::size_t>(tag)]->certificate_space(g, ids, v)) {
      space.push_back(tag_certificate(tag, inner, num_parts));
    }
  }
  return space;
}

std::string UnionLcp::name() const { return decoder_.name(); }

}  // namespace shlcp
