#include "certify/spanning_bfs.h"

#include "graph/algorithms.h"

namespace shlcp {

namespace {

int ceil_log2(int x) {
  int bits = 1;
  while ((1 << bits) < x) {
    ++bits;
  }
  return bits;
}

struct Parsed {
  Ident root = -1;
  int dist = -1;
};

std::optional<Parsed> parse(const Certificate& c) {
  if (c.fields.size() != 2 || c.fields[0] < 1 || c.fields[1] < 0) {
    return std::nullopt;
  }
  return Parsed{c.fields[0], c.fields[1]};
}

}  // namespace

Certificate make_spanning_bfs_certificate(Ident root_id, int dist,
                                          Ident id_bound, int dist_bound) {
  return Certificate{{root_id, dist},
                     ceil_log2(id_bound + 1) + ceil_log2(dist_bound + 1)};
}

bool SpanningBfsDecoder::accept(const View& view) const {
  const auto own = parse(view.center_label());
  if (!own.has_value()) {
    return false;
  }
  const auto nb = view.g.neighbors(view.center);
  bool has_parent = false;
  for (const Node w : nb) {
    const auto t = parse(view.labels[static_cast<std::size_t>(w)]);
    if (!t.has_value() || t->root != own->root) {
      return false;
    }
    const int delta = t->dist - own->dist;
    if (delta != 1 && delta != -1) {
      return false;
    }
    has_parent = has_parent || (delta == -1);
  }
  if (own->dist == 0) {
    // The root: its actual identifier must match the claim. (Neighbors
    // necessarily carry dist 1 by the +-1 rule above.)
    return own->root == view.center_id();
  }
  return has_parent;
}

std::optional<Labeling> SpanningBfsLcp::prove(const Graph& g,
                                              const PortAssignment& /*ports*/,
                                              const IdAssignment& ids) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  const Node root = 0;
  const auto dist = bfs_distances(g, root);
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    labels.at(v) = make_spanning_bfs_certificate(
        ids.id_of(root), dist[static_cast<std::size_t>(v)], ids.bound(),
        g.num_nodes());
  }
  return labels;
}

bool SpanningBfsLcp::in_promise(const Graph& g) const {
  return g.num_nodes() >= 1 && is_connected(g) && is_bipartite(g);
}

std::vector<Certificate> SpanningBfsLcp::certificate_space(
    const Graph& g, const IdAssignment& ids, Node /*v*/) const {
  std::vector<Certificate> space;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    for (int d = 0; d < g.num_nodes(); ++d) {
      space.push_back(make_spanning_bfs_certificate(ids.id_of(u), d,
                                                    ids.bound(),
                                                    g.num_nodes()));
    }
  }
  return space;
}

}  // namespace shlcp
