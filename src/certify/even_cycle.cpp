#include "certify/even_cycle.h"

#include "graph/algorithms.h"
#include "graph/properties.h"

namespace shlcp {

namespace {

/// Parsed form of a well-formed even-cycle certificate: entry[p-1] is the
/// (far port, color) claimed for the edge at own port p.
struct ParsedCert {
  Port far[2] = {0, 0};
  int color[2] = {-1, -1};
};

std::optional<ParsedCert> parse(const Certificate& c) {
  if (c.fields.size() != 6) {
    return std::nullopt;
  }
  const auto& f = c.fields;
  if (f[0] != 1 || f[3] != 2) {
    return std::nullopt;  // canonical entry order: own ports 1 then 2
  }
  auto port_ok = [](int p) { return p == 1 || p == 2; };
  auto color_ok = [](int c2) { return c2 == 0 || c2 == 1; };
  if (!port_ok(f[1]) || !color_ok(f[2]) || !port_ok(f[4]) || !color_ok(f[5])) {
    return std::nullopt;
  }
  ParsedCert out;
  out.far[0] = f[1];
  out.color[0] = f[2];
  out.far[1] = f[4];
  out.color[1] = f[5];
  return out;
}

}  // namespace

Certificate make_even_cycle_certificate(Port far_a, int col_a, Port far_b,
                                        int col_b) {
  SHLCP_CHECK((far_a == 1 || far_a == 2) && (far_b == 1 || far_b == 2));
  SHLCP_CHECK((col_a == 0 || col_a == 1) && (col_b == 0 || col_b == 1));
  return Certificate{{1, far_a, col_a, 2, far_b, col_b}, 6};
}

bool EvenCycleDecoder::accept(const View& view) const {
  const auto own = parse(view.center_label());
  if (!own.has_value()) {
    return false;
  }
  if (own->color[0] == own->color[1]) {
    return false;  // the two incident edges must get distinct colors
  }
  if (view.center_degree() != 2) {
    return false;
  }
  for (const Node w : view.g.neighbors(view.center)) {
    const Port p = view.port(view.center, w);  // own port on the edge
    const Port q = view.port(w, view.center);  // far port on the edge
    if (p < 1 || p > 2 || q < 1 || q > 2) {
      return false;
    }
    // Own entry for this edge must name the actual far port.
    if (own->far[static_cast<std::size_t>(p - 1)] != q) {
      return false;
    }
    // The neighbor's certificate must describe the shared edge identically
    // (entry indexed by the neighbor's own port q).
    const auto theirs = parse(view.labels[static_cast<std::size_t>(w)]);
    if (!theirs.has_value()) {
      return false;
    }
    if (theirs->far[static_cast<std::size_t>(q - 1)] != p ||
        theirs->color[static_cast<std::size_t>(q - 1)] !=
            own->color[static_cast<std::size_t>(p - 1)]) {
      return false;
    }
  }
  return true;
}

std::optional<Labeling> EvenCycleLcp::prove(const Graph& g,
                                            const PortAssignment& ports,
                                            const IdAssignment& /*ids*/) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  // Walk the cycle from node 0, 2-edge-coloring alternately. Even length
  // makes the coloring close up properly.
  const int n = g.num_nodes();
  std::vector<int> edge_color(static_cast<std::size_t>(n), -1);
  // edge_color[i] is the color of the edge (walk[i], walk[i+1]).
  std::vector<Node> walk{0};
  Node prev = -1;
  Node cur = 0;
  for (int i = 0; i < n; ++i) {
    const auto nb = g.neighbors(cur);
    const Node next = (nb[0] == prev) ? nb[1] : nb[0];
    edge_color[static_cast<std::size_t>(i)] = i % 2;
    walk.push_back(next);
    prev = cur;
    cur = next;
  }
  SHLCP_CHECK(walk.back() == 0);

  // Color lookup per undirected edge.
  auto color_of_edge = [&](Node a, Node b) {
    for (int i = 0; i < n; ++i) {
      const Node x = walk[static_cast<std::size_t>(i)];
      const Node y = walk[static_cast<std::size_t>(i + 1)];
      if ((x == a && y == b) || (x == b && y == a)) {
        return edge_color[static_cast<std::size_t>(i)];
      }
    }
    SHLCP_CHECK_MSG(false, "edge not on the cycle walk");
    return -1;
  };

  Labeling labels(n);
  for (Node v = 0; v < n; ++v) {
    const Node w1 = ports.neighbor_at(g, v, 1);
    const Node w2 = ports.neighbor_at(g, v, 2);
    labels.at(v) = make_even_cycle_certificate(
        ports.port(g, w1, v), color_of_edge(v, w1), ports.port(g, w2, v),
        color_of_edge(v, w2));
  }
  return labels;
}

bool EvenCycleLcp::in_promise(const Graph& g) const { return is_even_cycle(g); }

std::vector<Certificate> EvenCycleLcp::certificate_space(
    const Graph& /*g*/, const IdAssignment& /*ids*/, Node /*v*/) const {
  std::vector<Certificate> space;
  for (Port fa = 1; fa <= 2; ++fa) {
    for (int ca = 0; ca <= 1; ++ca) {
      for (Port fb = 1; fb <= 2; ++fb) {
        for (int cb = 0; cb <= 1; ++cb) {
          space.push_back(make_even_cycle_certificate(fa, ca, fb, cb));
        }
      }
    }
  }
  return space;
}

}  // namespace shlcp
