// The watermelon strong and hiding LCP (Theorem 1.4 of the paper).
//
// Promise class: bipartite watermelon graphs -- two endpoints v1, v2
// joined by internally disjoint paths of length >= 2 (bipartite iff all
// path lengths share one parity). Certificates (Section 7.2):
//
//   type 1 (endpoint):   [1, id1, id2]
//   type 2 (path node):  [2, id1, id2, num, p1, c1, p2, c2]
//
// id1 < id2 are the identifiers of the two endpoints; num is the node's
// path number; entry i in {1, 2} describes the edge at the node's own
// port i: p_i is the far end's port on that edge and c_i its color in a
// 2-edge-coloring of the path, with c1 != c2. O(log n) bits total.
//
// The decoder follows the paper's conditions 1-3 plus one check the brief
// announcement leaves implicit but its strong-soundness proof relies on:
// a type-2 node also verifies each claimed far port p_i against the
// *actual* port of the neighbor on the shared edge (visible in one
// round). Without it, "agreeing on the color of the shared edge" can be
// routed to the wrong certificate entry and an all-type-2 triangle with
// identical certificates is unanimously accepted (demonstrated in
// tests/certify_watermelon_test.cpp via WatermelonVariant::kNoPortCheck).
//
// Strong soundness: in an accepting component the two type-1 nodes are
// pinned to the two identifiers id1, id2 (injectivity allows at most one
// node per identifier), path numbers separate the paths at the endpoints,
// and the monochromaticity of the endpoint stars makes every cycle's two
// path segments equal in parity. Hiding: the 8-path with two identifier
// orders from the paper's proof yields an odd cycle in V(D, 8)
// (nbhd/witness.h replays it).

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// kStandard applies the far-port/actual-port cross-check; kNoPortCheck is
/// the literal reading kept as a counterexample artifact (not strongly
/// sound).
enum class WatermelonVariant {
  kStandard,
  kNoPortCheck,
};

/// Certificate builders. Bit sizes: type 1 is 1 + 2 ceil(log N); type 2
/// adds the path number (ceil(log n) bits budgeted as ceil(log N)), two
/// far ports (ceil(log Delta) bits each, budgeted from `port_bound`) and
/// two colors.
Certificate make_watermelon_type1(Ident id1, Ident id2, Ident id_bound);
Certificate make_watermelon_type2(Ident id1, Ident id2, int num, Port p1,
                                  int c1, Port p2, int c2, Ident id_bound,
                                  int port_bound);

/// Decoder of Theorem 1.4: identifier-using, one round.
class WatermelonDecoder final : public Decoder {
 public:
  explicit WatermelonDecoder(WatermelonVariant variant) : variant_(variant) {}

  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return false; }
  [[nodiscard]] std::string name() const override {
    return variant_ == WatermelonVariant::kStandard ? "watermelon"
                                                    : "watermelon-no-port-check";
  }
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  WatermelonVariant variant_;
};

/// The full LCP bundle for Theorem 1.4.
class WatermelonLcp final : public Lcp {
 public:
  /// `max_paths_in_space` bounds path numbers in the adversarial
  /// certificate space (prover/decoder unaffected).
  explicit WatermelonLcp(
      WatermelonVariant variant = WatermelonVariant::kStandard,
      int max_paths_in_space = 2)
      : decoder_(variant),
        variant_(variant),
        max_paths_in_space_(max_paths_in_space) {}

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// 2-edge-colors every endpoint-to-endpoint path, alternating from v1.
  /// Declines graphs that are not bipartite watermelons.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// Adversarial space: endpoint-id pairs over identifiers present in the
  /// graph, path numbers up to `max_paths_in_space`, far ports in
  /// {1, 2}, and both color orders. Exact relative to those bounds.
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  WatermelonDecoder decoder_;
  WatermelonVariant variant_;
  int max_paths_in_space_;
};

}  // namespace shlcp
