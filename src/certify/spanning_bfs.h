// The classical distance-labeling proof of bipartiteness -- the scheme
// the paper's introduction refers to when it says "the only way of
// certifying bipartiteness that is known is to reveal a 2-coloring".
//
// Certificates: [root_id, dist], where dist is the node's BFS distance
// from a prover-chosen root. The 1-round decoder checks:
//   - everyone agrees on root_id;
//   - the node with dist = 0 IS the root (actual identifier matches) and
//     all its neighbors have dist = 1;
//   - every node with dist = d > 0 has some neighbor with dist = d - 1
//     and only neighbors with dist in {d - 1, d + 1}.
//
// The +-1 rule forces dist parities to alternate across every edge of the
// accepting set, so the scheme is STRONG (the accepting set is 2-colored
// by dist mod 2) -- and for exactly the same reason it is maximally
// revealing: dist mod 2 IS the coloring, every node outputs it locally,
// and V(D, n) is always 2-colorable. This is the contrast class for the
// paper's hiding constructions (experiment E12/E15) and the concrete
// motivation for the whole paper: to certify 2-colorability without
// shipping this certificate.
//
// Certificates take O(log n) bits; the promise class is connected
// bipartite graphs (distance certificates need connectivity to pin every
// node to the root's component).

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// Builds a spanning-BFS certificate ([root_id, dist], O(log n) bits).
Certificate make_spanning_bfs_certificate(Ident root_id, int dist,
                                          Ident id_bound, int dist_bound);

/// Decoder: identifier-using, one round.
class SpanningBfsDecoder final : public Decoder {
 public:
  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return false; }
  [[nodiscard]] std::string name() const override { return "spanning-bfs"; }
  [[nodiscard]] bool accept(const View& view) const override;
};

/// The full LCP bundle.
class SpanningBfsLcp final : public Lcp {
 public:
  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// BFS from the lowest-index node. Declines disconnected or
  /// non-bipartite graphs.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// Root ids over identifiers present; distances up to n.
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  SpanningBfsDecoder decoder_;
};

}  // namespace shlcp
