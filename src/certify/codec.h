// Binary codecs for every certificate scheme in the library.
//
// The paper's results are statements about certificate SIZE, so the
// structured field tuples used internally must correspond to honest
// bitstrings. Each scheme here gets an encode/decode pair built on
// util/bitstream.h; the invariants validated by tests/bitstream_test.cpp
// are (1) round-trip exactness and (2) encoded size <= the declared
// Certificate::bits for every certificate the provers emit (declared
// sizes follow the paper's slightly looser accounting, so <= rather
// than ==).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.h"
#include "graph/labeling.h"

namespace shlcp {

/// A packed certificate.
struct EncodedCertificate {
  std::vector<std::uint8_t> bytes;
  int bits = 0;
};

/// Width context shared by the id-using schemes.
struct CodecParams {
  Ident id_bound = 0;       // N
  int n = 0;                // number of nodes (distances)
  int max_degree = 0;       // port widths
  int component_bound = 0;  // shatter: the instance's component count k
};

// --- Lemma 4.1: degree-one (2 bits) ---------------------------------
EncodedCertificate encode_degree_one(const Certificate& c);
Certificate decode_degree_one(const EncodedCertificate& e);

// --- Lemma 4.2: even-cycle (4 bits packed; declared 6) ---------------
EncodedCertificate encode_even_cycle(const Certificate& c);
Certificate decode_even_cycle(const EncodedCertificate& e);

// --- baseline: revealing k-coloring ----------------------------------
EncodedCertificate encode_revealing(const Certificate& c, int k);
Certificate decode_revealing(const EncodedCertificate& e, int k);

// --- Section 1: spanning-BFS [root id, dist] --------------------------
EncodedCertificate encode_spanning_bfs(const Certificate& c,
                                       const CodecParams& p);
Certificate decode_spanning_bfs(const EncodedCertificate& e,
                                const CodecParams& p);

// --- Theorem 1.3: shatter (vector-on-point layout) --------------------
EncodedCertificate encode_shatter(const Certificate& c, const CodecParams& p);
Certificate decode_shatter(const EncodedCertificate& e, const CodecParams& p);

// --- Theorem 1.4: watermelon ------------------------------------------
EncodedCertificate encode_watermelon(const Certificate& c,
                                     const CodecParams& p);
Certificate decode_watermelon(const EncodedCertificate& e,
                              const CodecParams& p);

}  // namespace shlcp
