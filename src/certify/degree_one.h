// The degree-one strong and hiding LCP (Lemma 4.1 of the paper).
//
// Promise class H1: bipartite graphs with minimum degree 1. The honest
// prover hides the 2-coloring at a single degree-1 node: that node gets
// the symbol BOT, its unique neighbor gets TOP, and every other node gets
// its color in a proper 2-coloring of G. The decoder rules are exactly
// those of the paper's proof:
//
//   BOT accepts iff it has degree 1 and its neighbor is TOP.
//   TOP accepts iff exactly one neighbor is BOT and all remaining
//       neighbors carry one common color beta in {0, 1}.
//   A colored node accepts iff at most one neighbor is TOP and every
//       other neighbor carries the opposite color.
//
// Strong soundness hinges on the "common beta" requirement at TOP: an odd
// cycle of accepting nodes would need an odd number of color flips around
// it, but colored-colored edges flip and TOP nodes preserve (both cycle
// neighbors share beta), forcing an even count. Hiding follows from the
// odd 5-cycle in V(D, 4) built from the two instances of Fig. 3 (see
// nbhd/witness.h, which replays the figure).

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// Certificate symbols of the degree-one LCP, stored as fields[0].
enum class DegreeOneSymbol : int {
  kColor0 = 0,
  kColor1 = 1,
  kBot = 2,  // the hidden degree-1 node (paper's "bottom")
  kTop = 3,  // its unique neighbor (paper's "top")
};

/// Builds a degree-one certificate (2 bits).
Certificate make_degree_one_certificate(DegreeOneSymbol s);

/// Ablation switch: kNoCommonBeta drops the requirement that TOP's
/// colored neighbors share one color. The flip-parity argument in the
/// file comment then fails, and indeed the exhaustive checker finds a
/// concrete violation (an accepted odd cycle through a TOP node whose
/// two cycle neighbors carry different colors) -- see
/// tests/certify_degree_one_test.cpp, NoCommonBetaAblation. This pins the
/// load-bearing role of the "= beta" in the paper's rule 2(b).
enum class DegreeOneVariant {
  kStandard,
  kNoCommonBeta,
};

/// Decoder of Lemma 4.1: anonymous, one round, constant-size certificates.
class DegreeOneDecoder final : public Decoder {
 public:
  explicit DegreeOneDecoder(
      DegreeOneVariant variant = DegreeOneVariant::kStandard)
      : variant_(variant) {}

  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return true; }
  [[nodiscard]] std::string name() const override {
    return variant_ == DegreeOneVariant::kStandard ? "degree-one"
                                                   : "degree-one-no-beta";
  }
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  DegreeOneVariant variant_;
};

/// The full LCP bundle for Lemma 4.1.
class DegreeOneLcp final : public Lcp {
 public:
  explicit DegreeOneLcp(DegreeOneVariant variant = DegreeOneVariant::kStandard)
      : decoder_(variant) {}

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// Hides the coloring at the lowest-index degree-1 node. Declines
  /// non-bipartite graphs and graphs with minimum degree != 1.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// The full alphabet {0, 1, BOT, TOP}: exhaustive sweeps over it are
  /// exact (there is no other certificate content the decoder inspects).
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  DegreeOneDecoder decoder_;
};

}  // namespace shlcp
