// The shatter-point strong and hiding LCP (Theorem 1.3 of the paper).
//
// Promise class: bipartite graphs admitting a shatter point, i.e. a node v
// such that G - N[v] is disconnected (Section 7.1).
//
// REPRODUCTION FINDING. The certificate scheme as literally written in
// the brief announcement stores the facing-colors vector on the type-1
// nodes (the neighbors of v) and lets only the type-0 node v check that
// all type-1 certificates agree. When the claimed shatter point rejects
// (or two pendant nodes both claim type 0), two type-1 nodes in one
// accepting component can carry *different* vectors, and an odd cycle
// alternating through components whose facing colors they disagree on is
// unanimously accepted: strong soundness fails. Concretely, on C5 plus
// two pendant type-0 claimants there is a labeling whose accepting set
// induces the full odd 5-cycle (tests/certify_shatter_test.cpp constructs
// it; bench_shatter reports it).
//
// The repair implemented as the Theorem 1.3 artifact moves the vector to
// the type-0 certificate and anchors type-1 nodes to the *actual* holder
// of the claimed identifier:
//
//   type 0 ("I am the shatter point"):  [0, id, k, col_1..col_k]
//   type 1 ("I am a neighbor of v"):    [1, id]
//   type 2 ("component #c, color x"):   [2, id, c, x]
//
// A type-1 node requires a neighbor w with a type-0 certificate whose
// *actual identifier* equals the claimed id (by injectivity there is at
// most one such node in the whole graph) and validates each type-2
// neighbor against w's vector. Every type-1 node of a connected accepting
// component therefore reads the SAME physical vector -- whether or not the
// shatter point itself accepts -- and the paper's parity argument goes
// through. The vector sits only on v, two hops away from the deep
// component nodes, so the P1/P2 hiding witness of the paper's proof is
// untouched, and the certificate bound O(min{Delta^2, n} + log n) is
// unchanged (the vector merely changes owner).
//
// ShatterVariant::kLiteral keeps the paper's decoder verbatim as the
// mechanically-checked counterexample artifact.

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// Which decoder rules to apply; see file comment.
enum class ShatterVariant {
  kLiteral,        // paper-verbatim; NOT strongly sound (counterexample kept)
  kVectorOnPoint,  // repaired: facing vector on the type-0 certificate
};

/// Certificate builders. `id_bound` (= N) fixes bit-size accounting.
/// Pass an empty vector to make_shatter_type0 for the kLiteral layout and
/// a non-empty one for kVectorOnPoint; symmetrically, type-1 certificates
/// carry the vector only in the kLiteral layout.
Certificate make_shatter_type0(Ident shatter_id, const std::vector<int>& colors,
                               Ident id_bound);
Certificate make_shatter_type1(Ident shatter_id, const std::vector<int>& colors,
                               Ident id_bound);
Certificate make_shatter_type2(Ident shatter_id, int component, int color,
                               Ident id_bound, int component_bound);

/// Decoder of Theorem 1.3: identifier-using, one round.
class ShatterDecoder final : public Decoder {
 public:
  explicit ShatterDecoder(ShatterVariant variant) : variant_(variant) {}

  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return false; }
  [[nodiscard]] std::string name() const override {
    return variant_ == ShatterVariant::kLiteral ? "shatter-point-literal"
                                                : "shatter-point";
  }
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  ShatterVariant variant_;
};

/// The full LCP bundle for Theorem 1.3.
class ShatterLcp final : public Lcp {
 public:
  /// `max_components_in_space` bounds the adversarial certificate space
  /// used by exhaustive sweeps; it does not affect prover or decoder.
  explicit ShatterLcp(ShatterVariant variant = ShatterVariant::kVectorOnPoint,
                      int max_components_in_space = 2)
      : decoder_(variant),
        variant_(variant),
        max_components_in_space_(max_components_in_space) {}

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// Certifies through the lowest-index shatter point. Declines graphs
  /// that are not bipartite or have no shatter point.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// Adversarial space: every type, with the claimed shatter id ranging
  /// over identifiers present in the graph, component counts/numbers up to
  /// `max_components_in_space`, and all color variants. Exact relative to
  /// the component bound (absent ids behave like present ids carried by no
  /// neighbor, which the space covers).
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  ShatterDecoder decoder_;
  ShatterVariant variant_;
  int max_components_in_space_;
};

}  // namespace shlcp
