#include "certify/codec.h"

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/revealing.h"
#include "certify/shatter.h"
#include "certify/spanning_bfs.h"
#include "certify/watermelon.h"
#include "util/bitstream.h"

namespace shlcp {

namespace {

EncodedCertificate finish(const BitWriter& w) {
  return EncodedCertificate{w.bytes(), w.size_bits()};
}

}  // namespace

EncodedCertificate encode_degree_one(const Certificate& c) {
  SHLCP_CHECK(c.fields.size() == 1 && 0 <= c.fields[0] && c.fields[0] <= 3);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(c.fields[0]), 2);
  return finish(w);
}

Certificate decode_degree_one(const EncodedCertificate& e) {
  BitReader r(e.bytes, e.bits);
  const int symbol = static_cast<int>(r.read(2));
  SHLCP_CHECK(r.remaining() == 0);
  return make_degree_one_certificate(static_cast<DegreeOneSymbol>(symbol));
}

EncodedCertificate encode_even_cycle(const Certificate& c) {
  // Layout: fa-1 (1), ca (1), fb-1 (1), cb (1). The own ports are fixed
  // by the canonical entry order and cost nothing.
  SHLCP_CHECK(c.fields.size() == 6 && c.fields[0] == 1 && c.fields[3] == 2);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(c.fields[1] - 1), 1);
  w.write(static_cast<std::uint32_t>(c.fields[2]), 1);
  w.write(static_cast<std::uint32_t>(c.fields[4] - 1), 1);
  w.write(static_cast<std::uint32_t>(c.fields[5]), 1);
  return finish(w);
}

Certificate decode_even_cycle(const EncodedCertificate& e) {
  BitReader r(e.bytes, e.bits);
  const Port fa = static_cast<Port>(r.read(1)) + 1;
  const int ca = static_cast<int>(r.read(1));
  const Port fb = static_cast<Port>(r.read(1)) + 1;
  const int cb = static_cast<int>(r.read(1));
  SHLCP_CHECK(r.remaining() == 0);
  return make_even_cycle_certificate(fa, ca, fb, cb);
}

EncodedCertificate encode_revealing(const Certificate& c, int k) {
  SHLCP_CHECK(c.fields.size() == 1 && 0 <= c.fields[0] && c.fields[0] < k);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(c.fields[0]), bit_width_for(k - 1));
  return finish(w);
}

Certificate decode_revealing(const EncodedCertificate& e, int k) {
  BitReader r(e.bytes, e.bits);
  const int color = static_cast<int>(r.read(bit_width_for(k - 1)));
  SHLCP_CHECK(r.remaining() == 0);
  return make_color_certificate(color, k);
}

EncodedCertificate encode_spanning_bfs(const Certificate& c,
                                       const CodecParams& p) {
  SHLCP_CHECK(c.fields.size() == 2);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(c.fields[0]), bit_width_for(p.id_bound));
  w.write(static_cast<std::uint32_t>(c.fields[1]), bit_width_for(p.n));
  return finish(w);
}

Certificate decode_spanning_bfs(const EncodedCertificate& e,
                                const CodecParams& p) {
  BitReader r(e.bytes, e.bits);
  const Ident root = static_cast<Ident>(r.read(bit_width_for(p.id_bound)));
  const int dist = static_cast<int>(r.read(bit_width_for(p.n)));
  SHLCP_CHECK(r.remaining() == 0);
  return make_spanning_bfs_certificate(root, dist, p.id_bound, p.n);
}

EncodedCertificate encode_shatter(const Certificate& c, const CodecParams& p) {
  // Vector-on-point layout. type (2 bits), id (log N), then:
  //   type 0: k (log n) + k color bits
  //   type 1: nothing else
  //   type 2: component (log n) + color (1)
  const auto& f = c.fields;
  SHLCP_CHECK(f.size() >= 2);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(f[0]), 2);
  w.write(static_cast<std::uint32_t>(f[1]), bit_width_for(p.id_bound));
  if (f[0] == 0) {
    const int k = f[2];
    w.write(static_cast<std::uint32_t>(k), bit_width_for(p.component_bound));
    for (int i = 0; i < k; ++i) {
      w.write(static_cast<std::uint32_t>(f[static_cast<std::size_t>(3 + i)]), 1);
    }
  } else if (f[0] == 2) {
    w.write(static_cast<std::uint32_t>(f[2]), bit_width_for(p.component_bound));
    w.write(static_cast<std::uint32_t>(f[3]), 1);
  }
  return finish(w);
}

Certificate decode_shatter(const EncodedCertificate& e, const CodecParams& p) {
  BitReader r(e.bytes, e.bits);
  const int type = static_cast<int>(r.read(2));
  const Ident id = static_cast<Ident>(r.read(bit_width_for(p.id_bound)));
  if (type == 0) {
    const int k = static_cast<int>(r.read(bit_width_for(p.component_bound)));
    std::vector<int> colors;
    for (int i = 0; i < k; ++i) {
      colors.push_back(static_cast<int>(r.read(1)));
    }
    SHLCP_CHECK(r.remaining() == 0);
    return make_shatter_type0(id, colors, p.id_bound);
  }
  if (type == 1) {
    SHLCP_CHECK(r.remaining() == 0);
    return make_shatter_type1(id, {}, p.id_bound);
  }
  SHLCP_CHECK(type == 2);
  const int comp = static_cast<int>(r.read(bit_width_for(p.component_bound)));
  const int color = static_cast<int>(r.read(1));
  SHLCP_CHECK(r.remaining() == 0);
  return make_shatter_type2(id, comp, color, p.id_bound, p.component_bound);
}

EncodedCertificate encode_watermelon(const Certificate& c,
                                     const CodecParams& p) {
  const auto& f = c.fields;
  SHLCP_CHECK(f.size() >= 3);
  BitWriter w;
  w.write(static_cast<std::uint32_t>(f[0] - 1), 1);  // type in {1, 2}
  w.write(static_cast<std::uint32_t>(f[1]), bit_width_for(p.id_bound));
  w.write(static_cast<std::uint32_t>(f[2]), bit_width_for(p.id_bound));
  if (f[0] == 2) {
    SHLCP_CHECK(f.size() == 8);
    w.write(static_cast<std::uint32_t>(f[3]), bit_width_for(p.n));
    w.write(static_cast<std::uint32_t>(f[4]), bit_width_for(p.max_degree));
    w.write(static_cast<std::uint32_t>(f[5]), 1);
    w.write(static_cast<std::uint32_t>(f[6]), bit_width_for(p.max_degree));
    w.write(static_cast<std::uint32_t>(f[7]), 1);
  }
  return finish(w);
}

Certificate decode_watermelon(const EncodedCertificate& e,
                              const CodecParams& p) {
  BitReader r(e.bytes, e.bits);
  const int type = static_cast<int>(r.read(1)) + 1;
  const Ident id1 = static_cast<Ident>(r.read(bit_width_for(p.id_bound)));
  const Ident id2 = static_cast<Ident>(r.read(bit_width_for(p.id_bound)));
  if (type == 1) {
    SHLCP_CHECK(r.remaining() == 0);
    return make_watermelon_type1(id1, id2, p.id_bound);
  }
  const int num = static_cast<int>(r.read(bit_width_for(p.n)));
  const Port p1 = static_cast<Port>(r.read(bit_width_for(p.max_degree)));
  const int c1 = static_cast<int>(r.read(1));
  const Port p2 = static_cast<Port>(r.read(bit_width_for(p.max_degree)));
  const int c2 = static_cast<int>(r.read(1));
  SHLCP_CHECK(r.remaining() == 0);
  return make_watermelon_type2(id1, id2, num, p1, c1, p2, c2, p.id_bound,
                               p.max_degree);
}

}  // namespace shlcp
