#include "certify/revealing.h"

#include "graph/algorithms.h"
#include "util/format.h"

namespace shlcp {

namespace {

/// Extracts the color field of a revealing certificate, or -1 when the
/// format is invalid.
int color_of(const Certificate& c, int k) {
  if (c.fields.size() != 1) {
    return -1;
  }
  const int color = c.fields[0];
  return (0 <= color && color < k) ? color : -1;
}

int ceil_log2(int k) {
  int bits = 1;
  while ((1 << bits) < k) {
    ++bits;
  }
  return bits;
}

}  // namespace

Certificate make_color_certificate(int color, int k) {
  SHLCP_CHECK(k >= 2);
  return Certificate{{color}, ceil_log2(k)};
}

RevealingDecoder::RevealingDecoder(int k) : k_(k) { SHLCP_CHECK(k >= 2); }

std::string RevealingDecoder::name() const {
  return format("revealing-%d-col", k_);
}

bool RevealingDecoder::accept(const View& view) const {
  const int own = color_of(view.center_label(), k_);
  if (own == -1) {
    return false;
  }
  for (const Node w : view.g.neighbors(view.center)) {
    const int other = color_of(view.labels[static_cast<std::size_t>(w)], k_);
    // A neighbor with an invalid certificate cannot be verified against,
    // so the node rejects: the accepting set must be self-certifying.
    if (other == -1 || other == own) {
      return false;
    }
  }
  return true;
}

RevealingLcp::RevealingLcp(int k) : k_(k), decoder_(k) {}

std::optional<Labeling> RevealingLcp::prove(const Graph& g,
                                            const PortAssignment& /*ports*/,
                                            const IdAssignment& /*ids*/) const {
  const auto coloring = k_coloring(g, k_);
  if (!coloring.has_value()) {
    return std::nullopt;
  }
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    labels.at(v) =
        make_color_certificate((*coloring)[static_cast<std::size_t>(v)], k_);
  }
  return labels;
}

bool RevealingLcp::in_promise(const Graph& g) const {
  return is_k_colorable(g, k_);
}

std::vector<Certificate> RevealingLcp::certificate_space(
    const Graph& /*g*/, const IdAssignment& /*ids*/, Node /*v*/) const {
  std::vector<Certificate> space;
  for (int c = 0; c < k_; ++c) {
    space.push_back(make_color_certificate(c, k_));
  }
  space.push_back(Certificate{{k_}, ceil_log2(k_)});  // out-of-range sentinel
  return space;
}

}  // namespace shlcp
