// The trivial revealing LCP for k-coloring (Section 1 of the paper).
//
// Certificates are just the node's color in a proper k-coloring
// (ceil(log k) bits). The decoder accepts iff its own color is in range
// and differs from the color of every neighbor. This LCP is *strong* (the
// accepting nodes are properly colored by their own certificates) but
// emphatically *not hiding*: the extractor that outputs its own
// certificate recovers the coloring everywhere. It is the baseline against
// which the hiding constructions are compared (experiment E12) and the
// positive control for the Lemma 3.2 extractor (experiment E9): its
// accepting neighborhood graph is always k-colorable.

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// Decoder of the revealing LCP: anonymous, one round.
class RevealingDecoder final : public Decoder {
 public:
  explicit RevealingDecoder(int k);

  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool accept(const View& view) const override;

  [[nodiscard]] int k() const { return k_; }

 private:
  int k_;
};

/// The revealing LCP bundle: promise class = all k-colorable graphs.
class RevealingLcp final : public Lcp {
 public:
  explicit RevealingLcp(int k);

  [[nodiscard]] int k() const override { return k_; }
  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;
  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// Certificate space: the k colors. (Out-of-range certificates are
  /// rejected at the owner and treated as "not a proper color" by
  /// neighbors, which is behaviorally identical to a color clashing with
  /// everything; one sentinel out-of-range certificate is included so the
  /// sweeps exercise the format check.)
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  int k_;
  RevealingDecoder decoder_;
};

/// Builds the color certificate used by the revealing LCP (also reused by
/// tests). Bit size is ceil(log2 k) (>= 1).
Certificate make_color_certificate(int color, int k);

}  // namespace shlcp
