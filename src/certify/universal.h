// The universal O(n^2)-bit LCP (Section 1.1 of the paper).
//
// "Every Turing-computable graph property P admits an LCP with
// certificates of size O(n^2): simply provide the entire adjacency matrix
// of the input graph to every vertex, along with their corresponding node
// identifiers." This module implements that classical scheme for an
// arbitrary computable predicate:
//
//   certificate = [n, id_1 < ... < id_n, row_1, ..., row_n]
//
// where row_i is the bitmask of the i-th node's neighbors (indices into
// the sorted id list). The 1-round decoder checks that (1) the
// certificate is well-formed, symmetric, and loop-free, (2) every
// neighbor carries the IDENTICAL certificate, (3) its own identifier
// appears and its actual incident edges are exactly the matrix row of its
// index, and (4) the predicate holds on the decoded graph.
//
// For the 2-colorability predicate the scheme is STRONG: an accepted node
// has all its real edges inside the matrix, so an accepted odd cycle
// would embed an odd cycle into the (predicate-checked, hence bipartite)
// decoded graph. It is also maximally revealing -- every node can decode
// the entire graph and output its color in the lexicographically first
// coloring -- which makes it the Section 1.1 contrast point: hiding is
// about WHAT certificates convey, not how large they are.

#pragma once

#include <functional>

#include "lcp/decoder.h"

namespace shlcp {

/// A computable graph predicate (the paper's property P).
using GraphPredicate = std::function<bool(const Graph&)>;

/// Builds the universal certificate for (g, ids). Bit size:
/// n^2 + n ceil(log N) + ceil(log n).
Certificate make_universal_certificate(const Graph& g, const IdAssignment& ids);

/// Decodes a universal certificate back into (graph, sorted ids);
/// nullopt when malformed (non-symmetric, loops, unsorted ids, bad
/// sizes). Exposed for tests and the extraction demonstration.
std::optional<std::pair<Graph, std::vector<Ident>>> decode_universal_certificate(
    const Certificate& c);

/// Decoder of the universal scheme: identifier-using, one round.
class UniversalDecoder final : public Decoder {
 public:
  explicit UniversalDecoder(GraphPredicate predicate, std::string name)
      : predicate_(std::move(predicate)), name_(std::move(name)) {}

  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return false; }
  [[nodiscard]] std::string name() const override {
    return "universal-" + name_;
  }
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  GraphPredicate predicate_;
  std::string name_;
};

/// The full LCP bundle. The adversarial certificate space for exhaustive
/// sweeps contains the honest certificate of every graph on the same
/// node set (all 2^C(n,2) matrices for tiny n) -- see certificate_space.
class UniversalLcp final : public Lcp {
 public:
  /// `predicate` must accept exactly the 2-colorable graphs for the
  /// strong-soundness guarantee to mean what Lcp::k() = 2 says; other
  /// predicates may be used with the checkers' k adjusted by the caller.
  explicit UniversalLcp(GraphPredicate predicate, std::string name);

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;
  [[nodiscard]] bool in_promise(const Graph& g) const override;
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  GraphPredicate predicate_;
  UniversalDecoder decoder_;
};

/// Convenience: the universal LCP for bipartiteness.
UniversalLcp make_universal_bipartiteness_lcp();

}  // namespace shlcp
