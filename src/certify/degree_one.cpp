#include "certify/degree_one.h"

#include "graph/algorithms.h"
#include "graph/properties.h"

namespace shlcp {

namespace {

/// Decodes a certificate into a symbol; nullopt when malformed.
std::optional<DegreeOneSymbol> symbol_of(const Certificate& c) {
  if (c.fields.size() != 1 || c.fields[0] < 0 || c.fields[0] > 3) {
    return std::nullopt;
  }
  return static_cast<DegreeOneSymbol>(c.fields[0]);
}

bool is_color(DegreeOneSymbol s) {
  return s == DegreeOneSymbol::kColor0 || s == DegreeOneSymbol::kColor1;
}

}  // namespace

Certificate make_degree_one_certificate(DegreeOneSymbol s) {
  return Certificate{{static_cast<int>(s)}, 2};
}

bool DegreeOneDecoder::accept(const View& view) const {
  const auto own = symbol_of(view.center_label());
  if (!own.has_value()) {
    return false;
  }
  const auto nb = view.g.neighbors(view.center);
  // Decode all neighbor symbols up front; any malformed one rejects.
  std::vector<DegreeOneSymbol> sym;
  sym.reserve(nb.size());
  for (const Node w : nb) {
    const auto s = symbol_of(view.labels[static_cast<std::size_t>(w)]);
    if (!s.has_value()) {
      return false;
    }
    sym.push_back(*s);
  }

  switch (*own) {
    case DegreeOneSymbol::kBot:
      // Rule 1: degree 1 and the unique neighbor is TOP.
      return sym.size() == 1 && sym[0] == DegreeOneSymbol::kTop;

    case DegreeOneSymbol::kTop: {
      // Rule 2: a unique BOT neighbor; all the others share one color
      // (the kNoCommonBeta ablation drops the sharing requirement and
      // loses strong soundness -- see the header).
      int bots = 0;
      int color = -1;
      bool colors_agree = true;
      for (const DegreeOneSymbol s : sym) {
        if (s == DegreeOneSymbol::kBot) {
          ++bots;
        } else if (is_color(s)) {
          const int c = static_cast<int>(s);
          if (color == -1) {
            color = c;
          } else if (color != c) {
            colors_agree = false;
          }
        } else {
          return false;  // a TOP neighbor of TOP is never acceptable
        }
      }
      if (variant_ == DegreeOneVariant::kNoCommonBeta) {
        colors_agree = true;
      }
      return bots == 1 && colors_agree;
    }

    case DegreeOneSymbol::kColor0:
    case DegreeOneSymbol::kColor1: {
      // Rule 3: at most one TOP neighbor; every other neighbor carries the
      // opposite color.
      const int own_color = static_cast<int>(*own);
      int tops = 0;
      for (const DegreeOneSymbol s : sym) {
        if (s == DegreeOneSymbol::kTop) {
          ++tops;
          continue;
        }
        if (!is_color(s) || static_cast<int>(s) == own_color) {
          return false;
        }
      }
      return tops <= 1;
    }
  }
  return false;  // unreachable
}

std::optional<Labeling> DegreeOneLcp::prove(const Graph& g,
                                            const PortAssignment& /*ports*/,
                                            const IdAssignment& /*ids*/) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  const auto res = check_bipartite(g);
  SHLCP_CHECK(res.bipartite());
  // Lowest-index degree-1 node is hidden.
  Node hidden = -1;
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 1) {
      hidden = v;
      break;
    }
  }
  SHLCP_CHECK(hidden != -1);
  const Node anchor = g.neighbors(hidden)[0];

  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (v == hidden) {
      labels.at(v) = make_degree_one_certificate(DegreeOneSymbol::kBot);
    } else if (v == anchor) {
      labels.at(v) = make_degree_one_certificate(DegreeOneSymbol::kTop);
    } else {
      labels.at(v) = make_degree_one_certificate(
          res.coloring[static_cast<std::size_t>(v)] == 0
              ? DegreeOneSymbol::kColor0
              : DegreeOneSymbol::kColor1);
    }
  }
  return labels;
}

bool DegreeOneLcp::in_promise(const Graph& g) const {
  return g.num_nodes() >= 2 && has_min_degree_one(g) && is_bipartite(g);
}

std::vector<Certificate> DegreeOneLcp::certificate_space(
    const Graph& /*g*/, const IdAssignment& /*ids*/, Node /*v*/) const {
  return {
      make_degree_one_certificate(DegreeOneSymbol::kColor0),
      make_degree_one_certificate(DegreeOneSymbol::kColor1),
      make_degree_one_certificate(DegreeOneSymbol::kBot),
      make_degree_one_certificate(DegreeOneSymbol::kTop),
  };
}

}  // namespace shlcp
