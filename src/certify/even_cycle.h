// The even-cycle strong and hiding LCP (Lemma 4.2 of the paper).
//
// Promise class H2: even cycles. The honest prover reveals a proper
// 2-EDGE-coloring instead of the 2-(node-)coloring: an even cycle is
// 2-colorable iff it is 2-edge-colorable, and the edge coloring hides the
// node coloring *at every node* (there is no local way to break the
// symmetry between the two node colorings consistent with the edges).
//
// A certificate at v names v's two incident edges by their port pairs
// (prt(v, e), prt(u, e)) and gives each a color, with the two colors
// distinct:
//
//   fields = [pA_self, pA_far, cA, pB_self, pB_far, cB]
//
// ordered so that pA_self = 1 and pB_self = 2 (canonical entry order; any
// other own-port combination is malformed). The decoder at v checks:
//   - the format above, with cA != cB;
//   - deg(v) = 2;
//   - for each incident edge, the entry at v's own port matches the
//     actual port pair of that edge;
//   - the neighbor's certificate describes the shared edge with the same
//     color (entry indexed by the neighbor's own port on the edge).
//
// Strong soundness: accepted nodes have degree exactly 2 in the host
// graph, so an odd cycle of accepting nodes would be an odd cycle
// component carrying a proper 2-edge-coloring -- impossible. Hiding: the
// odd cycle in V(D, 6) from the two instances of Fig. 5 (replayed by
// nbhd/witness.h).

#pragma once

#include "lcp/decoder.h"

namespace shlcp {

/// Builds an even-cycle certificate. `far_a`/`far_b` are the far-end ports
/// of the edges at own ports 1 and 2; `col_a`/`col_b` their colors.
/// Encoded size: 6 bits (each field is one bit: ports in {1,2} and colors
/// in {0,1}).
Certificate make_even_cycle_certificate(Port far_a, int col_a, Port far_b,
                                        int col_b);

/// Decoder of Lemma 4.2: anonymous, one round, constant-size certificates.
class EvenCycleDecoder final : public Decoder {
 public:
  [[nodiscard]] int radius() const override { return 1; }
  [[nodiscard]] bool anonymous() const override { return true; }
  [[nodiscard]] std::string name() const override { return "even-cycle"; }
  [[nodiscard]] bool accept(const View& view) const override;
};

/// The full LCP bundle for Lemma 4.2.
class EvenCycleLcp final : public Lcp {
 public:
  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// Reveals a 2-edge-coloring. Declines anything that is not an even
  /// cycle.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// All 16 well-formed certificates (far ports in {1,2}^2, colors in
  /// {0,1}^2, including the owner-rejecting ones with equal colors, since
  /// those still influence neighbors' verdicts). Malformed certificates
  /// are behaviorally equivalent to a well-formed one that fails the
  /// neighbor containment check, so omitting them keeps the sweep exact.
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

 private:
  EvenCycleDecoder decoder_;
};

}  // namespace shlcp
