#include "certify/shatter.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/properties.h"

namespace shlcp {

namespace {

int ceil_log2(int x) {
  int bits = 1;
  while ((1 << bits) < x) {
    ++bits;
  }
  return bits;
}

/// Parsed shatter certificate (either layout). `colors` is carried by
/// type 1 under kLiteral and by type 0 under kVectorOnPoint.
struct Parsed {
  int type = -1;
  Ident id = -1;            // claimed shatter-point identifier
  std::vector<int> colors;  // facing colors per component
  int component = -1;       // type 2
  int color = -1;           // type 2
};

std::optional<std::vector<int>> parse_colors(const std::vector<int>& f,
                                             std::size_t at, int k) {
  if (k < 1 || f.size() != at + static_cast<std::size_t>(k)) {
    return std::nullopt;
  }
  std::vector<int> colors;
  for (int i = 0; i < k; ++i) {
    const int col = f[at + static_cast<std::size_t>(i)];
    if (col != 0 && col != 1) {
      return std::nullopt;
    }
    colors.push_back(col);
  }
  return colors;
}

std::optional<Parsed> parse(const Certificate& c, ShatterVariant variant) {
  const auto& f = c.fields;
  if (f.size() < 2 || f[0] < 0 || f[0] > 2 || f[1] < 1) {
    return std::nullopt;
  }
  Parsed p;
  p.type = f[0];
  p.id = f[1];
  const bool vector_on_point = (variant == ShatterVariant::kVectorOnPoint);
  switch (p.type) {
    case 0: {
      if (!vector_on_point) {
        return f.size() == 2 ? std::optional<Parsed>(p) : std::nullopt;
      }
      if (f.size() < 3) {
        return std::nullopt;
      }
      auto colors = parse_colors(f, 3, f[2]);
      if (!colors.has_value()) {
        return std::nullopt;
      }
      p.colors = std::move(*colors);
      return p;
    }
    case 1: {
      if (vector_on_point) {
        return f.size() == 2 ? std::optional<Parsed>(p) : std::nullopt;
      }
      if (f.size() < 3) {
        return std::nullopt;
      }
      auto colors = parse_colors(f, 3, f[2]);
      if (!colors.has_value()) {
        return std::nullopt;
      }
      p.colors = std::move(*colors);
      return p;
    }
    case 2: {
      if (f.size() != 4 || f[2] < 1 || (f[3] != 0 && f[3] != 1)) {
        return std::nullopt;
      }
      p.component = f[2];
      p.color = f[3];
      return p;
    }
  }
  return std::nullopt;
}

Certificate with_colors(int type, Ident shatter_id,
                        const std::vector<int>& colors, Ident id_bound) {
  Certificate c;
  c.fields = {type, shatter_id};
  c.bits = 2 + ceil_log2(id_bound + 1);
  if (!colors.empty()) {
    c.fields.push_back(static_cast<int>(colors.size()));
    c.fields.insert(c.fields.end(), colors.begin(), colors.end());
    c.bits += ceil_log2(static_cast<int>(colors.size()) + 1) +
              static_cast<int>(colors.size());
  }
  return c;
}

}  // namespace

Certificate make_shatter_type0(Ident shatter_id, const std::vector<int>& colors,
                               Ident id_bound) {
  return with_colors(0, shatter_id, colors, id_bound);
}

Certificate make_shatter_type1(Ident shatter_id, const std::vector<int>& colors,
                               Ident id_bound) {
  return with_colors(1, shatter_id, colors, id_bound);
}

Certificate make_shatter_type2(Ident shatter_id, int component, int color,
                               Ident id_bound, int component_bound) {
  return Certificate{{2, shatter_id, component, color},
                     2 + ceil_log2(id_bound + 1) +
                         ceil_log2(component_bound + 1) + 1};
}

bool ShatterDecoder::accept(const View& view) const {
  const auto own = parse(view.center_label(), variant_);
  if (!own.has_value()) {
    return false;
  }
  const auto nb = view.g.neighbors(view.center);
  std::vector<Parsed> theirs;
  theirs.reserve(nb.size());
  for (const Node w : nb) {
    auto p = parse(view.labels[static_cast<std::size_t>(w)], variant_);
    if (!p.has_value()) {
      return false;
    }
    theirs.push_back(std::move(*p));
  }

  switch (own->type) {
    case 0: {
      // Condition 1: id matches own identifier; all neighbors are type 1
      // with identical content naming this node.
      if (own->id != view.center_id()) {
        return false;
      }
      for (std::size_t i = 0; i < theirs.size(); ++i) {
        const Parsed& t = theirs[i];
        if (t.type != 1 || t.id != view.center_id()) {
          return false;
        }
        if (i > 0 && t.colors != theirs[0].colors) {
          return false;
        }
      }
      return true;
    }
    case 1: {
      // Condition 2.
      int type0_count = 0;
      const std::vector<int>* vector = nullptr;  // the facing-colors vector
      if (variant_ == ShatterVariant::kLiteral) {
        vector = &own->colors;
      }
      for (std::size_t i = 0; i < theirs.size(); ++i) {
        const Parsed& t = theirs[i];
        if (t.type == 1) {
          return false;  // 2(a): N(v) is independent
        }
        if (t.type == 0) {
          ++type0_count;
          if (t.id != own->id) {
            return false;  // 2(b): we both name the same shatter point
          }
          if (variant_ == ShatterVariant::kVectorOnPoint) {
            // Repair: the type-0 neighbor must actually *be* the node
            // with the claimed identifier, and we adopt its vector.
            if (view.ids[static_cast<std::size_t>(nb[i])] != own->id) {
              return false;
            }
            vector = &t.colors;
          }
        }
      }
      if (type0_count != 1) {
        return false;  // 2(b): unique shatter-point neighbor
      }
      SHLCP_CHECK(vector != nullptr);
      for (const Parsed& t : theirs) {
        if (t.type == 2) {
          // 2(c): component in range, facing color matches the vector.
          if (t.id != own->id ||
              t.component > static_cast<int>(vector->size()) ||
              (*vector)[static_cast<std::size_t>(t.component - 1)] !=
                  t.color) {
            return false;
          }
        }
      }
      return true;
    }
    case 2: {
      // Condition 3.
      for (const Parsed& t : theirs) {
        if (t.type == 0) {
          return false;  // 3(a)
        }
        if (t.type == 1) {
          // 3(b): id agreement; under kLiteral also the vector lookup.
          if (t.id != own->id) {
            return false;
          }
          if (variant_ == ShatterVariant::kLiteral &&
              (own->component > static_cast<int>(t.colors.size()) ||
               t.colors[static_cast<std::size_t>(own->component - 1)] !=
                   own->color)) {
            return false;
          }
        }
        if (t.type == 2) {
          // 3(c)
          if (t.id != own->id || t.component != own->component ||
              t.color == own->color) {
            return false;
          }
        }
      }
      return true;
    }
  }
  return false;  // unreachable
}

std::optional<Labeling> ShatterLcp::prove(const Graph& g,
                                          const PortAssignment& /*ports*/,
                                          const IdAssignment& ids) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  const auto points = shatter_points(g);
  SHLCP_CHECK(!points.empty());
  const Node v = points[0];
  const Ident vid = ids.id_of(v);
  const Ident bound = ids.bound();

  // Components of G - N[v], numbered 1..k in order of smallest node.
  std::vector<Node> rest;
  const auto nv = g.neighbors(v);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (u != v && !std::binary_search(nv.begin(), nv.end(), u)) {
      rest.push_back(u);
    }
  }
  std::vector<Node> old_of_new;
  const Graph sub = g.induced_subgraph(rest, &old_of_new);
  const auto comp_of_local = connected_components(sub);
  const int k =
      sub.num_nodes() == 0
          ? 0
          : 1 + *std::max_element(comp_of_local.begin(), comp_of_local.end());
  SHLCP_CHECK(k >= 2);

  // 2-color each component; record each node's component and color.
  const auto sub_col = check_bipartite(sub);
  SHLCP_CHECK(sub_col.bipartite());

  std::vector<int> component(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<int> color(static_cast<std::size_t>(g.num_nodes()), -1);
  for (std::size_t i = 0; i < old_of_new.size(); ++i) {
    component[static_cast<std::size_t>(old_of_new[i])] = comp_of_local[i] + 1;
    color[static_cast<std::size_t>(old_of_new[i])] = sub_col.coloring[i];
  }

  // Facing colors: for each component, the color of its nodes adjacent to
  // N(v). Well-defined in a bipartite graph (Lemma 7.1, condition 3);
  // components with no edge to N(v) get facing color 0.
  std::vector<int> facing(static_cast<std::size_t>(k), 0);
  std::vector<bool> have_facing(static_cast<std::size_t>(k), false);
  for (const Node u : nv) {
    for (const Node w : g.neighbors(u)) {
      const int comp = component[static_cast<std::size_t>(w)];
      if (comp == -1) {
        continue;
      }
      const int x = color[static_cast<std::size_t>(w)];
      if (!have_facing[static_cast<std::size_t>(comp - 1)]) {
        have_facing[static_cast<std::size_t>(comp - 1)] = true;
        facing[static_cast<std::size_t>(comp - 1)] = x;
      } else {
        SHLCP_CHECK_MSG(facing[static_cast<std::size_t>(comp - 1)] == x,
                        "Lemma 7.1(3) violated in a bipartite graph");
      }
    }
  }

  const bool on_point = (variant_ == ShatterVariant::kVectorOnPoint);
  Labeling labels(g.num_nodes());
  labels.at(v) =
      make_shatter_type0(vid, on_point ? facing : std::vector<int>{}, bound);
  for (const Node u : nv) {
    labels.at(u) =
        make_shatter_type1(vid, on_point ? std::vector<int>{} : facing, bound);
  }
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (component[static_cast<std::size_t>(u)] != -1) {
      labels.at(u) = make_shatter_type2(
          vid, component[static_cast<std::size_t>(u)],
          color[static_cast<std::size_t>(u)], bound, k);
    }
  }
  return labels;
}

bool ShatterLcp::in_promise(const Graph& g) const {
  return g.num_nodes() >= 1 && is_bipartite(g) && has_shatter_point(g);
}

std::vector<Certificate> ShatterLcp::certificate_space(
    const Graph& g, const IdAssignment& ids, Node /*v*/) const {
  std::vector<Certificate> space;
  const Ident bound = ids.bound();
  const int kmax = max_components_in_space_;
  const bool on_point = (variant_ == ShatterVariant::kVectorOnPoint);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    const Ident id = ids.id_of(u);
    // Vector-free side: type 0 under kLiteral, type 1 under kVectorOnPoint.
    if (on_point) {
      space.push_back(make_shatter_type1(id, {}, bound));
    } else {
      space.push_back(make_shatter_type0(id, {}, bound));
    }
    // Vector-carrying side: all colors vectors of length 1..kmax.
    for (int len = 1; len <= kmax; ++len) {
      for (int mask = 0; mask < (1 << len); ++mask) {
        std::vector<int> colors;
        for (int i = 0; i < len; ++i) {
          colors.push_back((mask >> i) & 1);
        }
        if (on_point) {
          space.push_back(make_shatter_type0(id, colors, bound));
        } else {
          space.push_back(make_shatter_type1(id, colors, bound));
        }
      }
    }
    for (int comp = 1; comp <= kmax; ++comp) {
      for (int x = 0; x <= 1; ++x) {
        space.push_back(make_shatter_type2(id, comp, x, bound, kmax));
      }
    }
  }
  return space;
}

}  // namespace shlcp
