// Union of LCPs over a union of promise classes (Theorem 1.1).
//
// Theorem 1.1 certifies 2-col over H = H1 (min degree 1) union H2 (even
// cycles) by combining the degree-one LCP and the even-cycle LCP. The
// generic combinator here tags every certificate with which sub-LCP it
// belongs to; a node accepts iff every certificate in sight carries its
// own tag and the tagged sub-decoder accepts the view with tags stripped.
//
// Strong soundness is inherited: accepting nodes of different tags are
// never adjacent, so the accepting set splits into per-tag parts, each a
// subset of the corresponding sub-decoder's accepting set under a labeling
// that agrees on the part -- and subgraphs of k-colorable graphs are
// k-colorable. Hiding is inherited from either component (a hiding witness
// for a sub-LCP lifts by tagging). The tag adds one bit (constant-size
// overall when both components are constant-size, as in Theorem 1.1).

#pragma once

#include <memory>

#include "lcp/decoder.h"

namespace shlcp {

/// Decoder of the tagged union. All sub-decoders must share radius; the
/// union is anonymous iff all components are.
class UnionDecoder final : public Decoder {
 public:
  explicit UnionDecoder(std::vector<const Lcp*> parts);

  [[nodiscard]] int radius() const override { return radius_; }
  [[nodiscard]] bool anonymous() const override { return anonymous_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool accept(const View& view) const override;

 private:
  std::vector<const Lcp*> parts_;
  int radius_;
  bool anonymous_;
};

/// The union LCP. Does not own its parts; keep them alive.
class UnionLcp final : public Lcp {
 public:
  explicit UnionLcp(std::vector<const Lcp*> parts);

  [[nodiscard]] const Decoder& decoder() const override { return decoder_; }

  /// Delegates to the first part whose promise contains g, tagging the
  /// resulting certificates.
  [[nodiscard]] std::optional<Labeling> prove(
      const Graph& g, const PortAssignment& ports,
      const IdAssignment& ids) const override;

  /// g is in the union of the parts' promise classes.
  [[nodiscard]] bool in_promise(const Graph& g) const override;

  /// Union of the parts' spaces, tagged.
  [[nodiscard]] std::vector<Certificate> certificate_space(
      const Graph& g, const IdAssignment& ids, Node v) const override;

  [[nodiscard]] std::string name() const override;

 private:
  std::vector<const Lcp*> parts_;
  UnionDecoder decoder_;
};

/// Prepends tag to a certificate (one extra bit per tag level; we charge
/// ceil(log2(#parts)) bits, at least 1).
Certificate tag_certificate(int tag, const Certificate& inner, int num_parts);

/// Splits a tagged certificate; nullopt if malformed or tag out of range.
std::optional<std::pair<int, Certificate>> untag_certificate(
    const Certificate& c, int num_parts);

}  // namespace shlcp
