#include "certify/universal.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace shlcp {

namespace {

int ceil_log2(int x) {
  int bits = 1;
  while ((1 << bits) < x) {
    ++bits;
  }
  return bits;
}

}  // namespace

Certificate make_universal_certificate(const Graph& g,
                                       const IdAssignment& ids) {
  const int n = g.num_nodes();
  SHLCP_CHECK_MSG(n <= 30, "row bitmasks are packed into int fields");
  // Sorted identifier list with the index permutation.
  std::vector<std::pair<Ident, Node>> order;
  for (Node v = 0; v < n; ++v) {
    order.emplace_back(ids.id_of(v), v);
  }
  std::sort(order.begin(), order.end());
  std::vector<int> index_of_node(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    index_of_node[static_cast<std::size_t>(order[static_cast<std::size_t>(i)].second)] = i;
  }
  Certificate c;
  c.fields.push_back(n);
  for (const auto& [id, node] : order) {
    c.fields.push_back(id);
  }
  for (int i = 0; i < n; ++i) {
    const Node v = order[static_cast<std::size_t>(i)].second;
    int mask = 0;
    for (const Node w : g.neighbors(v)) {
      mask |= 1 << index_of_node[static_cast<std::size_t>(w)];
    }
    c.fields.push_back(mask);
  }
  c.bits = n * n + n * ceil_log2(ids.bound() + 1) + ceil_log2(n + 1);
  return c;
}

std::optional<std::pair<Graph, std::vector<Ident>>>
decode_universal_certificate(const Certificate& c) {
  const auto& f = c.fields;
  if (f.empty() || f[0] < 1 || f[0] > 30) {
    return std::nullopt;
  }
  const int n = f[0];
  if (f.size() != static_cast<std::size_t>(1 + 2 * n)) {
    return std::nullopt;
  }
  std::vector<Ident> ids(f.begin() + 1, f.begin() + 1 + n);
  for (int i = 0; i < n; ++i) {
    if (ids[static_cast<std::size_t>(i)] < 1 ||
        (i > 0 && ids[static_cast<std::size_t>(i)] <=
                      ids[static_cast<std::size_t>(i - 1)])) {
      return std::nullopt;  // ids strictly increasing (injective)
    }
  }
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    const int row = f[static_cast<std::size_t>(1 + n + i)];
    if (row < 0 || row >= (1 << n)) {
      return std::nullopt;
    }
    if ((row >> i) & 1) {
      return std::nullopt;  // no loops
    }
    for (int j = 0; j < n; ++j) {
      if ((row >> j) & 1) {
        // Symmetry check via the mirrored bit.
        const int other = f[static_cast<std::size_t>(1 + n + j)];
        if (((other >> i) & 1) == 0) {
          return std::nullopt;
        }
        if (i < j) {
          g.add_edge(i, j);
        }
      }
    }
  }
  return std::make_pair(std::move(g), std::move(ids));
}

bool UniversalDecoder::accept(const View& view) const {
  const auto own = decode_universal_certificate(view.center_label());
  if (!own.has_value()) {
    return false;
  }
  const auto& [claimed, ids] = *own;
  // (2) Neighbors carry the identical certificate.
  for (const Node w : view.g.neighbors(view.center)) {
    if (!(view.labels[static_cast<std::size_t>(w)] == view.center_label())) {
      return false;
    }
  }
  // (3) Own identifier appears; actual incidence equals the matrix row.
  const auto it =
      std::lower_bound(ids.begin(), ids.end(), view.center_id());
  if (it == ids.end() || *it != view.center_id()) {
    return false;
  }
  const int my_index = static_cast<int>(it - ids.begin());
  if (claimed.degree(my_index) != view.center_degree()) {
    return false;
  }
  for (const Node w : view.g.neighbors(view.center)) {
    const Ident wid = view.ids[static_cast<std::size_t>(w)];
    const auto wit = std::lower_bound(ids.begin(), ids.end(), wid);
    if (wit == ids.end() || *wit != wid) {
      return false;
    }
    if (!claimed.has_edge(my_index, static_cast<int>(wit - ids.begin()))) {
      return false;
    }
  }
  // (4) The predicate holds on the decoded graph.
  return predicate_(claimed);
}

UniversalLcp::UniversalLcp(GraphPredicate predicate, std::string name)
    : predicate_(predicate), decoder_(predicate, std::move(name)) {}

std::optional<Labeling> UniversalLcp::prove(const Graph& g,
                                            const PortAssignment& /*ports*/,
                                            const IdAssignment& ids) const {
  if (!in_promise(g)) {
    return std::nullopt;
  }
  const Certificate cert = make_universal_certificate(g, ids);
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    labels.at(v) = cert;
  }
  return labels;
}

bool UniversalLcp::in_promise(const Graph& g) const {
  return g.num_nodes() >= 1 && g.num_nodes() <= 30 && predicate_(g);
}

std::vector<Certificate> UniversalLcp::certificate_space(
    const Graph& g, const IdAssignment& ids, Node /*v*/) const {
  // Honest certificates of every graph over the SAME id set -- the
  // adversary's only leverage is claiming a different topology. Capped to
  // tiny n (2^C(n,2) matrices).
  const int n = g.num_nodes();
  SHLCP_CHECK_MSG(n <= 5, "universal certificate space is capped at n = 5");
  std::vector<Certificate> space;
  for_each_graph(n, [&](const Graph& h) {
    space.push_back(make_universal_certificate(h, ids));
    return true;
  });
  return space;
}

UniversalLcp make_universal_bipartiteness_lcp() {
  return UniversalLcp([](const Graph& g) { return is_bipartite(g); },
                      "bipartite");
}

}  // namespace shlcp
