#include "interactive/session.h"

#include <utility>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::ia {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kAwaitCommit:
      return "await_commit";
    case SessionState::kAwaitOpen:
      return "await_open";
    case SessionState::kDone:
      return "done";
  }
  return "?";
}

SessionMachine::SessionMachine(Graph g, int k, std::uint64_t rounds,
                               std::uint64_t challenge_seed,
                               std::string session_id)
    : g_(std::move(g)),
      k_(k),
      rounds_(rounds),
      challenge_seed_(challenge_seed),
      session_id_(std::move(session_id)) {
  SHLCP_CHECK_MSG(g_.num_edges() >= 1,
                  "SessionMachine: a challenge needs at least one edge");
  SHLCP_CHECK_MSG(k_ >= 2, "SessionMachine: need k >= 2");
  SHLCP_CHECK_MSG(rounds_ >= 1, "SessionMachine: need rounds >= 1");
}

Edge SessionMachine::challenge_for(std::uint64_t round) const {
  Rng rng = Rng::stream(challenge_seed_, kDomChallenge, round);
  const auto m = static_cast<std::uint64_t>(g_.num_edges());
  return g_.edges()[static_cast<std::size_t>(rng.next_below(m))];
}

StepOutcome SessionMachine::snapshot() const {
  StepOutcome out;
  out.accepted = true;
  out.state = state_;
  out.rounds_done = rounds_done_;
  if (state_ == SessionState::kDone) {
    out.verdict = verdict_;
  }
  return out;
}

StepOutcome SessionMachine::reject(std::string why) const {
  StepOutcome out;
  out.accepted = false;
  out.error = std::move(why);
  out.state = state_;
  out.rounds_done = rounds_done_;
  return out;
}

StepOutcome SessionMachine::on_commit(
    const std::vector<std::uint64_t>& commitments) {
  if (state_ != SessionState::kAwaitCommit) {
    return reject(format("commit in state %s (round %llu)", to_string(state_),
                         static_cast<unsigned long long>(rounds_done_)));
  }
  if (static_cast<int>(commitments.size()) != g_.num_nodes()) {
    return reject(format("commit must cover every node: got %zu, need %d",
                         commitments.size(), g_.num_nodes()));
  }
  RoundRecord rec;
  rec.commitments = commitments;
  rec.challenge = challenge_for(rounds_done_);
  transcript_.push_back(std::move(rec));
  state_ = SessionState::kAwaitOpen;

  StepOutcome out = snapshot();
  out.challenge = transcript_.back().challenge;
  return out;
}

StepOutcome SessionMachine::on_open(const Opening& a, const Opening& b) {
  if (state_ != SessionState::kAwaitOpen) {
    return reject(format("open in state %s (round %llu)", to_string(state_),
                         static_cast<unsigned long long>(rounds_done_)));
  }
  RoundRecord& rec = transcript_.back();
  const Edge ch = rec.challenge;
  // Shape first: both challenged endpoints, each exactly once. A
  // mismatch is a strict rejection (session unchanged) -- the prover
  // answered the wrong question, it was not caught cheating.
  const Opening* for_u = nullptr;
  const Opening* for_v = nullptr;
  for (const Opening* o : {&a, &b}) {
    if (o->node == ch.u && for_u == nullptr) {
      for_u = o;
    } else if (o->node == ch.v && for_v == nullptr) {
      for_v = o;
    } else {
      return reject(format(
          "open must reveal exactly the challenged edge {%d, %d}; got node %d",
          ch.u, ch.v, o->node));
    }
  }

  // Verification: from here on the message is an answer to the
  // challenge, and any failure consumes the session.
  rec.opened = true;
  rec.open_u = *for_u;
  rec.open_v = *for_v;
  std::string fail;
  for (const Opening* o : {for_u, for_v}) {
    if (o->color < 0 || o->color >= k_) {
      fail = format("node %d revealed color %d outside [0, %d)", o->node,
                    o->color, k_);
      break;
    }
    const std::uint64_t expect =
        rec.commitments[static_cast<std::size_t>(o->node)];
    const std::uint64_t got =
        commitment(session_id_, rounds_done_, o->node, o->color, o->nonce);
    if (got != expect) {
      fail = format("node %d opening does not bind: commitment %016llx, "
                    "opened to %016llx",
                    o->node, static_cast<unsigned long long>(expect),
                    static_cast<unsigned long long>(got));
      break;
    }
  }
  if (fail.empty() && for_u->color == for_v->color) {
    fail = format("challenged edge {%d, %d} is monochromatic (color %d)",
                  ch.u, ch.v, for_u->color);
  }

  rec.ok = fail.empty();
  rec.fail = fail;
  StepOutcome out;
  if (rec.ok) {
    ++rounds_done_;
    if (rounds_done_ == rounds_) {
      state_ = SessionState::kDone;
      verdict_ = true;
    } else {
      state_ = SessionState::kAwaitCommit;
    }
  } else {
    state_ = SessionState::kDone;
    verdict_ = false;
  }
  out = snapshot();
  out.round_ok = rec.ok;
  out.round_fail = rec.fail;
  return out;
}

std::string SessionMachine::verify_transcript() const {
  for (std::size_t r = 0; r < transcript_.size(); ++r) {
    const RoundRecord& rec = transcript_[r];
    const auto round = static_cast<std::uint64_t>(r);
    if (static_cast<int>(rec.commitments.size()) != g_.num_nodes()) {
      return format("round %zu: %zu commitments for %d nodes", r,
                    rec.commitments.size(), g_.num_nodes());
    }
    if (!(rec.challenge == challenge_for(round))) {
      return format("round %zu: challenge {%d, %d} is not the seeded draw", r,
                    rec.challenge.u, rec.challenge.v);
    }
    if (!rec.opened) {
      continue;  // session ended (or was abandoned) before the opening
    }
    const bool shape_ok = rec.open_u.node == rec.challenge.u &&
                          rec.open_v.node == rec.challenge.v;
    if (!shape_ok) {
      return format("round %zu: openings {%d, %d} do not match challenge "
                    "{%d, %d}",
                    r, rec.open_u.node, rec.open_v.node, rec.challenge.u,
                    rec.challenge.v);
    }
    bool binds = true;
    for (const Opening* o : {&rec.open_u, &rec.open_v}) {
      binds = binds && o->color >= 0 && o->color < k_ &&
              commitment(session_id_, round, o->node, o->color, o->nonce) ==
                  rec.commitments[static_cast<std::size_t>(o->node)];
    }
    const bool judged_ok =
        binds && rec.open_u.color != rec.open_v.color;
    if (judged_ok != rec.ok) {
      return format("round %zu: recorded verdict %s disagrees with "
                    "re-verification %s",
                    r, rec.ok ? "ok" : "fail", judged_ok ? "ok" : "fail");
    }
  }
  if (state_ == SessionState::kDone && verdict_) {
    if (rounds_done_ != rounds_) {
      return format("accepted after %llu of %llu rounds",
                    static_cast<unsigned long long>(rounds_done_),
                    static_cast<unsigned long long>(rounds_));
    }
    for (const RoundRecord& rec : transcript_) {
      if (!rec.opened || !rec.ok) {
        return "accepted with an unopened or failed round in the transcript";
      }
    }
  }
  return "";
}

}  // namespace shlcp::ia
