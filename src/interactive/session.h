// The verifier's session state machine of the interactive protocol.
//
// SessionMachine is pure: no clocks, no transport, no locks -- one
// instance is one session's verifier, fed prover messages and returning
// typed outcomes. The lifecycle is
//
//   kAwaitCommit --on_commit--> kAwaitOpen --on_open--> kAwaitCommit
//        |                                    |            (next round)
//        |                                    +--> kDone (verdict)
//        +------------------ (any misuse) ----+
//
// with *strict state-transition rejection*: a message that arrives in
// the wrong state or with the wrong shape (wrong commitment count,
// opening of a non-challenged node, duplicate endpoint) is refused
// without touching the session -- StepOutcome::accepted == false and
// the machine stays exactly where it was. Only a *well-formed* opening
// that fails verification (commitment mismatch, equal or out-of-range
// colors) consumes the session: the round fails, the verdict is reject,
// and the machine is done. The distinction matters operationally: a
// retried or reordered frame must not burn a session, but a prover
// caught cheating must not get another try.
//
// Challenges are drawn from Rng::stream(challenge_seed, kDomChallenge,
// round), so a session's full challenge sequence is a pure function of
// (challenge_seed, round count) -- transcripts replay exactly, which is
// what lets the audits re-verify them independently.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "interactive/commit.h"

namespace shlcp::ia {

enum class SessionState { kAwaitCommit, kAwaitOpen, kDone };

/// Wire spelling of a state ("await_commit", "await_open", "done").
const char* to_string(SessionState state);

/// One round of the transcript, as the verifier recorded it.
struct RoundRecord {
  std::vector<std::uint64_t> commitments;
  Edge challenge{0, 0};
  bool opened = false;
  Opening open_u;  // endpoint challenge.u (when opened)
  Opening open_v;  // endpoint challenge.v (when opened)
  bool ok = false;
  std::string fail;  // why the round failed ("" when ok or unopened)
};

/// Outcome of delivering one prover message.
struct StepOutcome {
  /// False = strict rejection: the message did not fit the current
  /// state or shape and the session is unchanged. `error` says why.
  bool accepted = false;
  std::string error;

  SessionState state = SessionState::kAwaitCommit;
  std::uint64_t rounds_done = 0;

  /// Set when a commit was accepted: the edge to open.
  std::optional<Edge> challenge;
  /// Set when a well-formed open was judged: did the round verify?
  std::optional<bool> round_ok;
  std::string round_fail;
  /// Set when state == kDone: the session verdict.
  std::optional<bool> verdict;
};

class SessionMachine {
 public:
  /// Requires num_edges >= 1 (a challenge needs an edge), k >= 2, and
  /// rounds >= 1; the caller validates user input first (the service
  /// maps violations to invalid_params).
  SessionMachine(Graph g, int k, std::uint64_t rounds,
                 std::uint64_t challenge_seed, std::string session_id);

  /// Round commitment: exactly one entry per node.
  StepOutcome on_commit(const std::vector<std::uint64_t>& commitments);

  /// Opening of the challenged edge's endpoints, in either order.
  StepOutcome on_open(const Opening& a, const Opening& b);

  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t rounds_done() const { return rounds_done_; }
  /// Meaningful once state() == kDone.
  [[nodiscard]] bool verdict() const { return verdict_; }
  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] const std::string& session_id() const { return session_id_; }
  [[nodiscard]] const std::vector<RoundRecord>& transcript() const {
    return transcript_;
  }

  /// The challenge the machine draws (or drew) for `round`; pure in
  /// (challenge_seed, round). Exposed so audits and tests can predict
  /// and re-verify transcripts without replaying the session.
  [[nodiscard]] Edge challenge_for(std::uint64_t round) const;

  /// Independent re-verification of a recorded transcript against this
  /// session's parameters: every opened round's challenge must match
  /// challenge_for, both openings must recompute their commitments, and
  /// the revealed colors must be distinct and in range. Returns "" when
  /// consistent, else a one-line description of the first violation.
  /// The binding audit runs this over accepted sessions -- an accepted
  /// transcript that fails re-verification is a binding violation.
  [[nodiscard]] std::string verify_transcript() const;

 private:
  StepOutcome reject(std::string why) const;
  StepOutcome snapshot() const;

  Graph g_;
  int k_;
  std::uint64_t rounds_;
  std::uint64_t challenge_seed_;
  std::string session_id_;

  SessionState state_ = SessionState::kAwaitCommit;
  std::uint64_t rounds_done_ = 0;
  bool verdict_ = false;
  std::vector<RoundRecord> transcript_;
};

}  // namespace shlcp::ia
