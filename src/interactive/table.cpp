#include "interactive/table.h"

#include <chrono>
#include <utility>
#include <vector>

#include "util/check.h"

namespace shlcp::ia {

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SessionTable::SessionTable(SessionLimits limits,
                           std::function<std::uint64_t()> now_ms)
    : limits_(limits),
      now_ms_(now_ms ? std::move(now_ms) : steady_now_ms) {}

void SessionTable::retire_locked(
    std::unordered_map<std::string, Entry>::iterator it) {
  const std::int64_t owner = it->second.owner;
  if (owner >= 0) {
    auto po = per_owner_.find(owner);
    if (po != per_owner_.end() && --po->second == 0) {
      per_owner_.erase(po);
    }
  }
  sessions_.erase(it);
}

std::size_t SessionTable::sweep_locked() {
  const std::uint64_t now = now_ms_();
  std::vector<std::string> overdue;
  for (const auto& [id, entry] : sessions_) {
    if (now - entry.last_touch_ms > limits_.ttl_ms) {
      overdue.push_back(id);
    }
  }
  for (const std::string& id : overdue) {
    retire_locked(sessions_.find(id));
    ++counters_.expired;
  }
  return overdue.size();
}

std::size_t SessionTable::sweep() {
  const std::lock_guard<std::mutex> lock(mu_);
  return sweep_locked();
}

SessionTable::Refusal SessionTable::open(
    const std::string& id, std::int64_t owner,
    const std::function<std::unique_ptr<InteractiveSession>()>& make) {
  const std::lock_guard<std::mutex> lock(mu_);
  sweep_locked();
  if (sessions_.count(id) != 0) {
    return Refusal::kExists;
  }
  if (sessions_.size() >= limits_.global_max) {
    ++counters_.refused;
    return Refusal::kGlobalCap;
  }
  if (owner >= 0 && per_owner_[owner] >= limits_.per_owner_max) {
    if (per_owner_[owner] == 0) {
      per_owner_.erase(owner);
    }
    ++counters_.refused;
    return Refusal::kOwnerCap;
  }
  Entry entry;
  entry.session = make();
  SHLCP_CHECK_MSG(entry.session != nullptr,
                  "SessionTable: protocol returned no session");
  entry.owner = owner;
  entry.last_touch_ms = now_ms_();
  sessions_.emplace(id, std::move(entry));
  if (owner >= 0) {
    ++per_owner_[owner];
  }
  ++counters_.opened;
  return Refusal::kNone;
}

SessionTable::StepResult SessionTable::step(const std::string& id,
                                            const Json& msg) {
  const std::lock_guard<std::mutex> lock(mu_);
  sweep_locked();
  StepResult res;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return res;
  }
  res.found = true;
  it->second.last_touch_ms = now_ms_();
  try {
    res.reply = it->second.session->step(msg);
  } catch (const StateError& e) {
    res.state_error = true;
    res.error = e.what();
    return res;
  }
  ++counters_.steps;
  if (it->second.session->done()) {
    // Retire on verdict: the reply carries it, the slot is freed.
    retire_locked(it);
    ++counters_.completed;
    res.completed = true;
  }
  return res;
}

SessionTable::CloseResult SessionTable::close(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mu_);
  sweep_locked();
  CloseResult res;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return res;
  }
  res.found = true;
  res.final_state = it->second.session->describe();
  retire_locked(it);
  ++counters_.aborted;
  return res;
}

Json SessionTable::describe(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? Json() : it->second.session->describe();
}

SessionCounters SessionTable::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionCounters c = counters_;
  c.live = sessions_.size();
  return c;
}

}  // namespace shlcp::ia
