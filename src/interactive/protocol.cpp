#include "interactive/protocol.h"

#include <utility>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::ia {

namespace {

/// Pulls an integer member with a range check; StateError is not
/// appropriate here -- open-time validation throws CheckError so the
/// service reports invalid_params.
std::int64_t open_param_int(const Json& params, std::string_view key,
                            std::int64_t def, std::int64_t lo,
                            std::int64_t hi) {
  if (!params.contains(key)) {
    return def;
  }
  const Json& v = params.at(key);
  SHLCP_CHECK_MSG(v.is_integer(),
                  format("'%s' must be an integer", std::string(key).c_str()));
  const std::int64_t x = v.as_int();
  SHLCP_CHECK_MSG(
      x >= lo && x <= hi,
      format("'%s' must be in [%lld, %lld]", std::string(key).c_str(),
             static_cast<long long>(lo), static_cast<long long>(hi)));
  return x;
}

[[noreturn]] void bad_msg(std::string why) { throw StateError(std::move(why)); }

std::uint64_t msg_hex(const Json& v, const char* what) {
  if (!v.is_string()) {
    bad_msg(format("%s must be a 16-hex-digit string", what));
  }
  const std::optional<std::uint64_t> parsed = parse_hex64(v.as_string());
  if (!parsed) {
    bad_msg(format("%s is not a hex value: '%s'", what,
                   v.as_string().c_str()));
  }
  return *parsed;
}

}  // namespace

KColCommitSession::KColCommitSession(Graph g, int k, std::uint64_t rounds,
                                     std::uint64_t challenge_seed,
                                     std::string session_id)
    : machine_(std::move(g), k, rounds, challenge_seed,
               std::move(session_id)) {}

Json KColCommitSession::step(const Json& msg) {
    if (!msg.is_object() || !msg.contains("type") ||
        !msg.at("type").is_string()) {
      bad_msg("session message must be an object with a string 'type'");
    }
    const std::string& type = msg.at("type").as_string();
    StepOutcome out;
    if (type == "commit") {
      out = machine_.on_commit(parse_commitments(msg));
    } else if (type == "open") {
      const auto [a, b] = parse_opens(msg);
      out = machine_.on_open(a, b);
    } else {
      bad_msg(format("unknown message type '%s' (known: commit, open)",
                     type.c_str()));
    }
    if (!out.accepted) {
      bad_msg(out.error);
    }
    Json reply = Json::object();
    reply["schema"] = kInteractiveSchema;
    reply["state"] = to_string(out.state);
    reply["rounds_done"] = out.rounds_done;
    if (out.challenge) {
      Json& ch = (reply["challenge"] = Json::array());
      ch.push_back(out.challenge->u);
      ch.push_back(out.challenge->v);
    }
    if (out.round_ok) {
      reply["round_ok"] = *out.round_ok;
      if (!out.round_fail.empty()) {
        reply["round_fail"] = out.round_fail;
      }
    }
    if (out.verdict) {
      reply["verdict"] = *out.verdict;
    }
    return reply;
}

bool KColCommitSession::done() const {
  return machine_.state() == SessionState::kDone;
}

Json KColCommitSession::describe() const {
    Json d = Json::object();
    d["schema"] = kInteractiveSchema;
    d["protocol"] = "kcol-commit";
    d["state"] = to_string(machine_.state());
    d["rounds_done"] = machine_.rounds_done();
    d["rounds"] = machine_.rounds();
    d["n"] = machine_.graph().num_nodes();
    d["m"] = machine_.graph().num_edges();
    d["k"] = machine_.k();
    if (machine_.state() == SessionState::kDone) {
      d["verdict"] = machine_.verdict();
    }
    return d;
}

std::vector<std::uint64_t> KColCommitSession::parse_commitments(
    const Json& msg) const {
    if (!msg.contains("commitments") || !msg.at("commitments").is_array()) {
      bad_msg("commit message needs a 'commitments' array");
    }
    std::vector<std::uint64_t> commits;
    commits.reserve(msg.at("commitments").size());
    for (const Json& c : msg.at("commitments").items()) {
      commits.push_back(msg_hex(c, "each commitment"));
    }
    return commits;
}

std::pair<Opening, Opening> KColCommitSession::parse_opens(
    const Json& msg) const {
    if (!msg.contains("opens") || !msg.at("opens").is_array() ||
        msg.at("opens").size() != 2) {
      bad_msg("open message needs an 'opens' array of exactly 2 entries");
    }
    Opening parsed[2];
    for (std::size_t i = 0; i < 2; ++i) {
      const Json& o = msg.at("opens").at(i);
      if (!o.is_array() || o.size() != 3 || !o.at(0).is_integer() ||
          !o.at(1).is_integer()) {
        bad_msg("each open entry must be [node, color, \"<nonce hex>\"]");
      }
      parsed[i].node = static_cast<int>(o.at(0).as_int());
      parsed[i].color = static_cast<int>(o.at(1).as_int());
      parsed[i].nonce = msg_hex(o.at(2), "each nonce");
    }
    return {parsed[0], parsed[1]};
}

std::string hex16(std::uint64_t v) {
  return format("%016llx", static_cast<unsigned long long>(v));
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  if (s.empty() || s.size() > 16) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::unique_ptr<InteractiveSession> KColCommitProtocol::open(
    const OpenContext& ctx) const {
  SHLCP_CHECK_MSG(ctx.graph.num_edges() >= 1,
                  "kcol-commit: the instance needs at least one edge");
  const int k =
      static_cast<int>(open_param_int(*ctx.params, "k", 2, 2, 64));
  const auto rounds = static_cast<std::uint64_t>(
      open_param_int(*ctx.params, "rounds", 8, 1, 4096));
  return std::make_unique<KColCommitSession>(ctx.graph, k, rounds,
                                             ctx.challenge_seed,
                                             ctx.session_id);
}

std::vector<std::unique_ptr<InteractiveProtocol>> standard_protocols() {
  std::vector<std::unique_ptr<InteractiveProtocol>> protocols;
  protocols.push_back(std::make_unique<KColCommitProtocol>());
  return protocols;
}

}  // namespace shlcp::ia
