// Commit-reveal primitives of the interactive hiding protocol
// (schema shlcp.ia.v1).
//
// The paper's hiding notion is information-theoretic: the verifier
// learns nothing about the k-coloring beyond its validity. This module
// implements the cryptographic cousin of that guarantee -- the classic
// commit-reveal interactive proof of k-colorability. One round:
//
//   1. The prover draws a fresh uniformly random permutation of the k
//      colors and a fresh nonce per node, and sends one binding
//      commitment per node to (permuted color, nonce).
//   2. The verifier challenges one uniformly random edge {u, v}.
//   3. The prover opens exactly the two challenged endpoints; the
//      verifier recomputes both commitments and accepts the round iff
//      they bind and the revealed colors are distinct and in [0, k).
//
// A cheating prover whose best committed coloring leaves b >= 1
// monochromatic edges survives a round with probability at most
// 1 - b/m <= 1 - 1/m, so R independent rounds amplify soundness to
// (1 - 1/m)^R. Hiding comes from the per-round permutation: for any
// proper coloring the opened ordered pair is uniform over the
// k*(k-1) distinct ordered color pairs, i.e. the transcript
// distribution is independent of which coloring the prover holds
// (interactive/audit.h turns both claims into checked invariants).
//
// The commitment is deliberately *not* cryptographically strong -- it
// is 64-bit FNV-1a + the splitmix64 finalizer, matching the digests
// used everywhere else in the repo (nbhd/checkpoint, service/cache).
// Binding here is an audited engineering property (the audit runs a
// bounded second-preimage search), not a security proof; the protocol
// *structure* is what the subsystem reproduces.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace shlcp::ia {

/// Schema tag of the interactive transcript protocol. Session replies
/// and DESIGN.md §17 reference it; bumping it orphans nothing (sessions
/// are ephemeral) but keeps wire archaeology honest.
inline constexpr const char* kInteractiveSchema = "shlcp.ia.v1";

/// Rng::stream domain tags of the subsystem. Disjoint constants per
/// purpose so the verifier's challenge stream, the prover's permutation
/// stream, and the prover's nonce stream never alias even when derived
/// from one master seed (tests/interactive_test.cpp checks this).
inline constexpr std::uint64_t kDomChallenge = 0x1a5e55101c4a11e0ULL;
inline constexpr std::uint64_t kDomPermutation = 0x1a5e5510be23417eULL;
inline constexpr std::uint64_t kDomNonce = 0x1a5e5510a02ce5edULL;

/// 64-bit FNV-1a over `bytes` (offset 0xcbf29ce484222325, prime
/// 0x100000001b3) -- the same digest family as nbhd/checkpoint.
std::uint64_t fnv1a64(std::string_view bytes);

/// The binding commitment of one node's permuted color in one round:
/// mix64(fnv1a64("ia1|<session>|<round>|<node>|<color>|<nonce>")).
/// Domain-separating on the session id and round number means a
/// commitment can never be replayed across rounds or sessions.
std::uint64_t commitment(std::string_view session_id, std::uint64_t round,
                         int node, int color, std::uint64_t nonce);

/// One opened endpoint of a challenged edge: the revealed permuted
/// color and the nonce that binds it to the round's commitment.
struct Opening {
  int node = 0;
  int color = 0;
  std::uint64_t nonce = 0;

  friend bool operator==(const Opening&, const Opening&) = default;
};

/// The prover half of the protocol, honest by construction: it commits
/// to whatever coloring it was handed (hand it an improper one to play
/// the adversary -- bench_interactive's amplification curve does) with
/// a fresh uniform color permutation and fresh nonces every round, and
/// opens exactly what is challenged. Deliberately graph-free: the
/// prover only ever needs its coloring, so shlcp_loadgen can drive
/// sessions over the wire without materializing the instance.
class CommitProver {
 public:
  /// `coloring[v]` in [0, k). `seed` keys the permutation and nonce
  /// streams (per-round sub-streams via Rng::stream).
  CommitProver(std::vector<int> coloring, int k, std::string session_id,
               std::uint64_t seed);

  /// Commitments for the next round (fresh permutation + nonces);
  /// entry v commits node v. Advances the round counter.
  std::vector<std::uint64_t> commit_round();

  /// Opening of `node` for the last committed round.
  [[nodiscard]] Opening open(int node) const;

  /// Rounds committed so far.
  [[nodiscard]] std::uint64_t rounds_committed() const { return round_; }

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(coloring_.size());
  }

 private:
  std::vector<int> coloring_;
  int k_;
  std::string session_id_;
  std::uint64_t seed_;
  std::uint64_t round_ = 0;          // rounds committed
  std::vector<int> permuted_;        // permuted color per node, current round
  std::vector<std::uint64_t> nonces_;
};

}  // namespace shlcp::ia
