#include "interactive/commit.h"

#include <utility>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::ia {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t commitment(std::string_view session_id, std::uint64_t round,
                         int node, int color, std::uint64_t nonce) {
  return mix64(fnv1a64(format(
      "ia1|%s|%llu|%d|%d|%016llx", std::string(session_id).c_str(),
      static_cast<unsigned long long>(round), node, color,
      static_cast<unsigned long long>(nonce))));
}

CommitProver::CommitProver(std::vector<int> coloring, int k,
                           std::string session_id, std::uint64_t seed)
    : coloring_(std::move(coloring)),
      k_(k),
      session_id_(std::move(session_id)),
      seed_(seed) {
  SHLCP_CHECK_MSG(k_ >= 2, "CommitProver: need k >= 2");
  SHLCP_CHECK_MSG(!coloring_.empty(), "CommitProver: empty coloring");
  for (const int c : coloring_) {
    SHLCP_CHECK_MSG(c >= 0 && c < k_, "CommitProver: color outside [0, k)");
  }
}

std::vector<std::uint64_t> CommitProver::commit_round() {
  // Fresh hiding material per round: the permutation and the nonces are
  // drawn from round-indexed sub-streams, so replaying a session from
  // its seed reproduces the transcript exactly.
  Rng perm_rng = Rng::stream(seed_, kDomPermutation, round_);
  const std::vector<int> perm = random_permutation(k_, perm_rng);
  Rng nonce_rng = Rng::stream(seed_, kDomNonce, round_);

  const std::size_t n = coloring_.size();
  permuted_.assign(n, 0);
  nonces_.assign(n, 0);
  std::vector<std::uint64_t> commits(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    permuted_[v] = perm[static_cast<std::size_t>(coloring_[v])];
    nonces_[v] = nonce_rng.next_u64();
    commits[v] = commitment(session_id_, round_, static_cast<int>(v),
                            permuted_[v], nonces_[v]);
  }
  ++round_;
  return commits;
}

Opening CommitProver::open(int node) const {
  SHLCP_CHECK_MSG(round_ > 0, "CommitProver: open before any commit");
  SHLCP_CHECK_MSG(node >= 0 && node < num_nodes(),
                  "CommitProver: open of unknown node");
  const auto v = static_cast<std::size_t>(node);
  return Opening{node, permuted_[v], nonces_[v]};
}

}  // namespace shlcp::ia
