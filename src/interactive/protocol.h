// Property-generic interactive session interface + the k-coloring
// commit-reveal protocol behind it.
//
// The hiding framework is not k-coloring-specific (the same authors'
// follow-up, arXiv 2502.13854, applies it to bipartiteness), so the
// session plumbing -- the service's SessionTable, the wire ops, the
// loadgen workload -- talks to sessions only through this interface.
// A new certified property plugs in by implementing InteractiveProtocol
// and registering it in standard_protocols(); the service, router
// affinity, TTL accounting, and bench harness come for free.
//
// Message adapter contract (wire schema shlcp.ia.v1): a session step is
// one JSON object with a "type" member. For kcol-commit:
//
//   {"type": "commit", "commitments": ["<16 hex>", ...]}   one per node
//     reply: {"schema", "state": "await_open", "rounds_done",
//             "challenge": [u, v]}
//   {"type": "open", "opens": [[node, color, "<16 hex nonce>"], x2]}
//     reply: {"schema", "state", "rounds_done", "round_ok",
//             "round_fail"?, "verdict"? }
//
// A message that is malformed or does not fit the session's current
// state throws StateError: the session is *unchanged* and the service
// surfaces the wire error "session_state" (HTTP 409). This mirrors
// SessionMachine's strict-transition rule one layer up.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "interactive/session.h"
#include "util/json.h"

namespace shlcp::ia {

/// Thrown by InteractiveSession::step on a message that is rejected
/// without touching session state (wire code "session_state").
class StateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One live session, protocol-agnostic.
class InteractiveSession {
 public:
  virtual ~InteractiveSession() = default;

  /// Delivers one prover message and returns the verifier's reply.
  /// Throws StateError on strict rejection (session unchanged).
  virtual Json step(const Json& msg) = 0;

  /// True once the session reached its verdict (no further steps).
  [[nodiscard]] virtual bool done() const = 0;

  /// State snapshot: {"schema", "protocol", "state", "rounds_done",
  /// ...protocol extras}. Session open/close replies embed it.
  [[nodiscard]] virtual Json describe() const = 0;
};

/// Everything a protocol gets to open a session. The host resolves
/// params["instance"] to a Graph up front (every graph-property
/// protocol needs one); protocol-specific members stay in `params`.
struct OpenContext {
  std::string session_id;
  Graph graph;
  const Json* params = nullptr;
  std::uint64_t challenge_seed = 0;
};

class InteractiveProtocol {
 public:
  virtual ~InteractiveProtocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Validates params and opens a session. Throws CheckError on bad
  /// parameters (the service maps it to invalid_params).
  [[nodiscard]] virtual std::unique_ptr<InteractiveSession> open(
      const OpenContext& ctx) const = 0;
};

/// Commit-reveal k-colorability (interactive/session.h). Params:
/// "k" (int, default 2, range [2, 64]) and "rounds" (int, default 8,
/// range [1, 4096]).
class KColCommitProtocol : public InteractiveProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "kcol-commit"; }
  [[nodiscard]] std::unique_ptr<InteractiveSession> open(
      const OpenContext& ctx) const override;
};

/// The kcol-commit session: the JSON message adapter over
/// SessionMachine. Public (rather than hidden behind the factory) so
/// the binding audit can drive byte-corrupted messages through the
/// *real* wire adapter and still re-verify the underlying transcript.
class KColCommitSession : public InteractiveSession {
 public:
  KColCommitSession(Graph g, int k, std::uint64_t rounds,
                    std::uint64_t challenge_seed, std::string session_id);

  Json step(const Json& msg) override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] Json describe() const override;

  [[nodiscard]] const SessionMachine& machine() const { return machine_; }

 private:
  std::vector<std::uint64_t> parse_commitments(const Json& msg) const;
  std::pair<Opening, Opening> parse_opens(const Json& msg) const;

  SessionMachine machine_;
};

/// All shipped interactive protocols, in registration order.
std::vector<std::unique_ptr<InteractiveProtocol>> standard_protocols();

/// "%016llx" of `v` -- the wire spelling of commitments and nonces.
std::string hex16(std::uint64_t v);

/// Parses 1..16 hex digits; nullopt on anything else.
std::optional<std::uint64_t> parse_hex64(std::string_view s);

}  // namespace shlcp::ia
