#include "interactive/audit.h"

#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/format.h"

namespace shlcp::ia {

namespace {

/// Monochromatic edges of `coloring` on `g`.
int bad_edge_count(const Graph& g, const std::vector<int>& coloring) {
  int bad = 0;
  for (const Edge& e : g.edges()) {
    bad += coloring[static_cast<std::size_t>(e.u)] ==
                   coloring[static_cast<std::size_t>(e.v)]
               ? 1
               : 0;
  }
  return bad;
}

void add_finding(AuditReport& report, const char* invariant, std::string repro,
                 std::string detail) {
  report.ok = false;
  report.findings.push_back(
      AuditFinding{invariant, std::move(repro), std::move(detail)});
}

/// Drives one full session of SessionMachine with `prover`; returns the
/// machine in its final state.
SessionMachine run_session(const Graph& g, CommitProver& prover, int k,
                           std::uint64_t rounds, std::uint64_t challenge_seed,
                           const std::string& session_id) {
  SessionMachine machine(g, k, rounds, challenge_seed, session_id);
  while (machine.state() != SessionState::kDone) {
    const StepOutcome committed = machine.on_commit(prover.commit_round());
    SHLCP_CHECK(committed.accepted && committed.challenge.has_value());
    const Edge ch = *committed.challenge;
    const StepOutcome opened =
        machine.on_open(prover.open(ch.u), prover.open(ch.v));
    SHLCP_CHECK(opened.accepted);
  }
  return machine;
}

/// Flips one random byte of `text` (never the result of a no-op xor).
void corrupt_byte(std::string& text, Rng& rng) {
  if (text.empty()) {
    return;
  }
  const std::size_t pos = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(text.size())));
  const char mask =
      static_cast<char>(1u << static_cast<unsigned>(rng.next_below(8)));
  text[pos] = static_cast<char>(text[pos] ^ mask);
}

}  // namespace

std::vector<TranscriptAttack> standard_attacks(std::uint64_t seed) {
  return {
      TranscriptAttack{"ia-clean", mix64(seed ^ 0x01), 0},
      TranscriptAttack{"ia-corrupt-light", mix64(seed ^ 0x02), 60},
      TranscriptAttack{"ia-corrupt-heavy", mix64(seed ^ 0x03), 400},
      TranscriptAttack{"ia-corrupt-always", mix64(seed ^ 0x04), 1000},
  };
}

BindingAuditResult audit_interactive_binding(const std::string& instance_name,
                                             const Graph& g,
                                             const std::vector<int>& coloring,
                                             int k,
                                             const BindingAuditOptions& opt) {
  SHLCP_CHECK_MSG(bad_edge_count(g, coloring) == 0,
                  "binding audit: the host coloring must be proper");
  BindingAuditResult res;
  const std::string repro_base =
      format("interactive:binding instance=%s k=%d seed=0x%llx",
             instance_name.c_str(), k, static_cast<unsigned long long>(opt.seed));

  // --- 1. Bounded second-preimage search against the commitment ---
  // Open a round honestly, then search for (wrong color, nonce) pairs
  // that bind to the same commitment. Any hit means a prover could have
  // opened two colors for one commitment: a binding violation.
  {
    const std::string sid = "audit-preimage";
    CommitProver prover(coloring, k, sid, mix64(opt.seed ^ 0x11));
    SessionMachine machine(g, k, /*rounds=*/1, mix64(opt.seed ^ 0x12), sid);
    const StepOutcome committed = machine.on_commit(prover.commit_round());
    SHLCP_CHECK(committed.accepted);
    const Edge ch = *committed.challenge;
    Rng forge_rng = Rng::stream(opt.seed, 0xf02e5ULL, 0);
    for (const int node : {ch.u, ch.v}) {
      const Opening honest = prover.open(node);
      const std::uint64_t bound =
          commitment(sid, 0, node, honest.color, honest.nonce);
      for (int wrong = 0; wrong < k; ++wrong) {
        if (wrong == honest.color) {
          continue;
        }
        for (int t = 0; t < opt.forgery_attempts; ++t) {
          ++res.forgeries_tried;
          if (commitment(sid, 0, node, wrong, forge_rng.next_u64()) == bound) {
            add_finding(res.report, "binding", repro_base,
                        format("second preimage: node %d opens color %d and "
                               "%d for one commitment",
                               node, honest.color, wrong));
          }
        }
      }
    }
  }

  // --- 2. Machine-level forged opens ---
  // Each forgery consumes a session (a caught cheat is final), so each
  // try drives a fresh one: honest commit, then open the challenged
  // edge with one endpoint's color swapped and a random nonce. The
  // round must fail.
  for (int i = 0; i < opt.machine_forgeries; ++i) {
    const std::string sid = format("audit-forge-%d", i);
    CommitProver prover(coloring, k, sid, mix64(opt.seed ^ (0x100u + i)));
    SessionMachine machine(g, k, /*rounds=*/1, mix64(opt.seed ^ (0x200u + i)),
                           sid);
    const StepOutcome committed = machine.on_commit(prover.commit_round());
    const Edge ch = *committed.challenge;
    Opening forged = prover.open(ch.v);
    forged.color = (forged.color + 1 + i % (k - 1)) % k;
    Rng nonce_rng = Rng::stream(opt.seed, 0xf0e9eULL, static_cast<std::uint64_t>(i));
    forged.nonce = nonce_rng.next_u64();
    const StepOutcome opened = machine.on_open(prover.open(ch.u), forged);
    SHLCP_CHECK(opened.accepted);
    if (opened.round_ok.value_or(false)) {
      add_finding(res.report, "binding", repro_base,
                  format("forged open accepted: node %d color %d", ch.v,
                         forged.color));
    }
  }

  // --- 3. Replay / double-delivery drills ---
  // A replayed opening and a double commit must be strictly rejected
  // (session unchanged), never re-judged.
  {
    const std::string sid = "audit-replay";
    CommitProver prover(coloring, k, sid, mix64(opt.seed ^ 0x31));
    SessionMachine machine(g, k, /*rounds=*/2, mix64(opt.seed ^ 0x32), sid);
    const StepOutcome committed = machine.on_commit(prover.commit_round());
    const Edge ch = *committed.challenge;
    const Opening a = prover.open(ch.u);
    const Opening b = prover.open(ch.v);
    // Double commit while an opening is due.
    ++res.replays_tried;
    if (machine.on_commit(prover.commit_round()).accepted) {
      add_finding(res.report, "binding", repro_base,
                  "double commit accepted while awaiting an opening");
    }
    const StepOutcome opened = machine.on_open(a, b);
    SHLCP_CHECK(opened.accepted && opened.round_ok.value_or(false));
    // Replay the same opening into the next round.
    ++res.replays_tried;
    if (machine.on_open(a, b).accepted) {
      add_finding(res.report, "binding", repro_base,
                  "replayed opening accepted across rounds");
    }
  }

  // --- 4. Transcript attacks through the wire adapter ---
  // Honest sessions through KColCommitSession with per-message byte
  // corruption (ChaosPlan-style seed/permille keying). Whatever the
  // corruption does, an accepting session must carry a transcript that
  // re-verifies independently -- and every transcript, accepted or
  // not, must be self-consistent.
  std::vector<TranscriptAttack> attacks =
      opt.attacks.empty() ? standard_attacks(opt.seed) : opt.attacks;
  for (std::size_t a = 0; a < attacks.size(); ++a) {
    const TranscriptAttack& attack = attacks[a];
    for (int s = 0; s < opt.sessions_per_attack; ++s) {
      const std::string sid = format("audit-%s-%d", attack.label.c_str(), s);
      const std::string repro =
          format("%s attack=%s session=%d", repro_base.c_str(),
                 attack.label.c_str(), s);
      CommitProver prover(coloring, k, sid,
                          mix64(opt.seed ^ (0x4000u + (a << 8) + s)));
      KColCommitSession session(g, k, opt.rounds,
                                mix64(opt.seed ^ (0x8000u + (a << 8) + s)),
                                sid);
      ++res.sessions;
      std::uint64_t msg_index = 0;
      Edge challenge{0, 0};
      bool awaiting_open = false;
      while (!session.done()) {
        Json msg = Json::object();
        if (!awaiting_open) {
          msg["type"] = "commit";
          Json& cs = (msg["commitments"] = Json::array());
          for (const std::uint64_t c : prover.commit_round()) {
            cs.push_back(hex16(c));
          }
        } else {
          msg["type"] = "open";
          Json& opens = (msg["opens"] = Json::array());
          for (const int node : {challenge.u, challenge.v}) {
            const Opening o = prover.open(node);
            Json& entry = opens.push_back(Json::array());
            entry.push_back(o.node);
            entry.push_back(o.color);
            entry.push_back(hex16(o.nonce));
          }
        }
        // First delivery may be corrupted in transit; the retry (the
        // prover's original bytes) is clean, so the drill always makes
        // progress.
        std::string wire = msg.dump();
        Rng rng = Rng::stream(attack.seed ^ res.sessions,
                              fnv1a64(attack.label), msg_index++);
        const bool corrupt =
            attack.corrupt_permille > 0 &&
            rng.next_below(1000) <
                static_cast<std::uint64_t>(attack.corrupt_permille);
        if (corrupt) {
          corrupt_byte(wire, rng);
          ++res.corrupted_messages;
        }
        Json reply;
        bool delivered = false;
        try {
          reply = session.step(Json::parse(wire));
          delivered = true;
        } catch (const CheckError&) {
        } catch (const StateError&) {
        }
        if (!delivered) {
          try {
            reply = session.step(msg);
          } catch (const StateError&) {
            // The corrupted delivery was *accepted* in a mangled form
            // (e.g. a commit with altered hex still parses); the honest
            // retry now mismatches the state. Resync from the reply we
            // never saw: abandon via describe().
            reply = session.describe();
          }
        }
        if (session.done()) {
          break;
        }
        const std::string& state = reply.at("state").as_string();
        awaiting_open = state == "await_open";
        if (awaiting_open && reply.contains("challenge")) {
          challenge.u = static_cast<int>(reply.at("challenge").at(0).as_int());
          challenge.v = static_cast<int>(reply.at("challenge").at(1).as_int());
        } else if (awaiting_open) {
          // Resynced mid-round: recover the pending challenge from the
          // machine (the prover would have gotten it in the lost reply).
          challenge = session.machine().transcript().back().challenge;
        }
      }
      const std::string inconsistency = session.machine().verify_transcript();
      if (!inconsistency.empty()) {
        add_finding(res.report, "binding", repro,
                    format("transcript fails re-verification: %s",
                           inconsistency.c_str()));
      }
    }
  }

  res.report.runs = res.sessions;
  for (const AuditFinding& f : res.report.findings) {
    res.violations += f.invariant == "binding" ? 1 : 0;
  }
  return res;
}

double chi_square_threshold(int df, double z) {
  SHLCP_CHECK(df >= 1);
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

HidingAuditResult audit_interactive_hiding(
    const std::string& instance_name, const Graph& g,
    const std::vector<std::vector<int>>& colorings, int k,
    const HidingAuditOptions& opt) {
  SHLCP_CHECK_MSG(!colorings.empty(), "hiding audit: need >= 1 coloring");
  HidingAuditResult res;
  const int cells = k * (k - 1);
  res.df = cells - 1;
  res.threshold = chi_square_threshold(res.df, opt.z);

  for (std::size_t ci = 0; ci < colorings.size(); ++ci) {
    const std::vector<int>& coloring = colorings[ci];
    SHLCP_CHECK_MSG(bad_edge_count(g, coloring) == 0,
                    "hiding audit: coloring must be proper");
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(cells), 0);
    std::uint64_t samples = 0;
    for (int s = 0; s < opt.sessions; ++s) {
      const std::string sid = format("audit-hide-%zu-%d", ci, s);
      CommitProver prover(
          coloring, k, sid,
          Rng::stream(opt.seed, 0x41d500 + ci, static_cast<std::uint64_t>(s))
              .next_u64());
      SessionMachine machine = run_session(
          g, prover, k, opt.rounds,
          Rng::stream(opt.seed, 0x41d600 + ci, static_cast<std::uint64_t>(s))
              .next_u64(),
          sid);
      SHLCP_CHECK(machine.verdict());
      for (const RoundRecord& rec : machine.transcript()) {
        const int a = rec.open_u.color;
        const int b = rec.open_v.color;
        // Ordered distinct pair (a, b) -> cell a*(k-1) + (b adjusted
        // past the diagonal).
        const int cell = a * (k - 1) + (b > a ? b - 1 : b);
        ++counts[static_cast<std::size_t>(cell)];
        ++samples;
      }
    }
    const double expected =
        static_cast<double>(samples) / static_cast<double>(cells);
    double chi2 = 0.0;
    for (const std::uint64_t c : counts) {
      const double d = static_cast<double>(c) - expected;
      chi2 += d * d / expected;
    }
    HidingColoringStat stat;
    stat.chi2 = chi2;
    stat.samples = samples;
    stat.ok = chi2 <= res.threshold;
    res.per_coloring.push_back(stat);
    res.report.runs += static_cast<std::uint64_t>(opt.sessions);
    if (!stat.ok) {
      add_finding(
          res.report, "hiding",
          format("interactive:hiding instance=%s k=%d coloring=%zu "
                 "seed=0x%llx",
                 instance_name.c_str(), k, ci,
                 static_cast<unsigned long long>(opt.seed)),
          format("revealed color pairs deviate from uniform: chi2 %.2f > "
                 "%.2f (df %d, %llu samples)",
                 chi2, res.threshold, res.df,
                 static_cast<unsigned long long>(samples)));
    }
  }
  return res;
}

std::vector<AmplificationPoint> measure_amplification(
    const Graph& g, const std::vector<int>& cheat_coloring, int k,
    const AmplificationOptions& opt) {
  const int bad = bad_edge_count(g, cheat_coloring);
  SHLCP_CHECK_MSG(bad >= 1,
                  "amplification: the cheat coloring must be improper");
  const double m = static_cast<double>(g.num_edges());
  std::vector<AmplificationPoint> curve;
  for (const std::uint64_t rounds : opt.round_counts) {
    AmplificationPoint point;
    point.rounds = rounds;
    point.sessions = opt.sessions;
    for (int s = 0; s < opt.sessions; ++s) {
      const std::string sid =
          format("amp-%llu-%d", static_cast<unsigned long long>(rounds), s);
      CommitProver prover(
          cheat_coloring, k, sid,
          Rng::stream(opt.seed, 0xa3b100 + rounds, static_cast<std::uint64_t>(s))
              .next_u64());
      SessionMachine machine(
          g, k, rounds,
          Rng::stream(opt.seed, 0xa3b200 + rounds, static_cast<std::uint64_t>(s))
              .next_u64(),
          sid);
      while (machine.state() != SessionState::kDone) {
        const StepOutcome committed = machine.on_commit(prover.commit_round());
        SHLCP_CHECK(committed.accepted);
        const Edge ch = *committed.challenge;
        const StepOutcome opened =
            machine.on_open(prover.open(ch.u), prover.open(ch.v));
        SHLCP_CHECK(opened.accepted);
      }
      point.accepted += machine.verdict() ? 1 : 0;
    }
    point.rate =
        static_cast<double>(point.accepted) / static_cast<double>(opt.sessions);
    point.envelope = std::pow(1.0 - 1.0 / m, static_cast<double>(rounds));
    point.sigma = std::sqrt(point.envelope * (1.0 - point.envelope) /
                            static_cast<double>(opt.sessions));
    point.within = point.rate <= point.envelope + opt.slack_z * point.sigma;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace shlcp::ia
