// Stateful session registry of the service layer.
//
// The batching/caching service stack was built for stateless,
// cacheable requests; interactive sessions are neither. SessionTable is
// the one piece of state that makes them servable anyway: a mutexed
// map from client-chosen session id to a live InteractiveSession, with
//
//   - TTL eviction: a session untouched for ttl_ms is expired on the
//     next table operation (steps refresh the clock). The clock is
//     injectable so tests and the bench drive expiry deterministically.
//   - caps: a global cap and a per-owner cap (the owner is the
//     transport connection slot; owner < 0 -- in-process callers --
//     is exempt from the per-owner cap). A refused open feeds the
//     service's overload-shed path (wire error "overloaded" with a
//     retry_after_ms hint).
//   - exact accounting: every successful open ends in exactly one of
//     {completed, expired, aborted} or is still live, so
//
//       opened == completed + expired + aborted + live
//
//     holds at every instant, and with refusals added both sides of
//     bench_interactive's gate `open attempts == completed + expired
//     + refused` are exact counters, never estimates.
//
// A session that reaches its verdict is retired immediately (counted
// completed): the verdict rode the final step's reply, so keeping the
// corpse around would only occupy cap space. session_close on a live
// session counts it aborted.
//
// step() runs the protocol step under the table mutex. Sessions are
// small (pool-sized graphs, O(n) hashing per message), so one lock is
// cheaper than per-session locking plus lifetime juggling against the
// TTL sweeper; the serving benches keep this honest.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "interactive/protocol.h"

namespace shlcp::ia {

struct SessionLimits {
  std::uint64_t ttl_ms = 30'000;
  std::size_t global_max = 256;
  std::size_t per_owner_max = 64;
};

/// Monotonic totals (live is the only gauge).
struct SessionCounters {
  std::uint64_t opened = 0;     // successful opens
  std::uint64_t refused = 0;    // opens refused by a cap
  std::uint64_t completed = 0;  // reached a verdict
  std::uint64_t expired = 0;    // TTL-evicted before a verdict
  std::uint64_t aborted = 0;    // closed by the client before a verdict
  std::uint64_t steps = 0;      // messages delivered to live sessions
  std::uint64_t live = 0;       // currently open
};

class SessionTable {
 public:
  /// `now_ms` must be monotonic; defaults to steady_clock.
  explicit SessionTable(SessionLimits limits,
                        std::function<std::uint64_t()> now_ms = {});

  enum class Refusal { kNone, kExists, kGlobalCap, kOwnerCap };

  /// Opens a session under `id` for `owner`. `make` is invoked (under
  /// the lock) only when the caps admit it; its CheckError propagates.
  Refusal open(const std::string& id, std::int64_t owner,
               const std::function<std::unique_ptr<InteractiveSession>()>& make);

  struct StepResult {
    bool found = false;
    bool state_error = false;  // strict rejection; session unchanged
    std::string error;         // set on state_error
    Json reply;                // set on success
    bool completed = false;    // this step reached the verdict
  };
  StepResult step(const std::string& id, const Json& msg);

  struct CloseResult {
    bool found = false;
    Json final_state;  // describe() of the session at close
  };
  CloseResult close(const std::string& id);

  /// describe() of a live session (session_open echoes it).
  [[nodiscard]] Json describe(const std::string& id) const;

  /// Expires overdue sessions now; returns how many. Every public
  /// operation sweeps first, so expiry needs no background thread.
  std::size_t sweep();

  [[nodiscard]] SessionCounters counters() const;
  [[nodiscard]] const SessionLimits& limits() const { return limits_; }

 private:
  struct Entry {
    std::unique_ptr<InteractiveSession> session;
    std::int64_t owner = -1;
    std::uint64_t last_touch_ms = 0;
  };

  std::size_t sweep_locked();
  void retire_locked(std::unordered_map<std::string, Entry>::iterator it);

  SessionLimits limits_;
  std::function<std::uint64_t()> now_ms_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> sessions_;
  std::unordered_map<std::int64_t, std::size_t> per_owner_;
  SessionCounters counters_;
};

}  // namespace shlcp::ia
