// Audited invariants of the interactive protocol: binding, hiding, and
// the soundness-amplification envelope.
//
// These extend the lcp/audit invariant family ("completeness",
// "soundness", "degraded-view", "attribution") with two interactive
// ones, reported through the same AuditReport/AuditFinding machinery so
// bench gates and repro conventions carry over:
//
//   "binding"  no prover can open two colors for one commitment, a
//              replayed opening is strictly rejected, and a transcript
//              attacked in transit (byte corruption in the style of
//              service/chaos.h's ChaosPlan, keyed by the same
//              seed/permille discipline) can never yield an accepting
//              session whose transcript fails independent
//              re-verification. The audit runs a bounded
//              second-preimage search against the commitment plus
//              machine-level forgery/replay/corruption drills.
//
//   "hiding"   the transcript leaks nothing about the coloring: for a
//              proper coloring, the ordered color pair revealed on the
//              challenged edge is uniform over the k*(k-1) distinct
//              pairs -- the *same* distribution for every proper
//              coloring, which is exactly distribution-independence.
//              Checked with a chi-square test against uniform, run
//              per ground-truth coloring across permutation-randomized
//              sessions (threshold via the Wilson-Hilferty cube-root
//              approximation at z = 3.09, alpha ~ 1e-3).
//
// measure_amplification records the cheating-prover acceptance curve:
// a prover whose best coloring leaves >= 1 monochromatic edge survives
// R rounds with probability <= (1 - 1/m)^R; bench_interactive gates the
// measured curve against that envelope plus binomial noise.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "interactive/protocol.h"
#include "lcp/audit.h"

namespace shlcp::ia {

/// One transcript attack: per-message byte corruption at
/// `corrupt_permille`, keyed by (seed, message index) via Rng::stream.
/// Mirrors service/chaos.h's ChaosPlan fields so the bench can replay
/// the standard chaos family against session transcripts verbatim.
struct TranscriptAttack {
  std::string label;
  std::uint64_t seed = 0;
  int corrupt_permille = 0;
};

/// The default attack family: off / light / heavy / always corruption.
std::vector<TranscriptAttack> standard_attacks(std::uint64_t seed);

struct BindingAuditOptions {
  std::uint64_t seed = 0xB1D1;
  std::uint64_t rounds = 4;
  /// Honest sessions driven through the JSON adapter per attack.
  int sessions_per_attack = 4;
  /// Nonce tries per wrong color in the second-preimage search.
  int forgery_attempts = 2048;
  /// Machine-level forged opens (each needs a fresh session).
  int machine_forgeries = 16;
  /// Empty -> standard_attacks(seed).
  std::vector<TranscriptAttack> attacks;
};

struct BindingAuditResult {
  AuditReport report;
  std::uint64_t sessions = 0;
  std::uint64_t forgeries_tried = 0;
  std::uint64_t replays_tried = 0;
  std::uint64_t corrupted_messages = 0;
  std::uint64_t violations = 0;  // == report.findings with "binding"
};

/// `coloring` must be proper for (g, k) -- the honest sessions the
/// attacks ride on have to be acceptable in the first place.
BindingAuditResult audit_interactive_binding(const std::string& instance_name,
                                             const Graph& g,
                                             const std::vector<int>& coloring,
                                             int k,
                                             const BindingAuditOptions& opt);

struct HidingAuditOptions {
  std::uint64_t seed = 0x41D1;
  /// Sessions per ground-truth coloring.
  int sessions = 64;
  std::uint64_t rounds = 8;
  /// One-sided normal quantile of the chi-square threshold
  /// (Wilson-Hilferty); 3.09 ~ alpha 1e-3.
  double z = 3.09;
};

struct HidingColoringStat {
  double chi2 = 0.0;
  std::uint64_t samples = 0;
  bool ok = false;
};

struct HidingAuditResult {
  AuditReport report;
  int df = 0;
  double threshold = 0.0;
  std::vector<HidingColoringStat> per_coloring;
};

/// Every entry of `colorings` must be proper for (g, k).
HidingAuditResult audit_interactive_hiding(
    const std::string& instance_name, const Graph& g,
    const std::vector<std::vector<int>>& colorings, int k,
    const HidingAuditOptions& opt);

/// Wilson-Hilferty chi-square upper critical value for `df` degrees of
/// freedom at one-sided normal quantile `z`.
double chi_square_threshold(int df, double z);

struct AmplificationOptions {
  std::uint64_t seed = 0xA3B1;
  int sessions = 256;  // per round count
  std::vector<std::uint64_t> round_counts = {1, 2, 4, 8};
  double slack_z = 3.0;
};

struct AmplificationPoint {
  std::uint64_t rounds = 0;
  int sessions = 0;
  int accepted = 0;
  double rate = 0.0;
  double envelope = 0.0;  // (1 - 1/m)^rounds
  double sigma = 0.0;     // binomial noise at the envelope
  bool within = false;    // rate <= envelope + slack_z * sigma
};

/// Runs cheating sessions (the prover commits `cheat_coloring`, which
/// must have >= 1 monochromatic edge) and measures acceptance per round
/// count against the (1 - 1/m)^R envelope.
std::vector<AmplificationPoint> measure_amplification(
    const Graph& g, const std::vector<int>& cheat_coloring, int k,
    const AmplificationOptions& opt);

}  // namespace shlcp::ia
