#include "nbhd/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/format.h"

namespace shlcp {

namespace fs = std::filesystem;

std::string fnv1a_hex(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return format("fnv:%016llx", static_cast<unsigned long long>(h));
}

std::string checkpoint_git_rev() {
  std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) {
    return "unknown";
  }
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    out += buf;
  }
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string frames_digest(const std::vector<EnumFrame>& frames) {
  // A compact textual rendering; collisions would need two different
  // frame lists to agree on every field below, which the sweeps cannot
  // produce (frames are materialized deterministically from options).
  std::ostringstream os;
  os << "frames:" << frames.size();
  for (const EnumFrame& f : frames) {
    os << "|g" << f.graph_index << ";N" << f.ids.bound() << ";i";
    for (const Ident id : f.ids.raw()) {
      os << id << ",";
    }
    os << ";p";
    for (Node v = 0; v < f.ports.num_nodes(); ++v) {
      for (const Port p : f.ports.ports_of(v)) {
        os << p << ",";
      }
      os << "/";
    }
  }
  return fnv1a_hex(os.str());
}

std::string enum_options_hash(const std::string& decoder_name,
                              const std::string& build_kind, int k,
                              const EnumOptions& enums) {
  return fnv1a_hex(format(
      "decoder=%s;build=%s;k=%d;all_ports=%d;all_id_orders=%d;max_labelings=%llu",
      decoder_name.c_str(), build_kind.c_str(), k,
      enums.all_ports ? 1 : 0, enums.all_id_orders ? 1 : 0,
      static_cast<unsigned long long>(enums.max_labelings_per_frame)));
}

Json CheckpointManifest::to_json() const {
  Json out = Json::object();
  out["schema"] = schema;
  out["git"] = git;
  out["decoder"] = decoder;
  out["build"] = build;
  out["k"] = k;
  out["options_hash"] = options_hash;
  out["num_frames"] = num_frames;
  out["frames_done"] = frames_done;
  out["instances_absorbed"] = instances_absorbed;
  out["status"] = status;
  out["stop_reason"] = stop_reason;
  out["state_file"] = state_file;
  out["state_digest"] = state_digest;
  out["frames_digest"] = frames_digest;
  return out;
}

CheckpointManifest CheckpointManifest::from_json(const Json& j,
                                                 const std::string& origin) {
  SHLCP_CHECK_MSG(j.is_object(),
                  format("checkpoint manifest %s: not a JSON object",
                         origin.c_str()));
  CheckpointManifest m;
  m.schema = j.at("schema").as_string();
  SHLCP_CHECK_MSG(
      m.schema == kCheckpointSchema,
      format("checkpoint manifest %s: schema is \"%s\", expected \"%s\"",
             origin.c_str(), m.schema.c_str(), kCheckpointSchema));
  m.git = j.at("git").as_string();
  m.decoder = j.at("decoder").as_string();
  m.build = j.at("build").as_string();
  m.k = static_cast<int>(j.at("k").as_int());
  m.options_hash = j.at("options_hash").as_string();
  m.num_frames = j.at("num_frames").as_uint();
  m.frames_done = j.at("frames_done").as_uint();
  m.instances_absorbed = j.at("instances_absorbed").as_uint();
  m.status = j.at("status").as_string();
  m.stop_reason = j.at("stop_reason").as_string();
  m.state_file = j.at("state_file").as_string();
  m.state_digest = j.at("state_digest").as_string();
  m.frames_digest = j.at("frames_digest").as_string();
  SHLCP_CHECK_MSG(m.frames_done <= m.num_frames,
                  format("checkpoint manifest %s: frames_done %llu exceeds "
                         "num_frames %llu",
                         origin.c_str(),
                         static_cast<unsigned long long>(m.frames_done),
                         static_cast<unsigned long long>(m.num_frames)));
  SHLCP_CHECK_MSG(m.status == "in_progress" || m.status == "complete",
                  format("checkpoint manifest %s: status \"%s\" is not "
                         "in_progress|complete",
                         origin.c_str(), m.status.c_str()));
  return m;
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SHLCP_CHECK_MSG(in.good(),
                  format("checkpoint: cannot read %s", path.c_str()));
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Atomic publish: write to <path>.tmp, flush, rename over <path>.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SHLCP_CHECK_MSG(out.good(),
                    format("checkpoint: cannot write %s", tmp.c_str()));
    out << content;
    out.flush();
    SHLCP_CHECK_MSG(out.good(),
                    format("checkpoint: short write to %s", tmp.c_str()));
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  SHLCP_CHECK_MSG(!ec, format("checkpoint: rename %s -> %s failed: %s",
                              tmp.c_str(), path.c_str(),
                              ec.message().c_str()));
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory)
    : dir_(std::move(directory)) {
  SHLCP_CHECK_MSG(!dir_.empty(), "checkpoint directory must be non-empty");
}

std::string CheckpointStore::manifest_path() const {
  return (fs::path(dir_) / "manifest.json").string();
}

bool CheckpointStore::has_manifest() const {
  std::error_code ec;
  return fs::exists(manifest_path(), ec) && !ec;
}

void CheckpointStore::write(CheckpointManifest& m,
                            const NbhdGraph& state) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  SHLCP_CHECK_MSG(!ec, format("checkpoint: cannot create directory %s: %s",
                              dir_.c_str(), ec.message().c_str()));
  const std::string state_text = state.to_json().dump();
  m.state_digest = fnv1a_hex(state_text);
  // State first, manifest last: the manifest only ever references state
  // bytes that are already durably in place.
  write_file_atomic((fs::path(dir_) / m.state_file).string(), state_text);
  write_file_atomic(manifest_path(), m.to_json().dump(2) + "\n");
}

CheckpointStore::Loaded CheckpointStore::load() const {
  const std::string mpath = manifest_path();
  Loaded loaded;
  loaded.manifest =
      CheckpointManifest::from_json(Json::parse(read_file(mpath)), mpath);
  const std::string spath =
      (fs::path(dir_) / loaded.manifest.state_file).string();
  const std::string state_text = read_file(spath);
  const std::string digest = fnv1a_hex(state_text);
  SHLCP_CHECK_MSG(
      digest == loaded.manifest.state_digest,
      format("checkpoint state digest mismatch (manifest %s): state file %s "
             "hashes to %s but the manifest records %s -- the checkpoint is "
             "torn or tampered; delete the directory to restart",
             mpath.c_str(), spath.c_str(), digest.c_str(),
             loaded.manifest.state_digest.c_str()));
  loaded.state = NbhdGraph::from_json(Json::parse(state_text));
  SHLCP_CHECK_MSG(
      static_cast<std::uint64_t>(loaded.state.num_instances_absorbed()) ==
          loaded.manifest.instances_absorbed,
      format("checkpoint state/manifest disagreement (manifest %s): state "
             "holds %d absorbed instances, manifest records %llu",
             mpath.c_str(), loaded.state.num_instances_absorbed(),
             static_cast<unsigned long long>(
                 loaded.manifest.instances_absorbed)));
  return loaded;
}

void CheckpointStore::clear() const {
  std::error_code ec;
  fs::remove(manifest_path(), ec);
  fs::remove(fs::path(dir_) / "state.json", ec);
}

}  // namespace shlcp
