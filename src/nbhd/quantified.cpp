#include "nbhd/quantified.h"

#include "graph/algorithms.h"

namespace shlcp {

ComponentAnalysis analyze_components(const NbhdGraph& nbhd) {
  ComponentAnalysis out;
  const Graph& g = nbhd.graph();
  out.component_of_view = connected_components(g);
  out.num_components = num_components(g);
  out.component_bipartite.assign(static_cast<std::size_t>(out.num_components),
                                 true);
  // Bipartiteness per component: collect nodes per component and test the
  // induced subgraphs (loops handled by check_bipartite).
  std::vector<std::vector<Node>> members(
      static_cast<std::size_t>(out.num_components));
  for (Node v = 0; v < g.num_nodes(); ++v) {
    members[static_cast<std::size_t>(out.component_of_view[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  for (int c = 0; c < out.num_components; ++c) {
    const Graph sub = g.induced_subgraph(members[static_cast<std::size_t>(c)]);
    out.component_bipartite[static_cast<std::size_t>(c)] = is_bipartite(sub);
  }
  return out;
}

double hidden_fraction(const NbhdGraph& nbhd, const Decoder& decoder,
                       const Instance& inst) {
  SHLCP_CHECK_MSG(decoder.accepts_all(inst),
                  "hidden_fraction is defined on accepted instances");
  const ComponentAnalysis analysis = analyze_components(nbhd);
  int obstructed = 0;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const int idx = nbhd.index_of(decoder.input_view(inst, v));
    if (idx == -1) {
      continue;  // view unknown to this (sub)graph: cannot claim obstruction
    }
    const int comp = analysis.component_of_view[static_cast<std::size_t>(idx)];
    if (!analysis.component_bipartite[static_cast<std::size_t>(comp)]) {
      ++obstructed;
    }
  }
  return static_cast<double>(obstructed) /
         static_cast<double>(inst.num_nodes());
}

double self_conflicting_fraction(const NbhdGraph& nbhd, const Decoder& decoder,
                                 const Instance& inst) {
  SHLCP_CHECK_MSG(decoder.accepts_all(inst),
                  "self_conflicting_fraction is defined on accepted instances");
  int conflicted = 0;
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const int idx = nbhd.index_of(decoder.input_view(inst, v));
    if (idx != -1 && nbhd.graph().has_edge(idx, idx)) {
      ++conflicted;
    }
  }
  return static_cast<double>(conflicted) /
         static_cast<double>(inst.num_nodes());
}

std::optional<int> chromatic_threshold(const NbhdGraph& nbhd, int k_max) {
  for (int k = 1; k <= k_max; ++k) {
    if (nbhd.k_colorable(k)) {
      return k;
    }
  }
  return std::nullopt;
}

}  // namespace shlcp
