#include "nbhd/nbhd_graph.h"

namespace shlcp {

int NbhdGraph::absorb(const Decoder& decoder, const Instance& inst, int k,
                      bool require_yes) {
  if (require_yes) {
    SHLCP_CHECK_MSG(is_k_colorable(inst.g, k),
                    "V(D, n) is built from yes-instances only");
  }
  const int instance_index = next_instance_++;
  const int r = decoder.radius();
  const bool anon = decoder.anonymous();

  // Register the accepting views and remember each node's index (or -1).
  std::vector<int> node_view(static_cast<std::size_t>(inst.num_nodes()), -1);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    View view = inst.view_of(v, r, anon);
    if (!decoder.accept(view)) {
      continue;
    }
    const std::string key = canonical_key(view);
    auto [it, fresh] = index_.try_emplace(key, static_cast<int>(views_.size()));
    if (fresh) {
      views_.push_back(std::move(view));
      view_prov_.push_back(Provenance{instance_index, v, -1});
      adj_.add_node();
    }
    node_view[static_cast<std::size_t>(v)] = it->second;
  }

  // Yes-instance-compatibility edges between accepting views.
  for (const Edge& e : inst.g.edges()) {
    const int a = node_view[static_cast<std::size_t>(e.u)];
    const int b = node_view[static_cast<std::size_t>(e.v)];
    if (a == -1 || b == -1) {
      continue;
    }
    if (a == b) {
      if (!adj_.has_edge(a, a)) {
        adj_.add_loop(a);
      }
    } else if (!adj_.has_edge(a, b)) {
      adj_.add_edge(a, b);
    }
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (edge_prov_.find(key) == edge_prov_.end()) {
      // Store endpoints so that `node` realizes view min(a, b).
      const bool swap = a > b;
      edge_prov_[key] =
          Provenance{instance_index, swap ? e.v : e.u, swap ? e.u : e.v};
    }
  }
  return instance_index;
}

const View& NbhdGraph::view(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return views_[static_cast<std::size_t>(i)];
}

const Provenance& NbhdGraph::view_provenance(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return view_prov_[static_cast<std::size_t>(i)];
}

const Provenance* NbhdGraph::edge_provenance(int a, int b) const {
  const auto it = edge_prov_.find({std::min(a, b), std::max(a, b)});
  return it == edge_prov_.end() ? nullptr : &it->second;
}

int NbhdGraph::index_of(const View& v) const {
  const auto it = index_.find(canonical_key(v));
  return it == index_.end() ? -1 : it->second;
}

std::optional<std::vector<int>> NbhdGraph::odd_cycle() const {
  auto res = check_bipartite(adj_);
  if (res.bipartite()) {
    return std::nullopt;
  }
  return res.odd_cycle;
}

std::optional<std::vector<int>> NbhdGraph::k_coloring_of_views(int k) const {
  return k_coloring(adj_, k);
}

}  // namespace shlcp
