#include "nbhd/nbhd_graph.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/format.h"
#include "util/metrics.h"

namespace shlcp {

namespace {

/// Scope timer accumulating into a NbhdStats::absorb_ns counter.
class AbsorbTimer {
 public:
  explicit AbsorbTimer(std::uint64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~AbsorbTimer() {
    *sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::pair<int, bool> NbhdGraph::find_or_register(View&& view,
                                                const Provenance& prov) {
  const std::uint64_t fp = view.fingerprint();
  auto [it, opened] = fp_head_.try_emplace(fp, -1);
  int* slot = &it->second;
  while (*slot != -1) {
    const int idx = *slot;
    if (views_structurally_equal(views_[static_cast<std::size_t>(idx)],
                                 view)) {
      return {idx, false};
    }
    slot = &fp_next_[static_cast<std::size_t>(idx)];
  }
  const int idx = num_views();
  *slot = idx;  // before the push_backs: slot may point into fp_next_
  views_.push_back(std::move(view));
  fp_next_.push_back(-1);
  view_prov_.push_back(prov);
  adj_.add_node();
  return {idx, true};
}

void NbhdGraph::register_edge(int a, int b, const Provenance& prov) {
  if (a == b) {
    if (!adj_.has_edge(a, a)) {
      adj_.add_loop(a);
    }
  } else if (!adj_.has_edge(a, b)) {
    adj_.add_edge(a, b);
  }
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  const auto [it, fresh] = edge_index_.try_emplace(
      pack_edge(lo, hi), static_cast<int>(edge_records_.size()));
  if (fresh) {
    edge_records_.push_back(EdgeProv{lo, hi, prov});
  }
}

int NbhdGraph::absorb(const Decoder& decoder, const Instance& inst, int k,
                      bool require_yes) {
  const AbsorbTimer timer(&stats_.absorb_ns);
  if (require_yes) {
    SHLCP_CHECK_MSG(is_k_colorable(inst.g, k),
                    "V(D, n) is built from yes-instances only");
  }
  const int instance_index = next_instance_++;
  const int r = decoder.radius();
  const bool anon = decoder.anonymous();

  // Register the accepting views and remember each node's index (or -1).
  std::vector<int> node_view(static_cast<std::size_t>(inst.num_nodes()), -1);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    View view = inst.view_of(v, r, anon);
    if (!decoder.accept(view)) {
      continue;
    }
    const auto [idx, fresh] =
        find_or_register(std::move(view), Provenance{instance_index, v, -1});
    if (!fresh) {
      ++stats_.views_deduped;
    }
    node_view[static_cast<std::size_t>(v)] = idx;
  }

  // Yes-instance-compatibility edges between accepting views.
  for (const Edge& e : inst.g.edges()) {
    const int a = node_view[static_cast<std::size_t>(e.u)];
    const int b = node_view[static_cast<std::size_t>(e.v)];
    if (a == -1 || b == -1) {
      continue;
    }
    // Store endpoints so that `node` realizes view min(a, b).
    const bool swap = a > b;
    register_edge(
        a, b, Provenance{instance_index, swap ? e.v : e.u, swap ? e.u : e.v});
  }
  return instance_index;
}

void NbhdGraph::merge(NbhdGraph&& other) {
  const AbsorbTimer timer(&stats_.absorb_ns);
  const int offset = next_instance_;

  // Re-register other's views in other's registration order: that is the
  // order a sequential build would have first seen them in, given that
  // this graph's instances all precede other's. The fingerprint is
  // cached on the moved-in views, so the re-registration pays hash-map
  // lookups and (on chain hits) direct comparisons, never a fresh
  // canonical encode.
  std::vector<int> remap(other.views_.size(), -1);
  for (std::size_t i = 0; i < other.views_.size(); ++i) {
    Provenance prov = other.view_prov_[i];
    prov.instance += offset;
    const auto [idx, fresh] =
        find_or_register(std::move(other.views_[i]), prov);
    if (!fresh) {
      // First seen on both sides; ours has the lower instance index.
      ++stats_.views_deduped;
    }
    remap[i] = idx;
  }

  // Compatibility edges (adjacency lists are sorted, so insertion order
  // does not affect the representation).
  for (const Edge& e : other.adj_.edges()) {
    const int a = remap[static_cast<std::size_t>(e.u)];
    const int b = remap[static_cast<std::size_t>(e.v)];
    if (a == b) {
      if (!adj_.has_edge(a, a)) {
        adj_.add_loop(a);
      }
    } else if (!adj_.has_edge(a, b)) {
      adj_.add_edge(a, b);
    }
  }

  // Edge provenance: keep ours where both sides saw the edge (lower
  // instance index), import other's otherwise. Other's provenance is
  // oriented by other's local view order; re-orient when the remap flips
  // which endpoint carries the smaller index. Records are visited in
  // other's insertion order (deterministic; distinct records land on
  // distinct merged keys because the view remap is injective).
  for (const EdgeProv& rec : other.edge_records_) {
    const int a = remap[static_cast<std::size_t>(rec.a)];
    const int b = remap[static_cast<std::size_t>(rec.b)];
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    const auto [it, fresh] = edge_index_.try_emplace(
        pack_edge(lo, hi), static_cast<int>(edge_records_.size()));
    if (!fresh) {
      continue;
    }
    Provenance adjusted = rec.prov;
    adjusted.instance += offset;
    if (a > b) {
      std::swap(adjusted.node, adjusted.other);
    }
    edge_records_.push_back(EdgeProv{lo, hi, adjusted});
  }

  next_instance_ += other.next_instance_;
  stats_.views_deduped += other.stats_.views_deduped;
  stats_.absorb_ns += other.stats_.absorb_ns;
  other = NbhdGraph{};
}

const View& NbhdGraph::view(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return views_[static_cast<std::size_t>(i)];
}

const Provenance& NbhdGraph::view_provenance(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return view_prov_[static_cast<std::size_t>(i)];
}

const Provenance* NbhdGraph::edge_provenance(int a, int b) const {
  const auto it = edge_index_.find(pack_edge(std::min(a, b), std::max(a, b)));
  if (it == edge_index_.end()) {
    return nullptr;
  }
  return &edge_records_[static_cast<std::size_t>(it->second)].prov;
}

int NbhdGraph::index_of(const View& v) const {
  // Fingerprint gate, then the exact chain walk -- no canonical code and
  // no key string is materialized for a lookup.
  const auto it = fp_head_.find(v.fingerprint());
  if (it == fp_head_.end()) {
    return -1;
  }
  for (int idx = it->second; idx != -1;
       idx = fp_next_[static_cast<std::size_t>(idx)]) {
    if (views_structurally_equal(views_[static_cast<std::size_t>(idx)], v)) {
      return idx;
    }
  }
  return -1;
}

std::optional<std::vector<int>> NbhdGraph::odd_cycle() const {
  auto res = check_bipartite(adj_);
  if (res.bipartite()) {
    return std::nullopt;
  }
  return res.odd_cycle;
}

std::optional<std::vector<int>> NbhdGraph::k_coloring_of_views(int k) const {
  return k_coloring(adj_, k);
}

namespace {

Json certificate_to_json(const Certificate& c) {
  Json out = Json::array();
  Json fields = Json::array();
  for (const int f : c.fields) {
    fields.push_back(Json(f));
  }
  out.push_back(std::move(fields));
  out.push_back(Json(c.bits));
  return out;
}

Certificate certificate_from_json(const Json& j) {
  SHLCP_CHECK_MSG(j.is_array() && j.size() == 2,
                  "certificate must be [[fields...], bits]");
  Certificate c;
  for (const Json& f : j.at(std::size_t{0}).items()) {
    c.fields.push_back(static_cast<int>(f.as_int()));
  }
  c.bits = static_cast<int>(j.at(std::size_t{1}).as_int());
  return c;
}

Json graph_to_json(const Graph& g) {
  Json out = Json::object();
  out["n"] = g.num_nodes();
  Json edges = Json::array();
  for (const Edge& e : g.edges()) {
    Json pair = Json::array();
    pair.push_back(Json(e.u));
    pair.push_back(Json(e.v));
    edges.push_back(std::move(pair));
  }
  out["edges"] = std::move(edges);
  return out;
}

Graph graph_from_json(const Json& j) {
  Graph g(static_cast<int>(j.at("n").as_int()));
  for (const Json& pair : j.at("edges").items()) {
    const Node u = static_cast<Node>(pair.at(std::size_t{0}).as_int());
    const Node v = static_cast<Node>(pair.at(std::size_t{1}).as_int());
    if (u == v) {
      g.add_loop(u);
    } else {
      g.add_edge(u, v);
    }
  }
  return g;
}

Json view_to_json(const View& v) {
  Json out = Json::object();
  out["g"] = graph_to_json(v.g);
  out["center"] = v.center;
  out["radius"] = v.radius;
  Json dist = Json::array();
  for (const int d : v.dist) {
    dist.push_back(Json(d));
  }
  out["dist"] = std::move(dist);
  Json ports = Json::array();
  for (const std::vector<Port>& node_ports : v.ports) {
    Json list = Json::array();
    for (const Port p : node_ports) {
      list.push_back(Json(p));
    }
    ports.push_back(std::move(list));
  }
  out["ports"] = std::move(ports);
  Json ids = Json::array();
  for (const Ident id : v.ids) {
    ids.push_back(Json(id));
  }
  out["ids"] = std::move(ids);
  Json labels = Json::array();
  for (const Certificate& c : v.labels) {
    labels.push_back(certificate_to_json(c));
  }
  out["labels"] = std::move(labels);
  out["id_bound"] = v.id_bound;
  return out;
}

View view_from_json(const Json& j) {
  View v;
  v.g = graph_from_json(j.at("g"));
  v.center = static_cast<Node>(j.at("center").as_int());
  v.radius = static_cast<int>(j.at("radius").as_int());
  for (const Json& d : j.at("dist").items()) {
    v.dist.push_back(static_cast<int>(d.as_int()));
  }
  for (const Json& list : j.at("ports").items()) {
    std::vector<Port> node_ports;
    for (const Json& p : list.items()) {
      node_ports.push_back(static_cast<Port>(p.as_int()));
    }
    v.ports.push_back(std::move(node_ports));
  }
  for (const Json& id : j.at("ids").items()) {
    v.ids.push_back(static_cast<Ident>(id.as_int()));
  }
  for (const Json& c : j.at("labels").items()) {
    v.labels.push_back(certificate_from_json(c));
  }
  v.id_bound = static_cast<Ident>(j.at("id_bound").as_int());
  const auto n = static_cast<std::size_t>(v.g.num_nodes());
  SHLCP_CHECK_MSG(v.dist.size() == n && v.ports.size() == n &&
                      v.ids.size() == n && v.labels.size() == n,
                  "view record: parallel vectors disagree with the graph");
  return v;
}

Json provenance_to_json(const Provenance& p) {
  Json out = Json::array();
  out.push_back(Json(p.instance));
  out.push_back(Json(p.node));
  out.push_back(Json(p.other));
  return out;
}

Provenance provenance_from_json(const Json& j) {
  SHLCP_CHECK_MSG(j.is_array() && j.size() == 3,
                  "provenance must be [instance, node, other]");
  Provenance p;
  p.instance = static_cast<int>(j.at(std::size_t{0}).as_int());
  p.node = static_cast<Node>(j.at(std::size_t{1}).as_int());
  p.other = static_cast<Node>(j.at(std::size_t{2}).as_int());
  return p;
}

}  // namespace

Json NbhdGraph::to_json() const {
  Json out = Json::object();
  Json views = Json::array();
  Json view_prov = Json::array();
  for (std::size_t i = 0; i < views_.size(); ++i) {
    views.push_back(view_to_json(views_[i]));
    view_prov.push_back(provenance_to_json(view_prov_[i]));
  }
  out["views"] = std::move(views);
  out["view_prov"] = std::move(view_prov);
  out["adj"] = graph_to_json(adj_);
  // Edge provenance in sorted key order, so the document (and therefore
  // the checkpoint digest) is deterministic regardless of record
  // insertion order.
  std::vector<int> handles(edge_records_.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    handles[i] = static_cast<int>(i);
  }
  std::sort(handles.begin(), handles.end(), [&](int x, int y) {
    const EdgeProv& rx = edge_records_[static_cast<std::size_t>(x)];
    const EdgeProv& ry = edge_records_[static_cast<std::size_t>(y)];
    return std::make_pair(rx.a, rx.b) < std::make_pair(ry.a, ry.b);
  });
  Json edge_prov = Json::array();
  for (const int h : handles) {
    const EdgeProv& rec = edge_records_[static_cast<std::size_t>(h)];
    Json entry = Json::array();
    entry.push_back(Json(rec.a));
    entry.push_back(Json(rec.b));
    entry.push_back(Json(rec.prov.instance));
    entry.push_back(Json(rec.prov.node));
    entry.push_back(Json(rec.prov.other));
    edge_prov.push_back(std::move(entry));
  }
  out["edge_prov"] = std::move(edge_prov);
  out["next_instance"] = next_instance_;
  Json stats = Json::object();
  stats["views_deduped"] = stats_.views_deduped;
  stats["absorb_ns"] = stats_.absorb_ns;
  out["stats"] = std::move(stats);
  return out;
}

NbhdGraph NbhdGraph::from_json(const Json& j) {
  NbhdGraph out;
  const Json& views = j.at("views");
  const Json& view_prov = j.at("view_prov");
  SHLCP_CHECK_MSG(views.size() == view_prov.size(),
                  "NbhdGraph record: views / view_prov size mismatch");
  for (std::size_t i = 0; i < views.size(); ++i) {
    View view = view_from_json(views.at(i));
    const auto [idx, fresh] = out.find_or_register(
        std::move(view), provenance_from_json(view_prov.at(i)));
    SHLCP_CHECK_MSG(fresh && idx == static_cast<int>(i),
                    format("NbhdGraph record: duplicate view #%d",
                           static_cast<int>(i)));
  }
  // find_or_register grew a node-only adjacency; replace it with the
  // recorded one (validated against the view count below).
  out.adj_ = graph_from_json(j.at("adj"));
  SHLCP_CHECK_MSG(out.adj_.num_nodes() == out.num_views(),
                  "NbhdGraph record: adjacency size disagrees with views");
  for (const Json& entry : j.at("edge_prov").items()) {
    SHLCP_CHECK_MSG(entry.is_array() && entry.size() == 5,
                    "edge_prov entry must be [a, b, instance, node, other]");
    const int a = static_cast<int>(entry.at(std::size_t{0}).as_int());
    const int b = static_cast<int>(entry.at(std::size_t{1}).as_int());
    SHLCP_CHECK_MSG(0 <= a && a <= b && b < out.num_views() &&
                        out.adj_.has_edge(a, b),
                    "edge_prov entry does not match an adjacency edge");
    Provenance prov;
    prov.instance = static_cast<int>(entry.at(std::size_t{2}).as_int());
    prov.node = static_cast<Node>(entry.at(std::size_t{3}).as_int());
    prov.other = static_cast<Node>(entry.at(std::size_t{4}).as_int());
    const auto [it, fresh] = out.edge_index_.try_emplace(
        pack_edge(a, b), static_cast<int>(out.edge_records_.size()));
    SHLCP_CHECK_MSG(fresh, "edge_prov entry duplicated");
    out.edge_records_.push_back(EdgeProv{a, b, prov});
  }
  out.next_instance_ = static_cast<int>(j.at("next_instance").as_int());
  out.stats_.views_deduped = j.at("stats").at("views_deduped").as_uint();
  out.stats_.absorb_ns = j.at("stats").at("absorb_ns").as_uint();
  return out;
}

void publish_build_metrics(const NbhdGraph& nbhd) {
  metrics::counter("nbhd.build.builds").inc();
  metrics::counter("nbhd.build.instances")
      .add(static_cast<std::uint64_t>(nbhd.num_instances_absorbed()));
  metrics::counter("nbhd.build.views")
      .add(static_cast<std::uint64_t>(nbhd.num_views()));
  metrics::counter("nbhd.build.views_deduped").add(nbhd.stats().views_deduped);
  metrics::counter("nbhd.build.edges")
      .add(static_cast<std::uint64_t>(nbhd.num_edges()));
  metrics::histogram("nbhd.build.absorb_ns").record(nbhd.stats().absorb_ns);
  // Fingerprint-gate accounting, derived from the final graph so
  // sequential and parallel builds publish identical values: a miss is a
  // registration whose fingerprint proved it fresh with no exact
  // comparison (one per distinct fingerprint); everything else -- dedup
  // confirmations and the rare true collisions -- walked a chain.
  const std::uint64_t registrations =
      static_cast<std::uint64_t>(nbhd.num_views()) +
      nbhd.stats().views_deduped;
  const std::uint64_t misses = nbhd.num_fingerprint_chains();
  metrics::counter("enum.fingerprint_misses").add(misses);
  metrics::counter("enum.fingerprint_hits")
      .add(registrations >= misses ? registrations - misses : 0);
}

}  // namespace shlcp
