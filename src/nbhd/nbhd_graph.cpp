#include "nbhd/nbhd_graph.h"

#include <chrono>

#include "util/metrics.h"

namespace shlcp {

namespace {

/// Scope timer accumulating into a NbhdStats::absorb_ns counter.
class AbsorbTimer {
 public:
  explicit AbsorbTimer(std::uint64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~AbsorbTimer() {
    *sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int NbhdGraph::absorb(const Decoder& decoder, const Instance& inst, int k,
                      bool require_yes) {
  const AbsorbTimer timer(&stats_.absorb_ns);
  if (require_yes) {
    SHLCP_CHECK_MSG(is_k_colorable(inst.g, k),
                    "V(D, n) is built from yes-instances only");
  }
  const int instance_index = next_instance_++;
  const int r = decoder.radius();
  const bool anon = decoder.anonymous();

  // Register the accepting views and remember each node's index (or -1).
  std::vector<int> node_view(static_cast<std::size_t>(inst.num_nodes()), -1);
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    View view = inst.view_of(v, r, anon);
    if (!decoder.accept(view)) {
      continue;
    }
    const std::string key = canonical_key(view);
    auto [it, fresh] = index_.try_emplace(key, static_cast<int>(views_.size()));
    if (fresh) {
      views_.push_back(std::move(view));
      view_prov_.push_back(Provenance{instance_index, v, -1});
      adj_.add_node();
    } else {
      ++stats_.views_deduped;
    }
    node_view[static_cast<std::size_t>(v)] = it->second;
  }

  // Yes-instance-compatibility edges between accepting views.
  for (const Edge& e : inst.g.edges()) {
    const int a = node_view[static_cast<std::size_t>(e.u)];
    const int b = node_view[static_cast<std::size_t>(e.v)];
    if (a == -1 || b == -1) {
      continue;
    }
    if (a == b) {
      if (!adj_.has_edge(a, a)) {
        adj_.add_loop(a);
      }
    } else if (!adj_.has_edge(a, b)) {
      adj_.add_edge(a, b);
    }
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (edge_prov_.find(key) == edge_prov_.end()) {
      // Store endpoints so that `node` realizes view min(a, b).
      const bool swap = a > b;
      edge_prov_[key] =
          Provenance{instance_index, swap ? e.v : e.u, swap ? e.u : e.v};
    }
  }
  return instance_index;
}

void NbhdGraph::merge(NbhdGraph&& other) {
  const AbsorbTimer timer(&stats_.absorb_ns);
  const int offset = next_instance_;

  // Re-register other's views in other's registration order: that is the
  // order a sequential build would have first seen them in, given that
  // this graph's instances all precede other's.
  std::vector<int> remap(other.views_.size(), -1);
  for (std::size_t i = 0; i < other.views_.size(); ++i) {
    const std::string key = canonical_key(other.views_[i]);
    auto [it, fresh] = index_.try_emplace(key, static_cast<int>(views_.size()));
    if (fresh) {
      Provenance prov = other.view_prov_[i];
      prov.instance += offset;
      views_.push_back(std::move(other.views_[i]));
      view_prov_.push_back(prov);
      adj_.add_node();
    } else {
      // First seen on both sides; ours has the lower instance index.
      ++stats_.views_deduped;
    }
    remap[i] = it->second;
  }

  // Compatibility edges (adjacency lists are sorted, so insertion order
  // does not affect the representation).
  for (const Edge& e : other.adj_.edges()) {
    const int a = remap[static_cast<std::size_t>(e.u)];
    const int b = remap[static_cast<std::size_t>(e.v)];
    if (a == b) {
      if (!adj_.has_edge(a, a)) {
        adj_.add_loop(a);
      }
    } else if (!adj_.has_edge(a, b)) {
      adj_.add_edge(a, b);
    }
  }

  // Edge provenance: keep ours where both sides saw the edge (lower
  // instance index), import other's otherwise. Other's provenance is
  // oriented by other's local view order; re-orient when the remap flips
  // which endpoint carries the smaller index.
  for (auto& [key, prov] : other.edge_prov_) {
    const int a = remap[static_cast<std::size_t>(key.first)];
    const int b = remap[static_cast<std::size_t>(key.second)];
    const auto merged_key = std::make_pair(std::min(a, b), std::max(a, b));
    if (edge_prov_.find(merged_key) != edge_prov_.end()) {
      continue;
    }
    Provenance adjusted = prov;
    adjusted.instance += offset;
    if (a > b) {
      std::swap(adjusted.node, adjusted.other);
    }
    edge_prov_[merged_key] = adjusted;
  }

  next_instance_ += other.next_instance_;
  stats_.views_deduped += other.stats_.views_deduped;
  stats_.absorb_ns += other.stats_.absorb_ns;
  other = NbhdGraph{};
}

const View& NbhdGraph::view(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return views_[static_cast<std::size_t>(i)];
}

const Provenance& NbhdGraph::view_provenance(int i) const {
  SHLCP_CHECK(0 <= i && i < num_views());
  return view_prov_[static_cast<std::size_t>(i)];
}

const Provenance* NbhdGraph::edge_provenance(int a, int b) const {
  const auto it = edge_prov_.find({std::min(a, b), std::max(a, b)});
  return it == edge_prov_.end() ? nullptr : &it->second;
}

int NbhdGraph::index_of(const View& v) const {
  // Routed through the compute-once canonical cache: the key packing is a
  // memcpy of the cached code, not a fresh port-ordered BFS.
  const auto it = index_.find(canonical_key(v));
  SHLCP_DCHECK(v.canonical_cached());
  return it == index_.end() ? -1 : it->second;
}

std::optional<std::vector<int>> NbhdGraph::odd_cycle() const {
  auto res = check_bipartite(adj_);
  if (res.bipartite()) {
    return std::nullopt;
  }
  return res.odd_cycle;
}

std::optional<std::vector<int>> NbhdGraph::k_coloring_of_views(int k) const {
  return k_coloring(adj_, k);
}

void publish_build_metrics(const NbhdGraph& nbhd) {
  metrics::counter("nbhd.build.builds").inc();
  metrics::counter("nbhd.build.instances")
      .add(static_cast<std::uint64_t>(nbhd.num_instances_absorbed()));
  metrics::counter("nbhd.build.views")
      .add(static_cast<std::uint64_t>(nbhd.num_views()));
  metrics::counter("nbhd.build.views_deduped").add(nbhd.stats().views_deduped);
  metrics::counter("nbhd.build.edges")
      .add(static_cast<std::uint64_t>(nbhd.num_edges()));
  metrics::histogram("nbhd.build.absorb_ns").record(nbhd.stats().absorb_ns);
}

}  // namespace shlcp
