// Quantified hiding (the paper's Section 1.1 future-work direction).
//
// The paper's hiding notion is satisfied as soon as a single node's color
// cannot be extracted; it explicitly proposes studying the *quantified*
// version: what fraction of nodes fail? This module measures it through
// the neighborhood-graph lens:
//
//  * The components of V(D, n) partition the accepting views. On a
//    2-colorable component, an extractor has exactly two consistent
//    colorings (a global flip); on a NON-bipartite component there is no
//    consistent coloring at all -- every decoder D' must output a wrong
//    color somewhere among instances realizing that component. A node
//    whose view lies in a non-bipartite component is called *obstructed*.
//  * hidden_fraction(instance) = fraction of obstructed nodes. The
//    degree-one LCP hides "at a single node" (tiny fractions); the
//    even-cycle LCP hides "everywhere" (fraction 1 on matched-port
//    instances); the revealing LCP never obstructs (fraction 0).
//
// Also answers the Section 1.3 remark on hiding K-colorings while
// certifying k: D hides a K-coloring iff V(D, n) is not K-colorable
// (same Lemma 3.2 proof), so the *chromatic threshold* of V(D, n) -- the
// least K for which V is K-colorable -- delimits exactly which
// K-colorings stay hidden. A self-loop pushes the threshold to infinity.

#pragma once

#include <optional>

#include "nbhd/nbhd_graph.h"

namespace shlcp {

/// Per-component analysis of a neighborhood graph.
struct ComponentAnalysis {
  /// Component index of each view.
  std::vector<int> component_of_view;
  /// Per component: is it 2-colorable (no odd cycle, no loop)?
  std::vector<bool> component_bipartite;
  /// Number of components.
  int num_components = 0;
};

/// Computes components and their bipartiteness.
ComponentAnalysis analyze_components(const NbhdGraph& nbhd);

/// Fraction of `inst`'s nodes whose view lies in a non-bipartite
/// component of `nbhd` (obstructed nodes). This is a component-level
/// UPPER bound: "an extractor must fail SOMEWHERE among instances
/// realizing this component" -- for the degree-one LCP the whole witness
/// graph is one odd component, so the fraction is 1 even though only one
/// node per instance is genuinely undecidable. Views absent from `nbhd`
/// count as unobstructed; requires the decoder to accept everywhere.
double hidden_fraction(const NbhdGraph& nbhd, const Decoder& decoder,
                       const Instance& inst);

/// The sharp per-node measure: fraction of `inst`'s nodes whose view
/// carries a SELF-LOOP in `nbhd` -- two *adjacent* nodes share that very
/// view, so any decoder output miscolors one endpoint of such an edge.
/// This separates the paper's two hiding strengths exactly: the
/// degree-one LCP has no self-conflicting views (hiding at one node,
/// fraction 0), while the even-cycle LCP on matched-port instances is
/// self-conflicting everywhere (hiding "from all nodes", fraction 1).
double self_conflicting_fraction(const NbhdGraph& nbhd, const Decoder& decoder,
                                 const Instance& inst);

/// The least K in [1, k_max] such that the view graph is K-colorable, or
/// nullopt if none (e.g. a self-loop defeats every K). By Lemma 3.2 the
/// decoder hides K-colorings exactly for the K below the threshold.
std::optional<int> chromatic_threshold(const NbhdGraph& nbhd, int k_max);

}  // namespace shlcp
