// Checkpoint/resume for the sharded V(D, n) builds (schema shlcp.ckpt.v1).
//
// A checkpoint is a directory holding two files:
//
//   manifest.json -- one shlcp.ckpt.v1 object describing *what* was
//     being built (decoder, build kind, k, an options hash, a digest of
//     the frame list) and *how far* it got (completed frame prefix,
//     instances absorbed, status, stop reason), plus an FNV-1a digest of
//     the state file so torn or tampered state fails loudly.
//   state.json -- NbhdGraph::to_json() of the graph built from the
//     completed frame prefix.
//
// Both files are written atomically (temp file + rename), manifest last,
// so a crash mid-checkpoint leaves either the previous consistent
// checkpoint or a state file the next manifest has not blessed yet --
// never a manifest pointing at torn state.
//
// Resume validation is strict: schema, decoder name, build kind, k,
// options hash, frame count, frame-list digest, and (when both sides
// know it) the git revision must all match, and the state digest must
// verify. Any mismatch is a CheckError carrying a one-line repro string
// naming the field, both values, and the manifest path -- a checkpoint
// is never silently reinterpreted against a different sweep.
//
// The determinism argument (DESIGN.md §11): frames are materialized in
// sequential order, chunks are contiguous, and only the *completed chunk
// prefix* is ever merged into the checkpointed state. Resuming therefore
// continues the exact sequential absorption order from frame
// `frames_done`, which is why an interrupted-then-resumed build is
// bit-identical to an uninterrupted one (tests/checkpoint_test.cpp).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lcp/enumerate.h"
#include "nbhd/nbhd_graph.h"

namespace shlcp {

inline constexpr const char* kCheckpointSchema = "shlcp.ckpt.v1";

/// 64-bit FNV-1a over `bytes`, rendered as "fnv:<16 hex digits>". Used
/// for the state digest, the frame-list digest, and the options hash;
/// tools/check_bench_json.py re-implements it for CI-side validation.
std::string fnv1a_hex(std::string_view bytes);

/// `git describe --always --dirty` of the working tree, or "unknown"
/// outside a checkout (same convention as bench/report.h).
std::string checkpoint_git_rev();

/// Digest of a materialized frame list: frame count plus every frame's
/// (graph_index, ids, bound, ports). Two sweeps with the same digest
/// visit the same frames in the same order.
std::string frames_digest(const std::vector<EnumFrame>& frames);

/// Hash of everything that shapes the enumeration semantics of a build:
/// decoder name, build kind, k, and the EnumOptions dimension toggles.
std::string enum_options_hash(const std::string& decoder_name,
                              const std::string& build_kind, int k,
                              const EnumOptions& enums);

/// The shlcp.ckpt.v1 manifest.
struct CheckpointManifest {
  std::string schema = kCheckpointSchema;
  std::string git;
  std::string decoder;
  /// "exhaustive" or "proved".
  std::string build;
  int k = 0;
  std::string options_hash;
  std::uint64_t num_frames = 0;
  /// Completed frame prefix: frames [0, frames_done) are absorbed into
  /// the state file.
  std::uint64_t frames_done = 0;
  std::uint64_t instances_absorbed = 0;
  /// "in_progress" or "complete".
  std::string status;
  /// StopReason name of the early exit ("none" while complete /
  /// between clean checkpoints).
  std::string stop_reason = "none";
  std::string state_file = "state.json";
  std::string state_digest;
  std::string frames_digest;

  [[nodiscard]] Json to_json() const;
  /// Parses and structurally validates (schema string, field types,
  /// frames_done <= num_frames, status enum). Throws CheckError.
  static CheckpointManifest from_json(const Json& j,
                                      const std::string& origin);
};

/// One checkpoint directory.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string directory);

  [[nodiscard]] const std::string& directory() const { return dir_; }
  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] bool has_manifest() const;

  /// Writes state.json then manifest.json, each atomically (temp +
  /// rename), creating the directory if needed. Fills m.state_digest.
  void write(CheckpointManifest& m, const NbhdGraph& state) const;

  struct Loaded {
    CheckpointManifest manifest;
    NbhdGraph state;
  };

  /// Loads and digest-verifies the checkpoint. Throws CheckError (with
  /// the manifest path in the message) on missing files, digest
  /// mismatch, or malformed content.
  [[nodiscard]] Loaded load() const;

  /// Removes manifest and state files (used by --reset flows).
  void clear() const;

 private:
  std::string dir_;
};

}  // namespace shlcp
