// The extractor decoder D' of Lemma 3.2 (converse direction).
//
// Given a decoder D and a k-colorable neighborhood graph V(D, n), the
// extractor colors V(D, n) once (deterministically, lexicographically
// first in registration order) and then answers view queries by lookup:
// each node of an accepted instance recomputes V(D, n), finds its own
// view, and outputs that view's color. On every instance whose views all
// appear in the supplied neighborhood graph and whose nodes all accept,
// the output is a proper k-coloring -- which is exactly what it means for
// D to NOT hide a k-coloring relative to that n.
//
// For hiding decoders the construction fails at the first step: the
// neighborhood graph has no proper k-coloring (constructor reports it).

#pragma once

#include <optional>

#include "nbhd/nbhd_graph.h"

namespace shlcp {

/// The extractor local algorithm. Non-owning reference semantics for the
/// decoder; the neighborhood graph is copied in.
class Extractor {
 public:
  /// Attempts to build the extractor; nullopt iff `nbhd`'s view graph is
  /// not k-colorable (i.e. a hiding witness exists inside it).
  static std::optional<Extractor> build(const Decoder& decoder, NbhdGraph nbhd,
                                        int k);

  /// Color of the node whose (decoder-appropriate) view is `view`, or
  /// nullopt when the view is unknown to the neighborhood graph (the
  /// instance exceeds the n this extractor was compiled for).
  [[nodiscard]] std::optional<int> extract(const View& view) const;

  /// Runs the extractor at every node of an instance; nullopt when some
  /// node's view is unknown. Requires the decoder to accept everywhere
  /// (certificates must be convincing before extraction is meaningful).
  [[nodiscard]] std::optional<std::vector<int>> run(const Instance& inst) const;

  /// The underlying coloring of the neighborhood graph.
  [[nodiscard]] const std::vector<int>& view_colors() const { return colors_; }

 private:
  Extractor(const Decoder& decoder, NbhdGraph nbhd, std::vector<int> colors,
            int k)
      : decoder_(&decoder), nbhd_(std::move(nbhd)), colors_(std::move(colors)),
        k_(k) {}

  const Decoder* decoder_;
  NbhdGraph nbhd_;
  std::vector<int> colors_;
  int k_;
};

}  // namespace shlcp
