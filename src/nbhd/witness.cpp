#include "nbhd/witness.h"

#include <algorithm>

#include "certify/degree_one.h"
#include "certify/even_cycle.h"
#include "certify/shatter.h"
#include "certify/watermelon.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/check.h"

namespace shlcp {

WitnessSearchResult search_hiding_witness(const Decoder& decoder,
                                          const std::vector<Instance>& instances,
                                          int k,
                                          const ParallelEnumOptions& options) {
  WitnessSearchResult result;
  result.nbhd = build_from_instances(decoder, instances, k, options);
  result.odd_cycle = result.nbhd.odd_cycle();
  return result;
}

Labeling degree_one_labeling(const Graph& g, Node hidden) {
  SHLCP_CHECK(g.degree(hidden) == 1);
  const auto res = check_bipartite(g);
  SHLCP_CHECK(res.bipartite());
  const Node anchor = g.neighbors(hidden)[0];
  Labeling labels(g.num_nodes());
  for (Node v = 0; v < g.num_nodes(); ++v) {
    if (v == hidden) {
      labels.at(v) = make_degree_one_certificate(DegreeOneSymbol::kBot);
    } else if (v == anchor) {
      labels.at(v) = make_degree_one_certificate(DegreeOneSymbol::kTop);
    } else {
      labels.at(v) = make_degree_one_certificate(
          res.coloring[static_cast<std::size_t>(v)] == 0
              ? DegreeOneSymbol::kColor0
              : DegreeOneSymbol::kColor1);
    }
  }
  return labels;
}

Labeling even_cycle_labeling(const Graph& g, const PortAssignment& ports,
                             int first_color) {
  SHLCP_CHECK(is_even_cycle(g));
  SHLCP_CHECK(first_color == 0 || first_color == 1);
  const int n = g.num_nodes();
  // Walk the cycle from node 0 towards its smaller neighbor, coloring
  // edges alternately starting with first_color.
  std::vector<Node> walk{0};
  std::vector<int> edge_color;
  Node prev = -1;
  Node cur = 0;
  for (int i = 0; i < n; ++i) {
    const auto nb = g.neighbors(cur);
    const Node next = (nb[0] == prev) ? nb[1] : nb[0];
    edge_color.push_back((i % 2) ^ first_color);
    walk.push_back(next);
    prev = cur;
    cur = next;
  }
  auto color_of_edge = [&](Node a, Node b) {
    for (int i = 0; i < n; ++i) {
      const Node x = walk[static_cast<std::size_t>(i)];
      const Node y = walk[static_cast<std::size_t>(i + 1)];
      if ((x == a && y == b) || (x == b && y == a)) {
        return edge_color[static_cast<std::size_t>(i)];
      }
    }
    SHLCP_CHECK_MSG(false, "edge not on cycle");
    return -1;
  };
  Labeling labels(n);
  for (Node v = 0; v < n; ++v) {
    const Node w1 = ports.neighbor_at(g, v, 1);
    const Node w2 = ports.neighbor_at(g, v, 2);
    labels.at(v) = make_even_cycle_certificate(
        ports.port(g, w1, v), color_of_edge(v, w1), ports.port(g, w2, v),
        color_of_edge(v, w2));
  }
  return labels;
}

Labeling shatter_labeling(const Graph& g, const IdAssignment& ids, Node point,
                          unsigned flip_mask, bool vector_on_point) {
  SHLCP_CHECK(is_bipartite(g));
  const Ident vid = ids.id_of(point);
  const Ident bound = ids.bound();
  std::vector<Node> rest;
  const auto nv = g.neighbors(point);
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (u != point && !std::binary_search(nv.begin(), nv.end(), u)) {
      rest.push_back(u);
    }
  }
  std::vector<Node> old_of_new;
  const Graph sub = g.induced_subgraph(rest, &old_of_new);
  const auto comp_of_local = connected_components(sub);
  const int k =
      sub.num_nodes() == 0
          ? 0
          : 1 + *std::max_element(comp_of_local.begin(), comp_of_local.end());
  SHLCP_CHECK_MSG(k >= 2, "chosen node is not a shatter point");
  const auto sub_col = check_bipartite(sub);
  SHLCP_CHECK(sub_col.bipartite());

  std::vector<int> component(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<int> color(static_cast<std::size_t>(g.num_nodes()), -1);
  for (std::size_t i = 0; i < old_of_new.size(); ++i) {
    const int comp = comp_of_local[i] + 1;
    const int flip = static_cast<int>((flip_mask >> (comp - 1)) & 1u);
    component[static_cast<std::size_t>(old_of_new[i])] = comp;
    color[static_cast<std::size_t>(old_of_new[i])] = sub_col.coloring[i] ^ flip;
  }

  std::vector<int> facing(static_cast<std::size_t>(k), 0);
  std::vector<bool> have(static_cast<std::size_t>(k), false);
  for (const Node u : nv) {
    for (const Node w : g.neighbors(u)) {
      const int comp = component[static_cast<std::size_t>(w)];
      if (comp == -1) {
        continue;
      }
      if (!have[static_cast<std::size_t>(comp - 1)]) {
        have[static_cast<std::size_t>(comp - 1)] = true;
        facing[static_cast<std::size_t>(comp - 1)] =
            color[static_cast<std::size_t>(w)];
      }
    }
  }

  Labeling labels(g.num_nodes());
  labels.at(point) = make_shatter_type0(
      vid, vector_on_point ? facing : std::vector<int>{}, bound);
  for (const Node u : nv) {
    labels.at(u) = make_shatter_type1(
        vid, vector_on_point ? std::vector<int>{} : facing, bound);
  }
  for (Node u = 0; u < g.num_nodes(); ++u) {
    if (component[static_cast<std::size_t>(u)] != -1) {
      labels.at(u) = make_shatter_type2(vid, component[static_cast<std::size_t>(u)],
                                        color[static_cast<std::size_t>(u)],
                                        bound, k);
    }
  }
  return labels;
}

Labeling watermelon_labeling(const Graph& g, const PortAssignment& ports,
                             const IdAssignment& ids, int first_color) {
  const auto dec = watermelon_decomposition(g);
  SHLCP_CHECK(dec.has_value());
  SHLCP_CHECK(is_bipartite(g));
  const Ident e1 = ids.id_of(dec->v1);
  const Ident e2 = ids.id_of(dec->v2);
  const Ident id1 = std::min(e1, e2);
  const Ident id2 = std::max(e1, e2);
  const Ident bound = ids.bound();
  const int port_bound = g.max_degree();

  std::vector<std::pair<Edge, int>> colored;
  for (const auto& path : dec->paths) {
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      colored.emplace_back(make_edge(path[j], path[j + 1]),
                           static_cast<int>(j % 2) ^ first_color);
    }
  }
  auto color_of = [&](Node a, Node b) {
    const Edge e = make_edge(a, b);
    for (const auto& [edge, col] : colored) {
      if (edge == e) {
        return col;
      }
    }
    SHLCP_CHECK_MSG(false, "edge not on any path");
    return -1;
  };

  Labeling labels(g.num_nodes());
  labels.at(dec->v1) = make_watermelon_type1(id1, id2, bound);
  labels.at(dec->v2) = make_watermelon_type1(id1, id2, bound);
  for (std::size_t path_idx = 0; path_idx < dec->paths.size(); ++path_idx) {
    const auto& path = dec->paths[path_idx];
    for (std::size_t j = 1; j + 1 < path.size(); ++j) {
      const Node u = path[j];
      const Node w1 = ports.neighbor_at(g, u, 1);
      const Node w2 = ports.neighbor_at(g, u, 2);
      labels.at(u) = make_watermelon_type2(
          id1, id2, static_cast<int>(path_idx) + 1, ports.port(g, w1, u),
          color_of(u, w1), ports.port(g, w2, u), color_of(u, w2), bound,
          port_bound);
    }
  }
  return labels;
}

std::vector<Instance> degree_one_witnesses(int max_n) {
  SHLCP_CHECK(2 <= max_n && max_n <= 6);
  std::vector<Instance> out;
  for (int n = 2; n <= max_n; ++n) {
    for_each_connected_graph(n, [&](const Graph& g) {
      if (!is_bipartite(g) || g.min_degree() != 1) {
        return true;
      }
      for (Node leaf = 0; leaf < g.num_nodes(); ++leaf) {
        if (g.degree(leaf) != 1) {
          continue;
        }
        // Both 2-coloring phases matter (the hidden node breaks the
        // coloring's symmetry), and port assignments distinguish
        // otherwise-equal anonymous views. Beyond the honest BOT/TOP
        // labelings, FULLY-COLORED labelings are also unanimously
        // accepted (every node just checks proper coloring locally), and
        // the paper's Figs. 3/4 odd cycle hinges on mixing the two kinds:
        // a colored leaf view is reachable both from instances that hide
        // a node and from instances that reveal everything.
        auto flip_colors = [&g](Labeling labels) {
          for (Node v = 0; v < g.num_nodes(); ++v) {
            const int s = labels.at(v).fields[0];
            if (s == 0 || s == 1) {
              labels.at(v) = make_degree_one_certificate(
                  s == 0 ? DegreeOneSymbol::kColor1
                         : DegreeOneSymbol::kColor0);
            }
          }
          return labels;
        };
        const Labeling honest = degree_one_labeling(g, leaf);
        const auto coloring = check_bipartite(g).coloring;
        Labeling revealed(g.num_nodes());
        for (Node v = 0; v < g.num_nodes(); ++v) {
          revealed.at(v) = make_degree_one_certificate(
              coloring[static_cast<std::size_t>(v)] == 0
                  ? DegreeOneSymbol::kColor0
                  : DegreeOneSymbol::kColor1);
        }
        for_each_port_assignment(g, [&](const PortAssignment& ports) {
          for (const Labeling& labels :
               {honest, flip_colors(honest), revealed, flip_colors(revealed)}) {
            Instance inst;
            inst.g = g;
            inst.ports = ports;
            inst.ids = IdAssignment::consecutive(g);
            inst.labels = labels;
            out.push_back(std::move(inst));
          }
          return true;
        });
      }
      return true;
    });
  }
  return out;
}

std::vector<Instance> even_cycle_witnesses(int max_n) {
  SHLCP_CHECK(4 <= max_n && max_n <= 8);
  std::vector<Instance> out;
  for (int n = 4; n <= max_n; n += 2) {
    const Graph g = make_cycle(n);
    for_each_port_assignment(g, [&](const PortAssignment& ports) {
      for (int phase = 0; phase <= 1; ++phase) {
        Instance inst;
        inst.g = g;
        inst.ports = ports;
        inst.ids = IdAssignment::consecutive(g);
        inst.labels = even_cycle_labeling(g, ports, phase);
        out.push_back(std::move(inst));
      }
      return true;
    });
  }
  return out;
}

std::vector<Instance> shatter_witnesses(bool vector_on_point) {
  std::vector<Instance> out;
  // P1 = (w3, w2, w1, u1, v, u2, z1, z2): the 8-node path, shatter point
  // at index 4; P2 drops w1 (ids keep their P1 values, bound stays 8).
  const Graph p1 = make_path(8);
  const Graph p2 = make_path(7);
  const IdAssignment ids1 =
      IdAssignment::from_vector({1, 2, 3, 4, 5, 6, 7, 8}, 8);
  const IdAssignment ids2 = IdAssignment::from_vector({1, 2, 4, 5, 6, 7, 8}, 8);
  for (unsigned flip = 0; flip < 4; ++flip) {
    {
      Instance inst;
      inst.g = p1;
      inst.ports = PortAssignment::canonical(p1);
      inst.ids = ids1;
      inst.labels = shatter_labeling(p1, ids1, 4, flip, vector_on_point);
      out.push_back(std::move(inst));
    }
    {
      Instance inst;
      inst.g = p2;
      inst.ports = PortAssignment::canonical(p2);
      inst.ids = ids2;
      inst.labels = shatter_labeling(p2, ids2, 3, flip, vector_on_point);
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<Instance> watermelon_witnesses() {
  std::vector<Instance> out;
  const Graph g = make_path(8);
  const std::vector<std::vector<Ident>> id_variants = {
      {1, 2, 3, 4, 5, 6, 7, 8},  // identity
      {1, 2, 6, 5, 4, 3, 7, 8},  // the paper's middle-block reversal
      {8, 7, 6, 5, 4, 3, 2, 1},  // full reversal
  };
  for (const auto& ids_raw : id_variants) {
    const IdAssignment ids = IdAssignment::from_vector(ids_raw, 8);
    for_each_port_assignment(g, [&](const PortAssignment& ports) {
      for (int phase = 0; phase <= 1; ++phase) {
        Instance inst;
        inst.g = g;
        inst.ports = ports;
        inst.ids = ids;
        inst.labels = watermelon_labeling(g, ports, ids, phase);
        out.push_back(std::move(inst));
      }
      return true;
    });
  }
  return out;
}

Instance uniform_cheat_cycle_instance(const std::vector<Ident>& ids_around) {
  // A cycle instance from an explicit cyclic identifier sequence: ports
  // are oriented (port 1 to the successor, port 2 to the predecessor) and
  // every node carries the same self-referential type-2 certificate
  // (2, 1, 99, 1, far=1, col=0, far=2, col=1): the claimed far ports
  // route each consistency check back into the identical neighbor
  // certificate, so kNoPortCheck accepts everywhere even though the
  // actual far ports are (2, 1).
  const int n = static_cast<int>(ids_around.size());
  const Graph g = make_cycle(n);
  std::vector<std::vector<Port>> port_lists(static_cast<std::size_t>(n));
  for (Node v = 0; v < n; ++v) {
    const Node next = (v + 1) % n;
    const auto nb = g.neighbors(v);
    std::vector<Port> pl(2);
    pl[0] = (nb[0] == next) ? 1 : 2;
    pl[1] = (nb[1] == next) ? 1 : 2;
    port_lists[static_cast<std::size_t>(v)] = std::move(pl);
  }
  Instance inst;
  inst.g = g;
  inst.ports = PortAssignment::from_lists(g, std::move(port_lists));
  inst.ids = IdAssignment::from_vector(std::vector<Ident>(ids_around), 99);
  Labeling labels(n);
  for (Node v = 0; v < n; ++v) {
    labels.at(v) = make_watermelon_type2(1, 99, 1, /*p1=*/1, /*c1=*/0,
                                         /*p2=*/2, /*c2=*/1, 99, 2);
  }
  inst.labels = std::move(labels);
  return inst;
}

std::vector<Instance> no_port_check_witnesses() {
  return {
      // Realizes windows A = (4,1,2) and B = (1,2,3).
      uniform_cheat_cycle_instance({1, 2, 3, 4}),
      // B -> (2,3,7) -> (3,7,4).
      uniform_cheat_cycle_instance({1, 2, 3, 7, 4, 9}),
      // (3,7,4) -> (7,4,1) -> A.
      uniform_cheat_cycle_instance({3, 7, 4, 1, 2, 8}),
  };
}

std::vector<Instance> no_port_check_c8_witnesses() {
  // Same identifier windows, realized on 1-forgetful C8 hosts; the fresh
  // filler identifiers are pairwise distinct across instances so the
  // surgery's per-identifier components stay within one instance.
  return {
      uniform_cheat_cycle_instance({4, 1, 2, 3, 21, 22, 23, 24}),
      uniform_cheat_cycle_instance({1, 2, 3, 7, 4, 9, 31, 32}),
      uniform_cheat_cycle_instance({3, 7, 4, 1, 2, 8, 41, 42}),
  };
}

}  // namespace shlcp
