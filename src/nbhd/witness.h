// Hiding witnesses: the paper's explicit constructions, generalized into
// small searchable families.
//
// Each hiding proof in the paper exhibits two (or more) small labeled
// yes-instances whose views interleave into an odd cycle of V(D, n):
//   - Figs. 3/4 (degree-one LCP, Lemma 4.1): min-degree-1 instances with
//     the hidden BOT node placed at different leaves;
//   - Figs. 5/6 (even-cycle LCP, Lemma 4.2): even cycles under different
//     port assignments / edge-coloring phases;
//   - Section 7.1 (shatter LCP, Theorem 1.3): the 8-node path P1 and its
//     7-node contraction P2, certified through the same shatter point
//     with different facing colors;
//   - Section 7.2 (watermelon LCP, Theorem 1.4): the 8-node path under
//     two identifier assignments (ids of the middle block reversed).
//
// The generators below produce the honestly-labeled instance families
// containing those constructions (all relevant placements / ports /
// coloring phases, each a handful of instances); feeding them to
// NbhdGraph and asking for an odd cycle mechanically reproduces each
// figure. The labeling helpers expose the prover's internal choices
// (hidden node, shatter point, coloring phase) that the paper's
// constructions vary.

#pragma once

#include <optional>
#include <vector>

#include "lcp/instance.h"
#include "nbhd/aviews.h"

namespace shlcp {

/// Outcome of a hiding-witness search over an explicit instance family:
/// the V(D, n) subgraph those instances generate and, when the decoder
/// hides, the odd cycle certifying it (Lemma 3.2).
struct WitnessSearchResult {
  NbhdGraph nbhd;
  std::optional<std::vector<int>> odd_cycle;

  /// True iff an odd cycle (hence a hiding certificate) was found.
  [[nodiscard]] bool hiding() const { return odd_cycle.has_value(); }
};

/// Builds the V(D, n) subgraph over `instances` -- multithreaded per
/// `options`, bit-identical to a sequential absorb -- and searches it for
/// an odd cycle. This is the one-call form of the paper-figure replays:
/// feed it a witness family from the generators below.
WitnessSearchResult search_hiding_witness(
    const Decoder& decoder, const std::vector<Instance>& instances, int k,
    const ParallelEnumOptions& options = {});

/// Honest degree-one labeling with a chosen hidden leaf. Requires g
/// bipartite, degree(hidden) == 1.
Labeling degree_one_labeling(const Graph& g, Node hidden);

/// Honest even-cycle labeling with a chosen phase: `first_color` is the
/// color of the edge {0, 1}. Requires g an even cycle.
Labeling even_cycle_labeling(const Graph& g, const PortAssignment& ports,
                             int first_color);

/// Honest shatter labeling with a chosen shatter point and per-component
/// coloring flips (bit i of flip_mask flips component i+1's 2-coloring).
/// `vector_on_point` selects the certificate layout (see certify/shatter.h).
Labeling shatter_labeling(const Graph& g, const IdAssignment& ids, Node point,
                          unsigned flip_mask, bool vector_on_point);

/// Honest watermelon labeling with a chosen phase: `first_color` colors
/// each path's edge at v1. Requires g a bipartite watermelon.
Labeling watermelon_labeling(const Graph& g, const PortAssignment& ports,
                             const IdAssignment& ids, int first_color);

/// Fig. 3 family: every bipartite min-degree-1 graph on <= `max_n` nodes
/// (paths, stars, brooms, all connected graphs when max_n <= 6), canonical
/// ports, every hidden-leaf placement.
std::vector<Instance> degree_one_witnesses(int max_n);

/// Figs. 5/6 family: cycles C4..C`max_n` (even), every port assignment,
/// both coloring phases.
std::vector<Instance> even_cycle_witnesses(int max_n);

/// Section 7.1 family: the paths P1 (8 nodes) and P2 (7 nodes), certified
/// through the middle shatter point, with every per-component flip.
/// `vector_on_point` selects the certificate layout.
std::vector<Instance> shatter_witnesses(bool vector_on_point);

/// Section 7.2 family: the 8-node path, identifier assignments {identity,
/// the paper's middle-block reversal, full reversal}, every interior port
/// assignment, both coloring phases.
std::vector<Instance> watermelon_witnesses();

/// Instances that defeat WatermelonVariant::kNoPortCheck (the literal
/// reading of condition 3(c) without the far-port reality check): even
/// cycles with cyclically oriented ports whose nodes all carry ONE
/// identical type-2 certificate with self-referential far-port claims.
/// Every node accepts, the instances are bipartite (so their views enter
/// V(D, n)), and the identifier windows are arranged so that V(D, n)
/// contains an odd cycle whose Lemma 5.1 merge realizes an odd 5-cycle
/// G_bad -- the full Theorem 1.5 pipeline runs to a verified
/// strong-soundness violation. The standard decoder rejects these
/// certificates, and the same pipeline on watermelon_witnesses() dies at
/// the realization step: that contrast is experiment E10.
std::vector<Instance> no_port_check_witnesses();

/// One building block of the above: the cycle on |ids_around| nodes with
/// cyclically oriented ports (port 1 to the successor) where every node
/// carries the same self-referential type-2 watermelon certificate, and
/// the i-th node takes identifier ids_around[i]. Unanimously accepted by
/// WatermelonVariant::kNoPortCheck; bipartite iff the length is even.
Instance uniform_cheat_cycle_instance(const std::vector<Ident>& ids_around);

/// A larger witness family for the Section 5 surgery demonstration: the
/// same identifier windows as no_port_check_witnesses, but realized on
/// C8 hosts -- which are 1-forgetful with far nodes, so Lemma 5.4's
/// forgetting detours exist for every edge of the resulting V(D, n).
std::vector<Instance> no_port_check_c8_witnesses();

}  // namespace shlcp
