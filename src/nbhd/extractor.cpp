#include "nbhd/extractor.h"

namespace shlcp {

std::optional<Extractor> Extractor::build(const Decoder& decoder,
                                          NbhdGraph nbhd, int k) {
  auto coloring = nbhd.k_coloring_of_views(k);
  if (!coloring.has_value()) {
    return std::nullopt;
  }
  return Extractor(decoder, std::move(nbhd), std::move(*coloring), k);
}

std::optional<int> Extractor::extract(const View& view) const {
  const int idx = nbhd_.index_of(view);
  if (idx == -1) {
    return std::nullopt;
  }
  return colors_[static_cast<std::size_t>(idx)];
}

std::optional<std::vector<int>> Extractor::run(const Instance& inst) const {
  SHLCP_CHECK_MSG(decoder_->accepts_all(inst),
                  "extraction is defined on accepted certificates");
  std::vector<int> out(static_cast<std::size_t>(inst.num_nodes()));
  for (Node v = 0; v < inst.num_nodes(); ++v) {
    const auto color =
        extract(inst.view_of(v, decoder_->radius(), decoder_->anonymous()));
    if (!color.has_value()) {
      return std::nullopt;
    }
    out[static_cast<std::size_t>(v)] = *color;
  }
  return out;
}

}  // namespace shlcp
