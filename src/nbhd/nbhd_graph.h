// The accepting neighborhood graph V(D, n) (Section 3 of the paper).
//
// Nodes are the accepting views of the decoder D over labeled
// yes-instances; edges join yes-instance-compatible views (views realized
// at two adjacent nodes of one labeled yes-instance). Lemma 3.2 is the
// punchline: D hides a k-coloring iff V(D, n) is NOT k-colorable for some
// n -- an odd cycle in V(D, n) is a hiding certificate for k = 2, and a
// proper k-coloring of V(D, n) compiles into the extractor decoder D'
// (see nbhd/extractor.h).
//
// Views of adjacent nodes with the *same* canonical form produce a
// self-loop here; a loop is a 1-cycle and correctly counts as
// non-k-colorable for every k (two adjacent nodes that look identical can
// never be consistently split by any local decoder).
//
// The graph is shard-mergeable for the parallel sweep: absorb into
// per-chunk shards, then merge shards in chunk order. Because chunks
// partition the instance stream contiguously and merge re-registers the
// shard's views in the shard's own registration order, the merged result
// is bit-identical to a sequential absorb of the whole stream -- same
// view indices, same edges, and the same first-seen provenance (lowest
// instance index wins).

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "lcp/decoder.h"
#include "util/json.h"
#include "views/canonical.h"

namespace shlcp {

/// Where a view / compatibility edge was first seen: an instance index
/// (assigned by absorption order) and the node(s) realizing it. The
/// Section 5 surgery uses this to go back from V(D, n) into concrete
/// yes-instances (the graphs G_e of Lemma 5.4).
struct Provenance {
  int instance = -1;
  Node node = -1;       // center realizing the view
  Node other = -1;      // for edges: the adjacent center
};

/// Accounting for the builders: dedupe pressure and time spent absorbing,
/// so benches report dedupe ratios and time-in-absorb without external
/// instrumentation. Deterministic except absorb_ns.
///
/// This is the *mergeable per-build accumulator*; the process-wide
/// reporting surface is the metrics registry (util/metrics.h), fed once
/// per completed build by publish_build_metrics(). Publishing from the
/// final merged graph -- never per absorb/merge event, which would
/// double-count shard re-registrations -- extends the bit-identical
/// sequential == parallel guarantee to the registry counters.
struct NbhdStats {
  /// Accepting-view registrations that hit an already-registered view.
  /// Total registrations = num_views() + views_deduped.
  std::uint64_t views_deduped = 0;
  /// Wall time spent inside absorb() (and merge()), nanoseconds.
  std::uint64_t absorb_ns = 0;
};

/// An incrementally-built accepting neighborhood graph.
class NbhdGraph {
 public:
  /// Absorbs one labeled instance: registers the accepting views of
  /// `decoder` (anonymized when the decoder is anonymous) and the edges
  /// between accepting views of adjacent nodes. When `require_yes` is
  /// true (the default -- V(D, n) is defined over yes-instances only) the
  /// graph must be k-colorable; pass the language's k. Returns the
  /// instance index assigned for provenance.
  int absorb(const Decoder& decoder, const Instance& inst, int k,
             bool require_yes = true);

  /// Folds `other` into this graph as if other's instances had been
  /// absorbed here, in order, right after this graph's own: other's views
  /// are re-registered in other's registration order, its edges re-keyed
  /// through the combined view indices, its instance indices shifted by
  /// num_instances_absorbed(), and first-seen provenance kept from the
  /// earlier (lower instance index) side. Merging contiguous shards in
  /// stream order therefore reproduces the sequential build exactly.
  void merge(NbhdGraph&& other);

  /// Number of distinct accepting views registered.
  [[nodiscard]] int num_views() const { return static_cast<int>(views_.size()); }

  /// The i-th registered view (registration order).
  [[nodiscard]] const View& view(int i) const;

  /// Index of `v` in the registry, or -1.
  [[nodiscard]] int index_of(const View& v) const;

  /// The view-adjacency graph (indices parallel to view()).
  [[nodiscard]] const Graph& graph() const { return adj_; }

  /// Number of yes-instance-compatibility edges.
  [[nodiscard]] int num_edges() const { return adj_.num_edges(); }

  /// Lemma 3.2 for k = 2: the decoder hides a 2-coloring iff this returns
  /// a non-bipartite witness. Returns the odd cycle over view indices if
  /// one exists.
  [[nodiscard]] std::optional<std::vector<int>> odd_cycle() const;

  /// Proper k-coloring of the view graph in registration order
  /// (deterministic; the "lexicographically first" coloring Lemma 3.2
  /// uses), or nullopt if none exists.
  [[nodiscard]] std::optional<std::vector<int>> k_coloring_of_views(int k) const;

  /// True iff the view graph is k-colorable (no hiding witness found).
  [[nodiscard]] bool k_colorable(int k) const {
    return k_coloring_of_views(k).has_value();
  }

  /// First-seen provenance of view i.
  [[nodiscard]] const Provenance& view_provenance(int i) const;

  /// First-seen provenance of the edge {a, b}, or nullptr if absent.
  [[nodiscard]] const Provenance* edge_provenance(int a, int b) const;

  /// Number of instances absorbed so far.
  [[nodiscard]] int num_instances_absorbed() const { return next_instance_; }

  /// Number of distinct view fingerprints seen (= registrations that the
  /// fingerprint gate proved fresh without any exact comparison). The
  /// derived split published to the metrics registry is
  /// fingerprint_misses = this, fingerprint_hits = registrations - this;
  /// deriving from the final graph keeps sequential and parallel builds
  /// publishing identical values (a shard-local tally would not merge).
  [[nodiscard]] std::uint64_t num_fingerprint_chains() const {
    return fp_head_.size();
  }

  /// Builder accounting (dedupe hits, time in absorb). Merge sums shard
  /// stats, so parallel and sequential builds agree on views_deduped.
  [[nodiscard]] const NbhdStats& stats() const { return stats_; }

  /// Serializes the complete builder state -- views in registration
  /// order, adjacency (loops included), both provenance maps, the
  /// instance counter, and stats -- so a checkpointed build can resume
  /// bit-identically (nbhd/checkpoint.h). Deterministic except for the
  /// absorb_ns stat: edge provenance is emitted in sorted key order.
  [[nodiscard]] Json to_json() const;

  /// Inverse of to_json: reconstructs the graph, re-deriving the
  /// canonical-code index from the stored views. Throws CheckError on a
  /// structurally inconsistent document (duplicate views, bad indices).
  static NbhdGraph from_json(const Json& j);

 private:
  /// Edge endpoints are small dense view indices: pack into one word
  /// (a <= b) for the edge-record index.
  static std::uint64_t pack_edge(int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  /// One first-seen edge-provenance record. Records live in a contiguous
  /// vector (insertion order) addressed by integer handles; the hash map
  /// only stores packed-key -> handle.
  struct EdgeProv {
    int a = 0;  // a <= b
    int b = 0;
    Provenance prov;
  };

  /// Fingerprint-gated registration: looks `view` up via its cached
  /// 64-bit fingerprint and the per-fingerprint chain, comparing
  /// candidates with views_structurally_equal (exact; no canonical code
  /// materialized). Registers the view with `prov` when absent. Returns
  /// (view index, freshly-registered).
  std::pair<int, bool> find_or_register(View&& view, const Provenance& prov);

  /// Registers the compatibility edge {a, b} (or the loop when a == b)
  /// and its first-seen provenance, preserving an existing record.
  void register_edge(int a, int b, const Provenance& prov);

  // Dedup index: fingerprint -> first view index of the chain, with
  // per-view chain links in registration order. No per-view key string
  // is ever materialized; exact dedup is fingerprint gate + direct
  // structural comparison against the (usually single-entry) chain.
  std::unordered_map<std::uint64_t, int> fp_head_;
  std::vector<int> fp_next_;  // parallel to views_; -1 terminates a chain
  std::vector<View> views_;
  std::vector<Provenance> view_prov_;
  // Edge provenance as flat records + packed-key handle index.
  std::vector<EdgeProv> edge_records_;
  std::unordered_map<std::uint64_t, int> edge_index_;
  Graph adj_;
  int next_instance_ = 0;
  NbhdStats stats_;
};

/// Publishes a completed build's totals to the metrics registry:
/// counters nbhd.build.{builds,instances,views,views_deduped,edges} and
/// histogram nbhd.build.absorb_ns. The aviews.h builders call this once
/// per build on the final (merged) graph, so sequential and parallel
/// builds of the same sweep publish identical counter values.
void publish_build_metrics(const NbhdGraph& nbhd);

}  // namespace shlcp
