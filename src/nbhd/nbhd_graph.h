// The accepting neighborhood graph V(D, n) (Section 3 of the paper).
//
// Nodes are the accepting views of the decoder D over labeled
// yes-instances; edges join yes-instance-compatible views (views realized
// at two adjacent nodes of one labeled yes-instance). Lemma 3.2 is the
// punchline: D hides a k-coloring iff V(D, n) is NOT k-colorable for some
// n -- an odd cycle in V(D, n) is a hiding certificate for k = 2, and a
// proper k-coloring of V(D, n) compiles into the extractor decoder D'
// (see nbhd/extractor.h).
//
// Views of adjacent nodes with the *same* canonical form produce a
// self-loop here; a loop is a 1-cycle and correctly counts as
// non-k-colorable for every k (two adjacent nodes that look identical can
// never be consistently split by any local decoder).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.h"
#include "lcp/decoder.h"
#include "views/canonical.h"

namespace shlcp {

/// Where a view / compatibility edge was first seen: an instance index
/// (assigned by absorption order) and the node(s) realizing it. The
/// Section 5 surgery uses this to go back from V(D, n) into concrete
/// yes-instances (the graphs G_e of Lemma 5.4).
struct Provenance {
  int instance = -1;
  Node node = -1;       // center realizing the view
  Node other = -1;      // for edges: the adjacent center
};

/// An incrementally-built accepting neighborhood graph.
class NbhdGraph {
 public:
  /// Absorbs one labeled instance: registers the accepting views of
  /// `decoder` (anonymized when the decoder is anonymous) and the edges
  /// between accepting views of adjacent nodes. When `require_yes` is
  /// true (the default -- V(D, n) is defined over yes-instances only) the
  /// graph must be k-colorable; pass the language's k. Returns the
  /// instance index assigned for provenance.
  int absorb(const Decoder& decoder, const Instance& inst, int k,
             bool require_yes = true);

  /// Number of distinct accepting views registered.
  [[nodiscard]] int num_views() const { return static_cast<int>(views_.size()); }

  /// The i-th registered view (registration order).
  [[nodiscard]] const View& view(int i) const;

  /// Index of `v` in the registry, or -1.
  [[nodiscard]] int index_of(const View& v) const;

  /// The view-adjacency graph (indices parallel to view()).
  [[nodiscard]] const Graph& graph() const { return adj_; }

  /// Number of yes-instance-compatibility edges.
  [[nodiscard]] int num_edges() const { return adj_.num_edges(); }

  /// Lemma 3.2 for k = 2: the decoder hides a 2-coloring iff this returns
  /// a non-bipartite witness. Returns the odd cycle over view indices if
  /// one exists.
  [[nodiscard]] std::optional<std::vector<int>> odd_cycle() const;

  /// Proper k-coloring of the view graph in registration order
  /// (deterministic; the "lexicographically first" coloring Lemma 3.2
  /// uses), or nullopt if none exists.
  [[nodiscard]] std::optional<std::vector<int>> k_coloring_of_views(int k) const;

  /// True iff the view graph is k-colorable (no hiding witness found).
  [[nodiscard]] bool k_colorable(int k) const {
    return k_coloring_of_views(k).has_value();
  }

  /// First-seen provenance of view i.
  [[nodiscard]] const Provenance& view_provenance(int i) const;

  /// First-seen provenance of the edge {a, b}, or nullptr if absent.
  [[nodiscard]] const Provenance* edge_provenance(int a, int b) const;

  /// Number of instances absorbed so far.
  [[nodiscard]] int num_instances_absorbed() const { return next_instance_; }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<View> views_;
  std::vector<Provenance> view_prov_;
  std::map<std::pair<int, int>, Provenance> edge_prov_;
  Graph adj_;
  int next_instance_ = 0;
};

}  // namespace shlcp
